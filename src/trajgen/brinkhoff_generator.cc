#include "trajgen/brinkhoff_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace comove::trajgen {

namespace {

/// Kinematic state of one object moving along a routed path.
struct Mover {
  std::vector<NodeId> path;     ///< node sequence of the current trip
  std::size_t segment = 0;      ///< index into path (edge = seg -> seg+1)
  double offset = 0.0;          ///< distance travelled along the segment
  double speed_factor = 1.0;    ///< per-object multiplicative speed noise
  bool active = true;           ///< false once retired (no more trips)

  bool HasTrip() const { return segment + 1 < path.size(); }
};

/// Position of a mover: linear interpolation along its current segment.
Point PositionOf(const RoadNetwork& net, const Mover& m) {
  if (!m.HasTrip()) {
    return net.node(m.path.empty() ? 0 : m.path.back());
  }
  const Point a = net.node(m.path[m.segment]);
  const Point b = net.node(m.path[m.segment + 1]);
  const double len = L2Distance(a, b);
  const double f = len > 0.0 ? std::min(1.0, m.offset / len) : 1.0;
  return Point{a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f};
}

/// Speed along the mover's current segment: class free-flow speed scaled
/// by the object's factor. Looks up the edge's class via adjacency.
double SegmentSpeed(const RoadNetwork& net, const Mover& m) {
  if (!m.HasTrip()) return 0.0;
  const NodeId u = m.path[m.segment];
  const NodeId v = m.path[m.segment + 1];
  for (const std::int32_t ei : net.adjacent(u)) {
    const RoadEdge& e = net.edge(ei);
    if ((e.from == u && e.to == v) || (e.from == v && e.to == u)) {
      return RoadClassSpeed(e.road_class) * m.speed_factor;
    }
  }
  // Path edges always exist in the network by construction.
  COMOVE_CHECK_MSG(false, "path uses a non-existent edge");
  return 0.0;
}

/// Advances a mover by one tick of travel; returns false once the trip is
/// finished and no distance remains.
void Advance(const RoadNetwork& net, Mover* m) {
  double budget = SegmentSpeed(net, *m);
  while (m->HasTrip() && budget > 0.0) {
    const Point a = net.node(m->path[m->segment]);
    const Point b = net.node(m->path[m->segment + 1]);
    const double len = L2Distance(a, b);
    const double remain = len - m->offset;
    if (budget < remain) {
      m->offset += budget;
      budget = 0.0;
    } else {
      budget -= remain;
      ++m->segment;
      m->offset = 0.0;
    }
  }
}

/// Starts a fresh trip from `from` to a random distinct destination.
void StartTrip(const RoadNetwork& net, NodeId from, Rng* rng, Mover* m) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const NodeId to = net.RandomNode(rng);
    if (to == from) continue;
    std::vector<NodeId> path = net.ShortestPath(from, to);
    if (path.size() >= 2) {
      m->path = std::move(path);
      m->segment = 0;
      m->offset = 0.0;
      return;
    }
  }
  m->active = false;  // isolated node: retire the object
}

}  // namespace

Dataset GenerateBrinkhoff(const BrinkhoffOptions& options,
                          std::uint64_t seed) {
  COMOVE_CHECK(options.object_count > 0 && options.duration > 0);
  COMOVE_CHECK(options.group_size >= 0 && options.group_count >= 0);
  const std::int32_t grouped =
      std::min(options.object_count,
               options.group_count * options.group_size);
  const std::int32_t group_count =
      options.group_size > 0 ? grouped / options.group_size : 0;

  Rng rng(seed);
  const RoadNetwork net = RoadNetwork::Synthesize(options.network, seed);

  // Shuffled dense id assignment so that Or-prefix subsampling keeps a
  // representative mix of grouped and independent objects.
  std::vector<TrajectoryId> ids(
      static_cast<std::size_t>(options.object_count));
  std::iota(ids.begin(), ids.end(), 0);
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[static_cast<std::size_t>(rng.UniformInt(
                              0, static_cast<std::int64_t>(i) - 1))]);
  }

  DatasetBuilder builder(options.name);

  // --- Grouped objects: one leader mover per group, members follow with
  // a fixed offset plus noise, occasionally straggling away. -------------
  std::int32_t next_object = 0;
  for (std::int32_t g = 0; g < group_count; ++g) {
    Mover leader;
    leader.speed_factor = 1.0 + rng.Uniform(-options.speed_jitter,
                                            options.speed_jitter);
    StartTrip(net, net.RandomNode(&rng), &rng, &leader);

    struct Member {
      TrajectoryId id;
      Point offset;
      std::int32_t straggle_left = 0;
      Point straggle_dir;
    };
    std::vector<Member> members;
    for (std::int32_t k = 0; k < options.group_size; ++k) {
      Member m;
      m.id = ids[static_cast<std::size_t>(next_object++)];
      m.offset = Point{rng.Uniform(-options.group_jitter,
                                   options.group_jitter),
                       rng.Uniform(-options.group_jitter,
                                   options.group_jitter)};
      members.push_back(m);
    }

    for (Timestamp t = 0; t < options.duration && leader.active; ++t) {
      const Point base = PositionOf(net, leader);
      for (Member& m : members) {
        Point p{base.x + m.offset.x, base.y + m.offset.y};
        if (m.straggle_left > 0) {
          p.x += m.straggle_dir.x;
          p.y += m.straggle_dir.y;
          --m.straggle_left;
        } else if (rng.Bernoulli(options.straggle_prob)) {
          m.straggle_left = options.straggle_ticks;
          const double angle = rng.Uniform(0, 2 * 3.14159265358979);
          m.straggle_dir = Point{options.straggle_dist * std::cos(angle),
                                 options.straggle_dist * std::sin(angle)};
        }
        if (rng.Bernoulli(options.report_prob)) {
          builder.Add(m.id, t, p);
        }
      }
      Advance(net, &leader);
      if (!leader.HasTrip()) {
        if (rng.Bernoulli(options.reroute_prob)) {
          StartTrip(net, leader.path.back(), &rng, &leader);
        } else {
          leader.active = false;
        }
      }
    }
  }

  // --- Independent objects. ---------------------------------------------
  for (; next_object < options.object_count; ++next_object) {
    const TrajectoryId id = ids[static_cast<std::size_t>(next_object)];
    Mover m;
    m.speed_factor =
        1.0 + rng.Uniform(-options.speed_jitter, options.speed_jitter);
    // Stagger entry times so the population ramps up like a real stream.
    const Timestamp entry =
        options.stagger_entry
            ? static_cast<Timestamp>(rng.UniformInt(0, options.duration / 4))
            : 0;
    StartTrip(net, net.RandomNode(&rng), &rng, &m);
    for (Timestamp t = entry; t < options.duration && m.active; ++t) {
      if (rng.Bernoulli(options.report_prob)) {
        builder.Add(id, t, PositionOf(net, m));
      }
      Advance(net, &m);
      if (!m.HasTrip()) {
        if (rng.Bernoulli(options.reroute_prob)) {
          StartTrip(net, m.path.back(), &rng, &m);
        } else {
          m.active = false;
        }
      }
    }
  }

  return builder.Finalize(options.interval_seconds);
}

Dataset GenerateTaxiLike(std::int32_t object_count, Timestamp duration,
                         std::uint64_t seed) {
  BrinkhoffOptions options;
  options.name = "taxi-like";
  options.object_count = object_count;
  options.duration = duration;
  options.report_prob = 0.98;  // taxis report almost every interval
  options.reroute_prob = 1.0;  // a fleet never leaves service
  options.stagger_entry = false;
  options.interval_seconds = 5.0;
  options.group_count = std::max(1, object_count / 40);
  options.group_size = 6;
  options.network.grid_nx = 20;
  options.network.grid_ny = 20;
  return GenerateBrinkhoff(options, seed);
}

}  // namespace comove::trajgen
