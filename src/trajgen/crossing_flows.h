#ifndef COMOVE_TRAJGEN_CROSSING_FLOWS_H_
#define COMOVE_TRAJGEN_CROSSING_FLOWS_H_

#include <cstdint>
#include <string>

#include "trajgen/dataset.h"

/// \file
/// Adversarial "crossing flows" generator: two perpendicular streams of
/// platoons pass through a junction. Within a platoon, objects co-move
/// for the whole run (long, genuine patterns); across the two flows,
/// objects are close only during the brief crossing window. This is the
/// canonical false-positive trap for co-movement detection - a correct
/// CP(M, K, L, G) detector with K larger than the crossing window must
/// never report a mixed-flow pattern, no matter how dense the junction
/// gets. Tests use it to pin exactly that.

namespace comove::trajgen {

/// Parameters of the crossing-flows scenario.
struct CrossingFlowsOptions {
  std::string name = "crossing-flows";
  std::int32_t platoons_per_flow = 4;
  std::int32_t platoon_size = 5;
  Timestamp duration = 60;
  double speed = 10.0;          ///< distance per tick along the flow axis
  double lane_jitter = 1.5;     ///< within-platoon spread
  double platoon_spacing = 80.0;  ///< distance between successive platoons
  double report_prob = 1.0;
};

/// Generates the scenario. Flow A objects (ids 0 .. n/2-1) move east
/// along y ~ 0; flow B objects (ids n/2 .. n-1) move north along x ~ 0;
/// both cross the origin mid-run.
Dataset GenerateCrossingFlows(const CrossingFlowsOptions& options,
                              std::uint64_t seed);

/// Number of ticks two objects from different flows can stay within
/// `eps` of each other (the crossing window): the interval where both
/// coordinates are small. Useful for choosing K in tests.
Timestamp CrossingWindowTicks(const CrossingFlowsOptions& options,
                              double eps);

}  // namespace comove::trajgen

#endif  // COMOVE_TRAJGEN_CROSSING_FLOWS_H_
