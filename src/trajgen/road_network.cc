#include "trajgen/road_network.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "common/check.h"

namespace comove::trajgen {

double RoadClassSpeed(RoadClass cls) {
  switch (cls) {
    case RoadClass::kStreet:
      return 8.0;
    case RoadClass::kArterial:
      return 14.0;
    case RoadClass::kHighway:
      return 25.0;
  }
  return 8.0;
}

void RoadNetwork::AddEdge(NodeId a, NodeId b, RoadClass cls) {
  RoadEdge e;
  e.from = a;
  e.to = b;
  e.length = L2Distance(node(a), node(b));
  e.road_class = cls;
  const auto index = static_cast<std::int32_t>(edges_.size());
  edges_.push_back(e);
  adjacency_[static_cast<std::size_t>(a)].push_back(index);
  adjacency_[static_cast<std::size_t>(b)].push_back(index);
}

RoadNetwork RoadNetwork::Synthesize(const RoadNetworkOptions& options,
                                    std::uint64_t seed) {
  COMOVE_CHECK(options.grid_nx >= 2 && options.grid_ny >= 2);
  // Retry with derived seeds until the random deletions leave the graph
  // connected (almost always the first attempt).
  for (std::uint64_t attempt = 0; attempt < 32; ++attempt) {
    Rng rng(seed + attempt * 0x9E3779B9ULL);
    RoadNetwork net;
    const std::int32_t nx = options.grid_nx;
    const std::int32_t ny = options.grid_ny;
    net.nodes_.reserve(static_cast<std::size_t>(nx * ny));
    for (std::int32_t y = 0; y < ny; ++y) {
      for (std::int32_t x = 0; x < nx; ++x) {
        const double jx =
            rng.Uniform(-options.jitter, options.jitter) * options.spacing;
        const double jy =
            rng.Uniform(-options.jitter, options.jitter) * options.spacing;
        net.nodes_.push_back(
            Point{x * options.spacing + jx, y * options.spacing + jy});
      }
    }
    net.adjacency_.assign(net.nodes_.size(), {});

    const auto id_of = [nx](std::int32_t x, std::int32_t y) {
      return static_cast<NodeId>(y * nx + x);
    };
    const auto class_of = [&](bool along_x, std::int32_t row) {
      const auto stride =
          static_cast<std::int32_t>(options.highway_row_stride);
      if (stride > 0 && row % stride == 0) {
        return along_x ? RoadClass::kHighway : RoadClass::kArterial;
      }
      return RoadClass::kStreet;
    };
    for (std::int32_t y = 0; y < ny; ++y) {
      for (std::int32_t x = 0; x < nx; ++x) {
        if (x + 1 < nx && !rng.Bernoulli(options.edge_drop_prob)) {
          net.AddEdge(id_of(x, y), id_of(x + 1, y), class_of(true, y));
        }
        if (y + 1 < ny && !rng.Bernoulli(options.edge_drop_prob)) {
          net.AddEdge(id_of(x, y), id_of(x, y + 1), class_of(false, x));
        }
        if (x + 1 < nx && y + 1 < ny &&
            rng.Bernoulli(options.diagonal_prob)) {
          net.AddEdge(id_of(x, y), id_of(x + 1, y + 1), RoadClass::kStreet);
        }
      }
    }
    if (net.IsConnected()) return net;
  }
  COMOVE_CHECK_MSG(false, "failed to synthesize a connected road network");
  return RoadNetwork();  // unreachable
}

Rect RoadNetwork::Extent() const {
  Rect r = Rect::Empty();
  for (const Point& p : nodes_) r.ExpandToInclude(p);
  return r;
}

std::vector<NodeId> RoadNetwork::ShortestPath(NodeId from, NodeId to) const {
  const std::size_t n = nodes_.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> prev(n, -1);
  using QueueEntry = std::pair<double, NodeId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist[static_cast<std::size_t>(from)] = 0.0;
  queue.emplace(0.0, from);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == to) break;
    for (const std::int32_t ei : adjacency_[static_cast<std::size_t>(u)]) {
      const RoadEdge& e = edges_[static_cast<std::size_t>(ei)];
      const NodeId v = e.from == u ? e.to : e.from;
      const double nd = d + e.TravelTime();
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        prev[static_cast<std::size_t>(v)] = u;
        queue.emplace(nd, v);
      }
    }
  }
  if (dist[static_cast<std::size_t>(to)] == kInf) return {};
  std::vector<NodeId> path;
  for (NodeId v = to; v != -1; v = prev[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == from) break;
  }
  std::reverse(path.begin(), path.end());
  COMOVE_CHECK(path.front() == from && path.back() == to);
  return path;
}

NodeId RoadNetwork::RandomNode(Rng* rng) const {
  return static_cast<NodeId>(
      rng->UniformInt(0, static_cast<std::int64_t>(nodes_.size()) - 1));
}

bool RoadNetwork::IsConnected() const {
  if (nodes_.empty()) return false;
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<NodeId> stack = {0};
  visited[0] = true;
  std::size_t seen = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const std::int32_t ei : adjacency_[static_cast<std::size_t>(u)]) {
      const RoadEdge& e = edges_[static_cast<std::size_t>(ei)];
      const NodeId v = e.from == u ? e.to : e.from;
      if (!visited[static_cast<std::size_t>(v)]) {
        visited[static_cast<std::size_t>(v)] = true;
        ++seen;
        stack.push_back(v);
      }
    }
  }
  return seen == nodes_.size();
}

}  // namespace comove::trajgen
