#ifndef COMOVE_TRAJGEN_STANDARD_DATASETS_H_
#define COMOVE_TRAJGEN_STANDARD_DATASETS_H_

#include <cstdint>

#include "trajgen/dataset.h"

/// \file
/// The three evaluation datasets of the paper (Table 2), reproduced as
/// synthetic stand-ins at laptop scale (see DESIGN.md for the substitution
/// rationale). `scale` in (0, 1] shrinks object counts and durations
/// proportionally; benches use small scales, examples and tests smaller
/// still. Seeds are fixed so every consumer sees identical data.

namespace comove::trajgen {

/// Which standard dataset to synthesize.
enum class StandardDataset {
  kGeoLife,    ///< GeoLife-like: mixed-mode people around a city centre
  kTaxi,       ///< Taxi-like: dense fleet on a road network, 5 s sampling
  kBrinkhoff,  ///< Brinkhoff: network-based moving objects, 1 s sampling
};

/// Human-readable dataset name ("GeoLife", "Taxi", "Brinkhoff").
const char* StandardDatasetName(StandardDataset which);

/// Builds the dataset at the given scale. At scale = 1 the defaults are
/// roughly 2000 objects x 400 ticks (laptop budget); the paper's full
/// datasets are larger but the algorithms only see per-snapshot state, so
/// the parameter sweeps preserve the evaluation's shape.
Dataset MakeStandardDataset(StandardDataset which, double scale = 1.0,
                            std::uint64_t seed = 42);

}  // namespace comove::trajgen

#endif  // COMOVE_TRAJGEN_STANDARD_DATASETS_H_
