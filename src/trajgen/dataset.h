#ifndef COMOVE_TRAJGEN_DATASET_H_
#define COMOVE_TRAJGEN_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/types.h"

/// \file
/// In-memory trajectory datasets: the unit the generators produce and the
/// streaming pipeline replays. Records are sorted by (time, id) and carry
/// correct last_time links, so a dataset can be replayed as a faithful
/// stream source for the §4 synchronisation protocol.

namespace comove::trajgen {

/// Summary statistics in the shape of the paper's Table 2.
struct DatasetStats {
  std::int64_t trajectories = 0;
  std::int64_t locations = 0;   ///< total GPS records
  std::int64_t snapshots = 0;   ///< distinct times with at least one record
  double storage_mb = 0.0;      ///< in-memory record storage
  Rect extent = Rect::Empty();

  /// Maximal L1 distance across the extent; the paper expresses eps and lg
  /// as percentages of this value.
  double MaxDistance() const { return extent.Width() + extent.Height(); }
};

/// A finite trajectory dataset that models a stream.
struct Dataset {
  std::string name;
  /// Records sorted by (time, id) with last_time chains per trajectory.
  std::vector<GpsRecord> records;
  /// Nominal interval duration of the discretisation, for documentation.
  double interval_seconds = 1.0;

  DatasetStats ComputeStats() const;

  /// Groups the records into per-time snapshots (sorted by time). This is
  /// the "oracle" snapshot view used by non-streaming components and by
  /// tests that validate the streaming assembler.
  std::vector<Snapshot> ToSnapshots() const;

  /// Keeps only trajectories with id < ceil(ratio * #trajectories): the
  /// paper's "ratio of objects" Or knob (Fig. 12). Ids are assumed dense
  /// from 0. Returns a new dataset; last_time links remain valid because
  /// whole trajectories are kept or dropped.
  Dataset SampleObjects(double ratio) const;

  /// Keeps only records with time < max_time (trajectory prefixes),
  /// re-deriving nothing: prefixes preserve last_time chains.
  Dataset TruncateTime(Timestamp max_time) const;
};

/// Incremental builder: append positions in any order, then Finalize() to
/// sort and derive last_time links.
class DatasetBuilder {
 public:
  explicit DatasetBuilder(std::string name) : name_(std::move(name)) {}

  /// Appends a report of trajectory `id` at discrete time `t`.
  void Add(TrajectoryId id, Timestamp t, const Point& location) {
    records_.push_back(GpsRecord{id, location, t, kNoTime});
  }

  std::size_t size() const { return records_.size(); }

  /// Sorts records, drops duplicate (id, time) reports (keeping the first),
  /// links last_time chains, and returns the finished dataset.
  Dataset Finalize(double interval_seconds = 1.0);

 private:
  std::string name_;
  std::vector<GpsRecord> records_;
};

}  // namespace comove::trajgen

#endif  // COMOVE_TRAJGEN_DATASET_H_
