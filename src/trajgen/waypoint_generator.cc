#include "trajgen/waypoint_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace comove::trajgen {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Travel speeds per transport mode (distance units per tick).
constexpr double kModeSpeeds[] = {1.5, 5.0, 15.0};  // walk, bike, drive

/// A person's journey state: moving towards a POI or dwelling there.
struct Person {
  Point position;
  Point target;
  double speed = 1.5;
  Timestamp dwell_left = 0;
};

Point SamplePoi(const std::vector<Point>& pois, Rng* rng) {
  return pois[static_cast<std::size_t>(
      rng->UniformInt(0, static_cast<std::int64_t>(pois.size()) - 1))];
}

void StepTowardsTarget(Person* p) {
  const double dx = p->target.x - p->position.x;
  const double dy = p->target.y - p->position.y;
  const double dist = std::sqrt(dx * dx + dy * dy);
  if (dist <= p->speed) {
    p->position = p->target;
  } else {
    p->position.x += dx / dist * p->speed;
    p->position.y += dy / dist * p->speed;
  }
}

bool AtTarget(const Person& p) {
  return p.position.x == p.target.x && p.position.y == p.target.y;
}

void BeginTrip(const std::vector<Point>& pois, Rng* rng, Person* p) {
  p->target = SamplePoi(pois, rng);
  p->speed = kModeSpeeds[rng->UniformInt(0, 2)];
}

}  // namespace

Dataset GenerateGeoLifeLike(const WaypointOptions& options,
                            std::uint64_t seed) {
  COMOVE_CHECK(options.object_count > 0 && options.duration > 0);
  COMOVE_CHECK(options.poi_count >= 2);
  Rng rng(seed);

  // POIs cluster around the city centre: radius drawn from a folded
  // Gaussian so density decays outward (GeoLife's dense urban core).
  std::vector<Point> pois;
  pois.reserve(static_cast<std::size_t>(options.poi_count));
  for (std::int32_t i = 0; i < options.poi_count; ++i) {
    const double radius = std::abs(rng.Gaussian(
        0.0, options.center_concentration * options.city_radius));
    const double angle = rng.Uniform(0, 2 * kPi);
    pois.push_back(Point{radius * std::cos(angle),
                         radius * std::sin(angle)});
  }

  // Shuffled id assignment (see brinkhoff_generator.cc for rationale).
  std::vector<TrajectoryId> ids(
      static_cast<std::size_t>(options.object_count));
  std::iota(ids.begin(), ids.end(), 0);
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[static_cast<std::size_t>(rng.UniformInt(
                              0, static_cast<std::int64_t>(i) - 1))]);
  }

  DatasetBuilder builder(options.name);
  const std::int32_t grouped =
      std::min(options.object_count,
               options.group_count * options.group_size);
  const std::int32_t group_count =
      options.group_size > 0 ? grouped / options.group_size : 0;

  std::int32_t next_object = 0;

  // --- Grouped people share one leader itinerary. ------------------------
  for (std::int32_t g = 0; g < group_count; ++g) {
    Person leader;
    leader.position = SamplePoi(pois, &rng);
    BeginTrip(pois, &rng, &leader);
    std::vector<TrajectoryId> member_ids;
    std::vector<Point> offsets;
    for (std::int32_t k = 0; k < options.group_size; ++k) {
      member_ids.push_back(ids[static_cast<std::size_t>(next_object++)]);
      offsets.push_back(Point{
          rng.Uniform(-options.group_jitter, options.group_jitter),
          rng.Uniform(-options.group_jitter, options.group_jitter)});
    }
    for (Timestamp t = 0; t < options.duration; ++t) {
      for (std::size_t k = 0; k < member_ids.size(); ++k) {
        if (rng.Bernoulli(options.report_prob)) {
          builder.Add(member_ids[k], t,
                      Point{leader.position.x + offsets[k].x,
                            leader.position.y + offsets[k].y});
        }
      }
      if (leader.dwell_left > 0) {
        --leader.dwell_left;
        if (leader.dwell_left == 0) BeginTrip(pois, &rng, &leader);
      } else {
        StepTowardsTarget(&leader);
        if (AtTarget(leader)) {
          leader.dwell_left = static_cast<Timestamp>(
              rng.UniformInt(1, options.max_dwell));
        }
      }
    }
  }

  // --- Independent people. ------------------------------------------------
  for (; next_object < options.object_count; ++next_object) {
    const TrajectoryId id = ids[static_cast<std::size_t>(next_object)];
    Person p;
    p.position = SamplePoi(pois, &rng);
    BeginTrip(pois, &rng, &p);
    const Timestamp entry =
        static_cast<Timestamp>(rng.UniformInt(0, options.duration / 4));
    for (Timestamp t = entry; t < options.duration; ++t) {
      if (rng.Bernoulli(options.report_prob)) {
        builder.Add(id, t, p.position);
      }
      if (p.dwell_left > 0) {
        --p.dwell_left;
        if (p.dwell_left == 0) BeginTrip(pois, &rng, &p);
      } else {
        StepTowardsTarget(&p);
        if (AtTarget(p)) {
          p.dwell_left =
              static_cast<Timestamp>(rng.UniformInt(1, options.max_dwell));
        }
      }
    }
  }

  return builder.Finalize(options.interval_seconds);
}

}  // namespace comove::trajgen
