#include "trajgen/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace comove::trajgen {

DatasetStats Dataset::ComputeStats() const {
  DatasetStats stats;
  std::unordered_set<TrajectoryId> ids;
  std::unordered_set<Timestamp> times;
  for (const GpsRecord& r : records) {
    ids.insert(r.id);
    times.insert(r.time);
    stats.extent.ExpandToInclude(r.location);
  }
  stats.trajectories = static_cast<std::int64_t>(ids.size());
  stats.locations = static_cast<std::int64_t>(records.size());
  stats.snapshots = static_cast<std::int64_t>(times.size());
  stats.storage_mb = static_cast<double>(records.size() * sizeof(GpsRecord)) /
                     (1024.0 * 1024.0);
  return stats;
}

std::vector<Snapshot> Dataset::ToSnapshots() const {
  std::vector<Snapshot> snapshots;
  for (const GpsRecord& r : records) {
    if (snapshots.empty() || snapshots.back().time != r.time) {
      COMOVE_CHECK_MSG(snapshots.empty() || snapshots.back().time < r.time,
                       "dataset records are not sorted by time");
      snapshots.push_back(Snapshot{r.time, {}});
    }
    snapshots.back().entries.push_back(SnapshotEntry{r.id, r.location});
  }
  return snapshots;
}

Dataset Dataset::SampleObjects(double ratio) const {
  COMOVE_CHECK(ratio > 0.0 && ratio <= 1.0);
  TrajectoryId max_id = -1;
  for (const GpsRecord& r : records) max_id = std::max(max_id, r.id);
  const auto cutoff = static_cast<TrajectoryId>(
      std::ceil(ratio * static_cast<double>(max_id + 1)));
  Dataset out;
  out.name = name;
  out.interval_seconds = interval_seconds;
  for (const GpsRecord& r : records) {
    if (r.id < cutoff) out.records.push_back(r);
  }
  return out;
}

Dataset Dataset::TruncateTime(Timestamp max_time) const {
  Dataset out;
  out.name = name;
  out.interval_seconds = interval_seconds;
  for (const GpsRecord& r : records) {
    if (r.time < max_time) out.records.push_back(r);
  }
  return out;
}

Dataset DatasetBuilder::Finalize(double interval_seconds) {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const GpsRecord& a, const GpsRecord& b) {
                     return a.time != b.time ? a.time < b.time
                                             : a.id < b.id;
                   });
  // Drop duplicate (id, time) reports and link last_time per trajectory.
  std::unordered_map<TrajectoryId, Timestamp> last_seen;
  std::vector<GpsRecord> cleaned;
  cleaned.reserve(records_.size());
  for (GpsRecord& r : records_) {
    auto [it, inserted] = last_seen.try_emplace(r.id, kNoTime);
    if (!inserted && it->second == r.time) continue;  // duplicate report
    r.last_time = it->second;
    it->second = r.time;
    cleaned.push_back(r);
  }
  Dataset dataset;
  dataset.name = std::move(name_);
  dataset.records = std::move(cleaned);
  dataset.interval_seconds = interval_seconds;
  records_.clear();
  return dataset;
}

}  // namespace comove::trajgen
