#ifndef COMOVE_TRAJGEN_ROAD_NETWORK_H_
#define COMOVE_TRAJGEN_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"

/// \file
/// A synthetic planar road network in the spirit of the Brinkhoff
/// generator's input maps [5]: a perturbed grid of intersections with a
/// mix of fast and slow edge classes, plus shortest-path routing. The
/// network substrate is what makes generated trajectories move with
/// "random but reasonable direction and speed".

namespace comove::trajgen {

using NodeId = std::int32_t;

/// Road classes with different free-flow speeds (distance units per tick).
enum class RoadClass : std::uint8_t { kStreet = 0, kArterial = 1,
                                      kHighway = 2 };

/// Returns the free-flow speed of a road class.
double RoadClassSpeed(RoadClass cls);

/// An undirected road segment between two intersections.
struct RoadEdge {
  NodeId from = 0;
  NodeId to = 0;
  double length = 0.0;
  RoadClass road_class = RoadClass::kStreet;

  double TravelTime() const { return length / RoadClassSpeed(road_class); }
};

/// Construction parameters for the synthetic network.
struct RoadNetworkOptions {
  std::int32_t grid_nx = 16;      ///< intersections per row
  std::int32_t grid_ny = 16;      ///< intersections per column
  double spacing = 100.0;         ///< nominal grid spacing
  double jitter = 0.25;           ///< node position jitter (x spacing)
  double edge_drop_prob = 0.08;   ///< probability a grid edge is missing
  double diagonal_prob = 0.15;    ///< probability of a diagonal shortcut
  double highway_row_stride = 4;  ///< every k-th row/column is faster
};

/// An immutable planar road graph with shortest-path routing.
class RoadNetwork {
 public:
  /// Generates a synthetic network (deterministic per seed).
  static RoadNetwork Synthesize(const RoadNetworkOptions& options,
                                std::uint64_t seed);

  std::int32_t node_count() const {
    return static_cast<std::int32_t>(nodes_.size());
  }
  std::int32_t edge_count() const {
    return static_cast<std::int32_t>(edges_.size());
  }

  const Point& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  const RoadEdge& edge(std::int32_t index) const {
    return edges_[static_cast<std::size_t>(index)];
  }

  /// Edge indices incident to `id`.
  const std::vector<std::int32_t>& adjacent(NodeId id) const {
    return adjacency_[static_cast<std::size_t>(id)];
  }

  /// Bounding box of all intersections.
  Rect Extent() const;

  /// Dijkstra by travel time. Returns the node sequence from `from` to
  /// `to` (inclusive), or an empty vector when unreachable.
  std::vector<NodeId> ShortestPath(NodeId from, NodeId to) const;

  /// A uniformly random node id.
  NodeId RandomNode(Rng* rng) const;

  /// True when every node can reach every other (used by tests; the
  /// synthesizer retries seeds internally until this holds).
  bool IsConnected() const;

 private:
  RoadNetwork() = default;

  void AddEdge(NodeId a, NodeId b, RoadClass cls);

  std::vector<Point> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<std::int32_t>> adjacency_;
};

}  // namespace comove::trajgen

#endif  // COMOVE_TRAJGEN_ROAD_NETWORK_H_
