#ifndef COMOVE_TRAJGEN_BRINKHOFF_GENERATOR_H_
#define COMOVE_TRAJGEN_BRINKHOFF_GENERATOR_H_

#include <cstdint>
#include <string>

#include "trajgen/dataset.h"
#include "trajgen/road_network.h"

/// \file
/// Network-based moving-object generator following Brinkhoff's model [5]:
/// objects appear at network nodes, travel along shortest paths with
/// class-dependent speeds, and report their position every tick. On
/// arrival they either start a new trip or disappear. A configurable share
/// of objects is seeded as co-moving groups so that the dataset contains
/// genuine co-movement patterns; group members occasionally "straggle"
/// away for a few ticks, which produces the gaps that exercise the L and G
/// constraints.

namespace comove::trajgen {

/// Parameters of the Brinkhoff-style generator.
struct BrinkhoffOptions {
  std::string name = "brinkhoff";
  std::int32_t object_count = 1000;  ///< total moving objects
  Timestamp duration = 200;          ///< simulation length in ticks
  double report_prob = 0.95;         ///< per-tick sampling probability
  double speed_jitter = 0.15;        ///< relative per-object speed noise
  double reroute_prob = 0.75;        ///< start a new trip after arrival
  double interval_seconds = 1.0;     ///< discretisation metadata
  bool stagger_entry = true;         ///< ramp independents in over time

  // Seeded co-movement structure.
  std::int32_t group_count = 30;    ///< number of co-moving groups
  std::int32_t group_size = 8;      ///< objects per group (<= object_count)
  double group_jitter = 3.0;        ///< spatial spread within a group
  double straggle_prob = 0.02;      ///< per-tick chance a member drifts off
  std::int32_t straggle_ticks = 3;  ///< how long a straggler stays away
  double straggle_dist = 60.0;      ///< how far a straggler drifts

  RoadNetworkOptions network;
};

/// Generates a Brinkhoff-style dataset (deterministic per seed).
Dataset GenerateBrinkhoff(const BrinkhoffOptions& options,
                          std::uint64_t seed);

/// Taxi-like preset: a denser fleet that never leaves service (trips chain
/// for the whole duration), 5 s sampling metadata, near-complete reporting.
/// Models the shape of the paper's proprietary Hangzhou taxi data.
Dataset GenerateTaxiLike(std::int32_t object_count, Timestamp duration,
                         std::uint64_t seed);

}  // namespace comove::trajgen

#endif  // COMOVE_TRAJGEN_BRINKHOFF_GENERATOR_H_
