#ifndef COMOVE_TRAJGEN_CSV_LOADER_H_
#define COMOVE_TRAJGEN_CSV_LOADER_H_

#include <iosfwd>
#include <string>

#include "trajgen/dataset.h"

/// \file
/// CSV import/export for trajectory datasets, so the library runs on real
/// GPS data (GeoLife exports, fleet logs, ...) and not only on the bundled
/// generators. Format: one record per line, `id,time,x,y`, where id and
/// time are integers (time already discretised - see common/discretizer.h)
/// and x, y are doubles. A header line and `#` comments are tolerated.
/// Records may appear in any order; last_time links are derived on load.

namespace comove::trajgen {

/// Result of a CSV load.
struct CsvLoadResult {
  bool ok = false;
  std::string error;        ///< first parse error (with line number)
  std::size_t skipped = 0;  ///< blank/comment/header lines ignored
};

/// Parses records from `in` into `*dataset` (named `name`).
CsvLoadResult LoadCsvDataset(std::istream& in, const std::string& name,
                             Dataset* dataset);

/// Opens and parses `path`. Fails if the file cannot be opened.
CsvLoadResult LoadCsvDatasetFile(const std::string& path, Dataset* dataset);

/// Writes `dataset` as `id,time,x,y` lines (with a header).
void WriteCsvDataset(const Dataset& dataset, std::ostream& out);

}  // namespace comove::trajgen

#endif  // COMOVE_TRAJGEN_CSV_LOADER_H_
