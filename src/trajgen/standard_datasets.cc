#include "trajgen/standard_datasets.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "trajgen/brinkhoff_generator.h"
#include "trajgen/waypoint_generator.h"

namespace comove::trajgen {

namespace {

std::int32_t Scaled(std::int32_t base, double scale, std::int32_t floor) {
  return std::max(floor,
                  static_cast<std::int32_t>(std::lround(base * scale)));
}

}  // namespace

const char* StandardDatasetName(StandardDataset which) {
  switch (which) {
    case StandardDataset::kGeoLife:
      return "GeoLife";
    case StandardDataset::kTaxi:
      return "Taxi";
    case StandardDataset::kBrinkhoff:
      return "Brinkhoff";
  }
  return "unknown";
}

Dataset MakeStandardDataset(StandardDataset which, double scale,
                            std::uint64_t seed) {
  COMOVE_CHECK(scale > 0.0 && scale <= 1.0);
  switch (which) {
    case StandardDataset::kGeoLife: {
      WaypointOptions options;
      options.name = "GeoLife";
      options.object_count = Scaled(1800, scale, 40);
      options.duration = Scaled(400, scale, 40);
      options.poi_count = Scaled(60, scale, 8);
      options.group_count = Scaled(40, scale, 4);
      options.group_size = 6;
      options.report_prob = 0.9;
      options.interval_seconds = 1.0;
      return GenerateGeoLifeLike(options, seed);
    }
    case StandardDataset::kTaxi: {
      // The densest dataset of the three (Table 2: ~9x the locations of
      // GeoLife for a similar trajectory count).
      return GenerateTaxiLike(Scaled(2000, scale, 40),
                              Scaled(500, scale, 40), seed);
    }
    case StandardDataset::kBrinkhoff: {
      BrinkhoffOptions options;
      options.name = "Brinkhoff";
      options.object_count = Scaled(1000, scale, 40);
      options.duration = Scaled(400, scale, 40);
      options.group_count = Scaled(30, scale, 4);
      options.group_size = 8;
      return GenerateBrinkhoff(options, seed);
    }
  }
  COMOVE_CHECK(false);
  return Dataset{};
}

}  // namespace comove::trajgen
