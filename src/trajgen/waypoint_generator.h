#ifndef COMOVE_TRAJGEN_WAYPOINT_GENERATOR_H_
#define COMOVE_TRAJGEN_WAYPOINT_GENERATOR_H_

#include <cstdint>
#include <string>

#include "trajgen/dataset.h"

/// \file
/// GeoLife-like waypoint generator: people travel between points of
/// interest clustered around a city centre, dwell at each POI, and move
/// with mode-dependent speeds (walk / bike / drive). Trips are sampled at
/// 1 s intervals with dropout, matching the character of the GeoLife data
/// the paper uses (dense centre, mixed modes, 1-5 s sampling). Co-moving
/// groups travel the same POI itinerary together.

namespace comove::trajgen {

/// Parameters of the GeoLife-like generator.
struct WaypointOptions {
  std::string name = "geolife-like";
  std::int32_t object_count = 800;
  Timestamp duration = 200;
  std::int32_t poi_count = 40;
  double city_radius = 1000.0;     ///< spatial scale of the city
  double center_concentration = 0.35;  ///< POIs cluster near the centre
  double report_prob = 0.9;
  Timestamp max_dwell = 10;        ///< ticks spent at a POI
  double interval_seconds = 1.0;

  std::int32_t group_count = 25;
  std::int32_t group_size = 6;
  double group_jitter = 4.0;
};

/// Generates a GeoLife-like dataset (deterministic per seed).
Dataset GenerateGeoLifeLike(const WaypointOptions& options,
                            std::uint64_t seed);

}  // namespace comove::trajgen

#endif  // COMOVE_TRAJGEN_WAYPOINT_GENERATOR_H_
