#include "trajgen/crossing_flows.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace comove::trajgen {

Dataset GenerateCrossingFlows(const CrossingFlowsOptions& options,
                              std::uint64_t seed) {
  COMOVE_CHECK(options.platoons_per_flow > 0 && options.platoon_size > 0);
  COMOVE_CHECK(options.duration > 1 && options.speed > 0.0);
  Rng rng(seed);
  DatasetBuilder builder(options.name);

  // Both flows are centred so the LEAD platoon of each flow reaches the
  // origin at duration/2; later platoons trail by platoon_spacing.
  const double mid = static_cast<double>(options.duration) / 2.0;
  const std::int32_t per_flow =
      options.platoons_per_flow * options.platoon_size;

  for (int flow = 0; flow < 2; ++flow) {
    for (std::int32_t platoon = 0; platoon < options.platoons_per_flow;
         ++platoon) {
      // Per-member fixed offsets keep the platoon rigid (pure co-movement).
      for (std::int32_t member = 0; member < options.platoon_size;
           ++member) {
        const TrajectoryId id = static_cast<TrajectoryId>(
            flow * per_flow + platoon * options.platoon_size + member);
        const double lane =
            rng.Uniform(-options.lane_jitter, options.lane_jitter);
        const double along_offset =
            rng.Uniform(-options.lane_jitter, options.lane_jitter) -
            static_cast<double>(platoon) * options.platoon_spacing;
        for (Timestamp t = 0; t < options.duration; ++t) {
          if (!rng.Bernoulli(options.report_prob)) continue;
          const double along =
              (static_cast<double>(t) - mid) * options.speed + along_offset;
          const Point p = flow == 0 ? Point{along, lane}
                                    : Point{lane, along};
          builder.Add(id, t, p);
        }
      }
    }
  }
  return builder.Finalize();
}

Timestamp CrossingWindowTicks(const CrossingFlowsOptions& options,
                              double eps) {
  // A flow-A object sits at (s(t - mid) + a, lane); a flow-B object at
  // (lane', s(t - mid) + a'). Their L1 distance is at least
  // |s(t - mid) + a - lane'|, which exceeds eps once the along-coordinate
  // leaves [-(eps + slack), eps + slack]; slack covers lane jitter and
  // platoon offsets of the LEAD platoons (trailing platoons cross later
  // but for an equally long window). Window length in ticks:
  const double slack = 2.0 * options.lane_jitter;
  return static_cast<Timestamp>(
             std::ceil(2.0 * (eps + slack) / options.speed)) +
         1;
}

}  // namespace comove::trajgen
