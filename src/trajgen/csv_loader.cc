#include "trajgen/csv_loader.h"

#include <cctype>
#include <charconv>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

namespace comove::trajgen {

namespace {

/// Splits one CSV line into exactly four trimmed fields; empty optional on
/// structural mismatch.
bool SplitFields(std::string_view line, std::string_view out[4]) {
  int field = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      if (field >= 4) return false;
      std::string_view token = line.substr(start, i - start);
      while (!token.empty() && std::isspace(
                 static_cast<unsigned char>(token.front()))) {
        token.remove_prefix(1);
      }
      while (!token.empty() &&
             std::isspace(static_cast<unsigned char>(token.back()))) {
        token.remove_suffix(1);
      }
      out[field++] = token;
      start = i + 1;
    }
  }
  return field == 4;
}

bool ParseInt(std::string_view s, std::int64_t* out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end && !s.empty();
}

bool ParseDouble(std::string_view s, double* out) {
  // std::from_chars for doubles is not universally available; strtod on a
  // bounded copy keeps this portable.
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* endptr = nullptr;
  *out = std::strtod(buf, &endptr);
  return endptr == buf + s.size();
}

}  // namespace

CsvLoadResult LoadCsvDataset(std::istream& in, const std::string& name,
                             Dataset* dataset) {
  CsvLoadResult result;
  DatasetBuilder builder(name);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Skip blanks and comments.
    std::string_view view = line;
    while (!view.empty() &&
           std::isspace(static_cast<unsigned char>(view.front()))) {
      view.remove_prefix(1);
    }
    if (view.empty() || view.front() == '#') {
      ++result.skipped;
      continue;
    }
    std::string_view fields[4];
    if (!SplitFields(view, fields)) {
      result.error = "line " + std::to_string(line_number) +
                     ": expected 4 comma-separated fields";
      return result;
    }
    std::int64_t id = 0;
    std::int64_t time = 0;
    double x = 0.0;
    double y = 0.0;
    if (!ParseInt(fields[0], &id) || !ParseInt(fields[1], &time)) {
      // Tolerate one header line (non-numeric first fields).
      if (line_number == 1 + result.skipped) {
        ++result.skipped;
        continue;
      }
      result.error = "line " + std::to_string(line_number) +
                     ": id/time must be integers";
      return result;
    }
    if (!ParseDouble(fields[2], &x) || !ParseDouble(fields[3], &y)) {
      result.error = "line " + std::to_string(line_number) +
                     ": x/y must be numbers";
      return result;
    }
    if (time < 0) {
      result.error = "line " + std::to_string(line_number) +
                     ": discretised time must be non-negative";
      return result;
    }
    builder.Add(static_cast<TrajectoryId>(id),
                static_cast<Timestamp>(time), Point{x, y});
  }
  *dataset = builder.Finalize();
  result.ok = true;
  return result;
}

CsvLoadResult LoadCsvDatasetFile(const std::string& path,
                                 Dataset* dataset) {
  std::ifstream in(path);
  if (!in) {
    CsvLoadResult result;
    result.error = "cannot open " + path;
    return result;
  }
  // Dataset name = file basename.
  const std::size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return LoadCsvDataset(in, name, dataset);
}

void WriteCsvDataset(const Dataset& dataset, std::ostream& out) {
  out << "# id,time,x,y\n";
  for (const GpsRecord& r : dataset.records) {
    out << r.id << ',' << r.time << ',' << r.location.x << ','
        << r.location.y << '\n';
  }
}

}  // namespace comove::trajgen
