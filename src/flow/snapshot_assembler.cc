#include "flow/snapshot_assembler.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace comove::flow {

namespace {
constexpr Timestamp kMaxTime = std::numeric_limits<Timestamp>::max();
}  // namespace

std::vector<Snapshot> SnapshotAssembler::OnRecord(const GpsRecord& record) {
  COMOVE_CHECK(!finished_);
  COMOVE_CHECK_MSG(record.time > record.last_time,
                   "record time must exceed its last_time link");
  TrajectoryState& state = trajectories_[record.id];
  COMOVE_CHECK_MSG(!state.ended, "record after trajectory end (id=%lld)",
                   static_cast<long long>(record.id));

  if (record.last_time != state.last_seen) {
    // Predecessor missing: buffer until the chain closes. Records strictly
    // older than what we already applied are duplicates/corrupt; drop them.
    if (record.time > state.last_seen) {
      auto [it, inserted] = state.pending.emplace(record.last_time, record);
      if (inserted) ++pending_count_;
    }
    return {};
  }

  // Apply the record and any buffered successors it unblocks.
  const bool newly_seen = state.last_seen == kNoTime;
  if (!newly_seen) {
    live_horizons_.erase(live_horizons_.find(state.last_seen));
  }
  Apply(record, &state);
  auto it = state.pending.find(state.last_seen);
  while (it != state.pending.end()) {
    const GpsRecord next = it->second;
    state.pending.erase(it);
    --pending_count_;
    Apply(next, &state);
    it = state.pending.find(state.last_seen);
  }
  live_horizons_.insert(state.last_seen);
  return Drain();
}

void SnapshotAssembler::Apply(const GpsRecord& record,
                              TrajectoryState* state) {
  state->last_seen = record.time;
  accumulating_[record.time].push_back(
      SnapshotEntry{record.id, record.location});
}

std::vector<Snapshot> SnapshotAssembler::OnTrajectoryEnd(TrajectoryId id) {
  COMOVE_CHECK(!finished_);
  auto it = trajectories_.find(id);
  if (it == trajectories_.end()) {
    // End of a trajectory we never saw: remember so late records fail fast.
    TrajectoryState& state = trajectories_[id];
    state.ended = true;
    return Drain();
  }
  TrajectoryState& state = it->second;
  if (!state.ended && state.last_seen != kNoTime) {
    live_horizons_.erase(live_horizons_.find(state.last_seen));
  }
  state.ended = true;
  COMOVE_CHECK_MSG(state.pending.empty(),
                   "trajectory %lld ended with unresolved out-of-order records",
                   static_cast<long long>(id));
  return Drain();
}

std::vector<Snapshot> SnapshotAssembler::AdvanceBirthBound(Timestamp t) {
  COMOVE_CHECK(!finished_);
  birth_bound_ = std::max(birth_bound_, t);
  return Drain();
}

Timestamp SnapshotAssembler::Horizon() const {
  // Snapshot t is complete when (a) no new trajectory can be born at <= t,
  // and (b) every live trajectory's knowledge frontier has passed t.
  Timestamp horizon = birth_bound_;
  if (!live_horizons_.empty()) {
    horizon = std::min(horizon, *live_horizons_.begin());
  }
  return horizon;
}

std::vector<Snapshot> SnapshotAssembler::Drain() {
  std::vector<Snapshot> out;
  const Timestamp horizon = finished_ ? kMaxTime : Horizon();
  while (!accumulating_.empty() &&
         accumulating_.begin()->first <= horizon) {
    Snapshot snap;
    snap.time = accumulating_.begin()->first;
    snap.entries = std::move(accumulating_.begin()->second);
    std::sort(snap.entries.begin(), snap.entries.end(),
              [](const SnapshotEntry& a, const SnapshotEntry& b) {
                return a.id < b.id;
              });
    accumulating_.erase(accumulating_.begin());
    emitted_through_ = snap.time;
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<Snapshot> SnapshotAssembler::Finish() {
  COMOVE_CHECK(!finished_);
  // Best-effort recovery: apply surviving out-of-order records in time
  // order even though their chains never closed (data loss upstream).
  std::vector<GpsRecord> leftovers;
  for (auto& [id, state] : trajectories_) {
    for (auto& [last, rec] : state.pending) leftovers.push_back(rec);
    state.pending.clear();
  }
  pending_count_ = 0;
  std::sort(leftovers.begin(), leftovers.end(),
            [](const GpsRecord& a, const GpsRecord& b) {
              return a.time < b.time;
            });
  for (const GpsRecord& rec : leftovers) {
    TrajectoryState& state = trajectories_[rec.id];
    if (rec.time > state.last_seen) {
      state.last_seen = rec.time;
      accumulating_[rec.time].push_back(SnapshotEntry{rec.id, rec.location});
    }
  }
  finished_ = true;
  return Drain();
}

}  // namespace comove::flow

namespace comove::flow {

void SnapshotAssembler::SaveState(BinaryWriter* writer) const {
  writer->WriteI32(birth_bound_);
  writer->WriteI32(emitted_through_);
  writer->WriteBool(finished_);
  writer->WriteU64(trajectories_.size());
  for (const auto& [id, state] : trajectories_) {
    writer->WriteI64(id);
    writer->WriteI32(state.last_seen);
    writer->WriteBool(state.ended);
    writer->WriteU64(state.pending.size());
    for (const auto& [last, record] : state.pending) {
      writer->WriteI64(record.id);
      writer->WriteDouble(record.location.x);
      writer->WriteDouble(record.location.y);
      writer->WriteI32(record.time);
      writer->WriteI32(record.last_time);
    }
  }
  writer->WriteU64(accumulating_.size());
  for (const auto& [time, entries] : accumulating_) {
    writer->WriteI32(time);
    writer->WriteU64(entries.size());
    for (const SnapshotEntry& e : entries) {
      writer->WriteI64(e.id);
      writer->WriteDouble(e.location.x);
      writer->WriteDouble(e.location.y);
    }
  }
}

bool SnapshotAssembler::RestoreState(BinaryReader* reader) {
  *this = SnapshotAssembler();
  birth_bound_ = reader->ReadI32();
  emitted_through_ = reader->ReadI32();
  finished_ = reader->ReadBool();
  const std::uint64_t trajectory_count = reader->ReadU64();
  for (std::uint64_t i = 0; i < trajectory_count && reader->ok(); ++i) {
    const TrajectoryId id = reader->ReadI64();
    TrajectoryState state;
    state.last_seen = reader->ReadI32();
    state.ended = reader->ReadBool();
    const std::uint64_t pending_count = reader->ReadU64();
    for (std::uint64_t pi = 0; pi < pending_count && reader->ok(); ++pi) {
      GpsRecord record;
      record.id = reader->ReadI64();
      record.location.x = reader->ReadDouble();
      record.location.y = reader->ReadDouble();
      record.time = reader->ReadI32();
      record.last_time = reader->ReadI32();
      state.pending.emplace(record.last_time, record);
      ++pending_count_;
    }
    if (!state.ended && state.last_seen != kNoTime) {
      live_horizons_.insert(state.last_seen);
    }
    trajectories_.emplace(id, std::move(state));
  }
  const std::uint64_t snapshot_count = reader->ReadU64();
  for (std::uint64_t i = 0; i < snapshot_count && reader->ok(); ++i) {
    const Timestamp time = reader->ReadI32();
    const std::uint64_t entry_count = reader->ReadU64();
    std::vector<SnapshotEntry> entries;
    for (std::uint64_t e = 0; e < entry_count && reader->ok(); ++e) {
      SnapshotEntry entry;
      entry.id = reader->ReadI64();
      entry.location.x = reader->ReadDouble();
      entry.location.y = reader->ReadDouble();
      entries.push_back(entry);
    }
    accumulating_.emplace(time, std::move(entries));
  }
  if (!reader->ok()) {
    *this = SnapshotAssembler();
    return false;
  }
  return true;
}

}  // namespace comove::flow
