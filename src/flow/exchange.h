#ifndef COMOVE_FLOW_EXCHANGE_H_
#define COMOVE_FLOW_EXCHANGE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.h"
#include "flow/channel.h"
#include "flow/element.h"
#include "flow/net/transport.h"
#include "flow/trace.h"

/// \file
/// The data exchange between two stages: every producer subtask can reach
/// every consumer subtask. Data elements are routed to one consumer (by an
/// explicit partition, normally hash(key) % consumers); watermarks are
/// broadcast to all consumers so each can align over all producers. This
/// reproduces Flink's keyBy/hash-partitioned network shuffle.
///
/// Per-element Send pays one channel lock round-trip per record. For hot
/// exchanges, wrap the producer side in a BatchingSender: it accumulates
/// records per destination partition and ships each buffer with a single
/// Channel::PushBatch, mirroring Flink's buffer-oriented network transfer
/// (records fill a network buffer, which is flushed on size, timeout, or
/// checkpoint barrier - here: size, watermark, or close).

namespace comove::flow {

/// An all-to-all exchange of Element<T> between `producers` upstream
/// subtasks and `consumers` downstream subtasks: the in-process
/// Transport implementation (and the default - see flow/net/transport.h
/// for the seam and the socket implementation behind it).
///
/// When a StageStats is supplied, every consumer channel reports into it,
/// so the stats aggregate the whole exchange: pushed/popped record and
/// watermark counts, current/max total queue depth, and cumulative
/// blocked-time split into backpressure (Push) and starvation (Pop).
template <typename T>
class Exchange final : public Transport<T> {
 public:
  Exchange(std::int32_t producers, std::int32_t consumers,
           std::size_t capacity_per_channel = 256,
           StageStats* stats = nullptr)
      : producers_(producers), consumers_(consumers) {
    COMOVE_CHECK(producers > 0 && consumers > 0);
    channels_.reserve(static_cast<std::size_t>(consumers));
    for (std::int32_t c = 0; c < consumers; ++c) {
      channels_.push_back(std::make_unique<Channel<Element<T>>>(
          capacity_per_channel, stats));
      for (std::int32_t p = 0; p < producers; ++p) {
        channels_.back()->RegisterProducer();
      }
    }
  }

  std::int32_t producers() const override { return producers_; }
  std::int32_t consumers() const override { return consumers_; }

  /// Sends a data element from `producer` to consumer subtask `partition`.
  void Send(std::int32_t producer, std::size_t partition,
            T value) override {
    COMOVE_CHECK(partition < channels_.size());
    channels_[partition]->Push(
        Element<T>::Data(std::move(value), producer));
  }

  /// Ships a pre-built element batch to one consumer with a single
  /// Channel::PushBatch (one lock round-trip); the batch is drained in
  /// place so the caller reuses its capacity.
  void PushBatch(std::int32_t /*producer*/, std::size_t partition,
                 std::vector<Element<T>>&& batch) override {
    COMOVE_CHECK(partition < channels_.size());
    channels_[partition]->PushBatch(std::move(batch));
  }

  /// Broadcasts a data element from `producer` to every consumer.
  void BroadcastData(std::int32_t producer, const T& value) {
    for (auto& ch : channels_) {
      ch->Push(Element<T>::Data(value, producer));
    }
  }

  /// Broadcasts watermark `t` from `producer` to every consumer.
  void BroadcastWatermark(std::int32_t producer, Timestamp t) override {
    for (auto& ch : channels_) {
      ch->Push(Element<T>::Watermark(t, producer));
    }
  }

  /// Broadcasts checkpoint barrier `checkpoint` from `producer` to every
  /// consumer. Everything this producer sent before the barrier belongs
  /// to the checkpoint's pre-image on every channel (FIFO per producer).
  void BroadcastBarrier(std::int32_t producer,
                        std::int64_t checkpoint) override {
    for (auto& ch : channels_) {
      ch->Push(Element<T>::Barrier(checkpoint, producer));
    }
  }

  /// Marks `producer` as finished on every consumer channel.
  void CloseProducer(std::int32_t /*producer*/) override {
    for (auto& ch : channels_) ch->CloseProducer();
  }

  /// Cancels every consumer channel (crash teardown; see Channel::Cancel).
  void Cancel() override {
    for (auto& ch : channels_) ch->Cancel();
  }

  /// The input channel of consumer subtask `consumer`.
  Channel<Element<T>>& channel(std::int32_t consumer) override {
    return *channels_.at(static_cast<std::size_t>(consumer));
  }

 private:
  std::int32_t producers_;
  std::int32_t consumers_;
  std::vector<std::unique_ptr<Channel<Element<T>>>> channels_;
};

/// Producer-side batching façade over one Transport edge, owned by exactly one
/// producer subtask (not thread-safe; make one per producer). Data records
/// accumulate per destination partition and are flushed as a single
/// batched push when a partition reaches `batch_size`, when a watermark is
/// broadcast (pending data must precede the watermark on every channel for
/// the watermark contract to hold), or on Close. Per-producer FIFO order
/// is therefore preserved exactly as with unbatched Send, and watermark
/// alignment latency is unchanged - a watermark never waits on a partial
/// buffer.
///
/// With `batch_size` <= 1 every call forwards straight to the unbatched
/// Exchange path, so a pipeline can be configured back to per-element
/// transfer for comparison without touching the call sites.
template <typename T>
class BatchingSender {
 public:
  /// `trace`, when non-null, records one "flush" span per shipped batch
  /// (subtask = producer, aux = batch size) under `trace_name` - by
  /// convention the destination the batches feed, e.g. "partitions".
  BatchingSender(Transport<T>& transport, std::int32_t producer,
                 std::size_t batch_size, TraceRecorder* trace = nullptr,
                 const char* trace_name = "flush")
      : transport_(&transport),
        producer_(producer),
        batch_size_(batch_size),
        trace_(trace),
        trace_name_(trace_name),
        pending_(static_cast<std::size_t>(transport.consumers())) {}

  BatchingSender(const BatchingSender&) = delete;
  BatchingSender& operator=(const BatchingSender&) = delete;

  /// Buffers a data record for consumer subtask `partition`; ships the
  /// partition's buffer when it reaches the batch size.
  void Send(std::size_t partition, T value) {
    if (batch_size_ <= 1) {
      transport_->Send(producer_, partition, std::move(value));
      return;
    }
    COMOVE_CHECK(partition < pending_.size());
    std::vector<Element<T>>& buffer = pending_[partition];
    buffer.push_back(Element<T>::Data(std::move(value), producer_));
    if (buffer.size() >= batch_size_) {
      // PushBatch drains the buffer in place, so its capacity is reused
      // for the next batch - steady state allocates nothing.
      Ship(partition, buffer);
    }
  }

  /// Flushes all pending data, then broadcasts watermark `t`.
  void BroadcastWatermark(Timestamp t) {
    FlushAll();
    transport_->BroadcastWatermark(producer_, t);
  }

  /// Flushes all pending data, then broadcasts checkpoint barrier
  /// `checkpoint` - pending records precede the barrier on every channel,
  /// so they stay inside the checkpoint's pre-image.
  void BroadcastBarrier(std::int64_t checkpoint) {
    FlushAll();
    transport_->BroadcastBarrier(producer_, checkpoint);
  }

  /// Ships every non-empty partition buffer now.
  void FlushAll() {
    for (std::size_t c = 0; c < pending_.size(); ++c) {
      if (!pending_[c].empty()) Ship(c, pending_[c]);
    }
  }

  /// Flushes pending data and closes this producer on the exchange.
  void Close() {
    FlushAll();
    transport_->CloseProducer(producer_);
  }

  std::size_t batch_size() const { return batch_size_; }

 private:
  /// Single flush path: push the buffer, tracing the span (including any
  /// backpressure blocking inside PushBatch) when tracing is on.
  void Ship(std::size_t partition, std::vector<Element<T>>& buffer) {
    const std::int64_t n = static_cast<std::int64_t>(buffer.size());
    const std::uint64_t start_ns = trace_ != nullptr ? trace_->NowNs() : 0;
    transport_->PushBatch(producer_, partition, std::move(buffer));
    if (trace_ != nullptr) {
      trace_->RecordSpanSince("flush", trace_name_, producer_, kNoTime,
                              start_ns, n);
    }
  }

  Transport<T>* transport_;
  std::int32_t producer_;
  std::size_t batch_size_;
  TraceRecorder* trace_;
  const char* trace_name_;
  std::vector<std::vector<Element<T>>> pending_;  ///< one per partition
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_EXCHANGE_H_
