#ifndef COMOVE_FLOW_EXCHANGE_H_
#define COMOVE_FLOW_EXCHANGE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.h"
#include "flow/channel.h"
#include "flow/element.h"

/// \file
/// The data exchange between two stages: every producer subtask can reach
/// every consumer subtask. Data elements are routed to one consumer (by an
/// explicit partition, normally hash(key) % consumers); watermarks are
/// broadcast to all consumers so each can align over all producers. This
/// reproduces Flink's keyBy/hash-partitioned network shuffle.

namespace comove::flow {

/// An all-to-all exchange of Element<T> between `producers` upstream
/// subtasks and `consumers` downstream subtasks.
///
/// When a StageStats is supplied, every consumer channel reports into it,
/// so the stats aggregate the whole exchange: pushed/popped record and
/// watermark counts, current/max total queue depth, and cumulative
/// blocked-time split into backpressure (Push) and starvation (Pop).
template <typename T>
class Exchange {
 public:
  Exchange(std::int32_t producers, std::int32_t consumers,
           std::size_t capacity_per_channel = 256,
           StageStats* stats = nullptr)
      : producers_(producers), consumers_(consumers) {
    COMOVE_CHECK(producers > 0 && consumers > 0);
    channels_.reserve(static_cast<std::size_t>(consumers));
    for (std::int32_t c = 0; c < consumers; ++c) {
      channels_.push_back(std::make_unique<Channel<Element<T>>>(
          capacity_per_channel, stats));
      for (std::int32_t p = 0; p < producers; ++p) {
        channels_.back()->RegisterProducer();
      }
    }
  }

  std::int32_t producers() const { return producers_; }
  std::int32_t consumers() const { return consumers_; }

  /// Sends a data element from `producer` to consumer subtask `partition`.
  void Send(std::int32_t producer, std::size_t partition, T value) {
    COMOVE_CHECK(partition < channels_.size());
    channels_[partition]->Push(
        Element<T>::Data(std::move(value), producer));
  }

  /// Broadcasts a data element from `producer` to every consumer.
  void BroadcastData(std::int32_t producer, const T& value) {
    for (auto& ch : channels_) {
      ch->Push(Element<T>::Data(value, producer));
    }
  }

  /// Broadcasts watermark `t` from `producer` to every consumer.
  void BroadcastWatermark(std::int32_t producer, Timestamp t) {
    for (auto& ch : channels_) {
      ch->Push(Element<T>::Watermark(t, producer));
    }
  }

  /// Marks `producer` as finished on every consumer channel.
  void CloseProducer(std::int32_t /*producer*/) {
    for (auto& ch : channels_) ch->CloseProducer();
  }

  /// The input channel of consumer subtask `consumer`.
  Channel<Element<T>>& channel(std::int32_t consumer) {
    return *channels_.at(static_cast<std::size_t>(consumer));
  }

 private:
  std::int32_t producers_;
  std::int32_t consumers_;
  std::vector<std::unique_ptr<Channel<Element<T>>>> channels_;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_EXCHANGE_H_
