#ifndef COMOVE_FLOW_WATERMARK_ALIGNER_H_
#define COMOVE_FLOW_WATERMARK_ALIGNER_H_

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/serde.h"
#include "common/types.h"

/// \file
/// Watermark alignment across multiple producers feeding one subtask. The
/// aligned watermark is the minimum of the per-producer watermarks; it only
/// advances when the slowest producer advances.

namespace comove::flow {

/// Tracks per-producer watermarks and reports advances of their minimum.
class WatermarkAligner {
 public:
  explicit WatermarkAligner(std::int32_t producer_count)
      : marks_(static_cast<std::size_t>(producer_count),
               std::numeric_limits<Timestamp>::min()) {
    COMOVE_CHECK(producer_count > 0);
  }

  /// Records watermark `t` from `producer`. Returns the new aligned
  /// watermark when the alignment advanced, nullopt otherwise.
  std::optional<Timestamp> Update(std::int32_t producer, Timestamp t) {
    COMOVE_CHECK_MSG(
        producer >= 0 &&
            static_cast<std::size_t>(producer) < marks_.size(),
        "watermark from producer %d but aligner tracks only [0, %d)",
        producer, static_cast<int>(marks_.size()));
    auto& mark = marks_[static_cast<std::size_t>(producer)];
    mark = std::max(mark, t);
    const Timestamp aligned = *std::min_element(marks_.begin(), marks_.end());
    if (aligned > aligned_) {
      aligned_ = aligned;
      return aligned_;
    }
    return std::nullopt;
  }

  /// Current aligned watermark (min over producers); Timestamp::min until
  /// every producer has reported at least once.
  Timestamp aligned() const { return aligned_; }

  /// Serialises the per-producer marks and the aligned watermark.
  void SaveState(BinaryWriter* writer) const {
    writer->WriteIntVector(marks_);
    writer->WriteI64(aligned_);
  }

  /// Restores a SaveState image. Returns false - leaving this aligner
  /// unchanged - on corrupt input or a producer-count mismatch.
  [[nodiscard]] bool RestoreState(BinaryReader* reader) {
    auto marks = reader->ReadIntVector<Timestamp>();
    const auto aligned = static_cast<Timestamp>(reader->ReadI64());
    if (!reader->ok() || marks.size() != marks_.size()) return false;
    marks_ = std::move(marks);
    aligned_ = aligned;
    return true;
  }

 private:
  std::vector<Timestamp> marks_;
  Timestamp aligned_ = std::numeric_limits<Timestamp>::min();
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_WATERMARK_ALIGNER_H_
