#ifndef COMOVE_FLOW_CHANNEL_H_
#define COMOVE_FLOW_CHANNEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "common/check.h"

/// \file
/// A bounded multi-producer multi-consumer channel: the pipelined transfer
/// primitive of the stream engine. Bounded capacity gives backpressure
/// exactly as Flink's pipelined network buffers do - a slow consumer stalls
/// its producers instead of buffering unboundedly.

namespace comove::flow {

/// Blocking bounded MPMC FIFO. Producers must be registered so the channel
/// knows when the stream is finished: once every registered producer has
/// called CloseProducer() and the queue drains, Pop() returns nullopt.
template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    COMOVE_CHECK(capacity > 0);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Declares one more producer. Must be called before that producer's
  /// first Push and balanced by CloseProducer.
  void RegisterProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ++producers_;
  }

  /// Signals that one producer is done. When the last producer closes, all
  /// blocked consumers wake and drain.
  void CloseProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    COMOVE_CHECK(producers_ > 0);
    if (--producers_ == 0) not_empty_.notify_all();
  }

  /// Blocks while the channel is full; FIFO per producer.
  void Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
  }

  /// Blocks until an element is available or the channel is finished.
  /// Returns nullopt exactly when all producers closed and the queue is
  /// empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || producers_ == 0; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop; nullopt when currently empty (stream may continue).
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// True when all producers have closed (the queue may still hold data).
  bool finished_producing() const {
    std::lock_guard<std::mutex> lock(mu_);
    return producers_ == 0;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  int producers_ = 0;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_CHANNEL_H_
