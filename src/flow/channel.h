#ifndef COMOVE_FLOW_CHANNEL_H_
#define COMOVE_FLOW_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "common/check.h"
#include "flow/stage_stats.h"

/// \file
/// A bounded multi-producer multi-consumer channel: the pipelined transfer
/// primitive of the stream engine. Bounded capacity gives backpressure
/// exactly as Flink's pipelined network buffers do - a slow consumer stalls
/// its producers instead of buffering unboundedly.

namespace comove::flow {

/// Outcome of a non-blocking poll, distinguishing a momentarily empty
/// queue (the stream may continue) from a finished stream. The two states
/// must be reported under one lock: a separate empty-then-finished probe
/// races with a producer pushing in between, making a poller spin or quit
/// early.
enum class PollResult : std::uint8_t {
  kItem,      ///< an element was dequeued
  kEmpty,     ///< queue empty but producers remain - poll again later
  kFinished,  ///< all producers closed and the queue is drained
};

/// Blocking bounded MPMC FIFO. Producers must be registered so the channel
/// knows when the stream is finished: once every registered producer has
/// called CloseProducer() and the queue drains, Pop() returns nullopt.
///
/// An optional StageStats receives per-element counters plus blocked-time
/// accounting; with a null stats pointer (the default) the hot path pays
/// only untaken branches and never reads a clock.
template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity, StageStats* stats = nullptr)
      : capacity_(capacity), stats_(stats) {
    COMOVE_CHECK(capacity > 0);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Declares one more producer. Must be called before that producer's
  /// first Push and balanced by CloseProducer.
  void RegisterProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ++producers_;
  }

  /// Signals that one producer is done. When the last producer closes, all
  /// blocked consumers wake and drain.
  void CloseProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    COMOVE_CHECK(producers_ > 0);
    if (--producers_ == 0) not_empty_.notify_all();
  }

  /// Blocks while the channel is full; FIFO per producer.
  void Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    std::uint64_t blocked_ns = 0;
    if (queue_.size() >= capacity_) {
      if (stats_ == nullptr) {
        not_full_.wait(lock, [&] { return queue_.size() < capacity_; });
      } else {
        const auto start = std::chrono::steady_clock::now();
        not_full_.wait(lock, [&] { return queue_.size() < capacity_; });
        blocked_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
      }
    }
    if (stats_ != nullptr) stats_->OnPush(IsWatermark(value), blocked_ns);
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
  }

  /// Blocks until an element is available or the channel is finished.
  /// Returns nullopt exactly when all producers closed and the queue is
  /// empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    std::uint64_t blocked_ns = 0;
    if (queue_.empty() && producers_ > 0) {
      if (stats_ == nullptr) {
        not_empty_.wait(lock,
                        [&] { return !queue_.empty() || producers_ == 0; });
      } else {
        const auto start = std::chrono::steady_clock::now();
        not_empty_.wait(lock,
                        [&] { return !queue_.empty() || producers_ == 0; });
        blocked_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
      }
    }
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    if (stats_ != nullptr) stats_->OnPop(IsWatermark(value), blocked_ns);
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking poll. On kItem the element is moved into `out`; kEmpty
  /// and kFinished leave `out` untouched. The finished check shares the
  /// queue lock with the dequeue, so a kFinished result is authoritative:
  /// nothing can arrive afterwards.
  PollResult TryPop(T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return producers_ == 0 ? PollResult::kFinished : PollResult::kEmpty;
    }
    out = std::move(queue_.front());
    queue_.pop_front();
    if (stats_ != nullptr) stats_->OnPop(IsWatermark(out), 0);
    not_full_.notify_one();
    return PollResult::kItem;
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// True when all producers have closed (the queue may still hold data).
  bool finished_producing() const {
    std::lock_guard<std::mutex> lock(mu_);
    return producers_ == 0;
  }

 private:
  /// Watermark/data split for stats: payloads exposing is_watermark()
  /// (Element<T>) are classified, anything else counts as a record.
  static bool IsWatermark(const T& value) {
    if constexpr (requires { value.is_watermark(); }) {
      return value.is_watermark();
    } else {
      (void)value;
      return false;
    }
  }

  const std::size_t capacity_;
  StageStats* const stats_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  int producers_ = 0;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_CHANNEL_H_
