#ifndef COMOVE_FLOW_CHANNEL_H_
#define COMOVE_FLOW_CHANNEL_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/check.h"
#include "flow/stage_stats.h"

/// \file
/// A bounded multi-producer multi-consumer channel: the pipelined transfer
/// primitive of the stream engine. Bounded capacity gives backpressure
/// exactly as Flink's pipelined network buffers do - a slow consumer stalls
/// its producers instead of buffering unboundedly.
///
/// Transfer comes in two granularities. Push/Pop move one element per lock
/// round-trip; PushBatch/PopBatch move a whole buffer under a single lock
/// acquisition, amortising the mutex and condvar cost across the batch the
/// way Flink ships records in network buffers rather than one at a time.
/// Both granularities interoperate freely on one channel and preserve
/// per-producer FIFO order.

namespace comove::flow {

/// Outcome of a non-blocking poll, distinguishing a momentarily empty
/// queue (the stream may continue) from a finished stream. The two states
/// must be reported under one lock: a separate empty-then-finished probe
/// races with a producer pushing in between, making a poller spin or quit
/// early.
enum class PollResult : std::uint8_t {
  kItem,      ///< an element was dequeued
  kEmpty,     ///< queue empty but producers remain - poll again later
  kFinished,  ///< all producers closed and the queue is drained
};

/// Blocking bounded MPMC FIFO. Producers must be registered so the channel
/// knows when the stream is finished: once every registered producer has
/// called CloseProducer() and the queue drains, Pop() returns nullopt.
///
/// An optional StageStats receives per-element counters plus blocked-time
/// accounting; with a null stats pointer (the default) the hot path pays
/// only untaken branches and never reads a clock.
///
/// Wakeups are edge-triggered and cheap: waiters are counted, so a push
/// or pop that nobody waits for performs no condvar call at all, and
/// notifications happen after the mutex is released - a woken thread
/// never immediately blocks on the lock its waker still holds.
template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity, StageStats* stats = nullptr)
      : capacity_(capacity), stats_(stats) {
    COMOVE_CHECK(capacity > 0);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Declares one more producer. Must be called before that producer's
  /// first Push and balanced by CloseProducer.
  void RegisterProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ++producers_;
  }

  /// Signals that one producer is done. When the last producer closes, all
  /// blocked consumers wake and drain.
  void CloseProducer() {
    bool wake = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      COMOVE_CHECK(producers_ > 0);
      wake = --producers_ == 0 && waiting_consumers_ > 0;
    }
    if (wake) not_empty_.notify_all();
  }

  /// Kills the channel: wakes every blocked producer and consumer, drops
  /// the queued elements, and makes all further traffic a no-op (pushes
  /// are discarded, pops report a finished stream). Used to simulate a
  /// crash - a cancelled pipeline unwinds without deadlocking on
  /// backpressure, exactly like a failed TaskManager tearing down its
  /// network stack. Irreversible.
  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
      queue_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// True once Cancel() has been called.
  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
  }

  /// Blocks while the channel is full; FIFO per producer.
  void Push(T value) {
    bool wake = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      std::uint64_t blocked_ns = 0;
      if (queue_.size() >= capacity_ && !cancelled_) {
        blocked_ns = WaitNotFull(lock);
      }
      if (cancelled_) return;
      if (stats_ != nullptr) {
        if (IsBarrier(value)) {
          stats_->OnBarriersPushed(1);
          if (blocked_ns > 0) stats_->OnPushBlocked(blocked_ns);
        } else {
          const bool is_watermark = IsWatermark(value);
          stats_->OnPush(is_watermark, blocked_ns);
          if (is_watermark) stats_->OnWatermarkValue(WatermarkOf(value));
        }
        stats_->OnBatchPushed(1);
      }
      queue_.push_back(std::move(value));
      wake = waiting_consumers_ > 0;
    }
    if (wake) not_empty_.notify_one();
  }

  /// Pushes every element of `batch` in order under (normally) one lock
  /// acquisition, clearing `batch`. Keeps the Push contract: FIFO per
  /// producer, and backpressure - when the batch exceeds the free
  /// capacity the call blocks and transfers in chunks as consumers drain,
  /// so a batch larger than the whole channel still goes through.
  void PushBatch(std::vector<T>&& batch) {
    if (batch.empty()) return;
    bool wake = false;
    bool wake_all = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      std::size_t i = 0;
      while (i < batch.size() && !cancelled_) {
        if (queue_.size() >= capacity_) {
          // Chunked hand-off: consumers must see what is already queued
          // before this producer sleeps, or both sides would wait forever.
          if (waiting_consumers_ > 0) not_empty_.notify_all();
          const std::uint64_t blocked_ns = WaitNotFull(lock);
          if (stats_ != nullptr && blocked_ns > 0) {
            stats_->OnPushBlocked(blocked_ns);
          }
          if (cancelled_) break;
        }
        const std::size_t n =
            std::min(capacity_ - queue_.size(), batch.size() - i);
        std::int64_t watermarks = 0;
        std::int64_t barriers = 0;
        for (std::size_t k = 0; k < n; ++k, ++i) {
          if (stats_ != nullptr) {
            if (IsBarrier(batch[i])) {
              ++barriers;
            } else if (IsWatermark(batch[i])) {
              ++watermarks;
              stats_->OnWatermarkValue(WatermarkOf(batch[i]));
            }
          }
          queue_.push_back(std::move(batch[i]));
        }
        if (stats_ != nullptr) {
          stats_->OnPushN(static_cast<std::int64_t>(n) - watermarks -
                              barriers,
                          watermarks);
          stats_->OnBarriersPushed(barriers);
        }
      }
      if (cancelled_) {
        batch.clear();
        return;
      }
      if (stats_ != nullptr) stats_->OnBatchPushed(batch.size());
      wake = waiting_consumers_ > 0;
      wake_all = batch.size() > 1;
    }
    if (wake) {
      if (wake_all) {
        not_empty_.notify_all();
      } else {
        not_empty_.notify_one();
      }
    }
    batch.clear();
  }

  /// Blocks until an element is available or the channel is finished.
  /// Returns nullopt exactly when all producers closed and the queue is
  /// empty.
  std::optional<T> Pop() {
    std::optional<T> value;
    bool wake = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      std::uint64_t blocked_ns = 0;
      if (queue_.empty() && producers_ > 0 && !cancelled_) {
        blocked_ns = WaitNotEmpty(lock);
      }
      if (queue_.empty()) return std::nullopt;
      value = std::move(queue_.front());
      queue_.pop_front();
      if (stats_ != nullptr) {
        if (IsBarrier(*value)) {
          stats_->OnBarriersPopped(1);
          if (blocked_ns > 0) {
            stats_->OnPopN(0, 0, blocked_ns);
          }
        } else {
          stats_->OnPop(IsWatermark(*value), blocked_ns);
        }
      }
      wake = waiting_producers_ > 0;
    }
    if (wake) not_full_.notify_one();
    return value;
  }

  /// Blocking batched dequeue: clears `out`, then moves up to `max`
  /// immediately available elements into it under one lock acquisition.
  /// Blocks only while the channel is empty with producers remaining;
  /// never waits for a full batch to accumulate, so batching adds no
  /// latency. Returns the number of elements delivered; 0 means the
  /// channel is finished (all producers closed and drained).
  std::size_t PopBatch(std::vector<T>& out, std::size_t max) {
    out.clear();
    if (max == 0) return 0;
    bool wake = false;
    bool wake_all = false;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      std::uint64_t blocked_ns = 0;
      if (queue_.empty() && producers_ > 0 && !cancelled_) {
        blocked_ns = WaitNotEmpty(lock);
      }
      n = std::min(max, queue_.size());
      std::int64_t watermarks = 0;
      std::int64_t barriers = 0;
      for (std::size_t k = 0; k < n; ++k) {
        if (stats_ != nullptr) {
          if (IsBarrier(queue_.front())) {
            ++barriers;
          } else if (IsWatermark(queue_.front())) {
            ++watermarks;
          }
        }
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (stats_ != nullptr && (n > 0 || blocked_ns > 0)) {
        stats_->OnPopN(static_cast<std::int64_t>(n) - watermarks - barriers,
                       watermarks, blocked_ns);
        stats_->OnBarriersPopped(barriers);
      }
      wake = n > 0 && waiting_producers_ > 0;
      wake_all = n > 1;
    }
    if (wake) {
      if (wake_all) {
        not_full_.notify_all();
      } else {
        not_full_.notify_one();
      }
    }
    return n;
  }

  /// Non-blocking poll. On kItem the element is moved into `out`; kEmpty
  /// and kFinished leave `out` untouched. The finished check shares the
  /// queue lock with the dequeue, so a kFinished result is authoritative:
  /// nothing can arrive afterwards.
  PollResult TryPop(T& out) {
    bool wake = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        return producers_ == 0 || cancelled_ ? PollResult::kFinished
                                             : PollResult::kEmpty;
      }
      out = std::move(queue_.front());
      queue_.pop_front();
      if (stats_ != nullptr) {
        if (IsBarrier(out)) {
          stats_->OnBarriersPopped(1);
        } else {
          stats_->OnPop(IsWatermark(out), 0);
        }
      }
      wake = waiting_producers_ > 0;
    }
    if (wake) not_full_.notify_one();
    return PollResult::kItem;
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// True when all producers have closed (the queue may still hold data).
  bool finished_producing() const {
    std::lock_guard<std::mutex> lock(mu_);
    return producers_ == 0;
  }

 private:
  /// Watermark/data split for stats: payloads exposing is_watermark()
  /// (Element<T>) are classified, anything else counts as a record.
  static bool IsWatermark(const T& value) {
    if constexpr (requires { value.is_watermark(); }) {
      return value.is_watermark();
    } else {
      (void)value;
      return false;
    }
  }

  /// Event-time value of a watermark element, for the last_watermark
  /// gauge; only called when IsWatermark(value) is true.
  static Timestamp WatermarkOf(const T& value) {
    if constexpr (requires { value.watermark; }) {
      return value.watermark;
    } else {
      (void)value;
      return kNoTime;
    }
  }

  /// Checkpoint-barrier split for stats, same pattern as IsWatermark.
  static bool IsBarrier(const T& value) {
    if constexpr (requires { value.is_barrier(); }) {
      return value.is_barrier();
    } else {
      (void)value;
      return false;
    }
  }

  /// Waits for free capacity; returns the blocked time in ns (0 when
  /// stats are off - the clock is never read then). Caller holds `lock`
  /// and has verified the queue is full.
  std::uint64_t WaitNotFull(std::unique_lock<std::mutex>& lock) {
    ++waiting_producers_;
    std::uint64_t blocked_ns = 0;
    const auto ready = [&] {
      return queue_.size() < capacity_ || cancelled_;
    };
    if (stats_ == nullptr) {
      not_full_.wait(lock, ready);
    } else {
      const auto start = std::chrono::steady_clock::now();
      not_full_.wait(lock, ready);
      blocked_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    --waiting_producers_;
    return blocked_ns;
  }

  /// Waits for input or a finished stream; same contract as WaitNotFull.
  std::uint64_t WaitNotEmpty(std::unique_lock<std::mutex>& lock) {
    ++waiting_consumers_;
    std::uint64_t blocked_ns = 0;
    const auto ready = [&] {
      return !queue_.empty() || producers_ == 0 || cancelled_;
    };
    if (stats_ == nullptr) {
      not_empty_.wait(lock, ready);
    } else {
      const auto start = std::chrono::steady_clock::now();
      not_empty_.wait(lock, ready);
      blocked_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    --waiting_consumers_;
    return blocked_ns;
  }

  const std::size_t capacity_;
  StageStats* const stats_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  int producers_ = 0;
  int waiting_producers_ = 0;
  int waiting_consumers_ = 0;
  bool cancelled_ = false;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_CHANNEL_H_
