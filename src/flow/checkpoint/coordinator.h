#ifndef COMOVE_FLOW_CHECKPOINT_COORDINATOR_H_
#define COMOVE_FLOW_CHECKPOINT_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "flow/checkpoint/snapshot_store.h"
#include "flow/stage_stats.h"

/// \file
/// Checkpoint completion tracking. Every operator subtask, upon absorbing
/// (and aligning) barrier n, snapshots its state and acks it here; when
/// the configured number of acks for n has arrived - i.e. every subtask
/// in the pipeline snapshotted at the same consistent cut - the bundle is
/// persisted to the SnapshotStore and checkpoint n becomes the recovery
/// point. A crash before the final ack simply leaves n incomplete;
/// recovery falls back to the newest persisted checkpoint.

namespace comove::flow {

/// Collects per-operator state acks and persists completed checkpoints.
/// Thread-safe: subtasks ack concurrently from their worker threads.
class CheckpointCoordinator {
 public:
  /// `expected_acks` is the total subtask count across all stages (every
  /// subtask acks every checkpoint, stateless ones with empty bytes).
  /// `fingerprint` stamps each bundle with the pipeline shape so restores
  /// into a different topology are rejected. `stats`, when set, receives
  /// persisted bytes and the last completed id (the "checkpoint" row of
  /// the stage table). `last_completed` seeds the id sequence after
  /// recovery.
  CheckpointCoordinator(std::int32_t expected_acks, SnapshotStore* store,
                        std::string fingerprint,
                        StageStats* stats = nullptr,
                        std::int64_t last_completed = 0);

  /// Records (`op`, `subtask`)'s state for checkpoint `checkpoint_id`;
  /// the final ack triggers the store write.
  void Ack(std::int64_t checkpoint_id, std::string op,
           std::int32_t subtask, std::string state);

  /// Newest checkpoint whose bundle was successfully persisted.
  std::int64_t last_completed() const;
  std::int64_t completed_count() const;
  /// Checkpoints whose store write failed (aborted, never recoverable).
  std::int64_t failed_count() const;

 private:
  const std::int32_t expected_acks_;
  SnapshotStore* const store_;
  const std::string fingerprint_;
  StageStats* const stats_;

  mutable std::mutex mu_;
  std::map<std::int64_t, CheckpointBundle> pending_;
  std::int64_t last_completed_;
  std::int64_t completed_count_ = 0;
  std::int64_t failed_count_ = 0;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_CHECKPOINT_COORDINATOR_H_
