#ifndef COMOVE_FLOW_CHECKPOINT_BARRIER_ALIGNER_H_
#define COMOVE_FLOW_CHECKPOINT_BARRIER_ALIGNER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/check.h"
#include "flow/element.h"
#include "flow/stage_stats.h"
#include "flow/trace.h"

/// \file
/// Consumer-side checkpoint-barrier alignment (the "aligned" in Flink's
/// aligned asynchronous barrier snapshotting). A subtask fed by several
/// producers through one physical queue sees their barriers for
/// checkpoint n arrive at different moments. To snapshot a consistent
/// cut, every element from a producer that has ALREADY delivered barrier
/// n must be held back until the slowest producer's barrier n arrives:
/// at that instant nothing of checkpoint n+1's world has been applied,
/// the operator state is exactly the image of all pre-barrier input, and
/// the snapshot may be taken. The held elements are then replayed in
/// their original order, so alignment is semantically invisible - it only
/// costs latency, which OnAlignBlocked accounts per stage.

namespace comove::flow {

/// Aligns barriers over `producer_count` producers feeding one subtask.
/// Elements are fed in queue order via OnElement; the aligner forwards
/// them to `sink` immediately while no round is open, holds back elements
/// from already-delivered producers while one is, and fires
/// `on_checkpoint(id)` exactly when a round completes - BEFORE replaying
/// the held elements, so the callback observes the consistent cut.
///
/// Barrier ids must arrive consecutively per producer (the source numbers
/// them 1, 2, ... and every stage forwards in order); a gap is a broken
/// pipeline invariant and aborts. `on_checkpoint` returns whether to keep
/// draining: returning false (a simulated crash) stops processing
/// immediately, leaving held elements unreplayed.
template <typename T>
class BarrierAligner {
 public:
  /// `last_completed` seeds the id sequence (non-zero after recovery:
  /// the next barrier must be last_completed + 1). `stats`, when set,
  /// receives the per-round alignment blocked-time. `trace`, when set,
  /// records each round as a "checkpoint"/"align" span on lane `subtask`
  /// (aux = checkpoint id), from first barrier seen to round completion.
  explicit BarrierAligner(std::int32_t producer_count,
                          std::int64_t last_completed = 0,
                          StageStats* stats = nullptr,
                          TraceRecorder* trace = nullptr,
                          std::int32_t subtask = 0)
      : delivered_(static_cast<std::size_t>(producer_count), false),
        last_completed_(last_completed),
        stats_(stats),
        trace_(trace),
        subtask_(subtask) {
    COMOVE_CHECK(producer_count > 0);
  }

  /// Number of elements currently held back by an open round.
  std::size_t held() const { return held_.size(); }

  /// True while a barrier round is waiting on slower producers.
  bool aligning() const { return open_; }

  std::int64_t last_completed() const { return last_completed_; }

  /// Feeds one element; see the class comment for the contract.
  /// `sink(Element<T>&&)` receives pass-through and replayed elements;
  /// `on_checkpoint(std::int64_t) -> bool` observes completed cuts.
  template <typename Sink, typename OnCheckpoint>
  void OnElement(Element<T> element, Sink&& sink,
                 OnCheckpoint&& on_checkpoint) {
    pending_.push_back(std::move(element));
    while (!pending_.empty()) {
      Element<T> e = std::move(pending_.front());
      pending_.pop_front();
      if (open_) {
        const auto producer = static_cast<std::size_t>(e.producer);
        COMOVE_CHECK(producer < delivered_.size());
        if (delivered_[producer]) {
          // This producer is ahead of the cut; everything it sends -
          // data, watermarks, even its next barrier - waits.
          held_.push_back(std::move(e));
          continue;
        }
        if (e.is_barrier()) {
          COMOVE_CHECK_MSG(e.checkpoint == open_id_,
                           "barrier %lld while aligning %lld",
                           static_cast<long long>(e.checkpoint),
                           static_cast<long long>(open_id_));
          delivered_[producer] = true;
          if (++delivered_count_ ==
              static_cast<std::int32_t>(delivered_.size())) {
            if (!CompleteRound(on_checkpoint)) return;
          }
          continue;
        }
        sink(std::move(e));
      } else if (e.is_barrier()) {
        COMOVE_CHECK_MSG(e.checkpoint == last_completed_ + 1,
                         "barrier %lld after completing %lld",
                         static_cast<long long>(e.checkpoint),
                         static_cast<long long>(last_completed_));
        open_ = true;
        open_id_ = e.checkpoint;
        delivered_[static_cast<std::size_t>(e.producer)] = true;
        delivered_count_ = 1;
        if (stats_ != nullptr) {
          open_start_ = std::chrono::steady_clock::now();
        }
        if (trace_ != nullptr) open_start_ns_ = trace_->NowNs();
        if (delivered_count_ ==
            static_cast<std::int32_t>(delivered_.size())) {
          if (!CompleteRound(on_checkpoint)) return;
        }
      } else {
        sink(std::move(e));
      }
    }
  }

 private:
  template <typename OnCheckpoint>
  bool CompleteRound(OnCheckpoint&& on_checkpoint) {
    open_ = false;
    delivered_.assign(delivered_.size(), false);
    delivered_count_ = 0;
    last_completed_ = open_id_;
    if (stats_ != nullptr) {
      stats_->OnAlignBlocked(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - open_start_)
              .count()));
    }
    if (trace_ != nullptr) {
      trace_->RecordSpanSince("checkpoint", "align", subtask_, kNoTime,
                              open_start_ns_, last_completed_);
    }
    if (!on_checkpoint(last_completed_)) return false;
    // Replay the held elements ahead of any not-yet-processed input, in
    // their original arrival order; they may open the next round.
    while (!held_.empty()) {
      pending_.push_front(std::move(held_.back()));
      held_.pop_back();
    }
    return true;
  }

  std::vector<bool> delivered_;  ///< producer delivered the open barrier
  std::int32_t delivered_count_ = 0;
  bool open_ = false;
  std::int64_t open_id_ = 0;
  std::int64_t last_completed_;
  std::deque<Element<T>> held_;     ///< blocked inputs of the open round
  std::deque<Element<T>> pending_;  ///< worklist (input + replays)
  StageStats* stats_;
  TraceRecorder* trace_;
  std::int32_t subtask_;
  std::chrono::steady_clock::time_point open_start_{};
  std::uint64_t open_start_ns_ = 0;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_CHECKPOINT_BARRIER_ALIGNER_H_
