#ifndef COMOVE_FLOW_CHECKPOINT_SNAPSHOT_STORE_H_
#define COMOVE_FLOW_CHECKPOINT_SNAPSHOT_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Durable storage of completed checkpoints. A checkpoint is a bundle of
/// per-operator state blobs taken at one consistent cut; the store keeps
/// the encoded bundle under its checkpoint id so recovery can restore the
/// latest completed one. Two implementations: in-memory (tests, benches)
/// and file-backed with atomic-rename publication, a manifest of
/// completed ids, and CRC-32 protection of every state blob plus the
/// bundle envelope - a torn or rotten checkpoint is skipped at recovery,
/// never trusted.

namespace comove::flow {

/// One operator subtask's state inside a checkpoint.
struct OperatorState {
  std::string op;            ///< operator name ("source", "assembler", ...)
  std::int32_t subtask = 0;  ///< parallel subtask index
  std::string bytes;         ///< opaque SaveState payload
};

/// A complete checkpoint: every operator's state at one consistent cut.
struct CheckpointBundle {
  std::int64_t id = 0;       ///< checkpoint number (1-based, ascending)
  /// Topology/configuration fingerprint of the producing pipeline; a
  /// restore into a differently-shaped pipeline is rejected up front.
  std::string fingerprint;
  std::vector<OperatorState> states;

  /// State bytes of (`op`, `subtask`), or nullptr when absent.
  const std::string* Find(std::string_view op, std::int32_t subtask) const;
};

/// Encodes a bundle into the wire format:
///   u32 magic 'CKPT' | u32 version | i64 id | string fingerprint |
///   u64 state_count | { string op | i32 subtask | string bytes |
///   u32 crc32(bytes) } * | u32 crc32(everything before this field)
std::string EncodeBundle(const CheckpointBundle& bundle);

/// Decodes and fully verifies (magic, version, per-state CRC, envelope
/// CRC) an encoded bundle. Returns false - leaving `out` unspecified - on
/// any corruption.
[[nodiscard]] bool DecodeBundle(std::string_view data,
                                CheckpointBundle* out);

/// Storage interface. Implementations must be thread-safe: the last
/// acking worker of a checkpoint writes while other workers keep acking
/// newer ones.
class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  /// Persists a completed checkpoint. Returns false when the write failed
  /// (the checkpoint is then counted as aborted; the pipeline continues).
  [[nodiscard]] virtual bool Write(const CheckpointBundle& bundle) = 0;

  /// Latest completed checkpoint that decodes cleanly, or nullopt when
  /// none exists. Corrupt entries are skipped, not reported.
  virtual std::optional<CheckpointBundle> ReadLatest() const = 0;
};

/// Keeps encoded bundles in a map; every read round-trips through the
/// wire format, so tests exercise exactly what the file store persists.
class MemorySnapshotStore : public SnapshotStore {
 public:
  [[nodiscard]] bool Write(const CheckpointBundle& bundle) override;
  std::optional<CheckpointBundle> ReadLatest() const override;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::int64_t, std::string> bundles_;  ///< id -> encoded
};

/// File-backed store: one `checkpoint-<id>.ckpt` per checkpoint, written
/// to a `.tmp` sibling and published with std::rename (atomic on POSIX),
/// plus a `MANIFEST` file (also rename-published) listing completed ids.
/// ReadLatest walks the manifest newest-first - falling back to a
/// directory scan when the manifest is missing - and returns the first
/// bundle whose CRCs verify.
class FileSnapshotStore : public SnapshotStore {
 public:
  /// Creates `directory` (and parents) when absent.
  explicit FileSnapshotStore(std::string directory);

  [[nodiscard]] bool Write(const CheckpointBundle& bundle) override;
  std::optional<CheckpointBundle> ReadLatest() const override;

  const std::string& directory() const { return directory_; }

 private:
  std::string CheckpointPath(std::int64_t id) const;
  std::vector<std::int64_t> CompletedIds() const;

  std::string directory_;
  mutable std::mutex mu_;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_CHECKPOINT_SNAPSHOT_STORE_H_
