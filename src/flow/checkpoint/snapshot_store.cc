#include "flow/checkpoint/snapshot_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/crc32.h"
#include "common/serde.h"

namespace comove::flow {

namespace {

constexpr std::uint32_t kBundleMagic = 0x434B5054u;  // 'CKPT'
constexpr std::uint32_t kBundleVersion = 1u;
constexpr const char* kManifestName = "MANIFEST";

namespace fs = std::filesystem;

}  // namespace

const std::string* CheckpointBundle::Find(std::string_view op,
                                          std::int32_t subtask) const {
  for (const OperatorState& state : states) {
    if (state.op == op && state.subtask == subtask) return &state.bytes;
  }
  return nullptr;
}

std::string EncodeBundle(const CheckpointBundle& bundle) {
  std::string encoded;
  BinaryWriter writer(&encoded);
  writer.WriteU32(kBundleMagic);
  writer.WriteU32(kBundleVersion);
  writer.WriteI64(bundle.id);
  writer.WriteString(bundle.fingerprint);
  writer.WriteU64(bundle.states.size());
  for (const OperatorState& state : bundle.states) {
    writer.WriteString(state.op);
    writer.WriteI32(state.subtask);
    writer.WriteString(state.bytes);
    writer.WriteU32(Crc32(state.bytes));
  }
  const std::uint32_t envelope_crc = Crc32(encoded);
  writer.WriteU32(envelope_crc);
  return encoded;
}

bool DecodeBundle(std::string_view data, CheckpointBundle* out) {
  if (data.size() < sizeof(std::uint32_t)) return false;
  // The footer CRC covers everything before it; verify first so that a
  // torn write fails fast without parsing garbage.
  const std::string_view body = data.substr(0, data.size() - 4);
  BinaryReader footer(data.substr(data.size() - 4));
  if (footer.ReadU32() != Crc32(body) || !footer.ok()) return false;
  BinaryReader reader(body);
  if (reader.ReadU32() != kBundleMagic || !reader.ok()) return false;
  if (reader.ReadU32() != kBundleVersion || !reader.ok()) return false;
  CheckpointBundle bundle;
  bundle.id = reader.ReadI64();
  bundle.fingerprint = reader.ReadString();
  const std::uint64_t count = reader.ReadU64();
  if (!reader.ok() || count > reader.remaining()) return false;
  bundle.states.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    OperatorState state;
    state.op = reader.ReadString();
    state.subtask = reader.ReadI32();
    state.bytes = reader.ReadString();
    const std::uint32_t crc = reader.ReadU32();
    if (!reader.ok() || crc != Crc32(state.bytes)) return false;
    bundle.states.push_back(std::move(state));
  }
  if (!reader.AtEnd()) return false;
  *out = std::move(bundle);
  return true;
}

bool MemorySnapshotStore::Write(const CheckpointBundle& bundle) {
  std::string encoded = EncodeBundle(bundle);
  std::lock_guard<std::mutex> lock(mu_);
  bundles_[bundle.id] = std::move(encoded);
  return true;
}

std::optional<CheckpointBundle> MemorySnapshotStore::ReadLatest() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = bundles_.rbegin(); it != bundles_.rend(); ++it) {
    CheckpointBundle bundle;
    if (DecodeBundle(it->second, &bundle)) return bundle;
  }
  return std::nullopt;
}

std::size_t MemorySnapshotStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_.size();
}

FileSnapshotStore::FileSnapshotStore(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
}

std::string FileSnapshotStore::CheckpointPath(std::int64_t id) const {
  return (fs::path(directory_) /
          ("checkpoint-" + std::to_string(id) + ".ckpt"))
      .string();
}

namespace {

/// Writes `data` to `path` atomically: a `.tmp` sibling is written,
/// flushed, and renamed over the target, so readers see either the old
/// file or the complete new one, never a torn write.
bool AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool FileSnapshotStore::Write(const CheckpointBundle& bundle) {
  const std::string encoded = EncodeBundle(bundle);
  std::lock_guard<std::mutex> lock(mu_);
  if (!AtomicWriteFile(CheckpointPath(bundle.id), encoded)) return false;
  // Rewrite the manifest with the new id included (ascending, one per
  // line). The manifest is advisory - ReadLatest falls back to a
  // directory scan - so a failed rewrite does not fail the checkpoint.
  std::vector<std::int64_t> ids = CompletedIds();
  if (std::find(ids.begin(), ids.end(), bundle.id) == ids.end()) {
    ids.push_back(bundle.id);
    std::sort(ids.begin(), ids.end());
  }
  std::ostringstream manifest;
  for (const std::int64_t id : ids) manifest << id << '\n';
  AtomicWriteFile((fs::path(directory_) / kManifestName).string(),
                  manifest.str());
  return true;
}

std::vector<std::int64_t> FileSnapshotStore::CompletedIds() const {
  std::vector<std::int64_t> ids;
  std::ifstream manifest(fs::path(directory_) / kManifestName);
  if (manifest) {
    std::int64_t id = 0;
    while (manifest >> id) ids.push_back(id);
  }
  if (ids.empty()) {
    // No (or empty/corrupt) manifest: scan for checkpoint-<id>.ckpt.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(directory_, ec)) {
      const std::string name = entry.path().filename().string();
      constexpr std::string_view kPrefix = "checkpoint-";
      constexpr std::string_view kSuffix = ".ckpt";
      if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
      if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
      if (name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
        continue;
      }
      const std::string digits = name.substr(
          kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      ids.push_back(std::stoll(digits));
    }
    std::sort(ids.begin(), ids.end());
  }
  return ids;
}

std::optional<CheckpointBundle> FileSnapshotStore::ReadLatest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::int64_t> ids = CompletedIds();
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    std::ifstream in(CheckpointPath(*it), std::ios::binary);
    if (!in) continue;
    std::ostringstream contents;
    contents << in.rdbuf();
    CheckpointBundle bundle;
    if (DecodeBundle(contents.str(), &bundle)) return bundle;
    // Corrupt or torn checkpoint: fall through to the next-newest id.
  }
  return std::nullopt;
}

}  // namespace comove::flow
