#include "flow/checkpoint/coordinator.h"

#include <utility>

#include "common/check.h"

namespace comove::flow {

CheckpointCoordinator::CheckpointCoordinator(std::int32_t expected_acks,
                                             SnapshotStore* store,
                                             std::string fingerprint,
                                             StageStats* stats,
                                             std::int64_t last_completed)
    : expected_acks_(expected_acks),
      store_(store),
      fingerprint_(std::move(fingerprint)),
      stats_(stats),
      last_completed_(last_completed) {
  COMOVE_CHECK(expected_acks > 0);
  COMOVE_CHECK(store != nullptr);
}

void CheckpointCoordinator::Ack(std::int64_t checkpoint_id, std::string op,
                                std::int32_t subtask, std::string state) {
  CheckpointBundle complete;
  bool is_complete = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CheckpointBundle& bundle = pending_[checkpoint_id];
    bundle.id = checkpoint_id;
    bundle.fingerprint = fingerprint_;
    bundle.states.push_back(
        OperatorState{std::move(op), subtask, std::move(state)});
    COMOVE_CHECK_MSG(
        bundle.states.size() <= static_cast<std::size_t>(expected_acks_),
        "checkpoint %lld over-acked", static_cast<long long>(checkpoint_id));
    if (bundle.states.size() == static_cast<std::size_t>(expected_acks_)) {
      complete = std::move(bundle);
      pending_.erase(checkpoint_id);
      is_complete = true;
    }
  }
  if (!is_complete) return;
  // Persist outside the ack lock; the store serialises its own writes.
  std::int64_t bytes = 0;
  for (const OperatorState& s : complete.states) {
    bytes += static_cast<std::int64_t>(s.bytes.size());
  }
  const bool written = store_->Write(complete);
  std::lock_guard<std::mutex> lock(mu_);
  if (!written) {
    ++failed_count_;
    return;
  }
  ++completed_count_;
  if (complete.id > last_completed_) last_completed_ = complete.id;
  if (stats_ != nullptr) stats_->OnSnapshot(bytes, complete.id);
}

std::int64_t CheckpointCoordinator::last_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_completed_;
}

std::int64_t CheckpointCoordinator::completed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_count_;
}

std::int64_t CheckpointCoordinator::failed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_count_;
}

}  // namespace comove::flow
