#ifndef COMOVE_FLOW_TRACE_H_
#define COMOVE_FLOW_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define COMOVE_TRACE_TSC 1
#endif

/// \file
/// Run-wide span tracing for the streaming pipeline. Where StageStats
/// answers "how much did each stage move and block in total", the trace
/// answers "which stage of which snapshot, when": every pipeline stage
/// records spans tagged with (stage, subtask, snapshot_time), so one
/// snapshot's journey through source -> assembler -> join -> dbscan ->
/// enumerate is a correlated timeline, loadable into chrome://tracing or
/// Perfetto via the Chrome trace_event JSON exporter below.
///
/// The recorder mirrors the StageStats cost model: a null recorder pointer
/// disables tracing entirely (callers guard every record with one branch),
/// and an enabled recorder writes into per-thread ring buffers - no lock,
/// no allocation on the hot path, just a relaxed-atomic cursor bump and a
/// slot write. When a ring wraps, the oldest events are overwritten
/// (drop-oldest) and counted, so a long run degrades to "the recent past"
/// instead of unbounded memory or backpressure on the pipeline.

namespace comove::flow {

namespace trace_internal {

#ifdef COMOVE_TRACE_TSC
/// Nanoseconds per TSC tick, calibrated once per process against
/// steady_clock over ~1 ms (error well under 0.1%). Modern x86 TSCs are
/// invariant (constant rate, synchronised across cores), which is why
/// every serious profiler reads them instead of clock_gettime: one rdtsc
/// is ~8 ns where the vDSO clock costs ~25 ns - the difference is what
/// keeps the recorder's hot path inside the bench-gated overhead budget.
double NsPerTscTick();
#endif

}  // namespace trace_internal

/// One recorded event. `dur_ns == 0` marks an instant event; otherwise the
/// event is a span [start_ns, start_ns + dur_ns). `stage` and `name` must
/// be string literals (or otherwise outlive the recorder) - they are
/// stored as pointers, never copied.
struct TraceEvent {
  const char* stage = "";        ///< pipeline stage, e.g. "join"
  const char* name = "";         ///< what happened, e.g. "cell_query"
  std::int32_t subtask = 0;      ///< parallel subtask index (lane)
  Timestamp snapshot_time = kNoTime;  ///< correlates one snapshot's spans
  std::int64_t aux = 0;          ///< extra id (checkpoint, batch size, ...)
  std::uint64_t start_ns = 0;    ///< since the recorder's epoch
  std::uint64_t dur_ns = 0;      ///< 0 = instant
};

/// Canonical pipeline order of the instrumented stages; used to sort the
/// exported timeline lanes top-to-bottom along the dataflow. Unknown
/// stages sort after these.
inline constexpr const char* kTraceStageOrder[] = {
    "source", "assembler", "join", "dbscan",
    "enumerate", "flush", "checkpoint",
};

/// Multi-producer span/instant recorder with per-thread ring buffers.
///
/// Writers call Record* concurrently from any thread; each thread's events
/// go to its own fixed-capacity ring (registered lazily under a mutex on
/// first use, lock-free afterwards). Readers (Events, WriteChromeTrace,
/// dropped) must only run once writers have quiesced - the engine exports
/// after joining its workers, tests after joining their threads; the join
/// provides the happens-before edge that makes the slot reads race-free.
class TraceRecorder {
 public:
  /// `capacity_per_thread` is the ring size in events (~56 bytes each),
  /// rounded up to a power of two so the hot path indexes with a mask
  /// instead of a division. The default keeps a thread's recent ~8k
  /// events (~448 KB per thread) - plenty for the laptop-scale streams,
  /// bounded for any stream length, and small enough that the rings do
  /// not crowd the pipeline's working set out of cache (the bench-gated
  /// overhead budget notices).
  explicit TraceRecorder(std::size_t capacity_per_thread = 1u << 13);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder();

  /// Nanoseconds since this recorder's construction (the trace epoch).
  /// On x86 this is one TSC read and a multiply; elsewhere a
  /// steady_clock read.
  std::uint64_t NowNs() const {
#ifdef COMOVE_TRACE_TSC
    return static_cast<std::uint64_t>(
        static_cast<double>(__rdtsc() - epoch_ticks_) * ns_per_tick_);
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
#endif
  }

  /// Records a span that started at `start_ns` (from NowNs) and ends now.
  void RecordSpanSince(const char* stage, const char* name,
                       std::int32_t subtask, Timestamp snapshot_time,
                       std::uint64_t start_ns, std::int64_t aux = 0) {
    const std::uint64_t now = NowNs();
    Record(TraceEvent{stage, name, subtask, snapshot_time, aux, start_ns,
                      now > start_ns ? now - start_ns : 1});
  }

  /// Records a span with an explicit duration (e.g. measured elsewhere and
  /// back-dated so sub-phases of one computation tile correctly).
  void RecordSpan(const char* stage, const char* name, std::int32_t subtask,
                  Timestamp snapshot_time, std::uint64_t start_ns,
                  std::uint64_t dur_ns, std::int64_t aux = 0) {
    Record(TraceEvent{stage, name, subtask, snapshot_time, aux, start_ns,
                      dur_ns == 0 ? 1 : dur_ns});
  }

  /// Records an instant event at the current time.
  void RecordInstant(const char* stage, const char* name,
                     std::int32_t subtask, Timestamp snapshot_time,
                     std::int64_t aux = 0) {
    Record(TraceEvent{stage, name, subtask, snapshot_time, aux, NowNs(), 0});
  }

  /// Low-level append to the calling thread's ring. Inline: after a
  /// thread's first call this is one thread_local compare, a masked slot
  /// write, and a relaxed cursor bump - it sits on the pipeline's
  /// per-batch hot path.
  void Record(TraceEvent event) {
    ThreadCache& cache = Cache();
    ThreadBuffer& buffer = cache.recorder_id == id_
                               ? *cache.buffer
                               : RegisterThread(cache);
    // Only the owning thread writes this ring, so the cursor bump orders
    // nothing; it exists for quiesced readers to learn how far the ring
    // ran.
    const std::uint64_t cursor =
        buffer.cursor.load(std::memory_order_relaxed);
    buffer.ring[static_cast<std::size_t>(cursor) & buffer.mask] = event;
    buffer.cursor.store(cursor + 1, std::memory_order_relaxed);
  }

  /// Events recorded and still resident across all threads, merged and
  /// sorted by start time. Quiesced readers only (see class comment).
  std::vector<TraceEvent> Events() const;

  /// Total events ever recorded (including ones later overwritten).
  std::int64_t recorded() const;

  /// Events lost to ring wraparound (drop-oldest), across all threads.
  std::int64_t dropped() const;

  /// Number of per-thread rings registered so far.
  std::size_t thread_count() const;

  std::size_t capacity_per_thread() const { return capacity_; }

  /// Writes the merged events as Chrome trace_event JSON (the
  /// chrome://tracing / Perfetto "JSON Array Format" with a traceEvents
  /// envelope). Each (stage, subtask) pair becomes one named, pipeline-
  /// ordered lane; spans are "X" complete events, instants "i", and
  /// (stage, subtask, snapshot_time, aux) travel in "args" so a loaded
  /// trace can be filtered by snapshot. Quiesced readers only.
  void WriteChromeTrace(std::ostream& out) const;

 private:
  struct ThreadBuffer {
    /// `capacity` must be a power of two (the constructor rounds).
    explicit ThreadBuffer(std::size_t capacity)
        : ring(capacity), mask(capacity - 1) {}
    std::vector<TraceEvent> ring;
    std::size_t mask;  ///< ring.size() - 1; slot = cursor & mask
    /// Total events ever written by the owning thread. Relaxed: readers
    /// run after a join.
    std::atomic<std::uint64_t> cursor{0};
  };

  /// One cache slot per thread: a (recorder id, buffer) pair. Recorder
  /// ids are process-unique, so a stale cache entry can never alias a
  /// different recorder - even one reallocated at the same address.
  struct ThreadCache {
    std::uint64_t recorder_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  static ThreadCache& Cache() {
    thread_local ThreadCache cache;
    return cache;
  }

  /// Slow path of Record: finds or creates the calling thread's ring
  /// under the registry mutex and refreshes `cache`.
  ThreadBuffer& RegisterThread(ThreadCache& cache);

  const std::size_t capacity_;
#ifdef COMOVE_TRACE_TSC
  const std::uint64_t epoch_ticks_;
  const double ns_per_tick_;
#else
  const std::chrono::steady_clock::time_point epoch_;
#endif
  const std::uint64_t id_;  ///< process-unique, validates thread caches

  mutable std::mutex mu_;
  std::vector<std::pair<std::thread::id, std::unique_ptr<ThreadBuffer>>>
      buffers_;
};

/// RAII span: records `stage`/`name` from construction to destruction.
/// A null recorder makes both ends free.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* stage, const char* name,
            std::int32_t subtask, Timestamp snapshot_time,
            std::int64_t aux = 0)
      : recorder_(recorder),
        stage_(stage),
        name_(name),
        subtask_(subtask),
        snapshot_time_(snapshot_time),
        aux_(aux),
        start_ns_(recorder != nullptr ? recorder->NowNs() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->RecordSpanSince(stage_, name_, subtask_, snapshot_time_,
                                 start_ns_, aux_);
    }
  }

 private:
  TraceRecorder* recorder_;
  const char* stage_;
  const char* name_;
  std::int32_t subtask_;
  Timestamp snapshot_time_;
  std::int64_t aux_;
  std::uint64_t start_ns_;
};

/// One process's contribution to a multi-process timeline: its events
/// (already shifted onto the coordinator's clock by the caller), the
/// Chrome pid lane group they render under, and the recorder totals for
/// the merged footer. The coordinator builds one of these per process -
/// its own recorder plus every worker's shipped events - and hands the
/// set to WriteChromeTraceMerged.
struct ProcessTrace {
  std::string process_name;  ///< e.g. "coord", "w0"
  int pid = 1;               ///< coordinator = 1, worker i = 2 + i
  std::vector<TraceEvent> events;
  std::int64_t recorded = 0;
  std::int64_t dropped = 0;
};

/// Writes several processes' events as one Chrome trace_event JSON
/// document: per-process pid lane groups (process_name /
/// process_sort_index metadata), per-(stage, subtask) tid lanes inside
/// each process in pipeline order, and a footer summing recorded/dropped
/// across processes. Events within each process must be sorted by
/// start_ns (TraceRecorder::Events() order) so every lane's timestamps
/// are monotone - validate_trace.py checks exactly that.
void WriteChromeTraceMerged(const std::vector<ProcessTrace>& processes,
                            std::ostream& out);

/// Per-stage share of one snapshot's pipeline time: where the worst
/// latencies were actually spent. Built from the trace's
/// snapshot-correlated spans, ranked by the measured ingest->emit latency.
struct SnapshotStageBreakdown {
  Timestamp snapshot_time = kNoTime;
  double latency_ms = 0.0;  ///< measured ingest->emit response time
  /// (stage, summed span milliseconds) in pipeline order; stages with no
  /// span for this snapshot are omitted.
  std::vector<std::pair<std::string, double>> stage_ms;
};

/// Selects the `k` worst snapshots by measured latency and attributes each
/// one's trace spans to stages. `latencies` holds (snapshot_time,
/// latency_ms) for every completed snapshot (see
/// SnapshotMetrics::per_snapshot); `events` is TraceRecorder::Events().
std::vector<SnapshotStageBreakdown> BuildWorstSnapshotBreakdown(
    const std::vector<TraceEvent>& events,
    const std::vector<std::pair<Timestamp, double>>& latencies,
    std::size_t k);

/// Human-readable worst-snapshot table: one row per snapshot, one column
/// per stage that contributed span time, worst first.
void PrintSnapshotBreakdown(
    const std::vector<SnapshotStageBreakdown>& breakdown, std::ostream& out);

}  // namespace comove::flow

#endif  // COMOVE_FLOW_TRACE_H_
