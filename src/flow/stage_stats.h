#ifndef COMOVE_FLOW_STAGE_STATS_H_
#define COMOVE_FLOW_STAGE_STATS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <iomanip>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

/// \file
/// Pipeline observability: lock-cheap per-stage counters and a fixed-bucket
/// log-scale latency histogram. Every inter-stage Exchange can be tagged
/// with a StageStats, which its Channels update on the hot path with a
/// handful of relaxed atomic increments - and not at all when stats are
/// disabled (null pointer). This mirrors the per-operator metrics Flink
/// deployments lean on to localise backpressure: who is blocked pushing
/// (slow consumer downstream), who is blocked popping (starved by a slow
/// producer upstream), and how deep the queues run.

namespace comove::flow {

namespace internal {

inline void AtomicMaxU64(std::atomic<std::uint64_t>& target,
                         std::uint64_t value) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

inline void AtomicMaxI64(std::atomic<std::int64_t>& target,
                         std::int64_t value) {
  std::int64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// Thread-safe fixed-bucket latency histogram over nanosecond samples.
/// Buckets are log-scale with 4 sub-buckets per power of two (values
/// 0..15 ns get exact buckets); Record costs four relaxed atomic ops and
/// the footprint stays a fixed 2 KiB. Percentile reads interpolate
/// linearly by rank within the target bucket, which cuts the raw
/// one-sub-bucket quantisation (~12.5% relative worst case) to a few
/// percent on smooth distributions - metrics_test pins <= 3% on uniform
/// and exponential samples. Reads are exact snapshots once writers have
/// quiesced (the normal case: Collect after the pipeline drains) and a
/// close approximation while they run.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBucketCount = 256;

  void RecordNs(std::uint64_t ns) {
    buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    internal::AtomicMaxU64(max_ns_, ns);
  }

  void RecordMs(double ms) {
    RecordNs(ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1e6));
  }

  std::int64_t count() const {
    std::int64_t total = 0;
    for (const auto& b : buckets_) {
      total += static_cast<std::int64_t>(b.load(std::memory_order_relaxed));
    }
    return total;
  }

  double AverageMs() const {
    const std::int64_t n = count();
    if (n == 0) return 0.0;
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
           static_cast<double>(n) / 1e6;
  }

  double MaxMs() const {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) /
           1e6;
  }

  /// Estimated latency at quantile `q` in [0, 1] (0.5 = median), in
  /// milliseconds; 0 when the histogram is empty.
  double PercentileMs(double q) const {
    std::array<std::uint64_t, kBucketCount> counts;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target sample, 1-based.
    std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(total) + 0.5);
    if (target < 1) target = 1;
    if (target > total) target = total;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (counts[i] == 0) continue;
      if (cumulative + counts[i] >= target) {
        // Interpolate linearly by rank inside the bucket; clamp to the
        // observed maximum so the estimate never exceeds a real sample.
        const double fraction =
            static_cast<double>(target - cumulative) /
            static_cast<double>(counts[i]);
        const double ns = static_cast<double>(BucketLowerNs(i)) +
                          fraction * static_cast<double>(BucketWidthNs(i));
        const double ms = ns / 1e6;
        const double max_ms = MaxMs();
        return ms < max_ms ? ms : max_ms;
      }
      cumulative += counts[i];
    }
    return MaxMs();  // unreachable, but keeps the compiler satisfied
  }

  /// Bucket of nanosecond value `v`: exact for v < 16, then 4 log-spaced
  /// sub-buckets per power of two up to 2^64.
  static std::size_t BucketIndex(std::uint64_t v) {
    if (v < 16) return static_cast<std::size_t>(v);
    const int exp = std::bit_width(v) - 1;  // 4..63
    const std::size_t sub =
        static_cast<std::size_t>((v >> (exp - 2)) & 3u);
    return 16 + static_cast<std::size_t>(exp - 4) * 4 + sub;
  }

  /// Smallest nanosecond value mapped to bucket `i`.
  static std::uint64_t BucketLowerNs(std::size_t i) {
    if (i < 16) return i;
    const int exp = 4 + static_cast<int>((i - 16) / 4);
    const std::uint64_t sub = (i - 16) % 4;
    return (std::uint64_t{1} << exp) + sub * (std::uint64_t{1} << (exp - 2));
  }

  /// Width of bucket `i` in nanoseconds (1 for the exact buckets).
  static std::uint64_t BucketWidthNs(std::size_t i) {
    if (i < 16) return 1;
    const int exp = 4 + static_cast<int>((i - 16) / 4);
    return std::uint64_t{1} << (exp - 2);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Number of power-of-two batch-size buckets tracked per stage: bucket i
/// counts batches of size [2^i, 2^(i+1)), the last bucket is open-ended.
inline constexpr std::size_t kBatchSizeBuckets = 16;

/// One stage's counters, frozen at collection time. Depth gauges aggregate
/// over every channel of the stage's exchange (an Exchange has one channel
/// per consumer subtask).
struct StageStatsSnapshot {
  std::string stage;                   ///< exchange name, "producer->consumer"
  std::int64_t records_pushed = 0;
  std::int64_t records_popped = 0;
  std::int64_t watermarks_pushed = 0;
  std::int64_t watermarks_popped = 0;
  std::int64_t queue_depth = 0;        ///< current; 0 once drained
  std::int64_t max_queue_depth = 0;
  double push_blocked_ms = 0.0;        ///< backpressure: slow consumer
  double pop_blocked_ms = 0.0;         ///< starvation: slow producer
  /// Checkpoint health: barriers moved through this stage's queues, time
  /// consumers spent holding back already-delivered inputs while waiting
  /// for the slowest producer's barrier (alignment cost), state bytes the
  /// stage contributed to completed checkpoints, and the id of the last
  /// checkpoint this stage took part in (0 when checkpointing is off).
  std::int64_t barriers_pushed = 0;
  std::int64_t barriers_popped = 0;
  double align_blocked_ms = 0.0;
  std::int64_t snapshot_bytes = 0;
  std::int64_t last_checkpoint_id = 0;
  /// Batch amortisation: every producer-side transfer counts as one batch
  /// (a plain Push is a batch of 1), so avg_batch_size is the number of
  /// elements moved per lock round-trip on this stage.
  std::int64_t batches_pushed = 0;
  double avg_batch_size = 0.0;
  std::array<std::int64_t, kBatchSizeBuckets> batch_size_histogram{};
  /// Highest event-time watermark pushed through this stage's queues
  /// (kNoTime until the first watermark; the end-of-stream sentinel is
  /// excluded). The spread of this gauge across stages is the pipeline's
  /// watermark lag: how far event time at the back trails the front.
  Timestamp last_watermark = kNoTime;
  /// Transport-link columns, populated only on the `link:*` rows a
  /// distributed run registers per PeerLink: wire bytes written/read
  /// (frames ride in records_pushed/records_popped, the blocked columns
  /// become time stalled in the socket syscalls) and frames the reader
  /// rejected on a CRC/length mismatch. All zero for in-process stages.
  std::int64_t bytes_pushed = 0;
  std::int64_t bytes_popped = 0;
  std::int64_t crc_rejects = 0;
};

/// One numeric column of the per-stage observability report, shared by the
/// text table (PrintStageStats) and the JSON export (WriteStageStatsJson)
/// so the two surfaces cannot drift apart: every counter either appears in
/// both or in neither. `export_test` diffs the surfaces against this list.
struct StageStatsField {
  const char* json_name;  ///< key in the JSON stages array
  const char* column;     ///< header in the text table
  bool integral;          ///< print as integer (else fixed 2 decimals)
  double (*value)(const StageStatsSnapshot&);
};

/// The canonical field list, in display order. The stage name and the
/// batch-size histogram are carried separately on both surfaces (the
/// histogram's text twin is PrintBatchHistogram).
inline const std::vector<StageStatsField>& StageStatsFields() {
  static const std::vector<StageStatsField> kFields = {
      {"records_pushed", "rec_in", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.records_pushed);
       }},
      {"records_popped", "rec_out", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.records_popped);
       }},
      {"watermarks_pushed", "wm_in", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.watermarks_pushed);
       }},
      {"watermarks_popped", "wm_out", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.watermarks_popped);
       }},
      {"queue_depth", "depth", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.queue_depth);
       }},
      {"max_queue_depth", "max_depth", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.max_queue_depth);
       }},
      {"push_blocked_ms", "push_blk_ms", false,
       [](const StageStatsSnapshot& s) { return s.push_blocked_ms; }},
      {"pop_blocked_ms", "pop_blk_ms", false,
       [](const StageStatsSnapshot& s) { return s.pop_blocked_ms; }},
      {"batches_pushed", "batches", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.batches_pushed);
       }},
      {"avg_batch_size", "avg_batch", false,
       [](const StageStatsSnapshot& s) { return s.avg_batch_size; }},
      {"barriers_pushed", "barr_in", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.barriers_pushed);
       }},
      {"barriers_popped", "barr_out", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.barriers_popped);
       }},
      {"align_blocked_ms", "align_blk_ms", false,
       [](const StageStatsSnapshot& s) { return s.align_blocked_ms; }},
      {"snapshot_bytes", "snap_bytes", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.snapshot_bytes);
       }},
      {"last_checkpoint_id", "last_ckpt", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.last_checkpoint_id);
       }},
      {"last_watermark", "last_wm", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.last_watermark);
       }},
      {"bytes_pushed", "bytes_in", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.bytes_pushed);
       }},
      {"bytes_popped", "bytes_out", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.bytes_popped);
       }},
      {"crc_rejects", "crc_rej", true,
       [](const StageStatsSnapshot& s) {
         return static_cast<double>(s.crc_rejects);
       }},
  };
  return kFields;
}

/// Live counters of one pipeline stage (one Exchange). All updates are
/// relaxed atomics; Channel calls OnPush/OnPop under its own queue lock,
/// so no further synchronisation is needed for correctness - the atomics
/// only make concurrent reads and multi-channel aggregation well-defined.
class StageStats {
 public:
  explicit StageStats(std::string name) : name_(std::move(name)) {}

  StageStats(const StageStats&) = delete;
  StageStats& operator=(const StageStats&) = delete;

  const std::string& name() const { return name_; }

  /// Records one element entering a queue. `blocked_ns` is the time the
  /// producer spent waiting for capacity (backpressure).
  void OnPush(bool is_watermark, std::uint64_t blocked_ns) {
    (is_watermark ? watermarks_pushed_ : records_pushed_)
        .fetch_add(1, std::memory_order_relaxed);
    const std::int64_t depth =
        depth_.fetch_add(1, std::memory_order_relaxed) + 1;
    internal::AtomicMaxI64(max_depth_, depth);
    if (blocked_ns > 0) {
      push_blocked_ns_.fetch_add(blocked_ns, std::memory_order_relaxed);
    }
  }

  /// Records one element leaving a queue. `blocked_ns` is the time the
  /// consumer spent waiting for input (starvation).
  void OnPop(bool is_watermark, std::uint64_t blocked_ns) {
    (is_watermark ? watermarks_popped_ : records_popped_)
        .fetch_add(1, std::memory_order_relaxed);
    depth_.fetch_sub(1, std::memory_order_relaxed);
    if (blocked_ns > 0) {
      pop_blocked_ns_.fetch_add(blocked_ns, std::memory_order_relaxed);
    }
  }

  /// Records `records` + `watermarks` elements entering a queue in one
  /// batched push chunk (no blocked time - see OnPushBlocked).
  void OnPushN(std::int64_t records, std::int64_t watermarks) {
    if (records > 0) {
      records_pushed_.fetch_add(records, std::memory_order_relaxed);
    }
    if (watermarks > 0) {
      watermarks_pushed_.fetch_add(watermarks, std::memory_order_relaxed);
    }
    const std::int64_t depth =
        depth_.fetch_add(records + watermarks, std::memory_order_relaxed) +
        records + watermarks;
    internal::AtomicMaxI64(max_depth_, depth);
  }

  /// Backpressure time spent inside a batched push (PushBatch may block
  /// several times while chunking through a full channel).
  void OnPushBlocked(std::uint64_t blocked_ns) {
    push_blocked_ns_.fetch_add(blocked_ns, std::memory_order_relaxed);
  }

  /// Records `records` + `watermarks` elements leaving a queue in one
  /// batched pop. `blocked_ns` is starvation time, as in OnPop.
  void OnPopN(std::int64_t records, std::int64_t watermarks,
              std::uint64_t blocked_ns) {
    if (records > 0) {
      records_popped_.fetch_add(records, std::memory_order_relaxed);
    }
    if (watermarks > 0) {
      watermarks_popped_.fetch_add(watermarks, std::memory_order_relaxed);
    }
    if (records + watermarks > 0) {
      depth_.fetch_sub(records + watermarks, std::memory_order_relaxed);
    }
    if (blocked_ns > 0) {
      pop_blocked_ns_.fetch_add(blocked_ns, std::memory_order_relaxed);
    }
  }

  /// Records `n` checkpoint barriers entering a queue (barriers occupy
  /// queue slots like any element but are counted apart from data and
  /// watermarks - they are control flow, not payload).
  void OnBarriersPushed(std::int64_t n) {
    if (n <= 0) return;
    barriers_pushed_.fetch_add(n, std::memory_order_relaxed);
    const std::int64_t depth =
        depth_.fetch_add(n, std::memory_order_relaxed) + n;
    internal::AtomicMaxI64(max_depth_, depth);
  }

  /// Records `n` checkpoint barriers leaving a queue.
  void OnBarriersPopped(std::int64_t n) {
    if (n <= 0) return;
    barriers_popped_.fetch_add(n, std::memory_order_relaxed);
    depth_.fetch_sub(n, std::memory_order_relaxed);
  }

  /// Time a consumer spent buffering inputs from already-aligned producers
  /// while waiting for the slowest producer's barrier (the alignment cost
  /// of the Chandy-Lamport cut).
  void OnAlignBlocked(std::uint64_t blocked_ns) {
    align_blocked_ns_.fetch_add(blocked_ns, std::memory_order_relaxed);
  }

  /// Records `bytes` of operator state contributed to checkpoint
  /// `checkpoint_id` (which becomes last_checkpoint_id if newer).
  void OnSnapshot(std::int64_t bytes, std::int64_t checkpoint_id) {
    if (bytes > 0) {
      snapshot_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
    internal::AtomicMaxI64(last_checkpoint_id_, checkpoint_id);
  }

  /// Records the event-time value of a watermark entering a queue. The
  /// end-of-stream sentinel (Timestamp max) is excluded so the gauge keeps
  /// reporting real event time; feeding it is push-side so the gauge tracks
  /// how far each stage's *input* frontier has advanced.
  void OnWatermarkValue(Timestamp watermark) {
    if (watermark == std::numeric_limits<Timestamp>::max()) return;
    internal::AtomicMaxI64(last_watermark_,
                           static_cast<std::int64_t>(watermark));
  }

  /// Records one completed producer-side transfer of `size` elements into
  /// the batch-size histogram (a plain Push reports size 1). The histogram
  /// is the amortisation evidence: lock round-trips = batches_pushed while
  /// elements moved = records + watermarks pushed.
  void OnBatchPushed(std::size_t size) {
    batches_pushed_.fetch_add(1, std::memory_order_relaxed);
    batch_hist_[BatchSizeBucket(size)].fetch_add(1,
                                                 std::memory_order_relaxed);
  }

  /// Records one frame written to a transport link: `bytes` on the wire
  /// (header + payload) and the time the writer spent inside the send
  /// syscall (blocked on a full socket buffer). Frames count as
  /// records_pushed; the queue-depth gauge is left alone - a socket has
  /// no observable depth from user space.
  void OnLinkFrameSent(std::int64_t bytes, std::uint64_t blocked_ns) {
    records_pushed_.fetch_add(1, std::memory_order_relaxed);
    bytes_pushed_.fetch_add(bytes, std::memory_order_relaxed);
    if (blocked_ns > 0) {
      push_blocked_ns_.fetch_add(blocked_ns, std::memory_order_relaxed);
    }
  }

  /// Records one frame read off a transport link: `bytes` consumed and
  /// the time the reader spent blocked in the recv syscalls waiting for
  /// the peer (starvation side of the wire).
  void OnLinkFrameReceived(std::int64_t bytes, std::uint64_t blocked_ns) {
    records_popped_.fetch_add(1, std::memory_order_relaxed);
    bytes_popped_.fetch_add(bytes, std::memory_order_relaxed);
    if (blocked_ns > 0) {
      pop_blocked_ns_.fetch_add(blocked_ns, std::memory_order_relaxed);
    }
  }

  /// Records one frame the reader rejected (CRC mismatch, bad length
  /// prefix, or corrupt payload). The link dies with it, so this is a
  /// 0-or-1 gauge in practice - but the row makes the cause visible.
  void OnCrcReject() {
    crc_rejects_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Overwrites every counter with the values of `s`, replacing (not
  /// accumulating) the previous state. This is the merge path for remote
  /// stats: a coordinator registers one row per (worker, stage) and
  /// stamps each periodic snapshot a worker ships over the control
  /// channel, so the MetricsSampler sees remote gauges advance exactly
  /// like local ones. Single-writer per row (the link's reader thread);
  /// concurrent readers see a mix of old and new counters at worst,
  /// which is the same guarantee live local rows give.
  void OverwriteFrom(const StageStatsSnapshot& s) {
    records_pushed_.store(s.records_pushed, std::memory_order_relaxed);
    records_popped_.store(s.records_popped, std::memory_order_relaxed);
    watermarks_pushed_.store(s.watermarks_pushed, std::memory_order_relaxed);
    watermarks_popped_.store(s.watermarks_popped, std::memory_order_relaxed);
    depth_.store(s.queue_depth, std::memory_order_relaxed);
    max_depth_.store(s.max_queue_depth, std::memory_order_relaxed);
    push_blocked_ns_.store(
        static_cast<std::uint64_t>(s.push_blocked_ms * 1e6),
        std::memory_order_relaxed);
    pop_blocked_ns_.store(static_cast<std::uint64_t>(s.pop_blocked_ms * 1e6),
                          std::memory_order_relaxed);
    barriers_pushed_.store(s.barriers_pushed, std::memory_order_relaxed);
    barriers_popped_.store(s.barriers_popped, std::memory_order_relaxed);
    align_blocked_ns_.store(
        static_cast<std::uint64_t>(s.align_blocked_ms * 1e6),
        std::memory_order_relaxed);
    snapshot_bytes_.store(s.snapshot_bytes, std::memory_order_relaxed);
    last_checkpoint_id_.store(s.last_checkpoint_id,
                              std::memory_order_relaxed);
    batches_pushed_.store(s.batches_pushed, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBatchSizeBuckets; ++i) {
      batch_hist_[i].store(
          static_cast<std::uint64_t>(s.batch_size_histogram[i]),
          std::memory_order_relaxed);
    }
    last_watermark_.store(
        s.last_watermark == kNoTime
            ? std::numeric_limits<std::int64_t>::min()
            : static_cast<std::int64_t>(s.last_watermark),
        std::memory_order_relaxed);
    bytes_pushed_.store(s.bytes_pushed, std::memory_order_relaxed);
    bytes_popped_.store(s.bytes_popped, std::memory_order_relaxed);
    crc_rejects_.store(s.crc_rejects, std::memory_order_relaxed);
  }

  /// Bucket of batch size `n`: floor(log2(n)) clamped to the last bucket;
  /// sizes 0 and 1 share bucket 0.
  static std::size_t BatchSizeBucket(std::size_t n) {
    if (n < 2) return 0;
    const auto b = static_cast<std::size_t>(
        std::bit_width(static_cast<std::uint64_t>(n)) - 1);
    return b < kBatchSizeBuckets ? b : kBatchSizeBuckets - 1;
  }

  StageStatsSnapshot Snapshot() const {
    StageStatsSnapshot s;
    s.stage = name_;
    s.records_pushed = records_pushed_.load(std::memory_order_relaxed);
    s.records_popped = records_popped_.load(std::memory_order_relaxed);
    s.watermarks_pushed =
        watermarks_pushed_.load(std::memory_order_relaxed);
    s.watermarks_popped =
        watermarks_popped_.load(std::memory_order_relaxed);
    s.queue_depth = depth_.load(std::memory_order_relaxed);
    s.max_queue_depth = max_depth_.load(std::memory_order_relaxed);
    s.push_blocked_ms =
        static_cast<double>(
            push_blocked_ns_.load(std::memory_order_relaxed)) /
        1e6;
    s.pop_blocked_ms =
        static_cast<double>(
            pop_blocked_ns_.load(std::memory_order_relaxed)) /
        1e6;
    s.barriers_pushed = barriers_pushed_.load(std::memory_order_relaxed);
    s.barriers_popped = barriers_popped_.load(std::memory_order_relaxed);
    s.align_blocked_ms =
        static_cast<double>(
            align_blocked_ns_.load(std::memory_order_relaxed)) /
        1e6;
    s.snapshot_bytes = snapshot_bytes_.load(std::memory_order_relaxed);
    s.last_checkpoint_id =
        last_checkpoint_id_.load(std::memory_order_relaxed);
    s.batches_pushed = batches_pushed_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBatchSizeBuckets; ++i) {
      s.batch_size_histogram[i] =
          static_cast<std::int64_t>(
              batch_hist_[i].load(std::memory_order_relaxed));
    }
    s.avg_batch_size =
        s.batches_pushed > 0
            ? static_cast<double>(s.records_pushed + s.watermarks_pushed) /
                  static_cast<double>(s.batches_pushed)
            : 0.0;
    const std::int64_t wm = last_watermark_.load(std::memory_order_relaxed);
    s.last_watermark = wm == std::numeric_limits<std::int64_t>::min()
                           ? kNoTime
                           : static_cast<Timestamp>(wm);
    s.bytes_pushed = bytes_pushed_.load(std::memory_order_relaxed);
    s.bytes_popped = bytes_popped_.load(std::memory_order_relaxed);
    s.crc_rejects = crc_rejects_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  const std::string name_;
  std::atomic<std::int64_t> records_pushed_{0};
  std::atomic<std::int64_t> records_popped_{0};
  std::atomic<std::int64_t> watermarks_pushed_{0};
  std::atomic<std::int64_t> watermarks_popped_{0};
  std::atomic<std::int64_t> depth_{0};
  std::atomic<std::int64_t> max_depth_{0};
  std::atomic<std::uint64_t> push_blocked_ns_{0};
  std::atomic<std::uint64_t> pop_blocked_ns_{0};
  std::atomic<std::int64_t> barriers_pushed_{0};
  std::atomic<std::int64_t> barriers_popped_{0};
  std::atomic<std::uint64_t> align_blocked_ns_{0};
  std::atomic<std::int64_t> snapshot_bytes_{0};
  std::atomic<std::int64_t> last_checkpoint_id_{0};
  std::atomic<std::int64_t> batches_pushed_{0};
  std::array<std::atomic<std::uint64_t>, kBatchSizeBuckets> batch_hist_{};
  std::atomic<std::int64_t> last_watermark_{
      std::numeric_limits<std::int64_t>::min()};
  std::atomic<std::int64_t> bytes_pushed_{0};
  std::atomic<std::int64_t> bytes_popped_{0};
  std::atomic<std::int64_t> crc_rejects_{0};
};

/// Owns the StageStats of one pipeline run, keyed by stage name. Get()
/// returns a stable reference (stages are never removed), so exchanges can
/// hold raw pointers for the run's duration.
class StageStatsRegistry {
 public:
  StageStats& Get(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& stage : stages_) {
      if (stage->name() == name) return *stage;
    }
    stages_.push_back(std::make_unique<StageStats>(std::string(name)));
    return *stages_.back();
  }

  /// Snapshots every registered stage, in registration (pipeline) order.
  std::vector<StageStatsSnapshot> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<StageStatsSnapshot> out;
    out.reserve(stages_.size());
    for (const auto& stage : stages_) out.push_back(stage->Snapshot());
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<StageStats>> stages_;
};

/// Human-readable per-stage table. A stage with high push_blocked_ms is
/// throttled by a slow consumer downstream (backpressure); high
/// pop_blocked_ms means its consumers starve waiting for the producer.
/// `batches` counts producer-side lock round-trips and `avg_batch` the
/// elements each one moved - the batching amortisation at a glance. The
/// checkpoint columns (`barriers`, `align_blk_ms`, `snap_bytes`,
/// `last_ckpt`) show the barrier traffic, the alignment cost of the
/// consistent cut, and the state volume each stage contributes; all zero
/// when checkpointing is off.
inline void PrintStageStats(const std::vector<StageStatsSnapshot>& stages,
                            std::ostream& out) {
  const std::vector<StageStatsField>& fields = StageStatsFields();
  const auto width = [](const StageStatsField& f) {
    return static_cast<int>(std::strlen(f.column)) + 2;
  };
  out << std::left << std::setw(24) << "stage" << std::right;
  for (const StageStatsField& f : fields) out << std::setw(width(f)) << f.column;
  out << '\n';
  for (const StageStatsSnapshot& s : stages) {
    out << std::left << std::setw(24) << s.stage << std::right;
    for (const StageStatsField& f : fields) {
      const double v = f.value(s);
      if (f.integral) {
        out << std::setw(width(f)) << static_cast<std::int64_t>(v);
      } else {
        out << std::setw(width(f)) << std::fixed << std::setprecision(2)
            << v;
        out.unsetf(std::ios_base::floatfield);
      }
    }
    out << '\n';
  }
}

/// One line per stage with non-empty buckets, e.g.
/// `grid_allocate->grid_query  1:12  32:5  64:118` - 12 transfers moved a
/// single element, 118 moved 64..127. Complements the avg_batch column of
/// PrintStageStats when the distribution matters.
inline void PrintBatchHistogram(
    const std::vector<StageStatsSnapshot>& stages, std::ostream& out) {
  for (const StageStatsSnapshot& s : stages) {
    if (s.batches_pushed == 0) continue;
    out << std::left << std::setw(24) << s.stage << std::right;
    for (std::size_t i = 0; i < kBatchSizeBuckets; ++i) {
      if (s.batch_size_histogram[i] == 0) continue;
      out << "  " << (std::size_t{1} << i) << ':'
          << s.batch_size_histogram[i];
    }
    out << '\n';
  }
}

}  // namespace comove::flow

#endif  // COMOVE_FLOW_STAGE_STATS_H_
