#ifndef COMOVE_FLOW_TASK_GROUP_H_
#define COMOVE_FLOW_TASK_GROUP_H_

#include <functional>
#include <thread>
#include <utility>
#include <vector>

/// \file
/// Thread lifecycle helper for stage subtasks: spawn workers, join all on
/// destruction (so a job cannot leak running threads past its scope).

namespace comove::flow {

/// Owns a set of worker threads; joins them in the destructor or on
/// JoinAll(). Tasks must terminate on their own (channels signal
/// end-of-stream), there is no cancellation.
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup() { JoinAll(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Starts a worker running `fn`.
  void Spawn(std::function<void()> fn) {
    threads_.emplace_back(std::move(fn));
  }

  /// Starts `count` workers, each receiving its index [0, count).
  void SpawnIndexed(std::int32_t count,
                    const std::function<void(std::int32_t)>& fn) {
    for (std::int32_t i = 0; i < count; ++i) {
      threads_.emplace_back([fn, i] { fn(i); });
    }
  }

  /// Blocks until every spawned worker has finished.
  void JoinAll() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  std::size_t size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_TASK_GROUP_H_
