#include "flow/metrics_sampler.h"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "common/check.h"

namespace comove::flow {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

MetricsSampler::MetricsSampler(const StageStatsRegistry& registry,
                               std::int64_t interval_ms)
    : registry_(registry), interval_ms_(interval_ms) {
  COMOVE_CHECK(interval_ms > 0);
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  COMOVE_CHECK(!running_);
  running_ = true;
  stop_ = false;
  // Baseline for the first interval's deltas, taken before the thread
  // spawns: if the thread snapshotted it itself, any pipeline activity
  // racing its (scheduler-dependent) startup would be absorbed into the
  // baseline and vanish from the series.
  previous_ = registry_.Snapshot();
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

void MetricsSampler::Loop() {
  const Clock::time_point start = Clock::now();
  Clock::time_point last = start;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::milliseconds(interval_ms_), [&] { return stop_; });
    // Sample without the sampler lock held: registry snapshots take the
    // registry's own mutex and may briefly contend with the pipeline.
    lock.unlock();
    const Clock::time_point now = Clock::now();
    SampleOnce(
        std::chrono::duration<double, std::milli>(now - start).count(),
        std::chrono::duration<double, std::milli>(now - last).count());
    last = now;
    if (stopping) return;
    lock.lock();
  }
}

void MetricsSampler::SampleOnce(double t_ms, double interval_ms) {
  const std::vector<StageStatsSnapshot> current = registry_.Snapshot();
  MetricsSample sample;
  sample.t_ms = t_ms;
  sample.interval_ms = interval_ms;
  Timestamp wm_min = kNoTime;
  Timestamp wm_max = kNoTime;
  for (const StageStatsSnapshot& s : current) {
    // The registry only appends, so the previous snapshot is a prefix of
    // the current one; match by position with a name check for safety.
    const StageStatsSnapshot* prev = nullptr;
    const std::size_t i = sample.stages.size();
    if (i < previous_.size() && previous_[i].stage == s.stage) {
      prev = &previous_[i];
    }
    StageSample row;
    row.stage = s.stage;
    row.records_pushed =
        s.records_pushed - (prev != nullptr ? prev->records_pushed : 0);
    row.records_popped =
        s.records_popped - (prev != nullptr ? prev->records_popped : 0);
    row.queue_depth = s.queue_depth;
    row.push_blocked_ms =
        s.push_blocked_ms - (prev != nullptr ? prev->push_blocked_ms : 0.0);
    row.pop_blocked_ms =
        s.pop_blocked_ms - (prev != nullptr ? prev->pop_blocked_ms : 0.0);
    row.align_blocked_ms =
        s.align_blocked_ms -
        (prev != nullptr ? prev->align_blocked_ms : 0.0);
    row.barriers_popped =
        s.barriers_popped - (prev != nullptr ? prev->barriers_popped : 0);
    row.last_watermark = s.last_watermark;
    if (s.last_watermark != kNoTime) {
      if (wm_min == kNoTime || s.last_watermark < wm_min) {
        wm_min = s.last_watermark;
      }
      if (wm_max == kNoTime || s.last_watermark > wm_max) {
        wm_max = s.last_watermark;
      }
    }
    sample.stages.push_back(std::move(row));
  }
  if (wm_min != kNoTime) sample.watermark_lag = wm_max - wm_min;
  samples_.push_back(std::move(sample));
  previous_ = current;
}

void WriteTimeSeriesCsv(const std::vector<MetricsSample>& series,
                        std::ostream& out) {
  out << "t_ms,interval_ms,watermark_lag,stage,records_pushed,"
         "records_popped,records_per_sec,queue_depth,push_blocked_ms,"
         "pop_blocked_ms,align_blocked_ms,barriers_popped,last_watermark\n";
  for (const MetricsSample& sample : series) {
    for (const StageSample& s : sample.stages) {
      const double rps =
          sample.interval_ms > 0.0
              ? static_cast<double>(s.records_popped) /
                    (sample.interval_ms / 1e3)
              : 0.0;
      out << sample.t_ms << ',' << sample.interval_ms << ','
          << sample.watermark_lag << ',' << s.stage << ','
          << s.records_pushed << ',' << s.records_popped << ',' << rps
          << ',' << s.queue_depth << ',' << s.push_blocked_ms << ','
          << s.pop_blocked_ms << ',' << s.align_blocked_ms << ','
          << s.barriers_popped << ',' << s.last_watermark << '\n';
    }
  }
}

void WriteTimeSeriesJson(const std::vector<MetricsSample>& series,
                         std::ostream& out) {
  out << '[';
  for (std::size_t i = 0; i < series.size(); ++i) {
    const MetricsSample& sample = series[i];
    if (i > 0) out << ',';
    out << "\n    {\"t_ms\": " << sample.t_ms
        << ", \"interval_ms\": " << sample.interval_ms
        << ", \"watermark_lag\": " << sample.watermark_lag
        << ", \"stages\": [";
    for (std::size_t j = 0; j < sample.stages.size(); ++j) {
      const StageSample& s = sample.stages[j];
      if (j > 0) out << ',';
      out << "\n      {\"stage\": \"" << s.stage
          << "\", \"records_pushed\": " << s.records_pushed
          << ", \"records_popped\": " << s.records_popped
          << ", \"queue_depth\": " << s.queue_depth
          << ", \"push_blocked_ms\": " << s.push_blocked_ms
          << ", \"pop_blocked_ms\": " << s.pop_blocked_ms
          << ", \"align_blocked_ms\": " << s.align_blocked_ms
          << ", \"barriers_popped\": " << s.barriers_popped
          << ", \"last_watermark\": " << s.last_watermark << '}';
    }
    if (!sample.stages.empty()) out << "\n    ";
    out << "]}";
  }
  if (!series.empty()) out << "\n  ";
  out << ']';
}

}  // namespace comove::flow
