#ifndef COMOVE_FLOW_SNAPSHOT_ASSEMBLER_H_
#define COMOVE_FLOW_SNAPSHOT_ASSEMBLER_H_

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/serde.h"
#include "common/types.h"

/// \file
/// Transforms an out-of-order stream of GPS records into complete,
/// time-ordered snapshots using the paper's "last time" synchronisation
/// (§4): every record carries the time of its trajectory's previous report,
/// which proves whether the system must keep waiting for a missing
/// intermediate report.
///
/// Example from the paper: for trajectory records r1, r3 with r3.last = 2,
/// snapshot 2 must wait (a report at time 2 exists but has not arrived);
/// after r1, r2, r3, r5 with r5.last = 3, snapshot 4 need not wait (r5
/// proves no report at time 4 exists).

namespace comove::flow {

/// Event-driven assembler. Feed events; each call returns the snapshots
/// that became provably complete, in ascending time order. Records of one
/// trajectory may arrive out of order (they are chained back together via
/// last_time); trajectory *births* are bounded by AdvanceBirthBound, which
/// asserts that no trajectory will report its first record at a time <= t
/// anymore (the source derives this from its watermark).
class SnapshotAssembler {
 public:
  SnapshotAssembler() = default;

  /// Ingests one GPS record. Out-of-chain records are buffered until the
  /// missing predecessors arrive.
  std::vector<Snapshot> OnRecord(const GpsRecord& record);

  /// Declares that trajectory `id` has ended (no further reports).
  std::vector<Snapshot> OnTrajectoryEnd(TrajectoryId id);

  /// Asserts that no new trajectory will start at time <= t.
  std::vector<Snapshot> AdvanceBirthBound(Timestamp t);

  /// Stream end: applies any still-buffered records in time order
  /// (best-effort recovery from broken chains) and flushes all remaining
  /// snapshots.
  std::vector<Snapshot> Finish();

  /// Largest snapshot time emitted so far, or kNoTime.
  Timestamp emitted_through() const { return emitted_through_; }

  /// Serialises the assembler's full state (per-trajectory frontiers,
  /// buffered out-of-order records, accumulating snapshots) into a
  /// checkpoint; RestoreState rebuilds an equivalent assembler that
  /// continues the stream identically. Returns false on corrupt data.
  void SaveState(BinaryWriter* writer) const;
  [[nodiscard]] bool RestoreState(BinaryReader* reader);

  /// Number of records buffered waiting for their predecessor.
  std::size_t pending_records() const { return pending_count_; }

 private:
  struct TrajectoryState {
    Timestamp last_seen = kNoTime;  ///< time of latest applied record
    bool ended = false;
    /// Out-of-order records keyed by their last_time link.
    std::map<Timestamp, GpsRecord> pending;
  };

  /// Applies `record` to the snapshot accumulator (chain already checked).
  void Apply(const GpsRecord& record, TrajectoryState* state);

  /// Emits every snapshot with time <= the current provable horizon.
  std::vector<Snapshot> Drain();

  Timestamp Horizon() const;

  std::unordered_map<TrajectoryId, TrajectoryState> trajectories_;
  /// Multiset of last_seen horizons of live (seen, not ended) trajectories.
  std::multiset<Timestamp> live_horizons_;
  /// Accumulating snapshots keyed by time.
  std::map<Timestamp, std::vector<SnapshotEntry>> accumulating_;
  Timestamp birth_bound_ = kNoTime;
  Timestamp emitted_through_ = kNoTime;
  std::size_t pending_count_ = 0;
  bool finished_ = false;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_SNAPSHOT_ASSEMBLER_H_
