#ifndef COMOVE_FLOW_METRICS_H_
#define COMOVE_FLOW_METRICS_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/check.h"
#include "common/types.h"

/// \file
/// Latency/throughput metrics matching the paper's definitions (§7):
/// latency is the average response time per snapshot (ingest to final
/// result emission), throughput is the number of snapshots processed per
/// second.

namespace comove::flow {

/// Aggregated results of one pipeline run.
struct RunMetrics {
  std::int64_t snapshots = 0;
  double average_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double throughput_tps = 0.0;  ///< snapshots per second
  double wall_seconds = 0.0;
};

/// Thread-safe per-snapshot latency collector. Stages call
/// MarkIngest(time) when a snapshot enters the pipeline and
/// MarkComplete(time) when its last result has been emitted.
class SnapshotMetrics {
 public:
  using Clock = std::chrono::steady_clock;

  void MarkIngest(Timestamp snapshot_time) {
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    ingest_.emplace(snapshot_time, now);
    if (!started_) {
      start_ = now;
      started_ = true;
    }
  }

  void MarkComplete(Timestamp snapshot_time) {
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ingest_.find(snapshot_time);
    COMOVE_CHECK_MSG(it != ingest_.end(),
                     "snapshot %d completed without ingest mark",
                     snapshot_time);
    const double latency_ms =
        std::chrono::duration<double, std::milli>(now - it->second).count();
    ingest_.erase(it);
    total_latency_ms_ += latency_ms;
    if (latency_ms > max_latency_ms_) max_latency_ms_ = latency_ms;
    ++completed_;
    end_ = now;
  }

  /// Final aggregation; call after the pipeline has drained.
  RunMetrics Collect() const {
    std::lock_guard<std::mutex> lock(mu_);
    RunMetrics m;
    m.snapshots = completed_;
    if (completed_ > 0) {
      m.average_latency_ms =
          total_latency_ms_ / static_cast<double>(completed_);
      m.max_latency_ms = max_latency_ms_;
      m.wall_seconds = std::chrono::duration<double>(end_ - start_).count();
      m.throughput_tps = m.wall_seconds > 0.0
                             ? static_cast<double>(completed_) /
                                   m.wall_seconds
                             : 0.0;
    }
    return m;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<Timestamp, Clock::time_point> ingest_;
  double total_latency_ms_ = 0.0;
  double max_latency_ms_ = 0.0;
  std::int64_t completed_ = 0;
  bool started_ = false;
  Clock::time_point start_{};
  Clock::time_point end_{};
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_METRICS_H_
