#ifndef COMOVE_FLOW_METRICS_H_
#define COMOVE_FLOW_METRICS_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "flow/stage_stats.h"

/// \file
/// Latency/throughput metrics matching the paper's definitions (§7):
/// latency is the response time per snapshot (ingest to final result
/// emission), throughput is the number of snapshots processed per second.
/// Beyond the paper's average we keep a log-scale histogram of the
/// per-snapshot latencies, so a run also reports p50/p95/p99 - the tail
/// is where backpressure and watermark lag show up first.

namespace comove::flow {

/// Aggregated results of one pipeline run.
struct RunMetrics {
  std::int64_t snapshots = 0;
  double average_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Histogram estimates with within-bucket rank interpolation; see the
  /// error-bound test in metrics_test - a few percent relative error on
  /// smooth distributions, ~12.5% (one sub-bucket) worst case.
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double throughput_tps = 0.0;  ///< snapshots per second
  double wall_seconds = 0.0;
};

/// Thread-safe per-snapshot latency collector. Stages call
/// MarkIngest(time) when a snapshot enters the pipeline and
/// MarkComplete(time) when its last result has been emitted.
class SnapshotMetrics {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts the latency clock for `snapshot_time`. Each snapshot time may
  /// be ingested at most once per completion: a duplicate mark would
  /// silently measure from the first ingest and break the
  /// MarkComplete/MarkIngest pairing, so it aborts instead.
  void MarkIngest(Timestamp snapshot_time) {
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    const bool inserted = ingest_.emplace(snapshot_time, now).second;
    COMOVE_CHECK_MSG(inserted, "duplicate ingest mark for snapshot %d",
                     snapshot_time);
    if (!started_) {
      start_ = now;
      started_ = true;
    }
  }

  void MarkComplete(Timestamp snapshot_time) {
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ingest_.find(snapshot_time);
    COMOVE_CHECK_MSG(it != ingest_.end(),
                     "snapshot %d completed without ingest mark",
                     snapshot_time);
    const double latency_ms =
        std::chrono::duration<double, std::milli>(now - it->second).count();
    ingest_.erase(it);
    total_latency_ms_ += latency_ms;
    if (latency_ms > max_latency_ms_) max_latency_ms_ = latency_ms;
    histogram_.RecordMs(latency_ms);
    if (keep_per_snapshot_) per_snapshot_.emplace_back(snapshot_time,
                                                      latency_ms);
    ++completed_;
    end_ = now;
  }

  /// Opt into retaining every (snapshot_time, latency_ms) pair. Off by
  /// default - the aggregate histogram is O(1) per snapshot while this is
  /// O(n) memory; the trace exporter turns it on to rank the worst-k
  /// snapshots for the stage-latency breakdown.
  void KeepPerSnapshot(bool keep) {
    std::lock_guard<std::mutex> lock(mu_);
    keep_per_snapshot_ = keep;
  }

  /// The retained per-snapshot latencies, in completion order (empty
  /// unless KeepPerSnapshot(true) was set before the run).
  std::vector<std::pair<Timestamp, double>> PerSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return per_snapshot_;
  }

  /// Final aggregation; call after the pipeline has drained.
  RunMetrics Collect() const {
    std::lock_guard<std::mutex> lock(mu_);
    RunMetrics m;
    m.snapshots = completed_;
    if (completed_ > 0) {
      m.average_latency_ms =
          total_latency_ms_ / static_cast<double>(completed_);
      m.max_latency_ms = max_latency_ms_;
      m.p50_latency_ms = histogram_.PercentileMs(0.50);
      m.p95_latency_ms = histogram_.PercentileMs(0.95);
      m.p99_latency_ms = histogram_.PercentileMs(0.99);
      m.wall_seconds = std::chrono::duration<double>(end_ - start_).count();
      m.throughput_tps = m.wall_seconds > 0.0
                             ? static_cast<double>(completed_) /
                                   m.wall_seconds
                             : 0.0;
    }
    return m;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<Timestamp, Clock::time_point> ingest_;
  LatencyHistogram histogram_;
  double total_latency_ms_ = 0.0;
  double max_latency_ms_ = 0.0;
  bool keep_per_snapshot_ = false;
  std::vector<std::pair<Timestamp, double>> per_snapshot_;
  std::int64_t completed_ = 0;
  bool started_ = false;
  Clock::time_point start_{};
  Clock::time_point end_{};
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_METRICS_H_
