#ifndef COMOVE_FLOW_REORDER_BUFFER_H_
#define COMOVE_FLOW_REORDER_BUFFER_H_

#include <map>
#include <utility>
#include <vector>

#include "common/types.h"

/// \file
/// Reorders time-stamped items back into ascending time order using
/// watermarks: items may arrive out of order from parallel upstream
/// subtasks; once the aligned watermark passes time t, everything at t has
/// arrived and may be released.

namespace comove::flow {

/// Buffers items keyed by event time; DrainThrough(w) releases all items
/// with time <= w in ascending time order.
template <typename T>
class TimeReorderBuffer {
 public:
  void Add(Timestamp time, T value) {
    buffer_[time].push_back(std::move(value));
  }

  /// Releases (time, item) pairs for all buffered times <= `watermark`.
  std::vector<std::pair<Timestamp, T>> DrainThrough(Timestamp watermark) {
    std::vector<std::pair<Timestamp, T>> out;
    while (!buffer_.empty() && buffer_.begin()->first <= watermark) {
      const Timestamp t = buffer_.begin()->first;
      for (T& v : buffer_.begin()->second) {
        out.emplace_back(t, std::move(v));
      }
      buffer_.erase(buffer_.begin());
    }
    return out;
  }

  /// Releases everything regardless of watermark (stream end).
  std::vector<std::pair<Timestamp, T>> DrainAll() {
    std::vector<std::pair<Timestamp, T>> out;
    for (auto& [t, items] : buffer_) {
      for (T& v : items) out.emplace_back(t, std::move(v));
    }
    buffer_.clear();
    return out;
  }

  std::size_t buffered() const {
    std::size_t n = 0;
    for (const auto& [t, items] : buffer_) n += items.size();
    return n;
  }

 private:
  std::map<Timestamp, std::vector<T>> buffer_;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_REORDER_BUFFER_H_
