#ifndef COMOVE_FLOW_REORDER_BUFFER_H_
#define COMOVE_FLOW_REORDER_BUFFER_H_

#include <map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/serde.h"
#include "common/types.h"

/// \file
/// Reorders time-stamped items back into ascending time order using
/// watermarks: items may arrive out of order from parallel upstream
/// subtasks; once the aligned watermark passes time t, everything at t has
/// arrived and may be released.

namespace comove::flow {

/// Buffers items keyed by event time; DrainThrough(w) releases all items
/// with time <= w in ascending time order.
template <typename T>
class TimeReorderBuffer {
 public:
  void Add(Timestamp time, T value) {
    buffer_[time].push_back(std::move(value));
    ++count_;
  }

  /// Releases (time, item) pairs for all buffered times <= `watermark`.
  std::vector<std::pair<Timestamp, T>> DrainThrough(Timestamp watermark) {
    std::vector<std::pair<Timestamp, T>> out;
    while (!buffer_.empty() && buffer_.begin()->first <= watermark) {
      const Timestamp t = buffer_.begin()->first;
      for (T& v : buffer_.begin()->second) {
        out.emplace_back(t, std::move(v));
      }
      count_ -= buffer_.begin()->second.size();
      buffer_.erase(buffer_.begin());
    }
    return out;
  }

  /// Releases everything regardless of watermark (stream end).
  std::vector<std::pair<Timestamp, T>> DrainAll() {
    std::vector<std::pair<Timestamp, T>> out;
    for (auto& [t, items] : buffer_) {
      for (T& v : items) out.emplace_back(t, std::move(v));
    }
    buffer_.clear();
    count_ = 0;
    return out;
  }

  /// Number of buffered items. O(1): a running count is maintained by
  /// Add/DrainThrough/DrainAll/RestoreState - this is polled as a gauge on
  /// every MetricsSampler tick, where a scan over the buffered times would
  /// scale with the reorder window. Debug builds re-derive the count by
  /// scanning and assert agreement.
  std::size_t buffered() const {
    COMOVE_DCHECK(count_ == ScanCount());
    return count_;
  }

  /// Serialises the buffered items; `write_item(writer, item)` encodes
  /// each T (the buffer itself is item-type agnostic).
  template <typename WriteItem>
  void SaveState(BinaryWriter* writer, WriteItem&& write_item) const {
    writer->WriteU64(buffer_.size());
    for (const auto& [t, items] : buffer_) {
      writer->WriteI64(t);
      writer->WriteU64(items.size());
      for (const T& item : items) write_item(writer, item);
    }
  }

  /// Restores a SaveState image via `read_item(reader) -> T`; the reader's
  /// ok() flag reports item-level corruption. Returns false - leaving the
  /// buffer unchanged - on corrupt input; requires an empty buffer.
  template <typename ReadItem>
  [[nodiscard]] bool RestoreState(BinaryReader* reader,
                                  ReadItem&& read_item) {
    if (!buffer_.empty()) return false;
    std::map<Timestamp, std::vector<T>> restored;
    const std::uint64_t times = reader->ReadU64();
    if (!reader->ok() || times > reader->remaining()) return false;
    for (std::uint64_t i = 0; i < times; ++i) {
      const auto t = static_cast<Timestamp>(reader->ReadI64());
      const std::uint64_t count = reader->ReadU64();
      if (!reader->ok() || count > reader->remaining()) return false;
      std::vector<T>& items = restored[t];
      items.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t j = 0; j < count; ++j) {
        items.push_back(read_item(reader));
        if (!reader->ok()) return false;
      }
    }
    buffer_ = std::move(restored);
    count_ = ScanCount();
    return true;
  }

 private:
  /// The O(#times) reference count; buffered() asserts against it in
  /// debug builds, RestoreState derives the running count from it.
  std::size_t ScanCount() const {
    std::size_t n = 0;
    for (const auto& [t, items] : buffer_) n += items.size();
    return n;
  }

  std::map<Timestamp, std::vector<T>> buffer_;
  std::size_t count_ = 0;  ///< running total of buffered items
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_REORDER_BUFFER_H_
