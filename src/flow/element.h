#ifndef COMOVE_FLOW_ELEMENT_H_
#define COMOVE_FLOW_ELEMENT_H_

#include <cstdint>

#include "common/types.h"

/// \file
/// Stream elements: user data, a watermark punctuation, or a checkpoint
/// barrier. A watermark W(t) from producer p asserts that p has emitted
/// everything with event time <= t. Consumers align watermarks across
/// producers (minimum over inputs) before acting on them, mirroring
/// Flink's event-time watermark propagation. A checkpoint barrier B(n)
/// asserts that everything p emitted before it belongs to checkpoint n's
/// pre-image; consumers align barriers across producers (BarrierAligner)
/// before snapshotting their state - Flink's aligned asynchronous barrier
/// snapshotting.

namespace comove::flow {

/// A data / watermark / checkpoint-barrier envelope flowing through
/// channels.
template <typename T>
struct Element {
  enum class Kind : std::uint8_t { kData, kWatermark, kBarrier };

  Kind kind = Kind::kData;
  T data{};                       ///< valid when kind == kData
  Timestamp watermark = 0;        ///< valid when kind == kWatermark
  std::int64_t checkpoint = 0;    ///< valid when kind == kBarrier
  std::int32_t producer = 0;      ///< producing subtask index

  static Element Data(T value, std::int32_t producer) {
    Element e;
    e.kind = Kind::kData;
    e.data = std::move(value);
    e.producer = producer;
    return e;
  }

  static Element Watermark(Timestamp t, std::int32_t producer) {
    Element e;
    e.kind = Kind::kWatermark;
    e.watermark = t;
    e.producer = producer;
    return e;
  }

  static Element Barrier(std::int64_t checkpoint, std::int32_t producer) {
    Element e;
    e.kind = Kind::kBarrier;
    e.checkpoint = checkpoint;
    e.producer = producer;
    return e;
  }

  bool is_data() const { return kind == Kind::kData; }
  bool is_watermark() const { return kind == Kind::kWatermark; }
  bool is_barrier() const { return kind == Kind::kBarrier; }
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_ELEMENT_H_
