#include "flow/trace.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <ostream>
#include <string_view>
#include <unordered_map>

#include "common/check.h"

namespace comove::flow {

namespace {

/// Process-unique recorder ids so a thread's cached buffer pointer can
/// never be mistaken for another recorder's (even one reallocated at the
/// same address).
std::atomic<std::uint64_t> g_next_recorder_id{1};

/// Pipeline rank of a stage name (see kTraceStageOrder); unknown stages
/// sort after every known one, alphabetically via the caller.
std::size_t StageRank(std::string_view stage) {
  for (std::size_t i = 0; i < std::size(kTraceStageOrder); ++i) {
    if (stage == kTraceStageOrder[i]) return i;
  }
  return std::size(kTraceStageOrder);
}

/// Minimal JSON string escaping; stage/name values are code-controlled
/// literals, so this only has to be correct, not fast.
void WriteJsonString(std::string_view s, std::ostream& out) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

/// Smallest power of two >= n (n > 0).
std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

#ifdef COMOVE_TRACE_TSC
namespace trace_internal {

double NsPerTscTick() {
  static const double ns_per_tick = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = __rdtsc();
    // Spin ~1 ms: at GHz tick rates the two anchor reads' own jitter
    // (tens of ns) contributes well under 0.01% to the measured rate.
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(1)) {
    }
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t c1 = __rdtsc();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
           static_cast<double>(c1 - c0);
  }();
  return ns_per_tick;
}

}  // namespace trace_internal
#endif

TraceRecorder::TraceRecorder(std::size_t capacity_per_thread)
    : capacity_(RoundUpPow2(capacity_per_thread)),
#ifdef COMOVE_TRACE_TSC
      epoch_ticks_(__rdtsc()),
      ns_per_tick_(trace_internal::NsPerTscTick()),
#else
      epoch_(std::chrono::steady_clock::now()),
#endif
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {
  COMOVE_CHECK(capacity_per_thread > 0);
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer& TraceRecorder::RegisterThread(
    ThreadCache& cache) {
  // Re-registering after a recorder switch re-finds the thread's existing
  // buffer, so alternation between recorders never duplicates rings.
  std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  for (auto& [tid, buffer] : buffers_) {
    if (tid == self) {
      cache = ThreadCache{id_, buffer.get()};
      return *buffer;
    }
  }
  buffers_.emplace_back(self, std::make_unique<ThreadBuffer>(capacity_));
  cache = ThreadCache{id_, buffers_.back().second.get()};
  return *cache.buffer;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> events;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tid, buffer] : buffers_) {
    const std::uint64_t cursor =
        buffer->cursor.load(std::memory_order_relaxed);
    const std::uint64_t n = std::min<std::uint64_t>(
        cursor, static_cast<std::uint64_t>(buffer->ring.size()));
    // Oldest surviving event first: when wrapped, the slot at cursor %
    // size is the next overwrite target, i.e. the oldest survivor.
    const std::uint64_t first = cursor - n;
    for (std::uint64_t i = 0; i < n; ++i) {
      events.push_back(
          buffer->ring[static_cast<std::size_t>((first + i) %
                                                buffer->ring.size())]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

std::int64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& [tid, buffer] : buffers_) {
    total += static_cast<std::int64_t>(
        buffer->cursor.load(std::memory_order_relaxed));
  }
  return total;
}

std::int64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& [tid, buffer] : buffers_) {
    const std::uint64_t cursor =
        buffer->cursor.load(std::memory_order_relaxed);
    if (cursor > buffer->ring.size()) {
      total += static_cast<std::int64_t>(cursor - buffer->ring.size());
    }
  }
  return total;
}

std::size_t TraceRecorder::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  std::vector<ProcessTrace> processes(1);
  processes[0].process_name = "comove";
  processes[0].pid = 1;
  processes[0].events = Events();
  processes[0].recorded = recorded();
  processes[0].dropped = dropped();
  WriteChromeTraceMerged(processes, out);
}

void WriteChromeTraceMerged(const std::vector<ProcessTrace>& processes,
                            std::ostream& out) {
  // Stable lane numbering per process: one tid per (stage, subtask),
  // ordered along the pipeline so every process group reads source at
  // the top, enumerate and checkpoint at the bottom. tids only need to
  // be unique within their pid.
  using LaneKey =
      std::pair<std::pair<std::size_t, std::string>, std::int32_t>;
  std::vector<std::map<LaneKey, int>> lanes(processes.size());
  for (std::size_t p = 0; p < processes.size(); ++p) {
    for (const TraceEvent& e : processes[p].events) {
      lanes[p].emplace(std::make_pair(std::make_pair(StageRank(e.stage),
                                                     std::string(e.stage)),
                                      e.subtask),
                       0);
    }
    int next_tid = 1;
    for (auto& [key, tid] : lanes[p]) tid = next_tid++;
  }

  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  std::int64_t total_recorded = 0;
  std::int64_t total_dropped = 0;
  bool first = true;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    const ProcessTrace& proc = processes[p];
    total_recorded += proc.recorded;
    total_dropped += proc.dropped;
    out << (first ? "  " : ",\n  ");
    first = false;
    out << "{\"ph\": \"M\", \"pid\": " << proc.pid
        << ", \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": ";
    WriteJsonString(proc.process_name, out);
    out << "}}";
    out << ",\n  {\"ph\": \"M\", \"pid\": " << proc.pid
        << ", \"tid\": 0, \"name\": \"process_sort_index\", "
           "\"args\": {\"sort_index\": "
        << proc.pid << "}}";
    for (const auto& [key, tid] : lanes[p]) {
      out << ",\n  {\"ph\": \"M\", \"pid\": " << proc.pid
          << ", \"tid\": " << tid
          << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
      WriteJsonString(key.first.second + "[" + std::to_string(key.second) +
                          "]",
                      out);
      out << "}}";
      out << ",\n  {\"ph\": \"M\", \"pid\": " << proc.pid
          << ", \"tid\": " << tid
          << ", \"name\": \"thread_sort_index\", \"args\": {\"sort_index\": "
          << tid << "}}";
    }
    for (const TraceEvent& e : proc.events) {
      const int tid = lanes[p].at(std::make_pair(
          std::make_pair(StageRank(e.stage), std::string(e.stage)),
          e.subtask));
      // Chrome's ts/dur are microseconds (fractions allowed).
      const double ts_us = static_cast<double>(e.start_ns) / 1e3;
      out << ",\n  {\"ph\": ";
      if (e.dur_ns == 0) {
        out << "\"i\", \"s\": \"t\"";
      } else {
        out << "\"X\", \"dur\": " << static_cast<double>(e.dur_ns) / 1e3;
      }
      out << ", \"pid\": " << proc.pid << ", \"tid\": " << tid
          << ", \"ts\": " << ts_us << ", \"cat\": ";
      WriteJsonString(e.stage, out);
      out << ", \"name\": ";
      WriteJsonString(e.name, out);
      out << ", \"args\": {\"stage\": ";
      WriteJsonString(e.stage, out);
      out << ", \"subtask\": " << e.subtask
          << ", \"snapshot_time\": " << e.snapshot_time;
      if (e.aux != 0) out << ", \"aux\": " << e.aux;
      out << "}}";
    }
  }
  out << "\n], \"otherData\": {\"recorded\": " << total_recorded
      << ", \"dropped\": " << total_dropped << "}}\n";
}

std::vector<SnapshotStageBreakdown> BuildWorstSnapshotBreakdown(
    const std::vector<TraceEvent>& events,
    const std::vector<std::pair<Timestamp, double>>& latencies,
    std::size_t k) {
  // Worst-k snapshot times by measured end-to-end latency.
  std::vector<std::pair<Timestamp, double>> worst = latencies;
  std::stable_sort(worst.begin(), worst.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (worst.size() > k) worst.resize(k);

  // Per-(snapshot, stage) span-time sums over the selected snapshots.
  std::unordered_map<Timestamp, std::map<std::size_t, std::pair<std::string,
                                                                double>>>
      stage_sums;
  for (const auto& [t, latency] : worst) stage_sums[t];
  for (const TraceEvent& e : events) {
    if (e.snapshot_time == kNoTime || e.dur_ns == 0) continue;
    auto it = stage_sums.find(e.snapshot_time);
    if (it == stage_sums.end()) continue;
    auto& slot = it->second[StageRank(e.stage)];
    if (slot.first.empty()) slot.first = e.stage;
    slot.second += static_cast<double>(e.dur_ns) / 1e6;
  }

  std::vector<SnapshotStageBreakdown> breakdown;
  breakdown.reserve(worst.size());
  for (const auto& [t, latency] : worst) {
    SnapshotStageBreakdown row;
    row.snapshot_time = t;
    row.latency_ms = latency;
    for (const auto& [rank, stage] : stage_sums[t]) {
      row.stage_ms.emplace_back(stage.first, stage.second);
    }
    breakdown.push_back(std::move(row));
  }
  return breakdown;
}

void PrintSnapshotBreakdown(
    const std::vector<SnapshotStageBreakdown>& breakdown,
    std::ostream& out) {
  for (const SnapshotStageBreakdown& row : breakdown) {
    out << "snapshot " << row.snapshot_time << ": latency ";
    const auto flags = out.flags();
    out.setf(std::ios_base::fixed);
    const auto precision = out.precision(2);
    out << row.latency_ms << " ms";
    // Dominant stage first in the annotation, all stages in pipeline
    // order in the row - the reader sees both "who" and "where".
    const std::pair<std::string, double>* dominant = nullptr;
    for (const auto& stage : row.stage_ms) {
      if (dominant == nullptr || stage.second > dominant->second) {
        dominant = &stage;
      }
    }
    if (dominant != nullptr) {
      out << "  (dominated by " << dominant->first << ")";
    }
    for (const auto& [stage, ms] : row.stage_ms) {
      out << "  " << stage << "=" << ms;
    }
    out.flags(flags);
    out.precision(precision);
    out << '\n';
  }
}

}  // namespace comove::flow
