#ifndef COMOVE_FLOW_METRICS_SAMPLER_H_
#define COMOVE_FLOW_METRICS_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "flow/stage_stats.h"

/// \file
/// Live time-series metrics: a background thread that snapshots every
/// registered StageStats at a fixed cadence and keeps the per-interval
/// deltas. Where StageStats alone answers "how much in total", the series
/// answers "when": how queue depth, throughput, blocked time, and
/// watermark lag evolved over the run - the dashboard-style view Flink
/// deployments use to watch backpressure develop, captured here as data a
/// test or a plot can consume.
///
/// Sampling cost is one StageStatsRegistry::Snapshot per tick (a mutex and
/// a handful of relaxed loads per stage), so even a 10 ms cadence is
/// negligible next to the pipeline's own work.

namespace comove::flow {

/// One stage's activity during one sampling interval: counters are deltas
/// over the interval, gauges (queue_depth, last_watermark) are the values
/// at the sample instant.
struct StageSample {
  std::string stage;
  std::int64_t records_pushed = 0;   ///< delta over the interval
  std::int64_t records_popped = 0;   ///< delta over the interval
  std::int64_t queue_depth = 0;      ///< gauge at sample time
  double push_blocked_ms = 0.0;      ///< delta over the interval
  double pop_blocked_ms = 0.0;       ///< delta over the interval
  double align_blocked_ms = 0.0;     ///< checkpoint alignment stall delta
  std::int64_t barriers_popped = 0;  ///< delta over the interval
  Timestamp last_watermark = kNoTime;  ///< gauge at sample time
};

/// One tick of the time series: wall-clock position, actual interval
/// length (condvar wakeups jitter), per-stage activity, and the pipeline
/// watermark lag - the spread between the most- and least-advanced
/// stages' watermark gauges (kNoTime until two stages have seen one).
struct MetricsSample {
  double t_ms = 0.0;         ///< since sampler start
  double interval_ms = 0.0;  ///< measured, not nominal
  Timestamp watermark_lag = kNoTime;
  std::vector<StageSample> stages;
};

/// Background sampler over a StageStatsRegistry. Start() spawns the
/// thread; Stop() takes one final sample, joins, and makes samples()
/// safe to read. The registry must outlive the sampler.
class MetricsSampler {
 public:
  MetricsSampler(const StageStatsRegistry& registry,
                 std::int64_t interval_ms);

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  ~MetricsSampler();

  void Start();

  /// Idempotent; blocks until the sampling thread has exited. The final
  /// sample (covering the tail interval) is taken before exit, so no
  /// activity between the last tick and Stop() is lost.
  void Stop();

  /// The collected series. Only valid after Stop() (the sampling thread
  /// owns the vector while running).
  const std::vector<MetricsSample>& samples() const { return samples_; }

  std::int64_t interval_ms() const { return interval_ms_; }

 private:
  void Loop();
  void SampleOnce(double t_ms, double interval_ms);

  const StageStatsRegistry& registry_;
  const std::int64_t interval_ms_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  std::thread thread_;
  bool running_ = false;

  /// Written only by the sampling thread; read after Stop()'s join.
  std::vector<MetricsSample> samples_;
  std::vector<StageStatsSnapshot> previous_;
};

/// Writes the series as tidy/long CSV: one row per (sample, stage) with a
/// header line, ready for pandas / gnuplot. records_per_sec is derived
/// from the records_popped delta and the measured interval.
void WriteTimeSeriesCsv(const std::vector<MetricsSample>& series,
                        std::ostream& out);

/// Writes the series as a JSON array of sample objects (used inside the
/// result export's "time_series" field).
void WriteTimeSeriesJson(const std::vector<MetricsSample>& series,
                         std::ostream& out);

}  // namespace comove::flow

#endif  // COMOVE_FLOW_METRICS_SAMPLER_H_
