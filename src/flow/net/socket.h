#ifndef COMOVE_FLOW_NET_SOCKET_H_
#define COMOVE_FLOW_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/net_io.h"

/// \file
/// Stream-socket addressing for the net transport. Addresses are strings
/// with an explicit scheme so every tool flag, config frame, and log line
/// uses one format:
///
///   unix:/path/to/socket      UNIX-domain stream socket
///   tcp:127.0.0.1:PORT        TCP loopback (PORT 0 = ephemeral on listen)
///
/// Listen() returns the concrete address (ephemeral port resolved), which
/// is what coordinators advertise to workers.

namespace comove::flow::net {

/// A bound, listening socket plus its concrete address.
struct Listener {
  UniqueFd fd;
  std::string address;  ///< with the scheme, ephemeral port resolved

  bool valid() const { return fd.valid(); }
};

/// True when `address` carries a recognised scheme.
bool IsValidAddress(const std::string& address);

/// Binds and listens on `address`. On failure returns an invalid
/// Listener and fills `*error` when non-null.
Listener Listen(const std::string& address, std::string* error = nullptr);

/// Accepts one connection, waiting up to `timeout_ms` (< 0 = forever).
/// Returns an invalid fd on timeout or error.
UniqueFd Accept(const Listener& listener, std::int64_t timeout_ms);

/// Connects to `address`, retrying (the listener may still be coming up,
/// e.g. a worker dialing its coordinator) until `timeout_ms` elapses.
/// Returns an invalid fd on timeout or unrecoverable error.
UniqueFd Connect(const std::string& address, std::int64_t timeout_ms);

}  // namespace comove::flow::net

#endif  // COMOVE_FLOW_NET_SOCKET_H_
