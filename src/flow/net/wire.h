#ifndef COMOVE_FLOW_NET_WIRE_H_
#define COMOVE_FLOW_NET_WIRE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/serde.h"
#include "flow/element.h"
#include "flow/stage_stats.h"
#include "flow/trace.h"

/// \file
/// Serialisation of Element<T> envelopes for the socket transport. The
/// payload type's encoding is supplied as a Codec policy:
///
///   struct FooCodec {
///     static void Write(BinaryWriter* w, const Foo& value);
///     // Returns false (and/or fails the reader) on corrupt input.
///     static bool Read(BinaryReader* r, Foo* out);
///   };
///
/// so the transport templates stay payload-agnostic while the concrete
/// codecs (core/wire_codecs.h) reuse the checkpoint state serializers -
/// one binary convention for both state-at-rest and data-in-flight.
///
/// Envelope layout: [u8 kind][i32 producer][kind-specific body], where
/// data carries the Codec payload, watermarks an i64 timestamp, barriers
/// an i64 checkpoint id - watermarks and barriers travel in-band with
/// the data exactly as on in-process channels, which is what keeps
/// alignment and exactly-once recovery working across processes.

namespace comove::flow::net {

template <typename Codec, typename T>
void WriteElement(BinaryWriter* w, const Element<T>& e) {
  w->WriteU8(static_cast<std::uint8_t>(e.kind));
  w->WriteI32(e.producer);
  switch (e.kind) {
    case Element<T>::Kind::kData:
      Codec::Write(w, e.data);
      break;
    case Element<T>::Kind::kWatermark:
      w->WriteI64(static_cast<std::int64_t>(e.watermark));
      break;
    case Element<T>::Kind::kBarrier:
      w->WriteI64(e.checkpoint);
      break;
  }
}

/// Decodes one envelope; returns false (with the reader failed) on a
/// truncated body or an out-of-range kind tag.
template <typename Codec, typename T>
[[nodiscard]] bool ReadElement(BinaryReader* r, Element<T>* out) {
  const std::uint8_t kind = r->ReadU8();
  out->producer = r->ReadI32();
  if (!r->ok() ||
      kind > static_cast<std::uint8_t>(Element<T>::Kind::kBarrier)) {
    r->MarkCorrupt();
    return false;
  }
  out->kind = static_cast<typename Element<T>::Kind>(kind);
  switch (out->kind) {
    case Element<T>::Kind::kData:
      if (!Codec::Read(r, &out->data)) {
        r->MarkCorrupt();
        return false;
      }
      break;
    case Element<T>::Kind::kWatermark:
      out->watermark = static_cast<Timestamp>(r->ReadI64());
      break;
    case Element<T>::Kind::kBarrier:
      out->checkpoint = r->ReadI64();
      break;
  }
  return r->ok();
}

/// Encodes a batch body: [u32 count][count x element]. The consumer
/// index and edge tag are part of the enclosing frame message, not of
/// this body.
template <typename Codec, typename T>
void WriteElementBatch(BinaryWriter* w,
                       const std::vector<Element<T>>& batch) {
  w->WriteU32(static_cast<std::uint32_t>(batch.size()));
  for (const Element<T>& e : batch) WriteElement<Codec>(w, e);
}

/// Decodes a batch body into `out` (appended). Returns false on any
/// corruption; `out` may then hold a prefix of the batch, which the
/// caller discards.
template <typename Codec, typename T>
[[nodiscard]] bool ReadElementBatch(BinaryReader* r,
                                    std::vector<Element<T>>* out) {
  const std::uint32_t count = r->ReadU32();
  if (!r->ok() || count > r->remaining()) {
    // Every element costs >= 1 byte on the wire; a count beyond
    // remaining() is corruption, not a large batch.
    r->MarkCorrupt();
    return false;
  }
  out->reserve(out->size() + count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Element<T> e;
    if (!ReadElement<Codec>(r, &e)) return false;
    out->push_back(std::move(e));
  }
  return true;
}

// --- Observability payloads -------------------------------------------
//
// Control frames of a distributed run ship stage-stats snapshots and
// trace events from worker processes to the coordinator. Both use the
// same BinaryWriter/BinaryReader conventions as the element envelopes;
// decoders fail the reader (never trust a length) on corrupt input.

/// Body layout: [string stage][17 x i64/double fixed fields]
/// [kBatchSizeBuckets x i64][i64 last_watermark as raw i64]. Field order
/// is frozen here, independent of StageStatsFields() display order.
inline void WriteStageStatsSnapshot(BinaryWriter* w,
                                    const StageStatsSnapshot& s) {
  w->WriteString(s.stage);
  w->WriteI64(s.records_pushed);
  w->WriteI64(s.records_popped);
  w->WriteI64(s.watermarks_pushed);
  w->WriteI64(s.watermarks_popped);
  w->WriteI64(s.queue_depth);
  w->WriteI64(s.max_queue_depth);
  w->WriteDouble(s.push_blocked_ms);
  w->WriteDouble(s.pop_blocked_ms);
  w->WriteI64(s.barriers_pushed);
  w->WriteI64(s.barriers_popped);
  w->WriteDouble(s.align_blocked_ms);
  w->WriteI64(s.snapshot_bytes);
  w->WriteI64(s.last_checkpoint_id);
  w->WriteI64(s.batches_pushed);
  w->WriteDouble(s.avg_batch_size);
  for (std::int64_t b : s.batch_size_histogram) w->WriteI64(b);
  w->WriteI64(static_cast<std::int64_t>(s.last_watermark));
  w->WriteI64(s.bytes_pushed);
  w->WriteI64(s.bytes_popped);
  w->WriteI64(s.crc_rejects);
}

[[nodiscard]] inline bool ReadStageStatsSnapshot(BinaryReader* r,
                                                 StageStatsSnapshot* out) {
  out->stage = r->ReadString();
  out->records_pushed = r->ReadI64();
  out->records_popped = r->ReadI64();
  out->watermarks_pushed = r->ReadI64();
  out->watermarks_popped = r->ReadI64();
  out->queue_depth = r->ReadI64();
  out->max_queue_depth = r->ReadI64();
  out->push_blocked_ms = r->ReadDouble();
  out->pop_blocked_ms = r->ReadDouble();
  out->barriers_pushed = r->ReadI64();
  out->barriers_popped = r->ReadI64();
  out->align_blocked_ms = r->ReadDouble();
  out->snapshot_bytes = r->ReadI64();
  out->last_checkpoint_id = r->ReadI64();
  out->batches_pushed = r->ReadI64();
  out->avg_batch_size = r->ReadDouble();
  for (std::int64_t& b : out->batch_size_histogram) b = r->ReadI64();
  out->last_watermark = static_cast<Timestamp>(r->ReadI64());
  out->bytes_pushed = r->ReadI64();
  out->bytes_popped = r->ReadI64();
  out->crc_rejects = r->ReadI64();
  return r->ok();
}

/// Owns the stage/name strings of trace events decoded off the wire.
/// TraceEvent stores `const char*` (string literals in-process), so a
/// decoder needs stable backing storage; cardinality is tiny (one entry
/// per distinct stage/op name), so a linear scan under a mutex is fine.
/// Thread-safe: several link reader threads may decode concurrently.
class TraceStringTable {
 public:
  const char* Intern(std::string_view s) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& have : strings_) {
      if (have == s) return have.c_str();
    }
    strings_.emplace_back(s);
    return strings_.back().c_str();
  }

 private:
  std::mutex mu_;
  std::deque<std::string> strings_;  ///< deque: stable c_str() addresses
};

/// Body layout: [string stage][string name][i32 subtask]
/// [i64 snapshot_time][i64 aux][u64 start_ns][u64 dur_ns].
inline void WriteTraceEvent(BinaryWriter* w, const TraceEvent& e) {
  w->WriteString(e.stage != nullptr ? e.stage : "");
  w->WriteString(e.name != nullptr ? e.name : "");
  w->WriteI32(e.subtask);
  w->WriteI64(static_cast<std::int64_t>(e.snapshot_time));
  w->WriteI64(e.aux);
  w->WriteU64(e.start_ns);
  w->WriteU64(e.dur_ns);
}

[[nodiscard]] inline bool ReadTraceEvent(BinaryReader* r,
                                         TraceStringTable* strings,
                                         TraceEvent* out) {
  const std::string stage = r->ReadString();
  const std::string name = r->ReadString();
  if (!r->ok()) return false;
  out->stage = strings->Intern(stage);
  out->name = strings->Intern(name);
  out->subtask = r->ReadI32();
  out->snapshot_time = static_cast<Timestamp>(r->ReadI64());
  out->aux = r->ReadI64();
  out->start_ns = r->ReadU64();
  out->dur_ns = r->ReadU64();
  return r->ok();
}

}  // namespace comove::flow::net

#endif  // COMOVE_FLOW_NET_WIRE_H_
