#ifndef COMOVE_FLOW_NET_WIRE_H_
#define COMOVE_FLOW_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "flow/element.h"

/// \file
/// Serialisation of Element<T> envelopes for the socket transport. The
/// payload type's encoding is supplied as a Codec policy:
///
///   struct FooCodec {
///     static void Write(BinaryWriter* w, const Foo& value);
///     // Returns false (and/or fails the reader) on corrupt input.
///     static bool Read(BinaryReader* r, Foo* out);
///   };
///
/// so the transport templates stay payload-agnostic while the concrete
/// codecs (core/wire_codecs.h) reuse the checkpoint state serializers -
/// one binary convention for both state-at-rest and data-in-flight.
///
/// Envelope layout: [u8 kind][i32 producer][kind-specific body], where
/// data carries the Codec payload, watermarks an i64 timestamp, barriers
/// an i64 checkpoint id - watermarks and barriers travel in-band with
/// the data exactly as on in-process channels, which is what keeps
/// alignment and exactly-once recovery working across processes.

namespace comove::flow::net {

template <typename Codec, typename T>
void WriteElement(BinaryWriter* w, const Element<T>& e) {
  w->WriteU8(static_cast<std::uint8_t>(e.kind));
  w->WriteI32(e.producer);
  switch (e.kind) {
    case Element<T>::Kind::kData:
      Codec::Write(w, e.data);
      break;
    case Element<T>::Kind::kWatermark:
      w->WriteI64(static_cast<std::int64_t>(e.watermark));
      break;
    case Element<T>::Kind::kBarrier:
      w->WriteI64(e.checkpoint);
      break;
  }
}

/// Decodes one envelope; returns false (with the reader failed) on a
/// truncated body or an out-of-range kind tag.
template <typename Codec, typename T>
[[nodiscard]] bool ReadElement(BinaryReader* r, Element<T>* out) {
  const std::uint8_t kind = r->ReadU8();
  out->producer = r->ReadI32();
  if (!r->ok() ||
      kind > static_cast<std::uint8_t>(Element<T>::Kind::kBarrier)) {
    r->MarkCorrupt();
    return false;
  }
  out->kind = static_cast<typename Element<T>::Kind>(kind);
  switch (out->kind) {
    case Element<T>::Kind::kData:
      if (!Codec::Read(r, &out->data)) {
        r->MarkCorrupt();
        return false;
      }
      break;
    case Element<T>::Kind::kWatermark:
      out->watermark = static_cast<Timestamp>(r->ReadI64());
      break;
    case Element<T>::Kind::kBarrier:
      out->checkpoint = r->ReadI64();
      break;
  }
  return r->ok();
}

/// Encodes a batch body: [u32 count][count x element]. The consumer
/// index and edge tag are part of the enclosing frame message, not of
/// this body.
template <typename Codec, typename T>
void WriteElementBatch(BinaryWriter* w,
                       const std::vector<Element<T>>& batch) {
  w->WriteU32(static_cast<std::uint32_t>(batch.size()));
  for (const Element<T>& e : batch) WriteElement<Codec>(w, e);
}

/// Decodes a batch body into `out` (appended). Returns false on any
/// corruption; `out` may then hold a prefix of the batch, which the
/// caller discards.
template <typename Codec, typename T>
[[nodiscard]] bool ReadElementBatch(BinaryReader* r,
                                    std::vector<Element<T>>* out) {
  const std::uint32_t count = r->ReadU32();
  if (!r->ok() || count > r->remaining()) {
    // Every element costs >= 1 byte on the wire; a count beyond
    // remaining() is corruption, not a large batch.
    r->MarkCorrupt();
    return false;
  }
  out->reserve(out->size() + count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Element<T> e;
    if (!ReadElement<Codec>(r, &e)) return false;
    out->push_back(std::move(e));
  }
  return true;
}

}  // namespace comove::flow::net

#endif  // COMOVE_FLOW_NET_WIRE_H_
