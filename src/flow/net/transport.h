#ifndef COMOVE_FLOW_NET_TRANSPORT_H_
#define COMOVE_FLOW_NET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "flow/channel.h"
#include "flow/element.h"

/// \file
/// The transport seam of the dataflow: everything a producer subtask may
/// do to the edge between two task groups, abstracted away from how the
/// edge moves bytes. Two implementations exist:
///
///   - Exchange<T> (flow/exchange.h): the in-process default - every
///     consumer channel lives in this process and pushes are direct
///     Channel operations. Zero behaviour change vs the pre-seam engine.
///   - SocketTransport<T> (flow/net/socket_transport.h): consumers may
///     live in other processes; data, watermarks and checkpoint barriers
///     are serialized into length-prefixed CRC-guarded frames and shipped
///     over UNIX-domain or TCP-loopback sockets, arriving in the remote
///     process's consumer channels via a demux reader thread.
///
/// The consumer side is identical for both: a consumer drains its input
/// Channel<Element<T>> and sees the exact same PollResult semantics
/// (kItem while elements remain - including residual batched elements
/// after every producer closed - then kFinished). The conformance test
/// suite (tests/transport_conformance_test.cc) pins this contract against
/// both implementations.
///
/// Ordering contract (what barrier alignment and watermark alignment
/// need): per (producer, consumer) pair, elements arrive in send order.
/// Cross-producer interleaving is unspecified, as with bare channels.

namespace comove::flow {

/// Producer-side edge interface between two task groups.
template <typename T>
class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::int32_t producers() const = 0;
  virtual std::int32_t consumers() const = 0;

  /// Sends a data element from `producer` to consumer subtask
  /// `partition`.
  virtual void Send(std::int32_t producer, std::size_t partition,
                    T value) = 0;

  /// Ships a pre-built batch of elements (all tagged with their
  /// producer) to one consumer in a single transfer: one lock round-trip
  /// in process, one wire frame across processes. The batch is drained
  /// in place so its capacity is reused by the caller.
  virtual void PushBatch(std::int32_t producer, std::size_t partition,
                         std::vector<Element<T>>&& batch) = 0;

  /// Broadcasts watermark `t` from `producer` to every consumer.
  virtual void BroadcastWatermark(std::int32_t producer, Timestamp t) = 0;

  /// Broadcasts checkpoint barrier `checkpoint` from `producer` to every
  /// consumer. Everything this producer sent before the barrier belongs
  /// to the checkpoint's pre-image on every channel (FIFO per producer).
  virtual void BroadcastBarrier(std::int32_t producer,
                                std::int64_t checkpoint) = 0;

  /// Marks `producer` as finished on every consumer channel (local ones
  /// directly, remote ones via an in-band close notification).
  virtual void CloseProducer(std::int32_t producer) = 0;

  /// Cancels every locally-hosted consumer channel (crash teardown; see
  /// Channel::Cancel). Remote consumers learn of the crash from their
  /// side's connection teardown.
  virtual void Cancel() = 0;

  /// The input channel of consumer subtask `consumer`; only valid for
  /// consumers hosted in this process.
  virtual Channel<Element<T>>& channel(std::int32_t consumer) = 0;
};

}  // namespace comove::flow

#endif  // COMOVE_FLOW_NET_TRANSPORT_H_
