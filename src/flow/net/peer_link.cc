#include "flow/net/peer_link.h"

#include <sys/socket.h>

#include <chrono>

#include "common/frame.h"

namespace comove::flow::net {

namespace {

std::uint64_t MonotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

PeerLink::~PeerLink() { Shutdown(); }

bool PeerLink::SendFrame(std::string_view payload) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (dead_.load(std::memory_order_relaxed)) return false;
  send_buffer_.clear();
  AppendFrame(&send_buffer_, payload);
  const std::uint64_t t0 = stats_ != nullptr ? MonotonicNowNs() : 0;
  if (!WriteFull(fd_.get(), send_buffer_.data(), send_buffer_.size())) {
    dead_.store(true, std::memory_order_release);
    return false;
  }
  if (stats_ != nullptr) {
    stats_->OnLinkFrameSent(static_cast<std::int64_t>(send_buffer_.size()),
                            MonotonicNowNs() - t0);
  }
  return true;
}

bool PeerLink::ReadOneFrame(std::string* payload) {
  const std::uint64_t t0 = stats_ != nullptr ? MonotonicNowNs() : 0;
  char header_bytes[kFrameHeaderBytes];
  if (!ReadFull(fd_.get(), header_bytes, sizeof(header_bytes))) {
    return false;
  }
  const auto header = DecodeFrameHeader(header_bytes);
  if (!header) {
    if (stats_ != nullptr) stats_->OnCrcReject();
    return false;
  }
  payload->resize(header->payload_bytes);
  if (header->payload_bytes > 0 &&
      !ReadFull(fd_.get(), payload->data(), payload->size())) {
    return false;
  }
  if (!ValidateFramePayload(*header, *payload)) {
    if (stats_ != nullptr) stats_->OnCrcReject();
    return false;
  }
  if (stats_ != nullptr) {
    stats_->OnLinkFrameReceived(
        static_cast<std::int64_t>(sizeof(header_bytes) + payload->size()),
        MonotonicNowNs() - t0);
  }
  return true;
}

bool PeerLink::ReadFrameBlocking(std::string* payload,
                                 std::int64_t timeout_ms) {
  if (!PollReadable(fd_.get(), timeout_ms)) return false;
  return ReadOneFrame(payload);
}

void PeerLink::Start(std::function<void(std::string_view)> on_frame,
                     std::function<void()> on_close) {
  reader_ = std::thread([this, on_frame = std::move(on_frame),
                         on_close = std::move(on_close)] {
    while (ReadOneFrame(&read_buffer_)) {
      on_frame(read_buffer_);
    }
    dead_.store(true, std::memory_order_release);
    if (on_close) on_close();
  });
}

void PeerLink::CloseSend() {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

void PeerLink::Shutdown() {
  if (reader_.joinable()) reader_.join();
  dead_.store(true, std::memory_order_release);
  fd_.Reset();
}

}  // namespace comove::flow::net
