#ifndef COMOVE_FLOW_NET_SOCKET_TRANSPORT_H_
#define COMOVE_FLOW_NET_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/serde.h"
#include "flow/net/peer_link.h"
#include "flow/net/transport.h"
#include "flow/net/wire.h"

/// \file
/// The multi-process Transport implementation. One SocketTransport
/// instance represents one logical edge (e.g. cluster -> enumerate) as
/// seen by one process: consumer subtasks in [local_lo, local_hi) are
/// hosted here as ordinary bounded channels; every other consumer is
/// reached through the PeerLink of the process hosting it.
///
/// Wire path: Send/PushBatch/Broadcast* serialize Element envelopes
/// (data, watermarks, and barriers all in-band) into one CRC-guarded
/// frame per destination consumer:
///
///   [u8 kMsgElements][u8 edge][i32 consumer][u32 count][count x element]
///
/// The receiving process's link reader thread dispatches the frame to its
/// SocketTransport of the same edge, which decodes and PushBatch-es into
/// the consumer's local channel - so the consumer side is bit-for-bit the
/// in-process contract: per-producer FIFO, watermark alignment, barrier
/// alignment, and PollResult semantics all unchanged. Backpressure
/// propagates naturally: a full local channel blocks the reader thread,
/// which stops draining the socket, which blocks the remote writer.
///
/// Producer close travels in-band too:
///
///   [u8 kMsgCloseProducer][u8 edge][i32 producer]
///
/// one frame per peer process; the receiver closes one producer slot on
/// every local channel of the edge, so each channel sees exactly
/// `producers` closes no matter where the producers ran.
///
/// A dead link makes sends no-ops (like pushes to a cancelled channel);
/// the driver decides crash semantics when a link dies.

namespace comove::flow::net {

/// First payload byte of every transport frame. Drivers may define
/// further control messages above kMsgFirstControl on the same links.
enum class MsgType : std::uint8_t {
  kElements = 1,
  kCloseProducer = 2,
  kFirstControl = 16,
};

template <typename T, typename Codec>
class SocketTransport final : public Transport<T> {
 public:
  /// `route[c]` is the link to the process hosting consumer `c`, or
  /// nullptr when `c` is local (then local_lo <= c < local_hi must
  /// hold). Local channels register all `producers` regardless of where
  /// those producers run.
  SocketTransport(std::int32_t producers, std::int32_t consumers,
                  std::uint8_t edge, std::int32_t local_lo,
                  std::int32_t local_hi, std::vector<PeerLink*> route,
                  std::size_t capacity_per_channel,
                  StageStats* stats = nullptr)
      : producers_(producers),
        consumers_(consumers),
        edge_(edge),
        local_lo_(local_lo),
        local_hi_(local_hi),
        route_(std::move(route)) {
    COMOVE_CHECK(producers > 0 && consumers > 0);
    COMOVE_CHECK(route_.size() == static_cast<std::size_t>(consumers));
    COMOVE_CHECK(local_lo >= 0 && local_lo <= local_hi &&
                 local_hi <= consumers);
    for (std::int32_t c = local_lo_; c < local_hi_; ++c) {
      COMOVE_CHECK(route_[static_cast<std::size_t>(c)] == nullptr);
      locals_.push_back(std::make_unique<Channel<Element<T>>>(
          capacity_per_channel, stats));
      for (std::int32_t p = 0; p < producers; ++p) {
        locals_.back()->RegisterProducer();
      }
    }
  }

  std::int32_t producers() const override { return producers_; }
  std::int32_t consumers() const override { return consumers_; }
  std::uint8_t edge() const { return edge_; }

  void Send(std::int32_t producer, std::size_t partition,
            T value) override {
    Element<T> e = Element<T>::Data(std::move(value), producer);
    if (IsLocal(partition)) {
      Local(partition).Push(std::move(e));
      return;
    }
    std::vector<Element<T>> one;
    one.push_back(std::move(e));
    ShipRemote(partition, one);
  }

  void PushBatch(std::int32_t /*producer*/, std::size_t partition,
                 std::vector<Element<T>>&& batch) override {
    if (IsLocal(partition)) {
      Local(partition).PushBatch(std::move(batch));
      return;
    }
    ShipRemote(partition, batch);
    // Drained-in-place contract: the caller reuses the capacity.
    batch.clear();
  }

  void BroadcastWatermark(std::int32_t producer, Timestamp t) override {
    BroadcastElement(Element<T>::Watermark(t, producer));
  }

  void BroadcastBarrier(std::int32_t producer,
                        std::int64_t checkpoint) override {
    BroadcastElement(Element<T>::Barrier(checkpoint, producer));
  }

  void CloseProducer(std::int32_t producer) override {
    for (auto& ch : locals_) ch->CloseProducer();
    // One close frame per distinct peer; its transport closes one
    // producer slot on each of ITS local channels of this edge.
    std::string payload;
    for (PeerLink* link : DistinctPeers()) {
      payload.clear();
      BinaryWriter writer(&payload);
      writer.WriteU8(static_cast<std::uint8_t>(MsgType::kCloseProducer));
      writer.WriteU8(edge_);
      writer.WriteI32(producer);
      link->SendFrame(payload);
    }
  }

  void Cancel() override {
    for (auto& ch : locals_) ch->Cancel();
  }

  Channel<Element<T>>& channel(std::int32_t consumer) override {
    COMOVE_CHECK(IsLocal(static_cast<std::size_t>(consumer)));
    return Local(static_cast<std::size_t>(consumer));
  }

  // --- Receiving side, called from link reader threads. ---

  /// Decodes a kMsgElements body (reader positioned after the edge tag)
  /// and delivers it into the local consumer channel. Returns false on a
  /// corrupt frame.
  [[nodiscard]] bool OnElements(BinaryReader* reader) {
    const std::int32_t consumer = reader->ReadI32();
    if (!reader->ok() || !IsLocal(static_cast<std::size_t>(consumer))) {
      return false;
    }
    std::vector<Element<T>> batch;
    if (!ReadElementBatch<Codec>(reader, &batch) || !reader->AtEnd()) {
      return false;
    }
    Local(static_cast<std::size_t>(consumer)).PushBatch(std::move(batch));
    return true;
  }

  /// Handles a kMsgCloseProducer body: one remote producer finished, so
  /// every local channel of this edge loses one producer slot.
  void OnCloseProducer() {
    for (auto& ch : locals_) ch->CloseProducer();
  }

  /// Closes one producer slot on every local channel `n` times - used by
  /// a driver tearing down after a peer died without closing cleanly, so
  /// local consumers still drain and finish.
  void ForceCloseProducers(std::int32_t n) {
    for (std::int32_t i = 0; i < n; ++i) OnCloseProducer();
  }

 private:
  bool IsLocal(std::size_t consumer) const {
    return consumer >= static_cast<std::size_t>(local_lo_) &&
           consumer < static_cast<std::size_t>(local_hi_);
  }

  Channel<Element<T>>& Local(std::size_t consumer) {
    return *locals_[consumer - static_cast<std::size_t>(local_lo_)];
  }

  /// Serializes `batch` into one frame for `consumer`'s host process.
  /// A dead link drops the frame (driver handles the crash).
  void ShipRemote(std::size_t consumer,
                  const std::vector<Element<T>>& batch) {
    PeerLink* link = route_[consumer];
    COMOVE_CHECK(link != nullptr);
    std::string payload;
    BinaryWriter writer(&payload);
    writer.WriteU8(static_cast<std::uint8_t>(MsgType::kElements));
    writer.WriteU8(edge_);
    writer.WriteI32(static_cast<std::int32_t>(consumer));
    WriteElementBatch<Codec>(&writer, batch);
    // The link row's batch histogram counts elements per shipped frame,
    // the remote twin of the channel-side amortisation histogram.
    if (StageStats* link_stats = link->stats(); link_stats != nullptr) {
      link_stats->OnBatchPushed(batch.size());
    }
    link->SendFrame(payload);
  }

  /// Stack-local scratch per call: several producer threads share the
  /// transport object (every cluster subtask broadcasts on the partition
  /// edge), so no member buffers on the producer path.
  void BroadcastElement(const Element<T>& e) {
    std::vector<Element<T>> one;
    for (std::size_t c = 0; c < route_.size(); ++c) {
      if (IsLocal(c)) {
        Local(c).Push(e);
      } else {
        one.clear();
        one.push_back(e);
        ShipRemote(c, one);
      }
    }
  }

  std::vector<PeerLink*> DistinctPeers() const {
    std::vector<PeerLink*> peers;
    for (PeerLink* link : route_) {
      if (link == nullptr) continue;
      bool seen = false;
      for (PeerLink* p : peers) seen = seen || (p == link);
      if (!seen) peers.push_back(link);
    }
    return peers;
  }

  const std::int32_t producers_;
  const std::int32_t consumers_;
  const std::uint8_t edge_;
  const std::int32_t local_lo_;
  const std::int32_t local_hi_;
  std::vector<PeerLink*> route_;
  std::vector<std::unique_ptr<Channel<Element<T>>>> locals_;
};

}  // namespace comove::flow::net

#endif  // COMOVE_FLOW_NET_SOCKET_TRANSPORT_H_
