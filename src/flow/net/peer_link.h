#ifndef COMOVE_FLOW_NET_PEER_LINK_H_
#define COMOVE_FLOW_NET_PEER_LINK_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "common/net_io.h"
#include "flow/stage_stats.h"

/// \file
/// One framed, full-duplex connection between two processes of a
/// distributed run. Writers from any thread share SendFrame (one mutex,
/// one WriteFull per frame - the frames themselves are batched by the
/// transport, so the lock is amortised exactly like a channel lock); a
/// single reader thread decodes [len][crc][payload] frames and hands each
/// payload to the owner's dispatcher.
///
/// A dead link (peer closed, write error, CRC mismatch) never throws:
/// SendFrame starts returning false - senders treat that like a
/// cancelled channel - and on_close fires exactly once, which is how a
/// process learns that a peer crashed.

namespace comove::flow::net {

class PeerLink {
 public:
  explicit PeerLink(UniqueFd fd) : fd_(std::move(fd)) {}
  ~PeerLink();

  PeerLink(const PeerLink&) = delete;
  PeerLink& operator=(const PeerLink&) = delete;

  /// Frames `payload` and writes it out; thread-safe. Returns false once
  /// the link is dead (the frame is dropped, like a push to a cancelled
  /// channel).
  bool SendFrame(std::string_view payload);

  /// Blocking single-frame read for the pre-Start handshake (HELLO /
  /// CONFIG exchange) - must not race the reader thread, so only valid
  /// before Start(). Returns false on EOF, timeout, or corruption.
  bool ReadFrameBlocking(std::string* payload, std::int64_t timeout_ms);

  /// Starts the reader thread. `on_frame` runs on that thread for every
  /// valid frame; `on_close` runs exactly once when the stream ends (EOF,
  /// error, or corruption). Handlers may block (that is the backpressure
  /// path) but must not call back into Start/Shutdown.
  void Start(std::function<void(std::string_view)> on_frame,
             std::function<void()> on_close);

  /// Half-closes the send side: the peer's reader sees EOF after
  /// draining. Safe to call with the reader running.
  void CloseSend();

  /// Joins the reader (waiting for the peer to close its send side) and
  /// closes the socket. Idempotent.
  void Shutdown();

  /// True once a send failed or the stream ended.
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Attaches per-link counters (frames/bytes each way, syscall blocked
  /// time, CRC rejects - see the link columns of StageStatsSnapshot).
  /// Not synchronised: set it during single-threaded setup, after any
  /// handshake frames that should stay uncounted and before Start() /
  /// concurrent SendFrame use. Null (the default) keeps the data path
  /// free of clock reads.
  void set_stats(StageStats* stats) { stats_ = stats; }
  StageStats* stats() const { return stats_; }

 private:
  bool ReadOneFrame(std::string* payload);

  UniqueFd fd_;
  std::mutex send_mu_;
  std::string send_buffer_;  ///< reused header+payload scratch
  std::atomic<bool> dead_{false};
  std::thread reader_;
  std::string read_buffer_;  ///< reader-thread payload scratch
  StageStats* stats_ = nullptr;
};

}  // namespace comove::flow::net

#endif  // COMOVE_FLOW_NET_PEER_LINK_H_
