#include "flow/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace comove::flow::net {
namespace {

constexpr char kUnixScheme[] = "unix:";
constexpr char kTcpScheme[] = "tcp:";

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message + ": " + ::strerror(errno);
}

/// Splits "tcp:HOST:PORT"; returns false on malformed input.
bool ParseTcp(const std::string& address, std::string* host, int* port) {
  const std::string rest = address.substr(sizeof(kTcpScheme) - 1);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  *host = rest.substr(0, colon);
  try {
    *port = std::stoi(rest.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return *port >= 0 && *port <= 65535;
}

/// The latency knob that matters on loopback: batched frames are already
/// syscall-sized, so Nagle only adds delay.
void TuneTcp(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

UniqueFd ConnectOnce(const std::string& address) {
  if (HasPrefix(address, kUnixScheme)) {
    const std::string path = address.substr(sizeof(kUnixScheme) - 1);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return UniqueFd();
    ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) return UniqueFd();
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return UniqueFd();
    }
    return fd;
  }
  if (HasPrefix(address, kTcpScheme)) {
    std::string host;
    int port = 0;
    if (!ParseTcp(address, &host, &port)) return UniqueFd();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return UniqueFd();
    }
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return UniqueFd();
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return UniqueFd();
    }
    TuneTcp(fd.get());
    return fd;
  }
  return UniqueFd();
}

}  // namespace

bool IsValidAddress(const std::string& address) {
  return HasPrefix(address, kUnixScheme) || HasPrefix(address, kTcpScheme);
}

Listener Listen(const std::string& address, std::string* error) {
  Listener listener;
  if (HasPrefix(address, kUnixScheme)) {
    const std::string path = address.substr(sizeof(kUnixScheme) - 1);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix path empty or too long";
      return listener;
    }
    ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // stale socket from a previous run
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      SetError(error, "socket(AF_UNIX)");
      return listener;
    }
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd.get(), SOMAXCONN) != 0) {
      SetError(error, "bind/listen " + address);
      return listener;
    }
    listener.fd = std::move(fd);
    listener.address = address;
    return listener;
  }
  if (HasPrefix(address, kTcpScheme)) {
    std::string host;
    int port = 0;
    if (!ParseTcp(address, &host, &port)) {
      if (error != nullptr) *error = "malformed tcp address " + address;
      return listener;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      if (error != nullptr) *error = "bad tcp host " + host;
      return listener;
    }
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
      SetError(error, "socket(AF_INET)");
      return listener;
    }
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd.get(), SOMAXCONN) != 0) {
      SetError(error, "bind/listen " + address);
      return listener;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      SetError(error, "getsockname");
      return listener;
    }
    listener.fd = std::move(fd);
    listener.address =
        std::string(kTcpScheme) + host + ":" +
        std::to_string(ntohs(bound.sin_port));
    return listener;
  }
  if (error != nullptr) *error = "unknown address scheme: " + address;
  return listener;
}

UniqueFd Accept(const Listener& listener, std::int64_t timeout_ms) {
  if (!PollReadable(listener.fd.get(), timeout_ms)) return UniqueFd();
  for (;;) {
    const int fd = ::accept(listener.fd.get(), nullptr, nullptr);
    if (fd >= 0) {
      UniqueFd result(fd);
      if (HasPrefix(listener.address, kTcpScheme)) TuneTcp(fd);
      return result;
    }
    if (errno != EINTR) return UniqueFd();
  }
}

UniqueFd Connect(const std::string& address, std::int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    UniqueFd fd = ConnectOnce(address);
    if (fd.valid()) return fd;
    if (std::chrono::steady_clock::now() >= deadline) return UniqueFd();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace comove::flow::net
