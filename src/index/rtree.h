#ifndef COMOVE_INDEX_RTREE_H_
#define COMOVE_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/geometry.h"
#include "common/types.h"

/// \file
/// An in-memory R-tree over points with R*-style insertion heuristics
/// (Beckmann et al. [3] in the paper): ChooseSubtree by minimal overlap /
/// area enlargement, axis-and-distribution split selection, and forced
/// reinsertion on the first overflow of each level. The GR-index builds
/// one R-tree per grid cell per snapshot (§5.1); trees are insert-and-query
/// only and are discarded with the snapshot, so deletion is not provided.

namespace comove {

/// Tuning knobs for the R-tree. Defaults follow the R*-paper conventions
/// (40% minimum fill, 30% forced-reinsert share).
struct RTreeOptions {
  std::int32_t max_entries = 16;  ///< node capacity (>= 4)
  std::int32_t min_entries = 6;   ///< minimum fill after split (>= 2)
  bool enable_reinsert = true;    ///< R* forced reinsertion on overflow

  bool IsValid() const {
    return max_entries >= 4 && min_entries >= 2 &&
           min_entries <= max_entries / 2;
  }
};

/// Point R-tree keyed by TrajectoryId payloads.
class RTree {
 public:
  /// Opaque page type (defined in rtree.cc).
  struct Node;

  explicit RTree(RTreeOptions options = {});
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// Inserts a point with its payload id.
  void Insert(const Point& p, TrajectoryId id);

  /// Removes every point but RETAINS the allocated pages (and their entry
  /// arrays) in an internal pool that subsequent Inserts draw from. The
  /// GR-index hot path builds one tree per cell per snapshot; a worker
  /// that Clear()s and refills a single RTree instead of constructing a
  /// fresh one reaches steady state with zero page allocations.
  void Clear();

  /// Builds a tree from a full point set with Sort-Tile-Recursive (STR)
  /// bulk loading: O(n log n), produces near-fully-packed leaves with far
  /// better build time than repeated insertion. The natural choice for
  /// the GR-index, whose local trees are built fresh per snapshot - but
  /// note that Lemma 2's query-DURING-build trick requires incremental
  /// insertion, so bulk loading only serves build-then-query plans.
  /// `points` and `ids` must have equal lengths. Replaces any contents.
  static RTree BulkLoad(std::vector<Point> points,
                        std::vector<TrajectoryId> ids,
                        RTreeOptions options = {});

  /// Collects payloads of all points inside the closed rectangle `region`.
  void QueryRect(const Rect& region,
                 std::vector<TrajectoryId>* out) const;

  /// Invokes `fn(id, point)` for every point inside `region`.
  void QueryRect(const Rect& region,
                 const std::function<void(TrajectoryId, const Point&)>& fn)
      const;

  /// Range query of Definition 10: payloads of all points with L1 distance
  /// to `center` at most `eps` (rectangle filter + exact L1 refinement).
  void QueryRange(const Point& center, double eps,
                  std::vector<TrajectoryId>* out) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree; 0 for an empty tree, 1 for a single leaf root.
  std::int32_t Height() const;

  /// MBR of all indexed points (Rect::Empty() when empty).
  Rect BoundingBox() const;

  /// Verifies structural invariants (MBR containment, fill factors, uniform
  /// leaf depth). Returns false and stops at the first violation. Intended
  /// for tests.
  bool CheckInvariants() const;

 private:
  Node* ChooseSubtree(const Rect& mbr, std::int32_t target_level);
  void HandleOverflow(Node* node, bool allow_reinsert);
  void SplitNode(Node* node);
  void ReinsertEntries(Node* node);
  void AdjustUpward(Node* node);
  std::unique_ptr<Node> AcquireNode(std::int32_t level);
  void ReleaseSubtree(std::unique_ptr<Node> node);

  RTreeOptions options_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::vector<std::unique_ptr<Node>> page_pool_;  ///< recycled by Clear()
};

}  // namespace comove

#endif  // COMOVE_INDEX_RTREE_H_
