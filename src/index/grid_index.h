#ifndef COMOVE_INDEX_GRID_INDEX_H_
#define COMOVE_INDEX_GRID_INDEX_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/geometry.h"

/// \file
/// The global layer of the GR-index (§5.1): a uniform grid over the plane.
/// The key of the cell containing o = (x, y) is <floor(x/lg), floor(y/lg)>
/// where lg is the grid cell width. In the distributed framework each cell
/// key doubles as the partitioning key that routes GridObjects to subtasks.

namespace comove {

/// Key of one grid cell.
struct GridKey {
  std::int32_t cx = 0;
  std::int32_t cy = 0;

  friend bool operator==(const GridKey& a, const GridKey& b) {
    return a.cx == b.cx && a.cy == b.cy;
  }
  friend bool operator<(const GridKey& a, const GridKey& b) {
    return a.cx != b.cx ? a.cx < b.cx : a.cy < b.cy;
  }
};

/// Hash functor for GridKey (usable with std::unordered_map and as the
/// stream-engine partitioning function).
struct GridKeyHash {
  std::size_t operator()(const GridKey& k) const {
    // 2-D -> 1-D mix; the multiplier splits the bits of cx away from cy.
    std::uint64_t h = (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(k.cx))
                       << 32) |
                      static_cast<std::uint32_t>(k.cy);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    h *= 0xC4CEB9FE1A85EC53ULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

/// Stateless grid geometry: key computation and cell-range enumeration.
class GridIndex {
 public:
  /// \param cell_width the grid cell width lg (> 0)
  explicit GridIndex(double cell_width) : cell_width_(cell_width) {
    COMOVE_CHECK(cell_width > 0.0);
  }

  double cell_width() const { return cell_width_; }

  /// Key of the cell containing `p` (§5.1 "Key Computation").
  GridKey KeyOf(const Point& p) const {
    return GridKey{Floor(p.x), Floor(p.y)};
  }

  /// All cell keys whose cells intersect the closed rectangle `region`.
  std::vector<GridKey> KeysIntersecting(const Rect& region) const {
    std::vector<GridKey> keys;
    const std::int32_t x0 = Floor(region.min_x);
    const std::int32_t x1 = Floor(region.max_x);
    const std::int32_t y0 = Floor(region.min_y);
    const std::int32_t y1 = Floor(region.max_y);
    keys.reserve(static_cast<std::size_t>(x1 - x0 + 1) *
                 static_cast<std::size_t>(y1 - y0 + 1));
    ForEachKeyIntersecting(region, [&keys](const GridKey& k) {
      keys.push_back(k);
    });
    return keys;
  }

  /// KeysIntersecting without materialising the key vector: invokes `fn`
  /// for every intersecting key in the same (cx-major) order. The hot
  /// allocation path (GridAllocate runs this once per snapshot entry)
  /// uses this form so cell enumeration allocates nothing.
  template <typename Fn>
  void ForEachKeyIntersecting(const Rect& region, Fn&& fn) const {
    const std::int32_t x0 = Floor(region.min_x);
    const std::int32_t x1 = Floor(region.max_x);
    const std::int32_t y0 = Floor(region.min_y);
    const std::int32_t y1 = Floor(region.max_y);
    for (std::int32_t cx = x0; cx <= x1; ++cx) {
      for (std::int32_t cy = y0; cy <= y1; ++cy) {
        fn(GridKey{cx, cy});
      }
    }
  }

  /// The spatial extent of cell `key`.
  Rect CellRect(const GridKey& key) const {
    const double x = static_cast<double>(key.cx) * cell_width_;
    const double y = static_cast<double>(key.cy) * cell_width_;
    return Rect{x, y, x + cell_width_, y + cell_width_};
  }

 private:
  std::int32_t Floor(double v) const {
    return static_cast<std::int32_t>(std::floor(v / cell_width_));
  }

  double cell_width_;
};

}  // namespace comove

#endif  // COMOVE_INDEX_GRID_INDEX_H_
