#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"

namespace comove {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

/// One R-tree page. Leaf pages (level 0) store points and payload ids;
/// internal pages store child pages. `mbr` always covers the subtree.
struct RTree::Node {
  Rect mbr = Rect::Empty();
  Node* parent = nullptr;
  std::int32_t level = 0;  // 0 = leaf

  std::vector<Point> points;
  std::vector<TrajectoryId> ids;
  std::vector<std::unique_ptr<Node>> children;

  bool is_leaf() const { return level == 0; }

  std::size_t entry_count() const {
    return is_leaf() ? points.size() : children.size();
  }

  Rect EntryMbr(std::size_t i) const {
    return is_leaf() ? Rect::FromPoint(points[i]) : children[i]->mbr;
  }

  void RecomputeMbr() {
    mbr = Rect::Empty();
    for (std::size_t i = 0; i < entry_count(); ++i) {
      mbr.ExpandToInclude(EntryMbr(i));
    }
  }
};

RTree::RTree(RTreeOptions options) : options_(options) {
  COMOVE_CHECK(options_.IsValid());
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

std::unique_ptr<RTree::Node> RTree::AcquireNode(std::int32_t level) {
  std::unique_ptr<Node> node;
  if (!page_pool_.empty()) {
    node = std::move(page_pool_.back());
    page_pool_.pop_back();
    // Recycled pages keep the capacity of their entry arrays - that is
    // the point of the pool - but start logically empty.
    node->mbr = Rect::Empty();
    node->parent = nullptr;
    node->points.clear();
    node->ids.clear();
  } else {
    node = std::make_unique<Node>();
  }
  node->level = level;
  return node;
}

void RTree::ReleaseSubtree(std::unique_ptr<Node> node) {
  std::vector<std::unique_ptr<Node>> stack;
  stack.push_back(std::move(node));
  while (!stack.empty()) {
    std::unique_ptr<Node> page = std::move(stack.back());
    stack.pop_back();
    for (auto& child : page->children) stack.push_back(std::move(child));
    page->children.clear();
    page_pool_.push_back(std::move(page));
  }
}

void RTree::Clear() {
  if (root_ != nullptr) ReleaseSubtree(std::move(root_));
  size_ = 0;
}

RTree::Node* RTree::ChooseSubtree(const Rect& mbr, std::int32_t target_level) {
  Node* node = root_.get();
  while (node->level > target_level) {
    // R* heuristic: when the children are leaves, minimise overlap
    // enlargement; higher up, minimise area enlargement.
    const bool children_are_leaves = node->level == 1;
    std::size_t best = 0;
    double best_primary = kInf;
    double best_secondary = kInf;
    double best_area = kInf;
    for (std::size_t i = 0; i < node->children.size(); ++i) {
      const Node& child = *node->children[i];
      Rect enlarged = child.mbr;
      enlarged.ExpandToInclude(mbr);
      const double area = child.mbr.Area();
      const double area_enlargement = enlarged.Area() - area;
      double primary;
      if (children_are_leaves) {
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (std::size_t j = 0; j < node->children.size(); ++j) {
          if (j == i) continue;
          overlap_before += child.mbr.OverlapArea(node->children[j]->mbr);
          overlap_after += enlarged.OverlapArea(node->children[j]->mbr);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = area_enlargement;
      }
      const double secondary = children_are_leaves ? area_enlargement : area;
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           area < best_area)) {
        best = i;
        best_primary = primary;
        best_secondary = secondary;
        best_area = area;
      }
    }
    node = node->children[best].get();
  }
  return node;
}

void RTree::Insert(const Point& p, TrajectoryId id) {
  if (root_ == nullptr) {
    root_ = AcquireNode(/*level=*/0);
  }
  Node* leaf = ChooseSubtree(Rect::FromPoint(p), /*target_level=*/0);
  leaf->points.push_back(p);
  leaf->ids.push_back(id);
  leaf->mbr.ExpandToInclude(p);
  AdjustUpward(leaf->parent);
  ++size_;
  if (leaf->entry_count() > static_cast<std::size_t>(options_.max_entries)) {
    HandleOverflow(leaf, options_.enable_reinsert);
  }
}

void RTree::HandleOverflow(Node* node, bool allow_reinsert) {
  // R* forced reinsertion: on the first overflow of a leaf (and only once
  // per Insert), evict the entries farthest from the node centre and
  // reinsert them; this defers splits and improves clustering. Internal
  // overflows always split (a common leaf-only-reinsert simplification).
  if (allow_reinsert && node->is_leaf() && node->parent != nullptr) {
    ReinsertEntries(node);
    return;
  }
  SplitNode(node);
}

void RTree::ReinsertEntries(Node* node) {
  const Point center = node->mbr.Center();
  const std::size_t n = node->points.size();
  const std::size_t reinsert_count = std::max<std::size_t>(1, (n * 3) / 10);

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return L2Distance(node->points[a], center) >
           L2Distance(node->points[b], center);
  });

  std::vector<Point> evicted_points;
  std::vector<TrajectoryId> evicted_ids;
  std::vector<bool> evict(n, false);
  for (std::size_t i = 0; i < reinsert_count; ++i) {
    evict[order[i]] = true;
    evicted_points.push_back(node->points[order[i]]);
    evicted_ids.push_back(node->ids[order[i]]);
  }
  std::vector<Point> kept_points;
  std::vector<TrajectoryId> kept_ids;
  for (std::size_t i = 0; i < n; ++i) {
    if (!evict[i]) {
      kept_points.push_back(node->points[i]);
      kept_ids.push_back(node->ids[i]);
    }
  }
  node->points = std::move(kept_points);
  node->ids = std::move(kept_ids);
  node->RecomputeMbr();
  AdjustUpward(node->parent);

  // Close reinsertion (farthest first already ordered): entries re-enter
  // through the normal path, but further overflows split immediately.
  for (std::size_t i = 0; i < evicted_points.size(); ++i) {
    Node* leaf = ChooseSubtree(Rect::FromPoint(evicted_points[i]), 0);
    leaf->points.push_back(evicted_points[i]);
    leaf->ids.push_back(evicted_ids[i]);
    leaf->mbr.ExpandToInclude(evicted_points[i]);
    AdjustUpward(leaf->parent);
    if (leaf->entry_count() >
        static_cast<std::size_t>(options_.max_entries)) {
      HandleOverflow(leaf, /*allow_reinsert=*/false);
    }
  }
}

namespace {

/// A detachable node entry used during splits, covering both leaf entries
/// (point + id) and internal entries (child page).
struct SplitEntry {
  Rect mbr;
  Point point;
  TrajectoryId id = 0;
  std::unique_ptr<RTree::Node> child;
};

double MarginOfPrefix(const std::vector<SplitEntry>& entries,
                      std::size_t begin, std::size_t end) {
  Rect r = Rect::Empty();
  for (std::size_t i = begin; i < end; ++i) r.ExpandToInclude(entries[i].mbr);
  return r.Perimeter();
}

Rect MbrOfRange(const std::vector<SplitEntry>& entries, std::size_t begin,
                std::size_t end) {
  Rect r = Rect::Empty();
  for (std::size_t i = begin; i < end; ++i) r.ExpandToInclude(entries[i].mbr);
  return r;
}

}  // namespace

void RTree::SplitNode(Node* node) {
  const std::size_t total = node->entry_count();
  const std::size_t min_fill = static_cast<std::size_t>(options_.min_entries);
  COMOVE_CHECK(total > static_cast<std::size_t>(options_.max_entries));

  // Detach all entries.
  std::vector<SplitEntry> entries;
  entries.reserve(total);
  if (node->is_leaf()) {
    for (std::size_t i = 0; i < total; ++i) {
      SplitEntry e;
      e.mbr = Rect::FromPoint(node->points[i]);
      e.point = node->points[i];
      e.id = node->ids[i];
      entries.push_back(std::move(e));
    }
    node->points.clear();
    node->ids.clear();
  } else {
    for (auto& child : node->children) {
      SplitEntry e;
      e.mbr = child->mbr;
      e.child = std::move(child);
      entries.push_back(std::move(e));
    }
    node->children.clear();
  }

  // R* split: choose the axis with minimal total margin over all valid
  // distributions (entries sorted by MBR centre along the axis), then the
  // distribution with minimal overlap (ties: minimal total area).
  double best_axis_margin = kInf;
  int best_axis = 0;
  for (int axis = 0; axis < 2; ++axis) {
    std::sort(entries.begin(), entries.end(),
              [axis](const SplitEntry& a, const SplitEntry& b) {
                const Point ca = a.mbr.Center();
                const Point cb = b.mbr.Center();
                return axis == 0 ? ca.x < cb.x : ca.y < cb.y;
              });
    double margin_sum = 0.0;
    for (std::size_t k = min_fill; k + min_fill <= total; ++k) {
      margin_sum += MarginOfPrefix(entries, 0, k) +
                    MarginOfPrefix(entries, k, total);
    }
    if (margin_sum < best_axis_margin) {
      best_axis_margin = margin_sum;
      best_axis = axis;
    }
  }
  std::sort(entries.begin(), entries.end(),
            [best_axis](const SplitEntry& a, const SplitEntry& b) {
              const Point ca = a.mbr.Center();
              const Point cb = b.mbr.Center();
              return best_axis == 0 ? ca.x < cb.x : ca.y < cb.y;
            });

  std::size_t best_k = min_fill;
  double best_overlap = kInf;
  double best_area = kInf;
  for (std::size_t k = min_fill; k + min_fill <= total; ++k) {
    const Rect left = MbrOfRange(entries, 0, k);
    const Rect right = MbrOfRange(entries, k, total);
    const double overlap = left.OverlapArea(right);
    const double area = left.Area() + right.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  // Build the sibling and refill both nodes.
  std::unique_ptr<Node> sibling = AcquireNode(node->level);
  auto refill = [](Node* dst, std::vector<SplitEntry>& src, std::size_t begin,
                   std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (dst->is_leaf()) {
        dst->points.push_back(src[i].point);
        dst->ids.push_back(src[i].id);
      } else {
        src[i].child->parent = dst;
        dst->children.push_back(std::move(src[i].child));
      }
    }
    dst->RecomputeMbr();
  };
  refill(node, entries, 0, best_k);
  refill(sibling.get(), entries, best_k, total);

  if (node->parent == nullptr) {
    // Split of the root: grow the tree by one level.
    std::unique_ptr<Node> new_root = AcquireNode(node->level + 1);
    std::unique_ptr<Node> old_root = std::move(root_);
    old_root->parent = new_root.get();
    sibling->parent = new_root.get();
    new_root->children.push_back(std::move(old_root));
    new_root->children.push_back(std::move(sibling));
    new_root->RecomputeMbr();
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  sibling->parent = parent;
  parent->children.push_back(std::move(sibling));
  AdjustUpward(parent);
  if (parent->entry_count() >
      static_cast<std::size_t>(options_.max_entries)) {
    SplitNode(parent);
  }
}

namespace {

/// Splits `total` items into `parts` contiguous group sizes differing by
/// at most one.
std::vector<std::size_t> EvenSplit(std::size_t total, std::size_t parts) {
  std::vector<std::size_t> sizes(parts, total / parts);
  for (std::size_t i = 0; i < total % parts; ++i) ++sizes[i];
  return sizes;
}

/// STR tiling plan for `total` items at node capacity `capacity`:
/// the sizes of the vertical slabs and, per slab, the node sizes. Even
/// splitting keeps every node (when more than one exists) at >= cap/2
/// entries, satisfying the min-fill invariant for min_entries <= cap/2.
struct StrTiling {
  std::vector<std::size_t> slab_sizes;
  std::vector<std::vector<std::size_t>> node_sizes;  ///< per slab
};

StrTiling PlanStrTiling(std::size_t total, std::size_t capacity) {
  StrTiling plan;
  const std::size_t node_count = (total + capacity - 1) / capacity;
  const auto slabs = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(node_count))));
  plan.slab_sizes = EvenSplit(total, slabs);
  for (const std::size_t slab : plan.slab_sizes) {
    const std::size_t nodes = (slab + capacity - 1) / capacity;
    plan.node_sizes.push_back(nodes == 0 ? std::vector<std::size_t>{}
                                         : EvenSplit(slab, nodes));
  }
  return plan;
}

}  // namespace

RTree RTree::BulkLoad(std::vector<Point> points,
                      std::vector<TrajectoryId> ids, RTreeOptions options) {
  COMOVE_CHECK(points.size() == ids.size());
  RTree tree(options);
  if (points.empty()) return tree;
  const auto capacity = static_cast<std::size_t>(options.max_entries);

  // Leaf level: sort by x, slice into vertical slabs, sort each slab by
  // y, pack contiguous runs into leaves.
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return points[a].x < points[b].x;
  });
  std::vector<std::unique_ptr<Node>> level;
  const StrTiling leaf_plan = PlanStrTiling(points.size(), capacity);
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < leaf_plan.slab_sizes.size(); ++s) {
    const std::size_t end = cursor + leaf_plan.slab_sizes[s];
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(cursor),
              order.begin() + static_cast<std::ptrdiff_t>(end),
              [&](std::size_t a, std::size_t b) {
                return points[a].y < points[b].y;
              });
    for (const std::size_t node_size : leaf_plan.node_sizes[s]) {
      auto leaf = std::make_unique<Node>();
      leaf->level = 0;
      for (std::size_t j = 0; j < node_size; ++j, ++cursor) {
        leaf->points.push_back(points[order[cursor]]);
        leaf->ids.push_back(ids[order[cursor]]);
      }
      leaf->RecomputeMbr();
      level.push_back(std::move(leaf));
    }
  }

  // Upper levels: pack node MBR centres with the same tiling.
  std::int32_t current_level = 0;
  while (level.size() > 1) {
    ++current_level;
    std::sort(level.begin(), level.end(),
              [](const std::unique_ptr<Node>& a,
                 const std::unique_ptr<Node>& b) {
                return a->mbr.Center().x < b->mbr.Center().x;
              });
    const StrTiling plan = PlanStrTiling(level.size(), capacity);
    std::vector<std::unique_ptr<Node>> parents;
    cursor = 0;
    for (std::size_t s = 0; s < plan.slab_sizes.size(); ++s) {
      const std::size_t end = cursor + plan.slab_sizes[s];
      std::sort(level.begin() + static_cast<std::ptrdiff_t>(cursor),
                level.begin() + static_cast<std::ptrdiff_t>(end),
                [](const std::unique_ptr<Node>& a,
                   const std::unique_ptr<Node>& b) {
                  return a->mbr.Center().y < b->mbr.Center().y;
                });
      for (const std::size_t node_size : plan.node_sizes[s]) {
        auto parent = std::make_unique<Node>();
        parent->level = current_level;
        for (std::size_t j = 0; j < node_size; ++j, ++cursor) {
          level[cursor]->parent = parent.get();
          parent->children.push_back(std::move(level[cursor]));
        }
        parent->RecomputeMbr();
        parents.push_back(std::move(parent));
      }
    }
    level = std::move(parents);
  }

  tree.root_ = std::move(level.front());
  tree.size_ = points.size();
  return tree;
}

void RTree::AdjustUpward(Node* node) {
  while (node != nullptr) {
    node->RecomputeMbr();
    node = node->parent;
  }
}

void RTree::QueryRect(const Rect& region,
                      std::vector<TrajectoryId>* out) const {
  QueryRect(region,
            [out](TrajectoryId id, const Point&) { out->push_back(id); });
}

void RTree::QueryRect(
    const Rect& region,
    const std::function<void(TrajectoryId, const Point&)>& fn) const {
  if (root_ == nullptr) return;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->mbr.Intersects(region)) continue;
    if (node->is_leaf()) {
      for (std::size_t i = 0; i < node->points.size(); ++i) {
        if (region.Contains(node->points[i])) {
          fn(node->ids[i], node->points[i]);
        }
      }
    } else {
      for (const auto& child : node->children) {
        if (child->mbr.Intersects(region)) stack.push_back(child.get());
      }
    }
  }
}

void RTree::QueryRange(const Point& center, double eps,
                       std::vector<TrajectoryId>* out) const {
  QueryRect(Rect::RangeRegion(center, eps),
            [&](TrajectoryId id, const Point& p) {
              if (L1Distance(center, p) <= eps) out->push_back(id);
            });
}

std::int32_t RTree::Height() const {
  return root_ == nullptr ? 0 : root_->level + 1;
}

Rect RTree::BoundingBox() const {
  return root_ == nullptr ? Rect::Empty() : root_->mbr;
}

bool RTree::CheckInvariants() const {
  if (root_ == nullptr) return size_ == 0;
  std::size_t leaf_entries = 0;
  bool ok = true;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty() && ok) {
    const Node* node = stack.back();
    stack.pop_back();
    const std::size_t count = node->entry_count();
    if (count > static_cast<std::size_t>(options_.max_entries)) ok = false;
    // Non-root nodes must respect the minimum fill factor.
    if (node->parent != nullptr &&
        count < static_cast<std::size_t>(options_.min_entries)) {
      ok = false;
    }
    Rect computed = Rect::Empty();
    for (std::size_t i = 0; i < count; ++i) {
      computed.ExpandToInclude(node->EntryMbr(i));
    }
    if (!(computed == node->mbr)) ok = false;
    if (node->is_leaf()) {
      leaf_entries += count;
    } else {
      for (const auto& child : node->children) {
        if (child->parent != node) ok = false;
        if (child->level != node->level - 1) ok = false;
        stack.push_back(child.get());
      }
    }
  }
  return ok && leaf_entries == size_;
}

}  // namespace comove
