#include "index/kdtree.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace comove {

KdTree KdTree::Build(std::vector<Point> points,
                     std::vector<TrajectoryId> ids) {
  COMOVE_CHECK(points.size() == ids.size());
  KdTree tree;
  tree.points_ = std::move(points);
  tree.ids_ = std::move(ids);
  if (!tree.points_.empty()) {
    tree.BuildRange(0, tree.points_.size(), 0);
  }
  return tree;
}

void KdTree::BuildRange(std::size_t begin, std::size_t end, int axis) {
  if (end - begin <= 1) return;
  const std::size_t mid = begin + (end - begin) / 2;
  // Co-sort points_ and ids_ around the median along `axis`.
  std::vector<std::size_t> order(end - begin);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(mid - begin),
                   order.end(), [&](std::size_t a, std::size_t b) {
                     return axis == 0 ? points_[a].x < points_[b].x
                                      : points_[a].y < points_[b].y;
                   });
  // Apply the permutation to the [begin, end) slice.
  std::vector<Point> tmp_points(order.size());
  std::vector<TrajectoryId> tmp_ids(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    tmp_points[i] = points_[order[i]];
    tmp_ids[i] = ids_[order[i]];
  }
  std::copy(tmp_points.begin(), tmp_points.end(),
            points_.begin() + static_cast<std::ptrdiff_t>(begin));
  std::copy(tmp_ids.begin(), tmp_ids.end(),
            ids_.begin() + static_cast<std::ptrdiff_t>(begin));
  BuildRange(begin, mid, 1 - axis);
  BuildRange(mid + 1, end, 1 - axis);
}

void KdTree::QueryRect(
    const Rect& region,
    const std::function<void(TrajectoryId, const Point&)>& fn) const {
  if (!points_.empty()) QueryRange(0, points_.size(), 0, region, fn);
}

void KdTree::QueryRange(
    std::size_t begin, std::size_t end, int axis, const Rect& region,
    const std::function<void(TrajectoryId, const Point&)>& fn) const {
  if (begin >= end) return;
  const std::size_t mid = begin + (end - begin) / 2;
  const Point& p = points_[mid];
  if (region.Contains(p)) fn(ids_[mid], p);
  const double coord = axis == 0 ? p.x : p.y;
  const double lo = axis == 0 ? region.min_x : region.min_y;
  const double hi = axis == 0 ? region.max_x : region.max_y;
  if (lo <= coord) QueryRange(begin, mid, 1 - axis, region, fn);
  if (hi >= coord) QueryRange(mid + 1, end, 1 - axis, region, fn);
}

void KdTree::QueryRange(const Point& center, double eps,
                        std::vector<TrajectoryId>* out,
                        DistanceMetric metric) const {
  QueryRect(Rect::RangeRegion(center, eps),
            [&](TrajectoryId id, const Point& p) {
              if (Distance(metric, center, p) <= eps) out->push_back(id);
            });
}

bool KdTree::CheckRange(std::size_t begin, std::size_t end, int axis,
                        const Rect& bounds) const {
  if (begin >= end) return true;
  const std::size_t mid = begin + (end - begin) / 2;
  const Point& p = points_[mid];
  if (!bounds.Contains(p)) return false;
  Rect left = bounds;
  Rect right = bounds;
  if (axis == 0) {
    left.max_x = p.x;
    right.min_x = p.x;
  } else {
    left.max_y = p.y;
    right.min_y = p.y;
  }
  return CheckRange(begin, mid, 1 - axis, left) &&
         CheckRange(mid + 1, end, 1 - axis, right);
}

bool KdTree::CheckInvariants() const {
  if (points_.empty()) return ids_.empty();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return CheckRange(0, points_.size(), 0, Rect{-kInf, -kInf, kInf, kInf});
}

}  // namespace comove
