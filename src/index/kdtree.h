#ifndef COMOVE_INDEX_KDTREE_H_
#define COMOVE_INDEX_KDTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/geometry.h"
#include "common/types.h"

/// \file
/// A static 2-d tree over points: an alternative local index for the
/// GR-index's build-then-query plans. Built in O(n log n) by median
/// splitting; immutable afterwards (the Lemma 2 interleaved plan needs
/// incremental insertion and therefore the R-tree). Exists to make the
/// "local index" of §5.1 genuinely pluggable and to quantify the choice
/// (see bench_ablation_engine_modes).

namespace comove {

/// Immutable balanced kd-tree over points with payload ids.
class KdTree {
 public:
  /// Builds from parallel point/id arrays (O(n log n)).
  static KdTree Build(std::vector<Point> points,
                      std::vector<TrajectoryId> ids);

  KdTree() = default;

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Invokes `fn(id, point)` for every point inside the closed `region`.
  void QueryRect(const Rect& region,
                 const std::function<void(TrajectoryId, const Point&)>& fn)
      const;

  /// Range query of Definition 10 under the given metric.
  void QueryRange(const Point& center, double eps,
                  std::vector<TrajectoryId>* out,
                  DistanceMetric metric = DistanceMetric::kL1) const;

  /// Structural check: each node's point partitions its subtrees along
  /// the node's axis. For tests.
  bool CheckInvariants() const;

 private:
  /// Nodes are stored implicitly: node i spans [begin, end) of the
  /// reordered arrays, with the median at the midpoint and the splitting
  /// axis alternating by depth. No child pointers needed.
  void BuildRange(std::size_t begin, std::size_t end, int axis);
  void QueryRange(std::size_t begin, std::size_t end, int axis,
                  const Rect& region,
                  const std::function<void(TrajectoryId, const Point&)>& fn)
      const;
  bool CheckRange(std::size_t begin, std::size_t end, int axis,
                  const Rect& bounds) const;

  std::vector<Point> points_;
  std::vector<TrajectoryId> ids_;
};

}  // namespace comove

#endif  // COMOVE_INDEX_KDTREE_H_
