#ifndef COMOVE_INDEX_GR_INDEX_H_
#define COMOVE_INDEX_GR_INDEX_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/geometry.h"
#include "common/types.h"
#include "index/grid_index.h"
#include "index/rtree.h"

/// \file
/// The two-layered GR-index (§5.1): a grid index as the global layer with
/// one local R-tree per non-empty grid cell. A GR-index is built per
/// snapshot and discarded after querying, so no maintenance path exists.

namespace comove {

/// Two-layer grid + R-tree index over the points of one snapshot.
class GRIndex {
 public:
  GRIndex(double cell_width, RTreeOptions rtree_options = {})
      : grid_(cell_width), rtree_options_(rtree_options) {}

  /// Inserts a point into the R-tree of its grid cell.
  void Insert(const Point& p, TrajectoryId id) {
    const GridKey key = grid_.KeyOf(p);
    auto [it, inserted] = cells_.try_emplace(key, rtree_options_);
    it->second.Insert(p, id);
    ++size_;
  }

  /// Inserts a snapshot point by point.
  void InsertSnapshot(const Snapshot& snapshot) {
    for (const SnapshotEntry& e : snapshot.entries) {
      Insert(e.location, e.id);
    }
  }

  /// Builds the index for a snapshot with STR bulk loading: points are
  /// bucketed per grid cell and each cell's R-tree is packed in one pass.
  /// Only usable by build-then-query plans (the Lemma 2 interleaved plan
  /// requires incremental insertion). Note: at typical GR-index cell
  /// occupancies (tens of points) incremental insertion is actually
  /// cheaper - STR pays off for large monolithic trees (see
  /// bench_ablation_engine_modes). Requires an empty index.
  void BulkLoadSnapshot(const Snapshot& snapshot) {
    COMOVE_CHECK(size_ == 0);
    std::unordered_map<GridKey, std::pair<std::vector<Point>,
                                          std::vector<TrajectoryId>>,
                       GridKeyHash>
        buckets;
    for (const SnapshotEntry& e : snapshot.entries) {
      auto& [points, ids] = buckets[grid_.KeyOf(e.location)];
      points.push_back(e.location);
      ids.push_back(e.id);
    }
    for (auto& [key, bucket] : buckets) {
      cells_.insert_or_assign(
          key, RTree::BulkLoad(std::move(bucket.first),
                               std::move(bucket.second), rtree_options_));
    }
    size_ = snapshot.entries.size();
  }

  /// Range query of Definition 10 over all cells intersecting the range
  /// region: ids of points with L1 distance to `center` at most `eps`.
  void QueryRange(const Point& center, double eps,
                  std::vector<TrajectoryId>* out) const {
    for (const GridKey& key :
         grid_.KeysIntersecting(Rect::RangeRegion(center, eps))) {
      auto it = cells_.find(key);
      if (it != cells_.end()) it->second.QueryRange(center, eps, out);
    }
  }

  const GridIndex& grid() const { return grid_; }
  std::size_t size() const { return size_; }
  std::size_t cell_count() const { return cells_.size(); }

  /// The local R-tree of `key`, or nullptr when the cell is empty.
  const RTree* cell(const GridKey& key) const {
    auto it = cells_.find(key);
    return it == cells_.end() ? nullptr : &it->second;
  }

 private:
  GridIndex grid_;
  RTreeOptions rtree_options_;
  std::unordered_map<GridKey, RTree, GridKeyHash> cells_;
  std::size_t size_ = 0;
};

}  // namespace comove

#endif  // COMOVE_INDEX_GR_INDEX_H_
