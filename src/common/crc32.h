#ifndef COMOVE_COMMON_CRC32_H_
#define COMOVE_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file
/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) for checkpoint
/// integrity: every operator-state blob and the bundle envelope carry a
/// checksum, so a torn write or bit rot in the snapshot store is detected
/// and the checkpoint skipped instead of restored into a corrupt pipeline.
/// Slicing-by-8 implementation: checkpoint encoding checksums every state
/// blob plus the whole envelope, so the CRC runs twice over each snapshot
/// byte and sits on the barrier stall path.

namespace comove {

namespace internal {

/// table[0] is the classic byte-at-a-time table; table[k][b] extends it to
/// the CRC contribution of byte b seen k positions earlier, letting the
/// main loop fold 8 input bytes per iteration with independent lookups.
inline const std::array<std::array<std::uint32_t, 256>, 8>& Crc32Tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace internal

/// CRC-32 of `data` (initial value and final XOR per the standard).
inline std::uint32_t Crc32(std::string_view data) {
  const auto& t = internal::Crc32Tables();
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  std::size_t len = data.size();
  std::uint32_t crc = 0xFFFFFFFFu;
  while (len >= 8) {
    // Compose the two words from bytes so the load is endian-neutral;
    // compilers lower this to a plain load on little-endian targets.
    const std::uint32_t lo =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi =
        static_cast<std::uint32_t>(p[4]) |
        (static_cast<std::uint32_t>(p[5]) << 8) |
        (static_cast<std::uint32_t>(p[6]) << 16) |
        (static_cast<std::uint32_t>(p[7]) << 24);
    crc ^= lo;
    crc = t[7][crc & 0xFFu] ^ t[6][(crc >> 8) & 0xFFu] ^
          t[5][(crc >> 16) & 0xFFu] ^ t[4][crc >> 24] ^
          t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (; len > 0; ++p, --len) {
    crc = t[0][(crc ^ *p) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace comove

#endif  // COMOVE_COMMON_CRC32_H_
