#ifndef COMOVE_COMMON_ARENA_H_
#define COMOVE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "common/check.h"

/// \file
/// Bump/arena allocation for per-snapshot scratch memory. A streaming
/// worker runs the same join/DBSCAN passes once per snapshot with working
/// sets of nearly constant size; general-purpose heap allocation pays
/// malloc bookkeeping and scatters the buffers across the address space.
/// An Arena instead hands out 32-byte-aligned slices of a few retained
/// blocks: allocation is a pointer bump, Reset() rewinds everything in
/// O(1) while keeping the memory, and after the first snapshot every
/// buffer lands at the same address again - cache-warm and malloc-free.
///
/// Lifetime rules (see DESIGN.md): an arena is reset once per snapshot by
/// the scratch object that owns it, every ArenaVector carved from it is
/// released in the same breath, and arena contents are derived state -
/// never checkpointed, rebuilt from scratch after recovery.

namespace comove {

/// Bump allocator over a small list of retained blocks. Not thread-safe;
/// owned by one worker thread like the scratch structs it backs.
class Arena {
 public:
  /// Every allocation is aligned to this many bytes - one AVX2 lane width,
  /// so SIMD loads from arena buffers never split a cache line.
  static constexpr std::size_t kAlignment = 32;

  explicit Arena(std::size_t min_block_bytes = std::size_t{1} << 16)
      : min_block_bytes_(min_block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() {
    for (const Block& b : blocks_) {
      ::operator delete(b.data, std::align_val_t{kAlignment});
    }
  }

  /// Returns `bytes` of kAlignment-aligned storage (uninitialised). The
  /// pointer stays valid until the next Reset().
  void* Allocate(std::size_t bytes) {
    bytes = (bytes + kAlignment - 1) & ~(kAlignment - 1);
    if (bytes == 0) bytes = kAlignment;
    while (active_ < blocks_.size() &&
           blocks_[active_].size - offset_of_active_ < bytes) {
      ++active_;
      offset_of_active_ = 0;
    }
    if (active_ == blocks_.size()) {
      // New block at least as large as everything retained so far: total
      // capacity doubles per miss, so any workload reaches a steady state
      // after O(log size) blocks - which Reset() then fuses into one.
      std::size_t size = min_block_bytes_;
      if (size < bytes) size = bytes;
      if (size < total_block_bytes_) size = total_block_bytes_;
      AddBlock(size);
      offset_of_active_ = 0;
    }
    std::byte* p = blocks_[active_].data + offset_of_active_;
    offset_of_active_ += bytes;
    ++allocations_;
    return p;
  }

  /// Rewinds the arena: every pointer handed out so far becomes invalid,
  /// all memory is retained. When the last cycle spilled into a second
  /// block, the blocks are fused into one contiguous block first, so the
  /// steady state bumps through a single region in allocation order.
  void Reset() {
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) total += b.size;
      for (const Block& b : blocks_) {
        ::operator delete(b.data, std::align_val_t{kAlignment});
      }
      blocks_.clear();
      total_block_bytes_ = 0;
      AddBlock(total);
    }
    active_ = 0;
    offset_of_active_ = 0;
  }

  /// Bytes of backing memory currently retained (allocated from the heap).
  std::size_t block_bytes() const { return total_block_bytes_; }
  /// Lifetime count of Allocate() calls (bumps, not mallocs).
  std::uint64_t allocations() const { return allocations_; }

 private:
  struct Block {
    std::byte* data;
    std::size_t size;
  };

  void AddBlock(std::size_t size) {
    auto* data = static_cast<std::byte*>(
        ::operator new(size, std::align_val_t{kAlignment}));
    blocks_.push_back(Block{data, size});
    total_block_bytes_ += size;
  }

  std::size_t min_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;            ///< block currently being bumped
  std::size_t offset_of_active_ = 0;  ///< bump offset within that block
  std::size_t total_block_bytes_ = 0;
  std::uint64_t allocations_ = 0;
};

/// A size/capacity view over arena storage, for trivially copyable
/// elements. Unlike std::vector it never owns memory: Reserve() bumps the
/// arena (copying any live elements over, like a realloc), Release() drops
/// the storage when the owner resets the arena, and the remembered
/// high-water capacity makes the first Reserve() after a Release() grab
/// the full previous footprint in one bump - so per-snapshot
/// release/reserve cycles are two pointer updates, not growth loops.
///
/// The owner is responsible for pairing Arena::Reset() with Release() on
/// every vector carved from that arena; element access after the backing
/// arena was reset is undefined.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector elements are moved with memcpy");

 public:
  ArenaVector() = default;
  ArenaVector(const ArenaVector&) = delete;
  ArenaVector& operator=(const ArenaVector&) = delete;

  /// Ensures capacity for `n` elements, preserving current contents.
  void Reserve(Arena& arena, std::size_t n) {
    if (n <= capacity_) return;
    if (n < high_water_) n = high_water_;
    if (n < 2 * capacity_) n = 2 * capacity_;
    T* data = static_cast<T*>(arena.Allocate(n * sizeof(T)));
    if (size_ != 0) std::memcpy(data, data_, size_ * sizeof(T));
    data_ = data;
    capacity_ = n;
    if (capacity_ > high_water_) high_water_ = capacity_;
  }

  /// Drops the storage reference (call when the backing arena is reset);
  /// the high-water mark survives so the next Reserve() restores the full
  /// footprint in one allocation.
  void Release() {
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  void Clear() { size_ = 0; }

  /// Appends; the caller must have Reserved enough capacity.
  void PushBack(const T& v) {
    COMOVE_DCHECK(size_ < capacity_);
    data_[size_++] = v;
  }

  /// Sets the size to `n` (elements uninitialised beyond old size).
  void Resize(Arena& arena, std::size_t n) {
    Reserve(arena, n);
    size_ = n;
  }

  /// Sets the contents to `n` copies of `value`.
  void Assign(Arena& arena, std::size_t n, const T& value) {
    Resize(arena, n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = value;
  }

  T& operator[](std::size_t i) {
    COMOVE_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    COMOVE_DCHECK(i < size_);
    return data_[i];
  }
  T& Back() {
    COMOVE_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }
  void PopBack() {
    COMOVE_DCHECK(size_ > 0);
    --size_;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace comove

#endif  // COMOVE_COMMON_ARENA_H_
