#ifndef COMOVE_COMMON_DISCRETIZER_H_
#define COMOVE_COMMON_DISCRETIZER_H_

#include <cstdint>

#include "common/check.h"
#include "common/types.h"

/// \file
/// Time discretisation (§3.1): maps real clock times to indices of the
/// fixed-duration interval during which they occurred. E.g. with a 5 s
/// interval starting at epoch 20, clock times {21, 24, 28, 32, 42} map to
/// {0, 0, 1, 2, 4}.

namespace comove {

/// Maps clock seconds to discretised Timestamps. The interval duration is
/// chosen per dataset (the paper uses 1 s or 5 s depending on sampling
/// rate); too-small intervals create misleading gaps, too-large intervals
/// collapse distinct reports into one index.
class TimeDiscretizer {
 public:
  /// \param interval_seconds duration of one discrete interval (> 0)
  /// \param epoch_seconds    clock time mapped to index 0
  TimeDiscretizer(double interval_seconds, double epoch_seconds)
      : interval_(interval_seconds), epoch_(epoch_seconds) {
    COMOVE_CHECK(interval_seconds > 0.0);
  }

  /// Index of the interval containing `clock_seconds`.
  Timestamp ToIndex(double clock_seconds) const {
    return static_cast<Timestamp>((clock_seconds - epoch_) / interval_);
  }

  /// Start clock time of interval `index` (inverse of ToIndex up to the
  /// interval resolution).
  double ToClock(Timestamp index) const {
    return epoch_ + static_cast<double>(index) * interval_;
  }

  double interval_seconds() const { return interval_; }
  double epoch_seconds() const { return epoch_; }

 private:
  double interval_;
  double epoch_;
};

}  // namespace comove

#endif  // COMOVE_COMMON_DISCRETIZER_H_
