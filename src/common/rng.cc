#include "common/rng.h"

#include <cmath>

namespace comove {

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace comove
