#ifndef COMOVE_COMMON_TIME_SEQUENCE_H_
#define COMOVE_COMMON_TIME_SEQUENCE_H_

#include <cstdint>
#include <vector>

#include "common/constraints.h"
#include "common/types.h"

/// \file
/// Operations on discretised time sequences (Definitions 1-3): segment
/// decomposition, L-consecutive / G-connected tests, and extraction of the
/// best (K, L, G)-qualifying subsequence from a set of co-clustered times.

namespace comove {

/// A maximal run of consecutive times inside a time sequence.
struct Segment {
  Timestamp start = 0;  ///< first time of the run
  Timestamp end = 0;    ///< last time of the run (inclusive)

  std::int32_t length() const { return end - start + 1; }

  friend bool operator==(const Segment& a, const Segment& b) {
    return a.start == b.start && a.end == b.end;
  }
};

/// Splits a strictly increasing time sequence into its maximal consecutive
/// segments. An empty input yields no segments.
std::vector<Segment> DecomposeIntoSegments(
    const std::vector<Timestamp>& times);

/// Definition 2: every maximal segment of `times` has length >= l.
/// The empty sequence is vacuously L-consecutive.
bool IsLConsecutive(const std::vector<Timestamp>& times, std::int32_t l);

/// Definition 3: every gap between neighbouring times is <= g.
bool IsGConnected(const std::vector<Timestamp>& times, std::int32_t g);

/// True when `times` itself satisfies the duration (|T| >= K),
/// consecutiveness (L), and connection (G) constraints of Definition 4.
bool SatisfiesKLG(const std::vector<Timestamp>& times,
                  const PatternConstraints& c);

/// Finds the longest subsequence T' of `times` that satisfies (K, L, G), or
/// an empty vector when none exists.
///
/// `times` need not satisfy the constraints itself: the caller owns the set
/// of all times at which some object set was co-clustered, and any
/// qualifying subsequence certifies a pattern. The optimum is computed by a
/// greedy chain over the maximal segments: segments shorter than L can
/// never contribute (any element of T' must lie in a T'-segment of length
/// >= L, which must be contained in a segment of `times`), and dropping a
/// qualifying segment only widens gaps, so chaining consecutive qualifying
/// segments with inter-segment gaps <= G is exact.
std::vector<Timestamp> BestQualifyingSubsequence(
    const std::vector<Timestamp>& times, const PatternConstraints& c);

/// True iff some subsequence of `times` satisfies (K, L, G); equivalent to
/// !BestQualifyingSubsequence(times, c).empty() but cheaper.
bool HasQualifyingSubsequence(const std::vector<Timestamp>& times,
                              const PatternConstraints& c);

}  // namespace comove

#endif  // COMOVE_COMMON_TIME_SEQUENCE_H_
