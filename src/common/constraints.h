#ifndef COMOVE_COMMON_CONSTRAINTS_H_
#define COMOVE_COMMON_CONSTRAINTS_H_

#include <cstdint>

#include "common/check.h"

/// \file
/// The (M, K, L, G) co-movement pattern constraints of Definition 4 and the
/// derived verification-window length eta of Lemma 4.

namespace comove {

/// Parameters of a general co-movement pattern CP(M, K, L, G):
///  - significance M: minimum number of objects,
///  - duration K: minimum |T|,
///  - consecutiveness L: minimum length of each segment of T,
///  - connection G: maximum gap between neighbouring times of T.
struct PatternConstraints {
  std::int32_t m = 2;
  std::int32_t k = 2;
  std::int32_t l = 1;
  std::int32_t g = 1;

  /// Validates the parameter ranges that make Definition 4 meaningful.
  bool IsValid() const {
    return m >= 2 && l >= 1 && g >= 1 && k >= l;
  }

  /// Lemma 4: eta = (ceil(K/L) - 1) * (G - 1) + K + L - 1 snapshots always
  /// suffice to decide every pattern enumerated at a given start time.
  std::int32_t Eta() const {
    COMOVE_CHECK(IsValid());
    const std::int32_t ceil_kl = (k + l - 1) / l;
    return (ceil_kl - 1) * (g - 1) + k + l - 1;
  }

  friend bool operator==(const PatternConstraints& a,
                         const PatternConstraints& b) {
    return a.m == b.m && a.k == b.k && a.l == b.l && a.g == b.g;
  }
};

}  // namespace comove

#endif  // COMOVE_COMMON_CONSTRAINTS_H_
