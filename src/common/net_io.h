#ifndef COMOVE_COMMON_NET_IO_H_
#define COMOVE_COMMON_NET_IO_H_

#include <cstddef>
#include <cstdint>
#include <utility>

/// \file
/// EINTR-safe POSIX I/O primitives for the socket transport: an owning
/// file-descriptor handle plus full-length read/write loops and a
/// readability poll. These are the only places the transport touches raw
/// syscalls, so retry semantics (EINTR) and SIGPIPE suppression live here
/// exactly once.

namespace comove {

/// Owning file descriptor; closes on destruction, move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Reads exactly `size` bytes, retrying on EINTR and short reads.
/// Returns true on success; false on EOF-before-`size` or any error.
bool ReadFull(int fd, void* data, std::size_t size);

/// Writes exactly `size` bytes, retrying on EINTR and short writes.
/// Sends with MSG_NOSIGNAL on sockets, so a peer that died yields a
/// clean `false` (EPIPE) instead of killing the process with SIGPIPE.
/// Returns true when every byte was accepted by the kernel.
bool WriteFull(int fd, const void* data, std::size_t size);

/// Polls `fd` for readability, retrying on EINTR with the remaining
/// budget. `timeout_ms` < 0 waits forever. Returns true when the fd is
/// readable (or has hung up - the subsequent read reports it), false on
/// timeout.
bool PollReadable(int fd, std::int64_t timeout_ms);

}  // namespace comove

#endif  // COMOVE_COMMON_NET_IO_H_
