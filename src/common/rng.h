#ifndef COMOVE_COMMON_RNG_H_
#define COMOVE_COMMON_RNG_H_

#include <cstdint>

/// \file
/// A small deterministic pseudo-random generator (xoshiro256**) used by the
/// trajectory generators and property tests. Determinism matters: every
/// experiment in EXPERIMENTS.md is reproducible from a seed.

namespace comove {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded via SplitMix64. Not cryptographic; fast and statistically solid,
/// which is all workload generation needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes of state.
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      lane = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t NextUint64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextUint64() % span);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (one value per call; simple over fast).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

 private:
  static std::uint64_t Rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace comove

#endif  // COMOVE_COMMON_RNG_H_
