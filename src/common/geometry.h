#ifndef COMOVE_COMMON_GEOMETRY_H_
#define COMOVE_COMMON_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>

/// \file
/// Planar geometry primitives. The paper (§3.3) measures proximity with the
/// L1 norm, so a range query with radius eps is an axis-aligned square of
/// side 2*eps; rectangles below are closed on all sides.

namespace comove {

/// A 2-D location.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// L1 (Manhattan) distance, the paper's distance function.
inline double L1Distance(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// L2 (Euclidean) distance; provided because the library supports swapping
/// distance functions (the paper notes other metrics are easy to support).
inline double L2Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Selectable distance function. L1 is the paper's choice (§3.3); every
/// range predicate in the library accepts either metric. Both metrics'
/// eps-balls are contained in the square range region, so the grid/R-tree
/// filtering logic (including Lemma 1) is metric-independent and only the
/// final refinement test changes.
enum class DistanceMetric : std::uint8_t { kL1, kL2 };

/// Distance under the chosen metric.
inline double Distance(DistanceMetric metric, const Point& a,
                       const Point& b) {
  return metric == DistanceMetric::kL1 ? L1Distance(a, b)
                                       : L2Distance(a, b);
}

/// Printable metric name ("L1" / "L2").
inline const char* DistanceMetricName(DistanceMetric metric) {
  return metric == DistanceMetric::kL1 ? "L1" : "L2";
}

/// The range predicate dist(a, b) <= eps (closed ball, Definition 10) —
/// the refinement test of every join kernel. For L2 it compares squared
/// distances, which avoids a sqrt per candidate pair and is exact for the
/// boundary: dist == eps stays inside under both metrics because sqrt and
/// squaring are monotone (x*x <= e*e iff x <= e for non-negative x, and
/// IEEE sqrt is correctly rounded, so equal squares compare equal).
inline bool WithinDistance(DistanceMetric metric, const Point& a,
                           const Point& b, double eps) {
  if (metric == DistanceMetric::kL1) return L1Distance(a, b) <= eps;
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy <= eps * eps;
}

/// A closed axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// An "empty" rectangle that expands to its first added point.
  static Rect Empty() {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return Rect{kInf, kInf, -kInf, -kInf};
  }

  /// The square of side 2*eps centred at p: the L1 range region of a range
  /// query RQ(p, eps) (Definition 10).
  static Rect RangeRegion(const Point& p, double eps) {
    return Rect{p.x - eps, p.y - eps, p.x + eps, p.y + eps};
  }

  /// The *upper half* of the range region, ([x-eps, x+eps], [y, y+eps]),
  /// used by Lemma 1 to halve replication during the range join.
  static Rect UpperRangeRegion(const Point& p, double eps) {
    return Rect{p.x - eps, p.y, p.x + eps, p.y + eps};
  }

  static Rect FromPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Contains(const Rect& r) const {
    return r.min_x >= min_x && r.max_x <= max_x && r.min_y >= min_y &&
           r.max_y <= max_y;
  }

  bool Intersects(const Rect& r) const {
    return !(r.min_x > max_x || r.max_x < min_x || r.min_y > max_y ||
             r.max_y < min_y);
  }

  /// Grows this rectangle to cover `r`.
  void ExpandToInclude(const Rect& r) {
    min_x = std::min(min_x, r.min_x);
    min_y = std::min(min_y, r.min_y);
    max_x = std::max(max_x, r.max_x);
    max_y = std::max(max_y, r.max_y);
  }

  void ExpandToInclude(const Point& p) { ExpandToInclude(FromPoint(p)); }

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }
  double Perimeter() const { return 2.0 * (Width() + Height()); }

  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  /// Area of the union MBR of this and `r` (used by R-tree node selection).
  double EnlargedArea(const Rect& r) const {
    Rect u = *this;
    u.ExpandToInclude(r);
    return u.Area();
  }

  /// Area of overlap with `r` (0 when disjoint).
  double OverlapArea(const Rect& r) const {
    const double w =
        std::min(max_x, r.max_x) - std::max(min_x, r.min_x);
    const double h =
        std::min(max_y, r.max_y) - std::max(min_y, r.min_y);
    if (w <= 0.0 || h <= 0.0) return 0.0;
    return w * h;
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.min_x << "," << r.max_x << "]x[" << r.min_y << ","
            << r.max_y << "]";
}

}  // namespace comove

#endif  // COMOVE_COMMON_GEOMETRY_H_
