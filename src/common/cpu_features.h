#ifndef COMOVE_COMMON_CPU_FEATURES_H_
#define COMOVE_COMMON_CPU_FEATURES_H_

#include <cstdint>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define COMOVE_CPU_FEATURES_X86 1
#endif

/// \file
/// Runtime CPU feature detection for the SIMD kernel dispatch. Detection
/// runs once per process (cpuid is a serialising instruction; callers sit
/// on hot paths) and folds in the COMOVE_FORCE_SCALAR environment
/// override so CI can pin the reference path on any hardware.

namespace comove {

/// Which kernel implementation the join should use. kAuto resolves to the
/// best level the CPU supports (honouring COMOVE_FORCE_SCALAR); the
/// explicit levels ignore the env override so tests can exercise both
/// paths in one process, but kAvx2 still degrades to scalar when the CPU
/// or the build lacks AVX2.
enum class SimdLevel : std::uint8_t {
  kAuto,
  kScalar,
  kAvx2,
};

inline const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
      return "auto";
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

struct CpuFeatures {
  /// CPU advertises AVX2 and the OS saves the YMM register state.
  bool avx2 = false;
  /// COMOVE_FORCE_SCALAR was set (non-empty, not "0") at first query.
  bool force_scalar = false;
};

namespace internal {

inline CpuFeatures DetectCpuFeatures() {
  CpuFeatures features;
  const char* force = std::getenv("COMOVE_FORCE_SCALAR");
  features.force_scalar =
      force != nullptr && force[0] != '\0' && !(force[0] == '0' && force[1] == '\0');
#if defined(COMOVE_CPU_FEATURES_X86)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  // AVX2 itself: leaf 7 subleaf 0, EBX bit 5.
  const bool cpu_avx2 =
      __get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) && (ebx & (1u << 5));
  // Using YMM registers also needs the OS to context-switch them: OSXSAVE
  // (leaf 1 ECX bit 27) plus XCR0 bits 1|2 (XMM|YMM state enabled).
  bool os_ymm = false;
  if (cpu_avx2 && __get_cpuid(1, &eax, &ebx, &ecx, &edx) &&
      (ecx & (1u << 27))) {
    std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
    __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    os_ymm = (xcr0_lo & 0x6) == 0x6;
  }
  features.avx2 = cpu_avx2 && os_ymm;
#endif
  return features;
}

}  // namespace internal

/// The process-wide feature set, detected on first use.
inline const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = internal::DetectCpuFeatures();
  return features;
}

}  // namespace comove

#endif  // COMOVE_COMMON_CPU_FEATURES_H_
