#include "common/time_sequence.h"

#include <numeric>

#include "common/check.h"

namespace comove {

std::vector<Segment> DecomposeIntoSegments(
    const std::vector<Timestamp>& times) {
  std::vector<Segment> segments;
  if (times.empty()) return segments;
  Segment cur{times[0], times[0]};
  for (std::size_t i = 1; i < times.size(); ++i) {
    COMOVE_CHECK_MSG(times[i] > times[i - 1],
                     "time sequence must be strictly increasing");
    if (times[i] == cur.end + 1) {
      cur.end = times[i];
    } else {
      segments.push_back(cur);
      cur = Segment{times[i], times[i]};
    }
  }
  segments.push_back(cur);
  return segments;
}

bool IsLConsecutive(const std::vector<Timestamp>& times, std::int32_t l) {
  for (const Segment& s : DecomposeIntoSegments(times)) {
    if (s.length() < l) return false;
  }
  return true;
}

bool IsGConnected(const std::vector<Timestamp>& times, std::int32_t g) {
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] - times[i - 1] > g) return false;
  }
  return true;
}

bool SatisfiesKLG(const std::vector<Timestamp>& times,
                  const PatternConstraints& c) {
  return static_cast<std::int32_t>(times.size()) >= c.k &&
         IsLConsecutive(times, c.l) && IsGConnected(times, c.g);
}

namespace {

// Chains of segments with length >= l whose inter-segment gaps are <= g.
// Returns, for the best chain (largest total length), its [first, last)
// bounds into `qualified`, or an empty range when `qualified` is empty.
struct Chain {
  std::size_t first = 0;
  std::size_t last = 0;  // exclusive
  std::int32_t total = 0;
};

Chain BestChain(const std::vector<Segment>& qualified, std::int32_t g) {
  Chain best;
  if (qualified.empty()) return best;
  Chain cur{0, 1, qualified[0].length()};
  for (std::size_t i = 1; i < qualified.size(); ++i) {
    if (qualified[i].start - qualified[i - 1].end <= g) {
      cur.last = i + 1;
      cur.total += qualified[i].length();
    } else {
      if (cur.total > best.total) best = cur;
      cur = Chain{i, i + 1, qualified[i].length()};
    }
  }
  if (cur.total > best.total) best = cur;
  return best;
}

}  // namespace

std::vector<Timestamp> BestQualifyingSubsequence(
    const std::vector<Timestamp>& times, const PatternConstraints& c) {
  std::vector<Segment> qualified;
  for (const Segment& s : DecomposeIntoSegments(times)) {
    if (s.length() >= c.l) qualified.push_back(s);
  }
  const Chain best = BestChain(qualified, c.g);
  if (best.total < c.k) return {};
  std::vector<Timestamp> result;
  result.reserve(static_cast<std::size_t>(best.total));
  for (std::size_t i = best.first; i < best.last; ++i) {
    for (Timestamp t = qualified[i].start; t <= qualified[i].end; ++t) {
      result.push_back(t);
    }
  }
  return result;
}

bool HasQualifyingSubsequence(const std::vector<Timestamp>& times,
                              const PatternConstraints& c) {
  std::vector<Segment> qualified;
  for (const Segment& s : DecomposeIntoSegments(times)) {
    if (s.length() >= c.l) qualified.push_back(s);
  }
  return BestChain(qualified, c.g).total >= c.k;
}

}  // namespace comove
