#ifndef COMOVE_COMMON_TYPES_H_
#define COMOVE_COMMON_TYPES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/geometry.h"

/// \file
/// Core value types shared across the library: trajectory ids, discretised
/// time, GPS records, and snapshots (Definitions 1, 5, 6 of the paper).

namespace comove {

/// Identifier of a streaming trajectory (a moving object). 64-bit so
/// production id spaces (device ids, account ids) pass through without a
/// remapping layer; hot-path structures that want 32-bit keys (the radix
/// pair sort's packed key) check the actual range and fall back when an
/// id needs more than 32 bits.
using TrajectoryId = std::int64_t;

/// Discretised time index (Definition 1). Real clock times are mapped to
/// indices of fixed-duration intervals before any processing.
using Timestamp = std::int32_t;

/// Sentinel for "no previous report" in last-time synchronisation (§4).
inline constexpr Timestamp kNoTime = -1;

/// A GPS record of one trajectory after discretisation, augmented with the
/// "last time" pointer of §4: the time of this trajectory's most recent
/// earlier report, or kNoTime for its first record. The pointer lets the
/// snapshot assembler decide whether the system must wait for a missing
/// report at an intermediate time.
struct GpsRecord {
  TrajectoryId id = 0;
  Point location;
  Timestamp time = 0;
  Timestamp last_time = kNoTime;
};

/// One trajectory's position within a single snapshot.
struct SnapshotEntry {
  TrajectoryId id = 0;
  Point location;
};

/// A snapshot S_t: the locations of all trajectories that reported at the
/// discretised time `time` (Definition 6).
struct Snapshot {
  Timestamp time = 0;
  std::vector<SnapshotEntry> entries;

  std::size_t size() const { return entries.size(); }
};

/// A pair of trajectories found within distance eps of each other at one
/// snapshot; the output unit of the range join (Definition 11).
struct NeighborPair {
  TrajectoryId a = 0;
  TrajectoryId b = 0;

  friend bool operator==(const NeighborPair& x, const NeighborPair& y) {
    return x.a == y.a && x.b == y.b;
  }
  friend bool operator<(const NeighborPair& x, const NeighborPair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  }
};

/// A cluster discovered by DBSCAN at one snapshot: member trajectory ids,
/// sorted ascending. Cluster ids are local to their snapshot.
struct Cluster {
  std::int32_t cluster_id = 0;
  std::vector<TrajectoryId> members;
};

/// All clusters of one snapshot (the "cluster snapshot" of Fig. 3).
struct ClusterSnapshot {
  Timestamp time = 0;
  std::vector<Cluster> clusters;
};

/// A detected co-movement pattern: object set plus the qualifying time
/// sequence (Definition 4). `objects` is sorted ascending.
struct CoMovementPattern {
  std::vector<TrajectoryId> objects;
  std::vector<Timestamp> times;

  friend bool operator==(const CoMovementPattern& x,
                         const CoMovementPattern& y) {
    return x.objects == y.objects && x.times == y.times;
  }
};

}  // namespace comove

#endif  // COMOVE_COMMON_TYPES_H_
