#ifndef COMOVE_COMMON_CHECK_H_
#define COMOVE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant-checking macros. A failed check indicates a programming error
/// (broken invariant), never an expected runtime condition, so the process
/// aborts with a source location. Expected failures are reported through
/// return values instead.

/// Aborts with a message when `cond` is false. Always enabled (the cost is
/// negligible next to the data-path work in this library).
#define COMOVE_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "COMOVE_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Like COMOVE_CHECK but with a printf-style explanation.
#define COMOVE_CHECK_MSG(cond, ...)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "COMOVE_CHECK failed at %s:%d: %s: ", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Debug-build-only COMOVE_CHECK: compiled out under NDEBUG. For
/// invariants whose verification is too expensive for the hot path (e.g.
/// re-deriving a running counter by a full scan).
#ifdef NDEBUG
#define COMOVE_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define COMOVE_DCHECK(cond) COMOVE_CHECK(cond)
#endif

#endif  // COMOVE_COMMON_CHECK_H_
