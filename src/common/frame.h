#ifndef COMOVE_COMMON_FRAME_H_
#define COMOVE_COMMON_FRAME_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "common/crc32.h"

/// \file
/// The wire frame of the socket transport: a length prefix plus a CRC-32
/// guard over the payload,
///
///   [u32 payload_bytes][u32 crc32(payload)][payload]
///
/// both integers little-endian (the serde convention). The length bound
/// rejects absurd prefixes from a corrupt or misaligned stream before any
/// allocation; the CRC rejects payload bit flips. This codec is pure (no
/// fds), so the same functions back the socket reader and the wire-format
/// property tests.

namespace comove {

/// Bytes of the [len][crc] prefix.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Upper bound on a single frame's payload. Generously above anything
/// the pipeline batches (a batch of snapshots or partitions is a few
/// hundred KiB), small enough that a corrupt length prefix cannot drive
/// a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 256u << 20;

struct FrameHeader {
  std::uint32_t payload_bytes = 0;
  std::uint32_t crc = 0;
};

/// Appends one complete frame (header + payload) to `out`.
inline void AppendFrame(std::string* out, std::string_view payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = Crc32(payload);
  char header[kFrameHeaderBytes];
  std::memcpy(header, &len, sizeof(len));
  std::memcpy(header + sizeof(len), &crc, sizeof(crc));
  out->append(header, kFrameHeaderBytes);
  out->append(payload.data(), payload.size());
}

/// Decodes a header from exactly kFrameHeaderBytes. Returns nullopt when
/// the advertised length exceeds the frame bound (a corrupt or
/// misaligned stream).
inline std::optional<FrameHeader> DecodeFrameHeader(
    const char* bytes) {
  FrameHeader header;
  std::memcpy(&header.payload_bytes, bytes, sizeof(header.payload_bytes));
  std::memcpy(&header.crc, bytes + sizeof(header.payload_bytes),
              sizeof(header.crc));
  if (header.payload_bytes > kMaxFramePayloadBytes) return std::nullopt;
  return header;
}

/// True when `payload` matches the header's CRC guard.
inline bool ValidateFramePayload(const FrameHeader& header,
                                 std::string_view payload) {
  return payload.size() == header.payload_bytes &&
         Crc32(payload) == header.crc;
}

/// Convenience for tests and small control paths: decodes the first
/// complete, CRC-valid frame of `bytes` into `payload` and returns the
/// total frame size consumed; returns 0 when `bytes` is truncated or
/// corrupt.
inline std::size_t DecodeFrame(std::string_view bytes,
                               std::string_view* payload) {
  if (bytes.size() < kFrameHeaderBytes) return 0;
  const auto header = DecodeFrameHeader(bytes.data());
  if (!header) return 0;
  const std::size_t total = kFrameHeaderBytes + header->payload_bytes;
  if (bytes.size() < total) return 0;
  const std::string_view body =
      bytes.substr(kFrameHeaderBytes, header->payload_bytes);
  if (!ValidateFramePayload(*header, body)) return 0;
  *payload = body;
  return total;
}

}  // namespace comove

#endif  // COMOVE_COMMON_FRAME_H_
