#include "common/net_io.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace comove {

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
  }
}

bool ReadFull(int fd, void* data, std::size_t size) {
  char* out = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, out, size);
    if (n > 0) {
      out += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return false;  // EOF mid-record
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool WriteFull(int fd, const void* data, std::size_t size) {
  const char* in = static_cast<const char*>(data);
  while (size > 0) {
    // send() so MSG_NOSIGNAL applies; falls back to write() for
    // non-socket fds (ENOTSOCK), where SIGPIPE-on-pipe is the caller's
    // concern (the transport only ever writes to sockets).
    ssize_t n = ::send(fd, in, size, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, in, size);
    if (n > 0) {
      in += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool PollReadable(int fd, std::int64_t timeout_ms) {
  const auto deadline =
      timeout_ms >= 0 ? std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(timeout_ms)
                      : std::chrono::steady_clock::time_point::max();
  for (;;) {
    int wait = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait = static_cast<int>(left.count() > 0 ? left.count() : 0);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, wait);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace comove
