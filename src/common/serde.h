#ifndef COMOVE_COMMON_SERDE_H_
#define COMOVE_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Minimal binary serialisation for operator-state checkpointing (the
/// durability piece of the "efficiency and reliability" the paper picks
/// Flink for). Fixed-width little-endian primitives; readers carry an
/// error flag instead of throwing, so corrupt or truncated checkpoints
/// are reported, never trusted.

namespace comove {

/// Appends primitives to a byte string.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void WriteBool(bool v) { out_->push_back(v ? 1 : 0); }

  /// Single byte, for compact tags (element kinds, frame message types).
  void WriteU8(std::uint8_t v) {
    out_->push_back(static_cast<char>(v));
  }

  void WriteI32(std::int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(std::uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(std::int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(std::uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(std::string_view s) {
    WriteU64(s.size());
    out_->append(s.data(), s.size());
  }

  /// Vector of a trivially-serialisable integer type.
  template <typename T>
  void WriteIntVector(const std::vector<T>& v) {
    WriteU64(v.size());
    for (const T x : v) WriteI64(static_cast<std::int64_t>(x));
  }

 private:
  void WriteRaw(const void* data, std::size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }

  std::string* out_;
};

/// Reads primitives from a byte view; after any failed read, ok() turns
/// false and every further read returns zero values.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return position_ == data_.size(); }

  /// Bytes not yet consumed (0 once the reader has failed). Lets callers
  /// sanity-check untrusted element counts before reserving memory for
  /// them: a count can never exceed remaining() / bytes-per-element.
  std::size_t remaining() const {
    return ok_ ? data_.size() - position_ : 0;
  }

  bool ReadBool() {
    char c = 0;
    ReadRaw(&c, 1);
    return c != 0;
  }

  std::uint8_t ReadU8() {
    char c = 0;
    ReadRaw(&c, 1);
    return static_cast<std::uint8_t>(c);
  }

  /// Marks the reader failed (e.g. an out-of-range tag was decoded);
  /// every further read returns zero values, exactly as after a short
  /// read.
  void MarkCorrupt() { ok_ = false; }

  std::int32_t ReadI32() { return ReadFixed<std::int32_t>(); }
  std::uint32_t ReadU32() { return ReadFixed<std::uint32_t>(); }
  std::int64_t ReadI64() { return ReadFixed<std::int64_t>(); }
  std::uint64_t ReadU64() { return ReadFixed<std::uint64_t>(); }
  double ReadDouble() { return ReadFixed<double>(); }

  std::string ReadString() {
    const std::uint64_t size = ReadU64();
    if (!ok_ || size > data_.size() - position_) {
      ok_ = false;
      return {};
    }
    std::string s(data_.substr(position_, size));
    position_ += size;
    return s;
  }

  template <typename T>
  std::vector<T> ReadIntVector() {
    const std::uint64_t size = ReadU64();
    // Guard against absurd sizes from corrupt data (each element is 8
    // bytes on the wire).
    if (!ok_ || size > (data_.size() - position_) / 8) {
      ok_ = false;
      return {};
    }
    std::vector<T> v;
    v.reserve(size);
    for (std::uint64_t i = 0; i < size && ok_; ++i) {
      v.push_back(static_cast<T>(ReadI64()));
    }
    return v;
  }

 private:
  template <typename T>
  T ReadFixed() {
    T v{};
    ReadRaw(&v, sizeof(v));
    return v;
  }

  void ReadRaw(void* out, std::size_t size) {
    if (!ok_ || size > data_.size() - position_) {
      ok_ = false;
      std::memset(out, 0, size);
      return;
    }
    std::memcpy(out, data_.data() + position_, size);
    position_ += size;
  }

  std::string_view data_;
  std::size_t position_ = 0;
  bool ok_ = true;
};

}  // namespace comove

#endif  // COMOVE_COMMON_SERDE_H_
