#ifndef COMOVE_CORE_RECOVERY_H_
#define COMOVE_CORE_RECOVERY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "flow/checkpoint/snapshot_store.h"

/// \file
/// Fault injection for the checkpoint/recovery subsystem. A FaultSpec
/// names one pipeline stage and a checkpoint id; the matching subtask
/// "crashes" (cancels all exchanges and unwinds) at the exact moment it
/// would snapshot for that checkpoint - before acking - so the checkpoint
/// never completes and recovery must restart from the previous one. A
/// FailingSnapshotStore instead fails a chosen store write, exercising
/// the aborted-checkpoint path without killing the pipeline.

namespace comove::core {

/// Which subtask crashes, and when. `stage` is empty for "no fault";
/// recognised names are "cluster" (the cluster worker in snapshot-parallel
/// mode, the grid-sync worker in cells mode) and "enumerate".
struct FaultSpec {
  std::string stage;
  std::int32_t subtask = 0;
  /// Crash while snapshotting this checkpoint (so it never completes).
  std::int64_t at_checkpoint = 0;
};

/// Decides - exactly once per run - whether a subtask should crash now.
/// Thread-safe: every worker asks at every barrier.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {}

  /// True exactly once: for the (`stage`, `subtask`) pair named by the
  /// spec, at barrier `checkpoint_id`. All later calls return false.
  bool ShouldCrash(std::string_view stage, std::int32_t subtask,
                   std::int64_t checkpoint_id) {
    if (spec_.stage.empty()) return false;
    if (stage != spec_.stage || subtask != spec_.subtask ||
        checkpoint_id != spec_.at_checkpoint) {
      return false;
    }
    return !fired_.exchange(true);
  }

  bool fired() const { return fired_.load(); }

 private:
  FaultSpec spec_;
  std::atomic<bool> fired_{false};
};

/// Store decorator that fails the Nth Write (1-based) and forwards
/// everything else; ReadLatest always forwards.
class FailingSnapshotStore : public flow::SnapshotStore {
 public:
  FailingSnapshotStore(flow::SnapshotStore* inner,
                       std::int64_t fail_write_number)
      : inner_(inner), fail_write_number_(fail_write_number) {}

  [[nodiscard]] bool Write(const flow::CheckpointBundle& bundle) override {
    if (writes_.fetch_add(1) + 1 == fail_write_number_) return false;
    return inner_->Write(bundle);
  }

  std::optional<flow::CheckpointBundle> ReadLatest() const override {
    return inner_->ReadLatest();
  }

  std::int64_t writes() const { return writes_.load(); }

 private:
  flow::SnapshotStore* inner_;
  std::int64_t fail_write_number_;
  std::atomic<std::int64_t> writes_{0};
};

}  // namespace comove::core

#endif  // COMOVE_CORE_RECOVERY_H_
