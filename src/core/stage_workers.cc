#include "core/stage_workers.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/stopwatch.h"
#include "core/state_serde.h"
#include "flow/checkpoint/barrier_aligner.h"
#include "flow/exchange.h"
#include "flow/reorder_buffer.h"
#include "flow/snapshot_assembler.h"
#include "flow/watermark_aligner.h"
#include "pattern/baseline_enumerator.h"
#include "pattern/fixed_bit_enumerator.h"
#include "pattern/variable_bit_enumerator.h"

namespace comove::core {

std::unique_ptr<pattern::StreamingEnumerator> MakeEnumerator(
    EnumeratorKind kind, const PatternConstraints& constraints,
    pattern::PatternSink sink) {
  switch (kind) {
    case EnumeratorKind::kBA:
      return std::make_unique<pattern::BaselineEnumerator>(constraints,
                                                           std::move(sink));
    case EnumeratorKind::kFBA:
      return std::make_unique<pattern::FixedBitEnumerator>(constraints,
                                                           std::move(sink));
    case EnumeratorKind::kVBA:
      return std::make_unique<pattern::VariableBitEnumerator>(
          constraints, std::move(sink));
    case EnumeratorKind::kNone:
      break;
  }
  COMOVE_CHECK(false);
  return nullptr;
}

QueryPlan BuildQueryPlan(const IcpeOptions& options) {
  QueryPlan plan;
  if (options.enumerator != EnumeratorKind::kNone) {
    plan.queries.push_back(
        PatternQuery{options.constraints, options.enumerator});
  }
  for (const PatternQuery& q : options.extra_queries) {
    COMOVE_CHECK(q.constraints.IsValid());
    COMOVE_CHECK(q.enumerator != EnumeratorKind::kNone);
    plan.queries.push_back(q);
  }
  // Partitions are computed once with the loosest significance bound; the
  // per-query M is enforced during enumeration (Lemma 3 only removes
  // work, never results).
  plan.partition_constraints = plan.enumerate()
                                   ? plan.queries.front().constraints
                                   : options.constraints;
  for (const PatternQuery& q : plan.queries) {
    plan.partition_constraints.m =
        std::min(plan.partition_constraints.m, q.constraints.m);
  }
  return plan;
}

void RunSourceSubtask(const trajgen::Dataset& dataset, const StageEnv& env,
                      flow::Transport<GpsRecord>& out) {
  const IcpeOptions& options = *env.options;
  flow::TraceRecorder* const tr = env.tr;
  flow::BatchingSender<GpsRecord> sender(out, 0,
                                         options.exchange_batch_size, tr,
                                         "records");
  const auto throttle = [&] {
    if (options.replay_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options.replay_delay_us));
    }
  };
  if (options.replay_shuffle_window <= 0) {
    Timestamp current = kNoTime;
    std::size_t start_index = 0;
    if (const std::string* bytes = env.restored_state("source", 0)) {
      BinaryReader reader(*bytes);
      start_index = static_cast<std::size_t>(reader.ReadU64());
      current = static_cast<Timestamp>(reader.ReadI64());
      COMOVE_CHECK_MSG(reader.ok() && reader.AtEnd() &&
                           start_index <= dataset.records.size(),
                       "corrupt source checkpoint");
      // The cut fell on a time boundary: the saved `current` equals the
      // resume record's time, so the boundary branch below does not
      // re-fire and no watermark is replayed.
    }
    std::int64_t next_checkpoint = env.restored_id + 1;
    std::int64_t snaps_since_barrier = 0;
    // One "emit" span per snapshot time: first record sent to last (the
    // span a backpressured source shows as stretched).
    std::uint64_t emit_start_ns = tr != nullptr ? tr->NowNs() : 0;
    for (std::size_t i = start_index; i < dataset.records.size(); ++i) {
      const GpsRecord& record = dataset.records[i];
      if (record.time != current) {
        COMOVE_CHECK(record.time > current);
        if (env.crashed->load(std::memory_order_relaxed)) break;
        if (tr != nullptr && current != kNoTime) {
          tr->RecordSpanSince("source", "emit", 0, current, emit_start_ns);
        }
        // No trajectory can be born before this batch's time anymore.
        sender.BroadcastWatermark(record.time - 1);
        current = record.time;
        throttle();
        if (env.checkpointing &&
            ++snaps_since_barrier >= options.checkpoint_interval) {
          snaps_since_barrier = 0;
          // Snapshot the replay offset at the boundary - before any
          // record of `current` - then emit the barrier: everything
          // before index i is the checkpoint's pre-image.
          std::string state;
          BinaryWriter writer(&state);
          writer.WriteU64(i);
          writer.WriteI64(current);
          env.ack(next_checkpoint, "source", 0, std::move(state), nullptr);
          sender.BroadcastBarrier(next_checkpoint);
          ++next_checkpoint;
        }
        if (tr != nullptr) emit_start_ns = tr->NowNs();
      }
      sender.Send(0, record);
    }
    if (current != kNoTime && !env.crashed->load()) {
      if (tr != nullptr) {
        tr->RecordSpanSince("source", "emit", 0, current, emit_start_ns);
      }
      sender.BroadcastWatermark(current);
    }
    sender.Close();
    return;
  }
  // Shuffled replay: flush blocks of `window` consecutive time units in
  // a random permutation; the watermark trails each complete block.
  Rng rng(options.shuffle_seed);
  const Timestamp window = options.replay_shuffle_window;
  std::vector<GpsRecord> block;
  Timestamp block_start = kNoTime;
  auto flush = [&] {
    const std::uint64_t t0 = tr != nullptr ? tr->NowNs() : 0;
    for (std::size_t i = block.size(); i > 1; --i) {
      std::swap(block[i - 1],
                block[static_cast<std::size_t>(rng.UniformInt(
                    0, static_cast<std::int64_t>(i) - 1))]);
    }
    Timestamp max_time = kNoTime;
    for (const GpsRecord& record : block) {
      max_time = std::max(max_time, record.time);
      sender.Send(0, record);
    }
    if (max_time != kNoTime) {
      sender.BroadcastWatermark(max_time);
      // Shuffled replay has no per-time boundary; one span per flushed
      // window block, tagged with the block's newest time.
      if (tr != nullptr) {
        tr->RecordSpanSince("source", "emit_block", 0, max_time, t0);
      }
    }
    block.clear();
  };
  for (const GpsRecord& record : dataset.records) {
    if (block_start == kNoTime) block_start = record.time;
    if (record.time >= block_start + window) {
      flush();
      block_start = record.time;
      throttle();
    }
    block.push_back(record);
  }
  flush();
  sender.Close();
}

void RunAssemblerSubtask(const StageEnv& env,
                         flow::Channel<flow::Element<GpsRecord>>& input,
                         flow::Transport<Snapshot>& out,
                         flow::SnapshotMetrics* metrics,
                         CompletionTracker* tracker,
                         PipelineCounters* counters,
                         flow::StageStats* assembler_stats) {
  flow::TraceRecorder* const tr = env.tr;
  const std::int32_t p = out.consumers();
  flow::SnapshotAssembler assembler;
  if (const std::string* bytes = env.restored_state("assembler", 0)) {
    BinaryReader reader(*bytes);
    COMOVE_CHECK_MSG(assembler.RestoreState(&reader),
                     "corrupt assembler checkpoint");
  }
  auto route = [&](std::vector<Snapshot> snapshots) {
    for (Snapshot& snapshot : snapshots) {
      const Timestamp t = snapshot.time;
      // The span covers ingest-mark to watermark broadcast - i.e. it
      // absorbs downstream backpressure on the snapshot exchange.
      const std::uint64_t t0 = tr != nullptr ? tr->NowNs() : 0;
      metrics->MarkIngest(t);
      tracker->Register(t);
      counters->snapshot_count.fetch_add(1, std::memory_order_relaxed);
      out.Send(0, static_cast<std::size_t>(t) % static_cast<std::size_t>(p),
               std::move(snapshot));
      out.BroadcastWatermark(0, t);
      if (tr != nullptr) {
        tr->RecordSpanSince("assembler", "route", 0, t, t0);
      }
    }
  };
  std::vector<flow::Element<GpsRecord>> batch;
  while (input.PopBatch(batch, env.pop_batch_max) > 0) {
    for (flow::Element<GpsRecord>& element : batch) {
      if (element.is_data()) {
        route(assembler.OnRecord(element.data));
      } else if (element.is_barrier()) {
        // Single producer: the barrier needs no alignment; snapshot,
        // ack, and forward.
        std::string state;
        BinaryWriter writer(&state);
        assembler.SaveState(&writer);
        env.ack(element.checkpoint, "assembler", 0, std::move(state),
                assembler_stats);
        out.BroadcastBarrier(0, element.checkpoint);
      } else {
        route(assembler.AdvanceBirthBound(element.watermark));
      }
    }
  }
  if (!env.crashed->load()) {
    route(assembler.Finish());
    out.BroadcastWatermark(0, kEndOfStreamTime);
  }
  out.CloseProducer(0);
}

void RunClusterSubtask(std::int32_t worker, const StageEnv& env,
                       const ClusterStageEnv& cenv,
                       flow::Channel<flow::Element<Snapshot>>& input,
                       flow::Transport<pattern::Partition>& out) {
  const IcpeOptions& options = *env.options;
  flow::TraceRecorder* const tr = env.tr;
  const std::int32_t p = out.consumers();
  PipelineCounters& counters = *cenv.counters;
  flow::BatchingSender<pattern::Partition> partition_sender(
      out, worker, options.exchange_batch_size, tr, "partitions");
  // Join + DBSCAN working memory, reused across this worker's snapshots.
  cluster::ClusterScratch scratch;
  while (auto element = input.Pop()) {
    if (element->is_data()) {
      const Timestamp t = element->data.time;
      Stopwatch watch;
      cluster::ClusterPhaseNs phases;
      const std::uint64_t t0 = tr != nullptr ? tr->NowNs() : 0;
      const ClusterSnapshot clustered = cluster::ClusterSnapshotWith(
          options.clustering, element->data, options.cluster_options,
          scratch, tr != nullptr ? &phases : nullptr);
      cenv.cluster_time->Add(watch.ElapsedMillis());
      if (tr != nullptr) {
        // The two phases tile the clustering call: join first, then
        // DBSCAN back-dated to start where the join ended.
        tr->RecordSpan("join", "neighbor_pairs", worker, t, t0,
                       phases.join_ns);
        tr->RecordSpan("dbscan", "dbscan", worker, t, t0 + phases.join_ns,
                       phases.dbscan_ns);
      }
      for (const Cluster& c : clustered.clusters) {
        counters.cluster_count.fetch_add(1, std::memory_order_relaxed);
        counters.cluster_member_sum.fetch_add(
            static_cast<std::int64_t>(c.members.size()),
            std::memory_order_relaxed);
      }
      if (cenv.enumerate) {
        for (pattern::Partition& part : pattern::MakePartitions(
                 clustered, *cenv.partition_constraints)) {
          const std::size_t target = OwnerPartition(part.owner, p);
          partition_sender.Send(target, std::move(part));
        }
      }
    } else if (element->is_barrier()) {
      // Single producer (the assembler): no alignment needed. The
      // worker is stateless - its scratch is derivable - so it acks
      // with an empty payload and forwards.
      const std::int64_t id = element->checkpoint;
      if (env.injector->ShouldCrash("cluster", worker, id)) {
        env.crash_all();
        return;
      }
      env.ack(id, "cluster", worker, std::string(), cenv.cluster_stats);
      if (cenv.enumerate) partition_sender.BroadcastBarrier(id);
    } else {
      // All of this worker's snapshots <= watermark are done (FIFO).
      if (cenv.enumerate) {
        partition_sender.BroadcastWatermark(element->watermark);
      } else {
        cenv.progress(worker, element->watermark);
      }
    }
  }
  counters.delta_cells_seen.fetch_add(
      static_cast<std::int64_t>(scratch.join.delta.cells_seen),
      std::memory_order_relaxed);
  counters.delta_cells_replayed.fetch_add(
      static_cast<std::int64_t>(scratch.join.delta.cells_replayed),
      std::memory_order_relaxed);
  counters.delta_dbscan_replays.fetch_add(
      static_cast<std::int64_t>(scratch.dbscan_memo.replays),
      std::memory_order_relaxed);
  counters.arena_bytes.fetch_add(
      static_cast<std::int64_t>(
          scratch.join.cell.sweep.arena.block_bytes() +
          scratch.dbscan.arena.block_bytes()),
      std::memory_order_relaxed);
  counters.arena_allocations.fetch_add(
      static_cast<std::int64_t>(
          scratch.join.cell.sweep.arena.allocations() +
          scratch.dbscan.arena.allocations()),
      std::memory_order_relaxed);
  if (cenv.enumerate) partition_sender.Close();
}

void RunEnumerateSubtask(
    std::int32_t worker, const StageEnv& env, const EnumerateStageEnv& eenv,
    flow::Channel<flow::Element<pattern::Partition>>& input) {
  const std::vector<PatternQuery>& queries = *eenv.queries;
  flow::TraceRecorder* const tr = env.tr;
  PipelineCounters& counters = *eenv.counters;
  // Exactly-once sinks: while checkpointing (or resuming), patterns
  // are folded into per-query worker-local collectors that are part of
  // the checkpointed state, and merged into the shared collectors only
  // at a NORMAL exit. A crash discards the uncommitted tail; recovery
  // restores the fold as of the cut and regenerates the rest - so the
  // merged output is bit-identical to a failure-free run. Folding
  // (instead of logging raw emissions) is safe because the shared
  // merge applies the same keep-longest-per-object-set rule, and keeps
  // checkpoint state proportional to distinct patterns rather than
  // total emissions.
  const bool transactional = eenv.transactional;
  std::vector<pattern::PatternCollector> logs(queries.size());
  auto sink_for = [&](std::size_t q) -> pattern::PatternSink {
    if (!transactional) return eenv.direct_sink(q);
    return [&logs, &eenv, q](const CoMovementPattern& pat) {
      logs[q].Add(pat);
      if (eenv.on_pattern) eenv.on_pattern(pat);
    };
  };
  // One enumerator per query; all consume the shared partition stream.
  std::vector<std::unique_ptr<pattern::StreamingEnumerator>> enumerators;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    enumerators.push_back(MakeEnumerator(queries[q].enumerator,
                                         queries[q].constraints,
                                         sink_for(q)));
  }
  flow::WatermarkAligner aligner(eenv.producers);
  flow::TimeReorderBuffer<pattern::Partition> buffer;
  if (const std::string* bytes = env.restored_state("enumerate", worker)) {
    BinaryReader reader(*bytes);
    COMOVE_CHECK_MSG(aligner.RestoreState(&reader),
                     "corrupt enumerate checkpoint");
    COMOVE_CHECK_MSG(buffer.RestoreState(&reader, ReadPartition),
                     "corrupt enumerate checkpoint");
    const std::uint64_t query_count = reader.ReadU64();
    COMOVE_CHECK_MSG(reader.ok() && query_count == queries.size(),
                     "corrupt enumerate checkpoint");
    for (std::size_t q = 0; q < queries.size(); ++q) {
      COMOVE_CHECK_MSG(enumerators[q]->RestoreState(&reader),
                       "corrupt enumerate checkpoint");
      const std::uint64_t emitted = reader.ReadU64();
      if (!reader.ok()) break;
      for (std::uint64_t i = 0; i < emitted && reader.ok(); ++i) {
        logs[q].Add(ReadPattern(&reader));
      }
    }
    COMOVE_CHECK_MSG(reader.ok() && reader.AtEnd(),
                     "corrupt enumerate checkpoint");
  }

  // The worker is done with a time only when EVERY query is.
  auto finalized_through = [&]() {
    Timestamp through = kEndOfStreamTime;
    for (const auto& e : enumerators) {
      const Timestamp f = e->FinalizedThrough();
      through = std::min(
          through,
          f == kNoTime ? std::numeric_limits<Timestamp>::min() : f);
    }
    return through;
  };

  auto feed =
      [&](std::vector<std::pair<Timestamp, pattern::Partition>> batch) {
        std::size_t i = 0;
        while (i < batch.size()) {
          const Timestamp t = batch[i].first;
          std::vector<pattern::Partition> parts;
          while (i < batch.size() && batch[i].first == t) {
            parts.push_back(std::move(batch[i].second));
            ++i;
          }
          Stopwatch watch;
          const std::uint64_t t0 = tr != nullptr ? tr->NowNs() : 0;
          for (std::size_t q = 0; q < enumerators.size(); ++q) {
            // The last query consumes the originals; earlier ones copies.
            enumerators[q]->OnPartitions(
                t, q + 1 == enumerators.size()
                       ? std::move(parts)
                       : std::vector<pattern::Partition>(parts));
          }
          eenv.enum_time->Add(watch.ElapsedMillis());
          if (tr != nullptr) {
            tr->RecordSpanSince("enumerate", "tick", worker, t, t0);
          }
        }
      };

  auto handle = [&](flow::Element<pattern::Partition>&& element) {
    if (element.is_data()) {
      buffer.Add(element.data.time, std::move(element.data));
    } else if (auto advanced =
                   aligner.Update(element.producer, element.watermark)) {
      const Timestamp w = *advanced;
      feed(buffer.DrainThrough(w));
      if (w != kEndOfStreamTime) {
        Stopwatch watch;
        for (const auto& e : enumerators) e->AdvanceTime(w);
        eenv.enum_time->Add(watch.ElapsedMillis());
      }
      // A snapshot counts as answered once its pattern decisions
      // are final across every query (for VBA this is deferred
      // until strings close - the §6.3 latency/throughput trade).
      eenv.progress(worker, finalized_through());
    }
  };
  bool alive = true;
  // Sized like the previous snapshot (plus 25% growth headroom) so the
  // serialisation pass does not redo the string's doubling reallocs on
  // every checkpoint.
  std::size_t last_state_bytes = 0;
  auto on_checkpoint = [&](std::int64_t id) {
    if (env.injector->ShouldCrash("enumerate", worker, id)) {
      env.crash_all();
      alive = false;
      return false;
    }
    std::string state;
    state.reserve(last_state_bytes + (last_state_bytes >> 2) + 1024);
    BinaryWriter writer(&state);
    aligner.SaveState(&writer);
    buffer.SaveState(&writer, WritePartition);
    writer.WriteU64(enumerators.size());
    for (std::size_t q = 0; q < enumerators.size(); ++q) {
      enumerators[q]->SaveState(&writer);
      writer.WriteU64(logs[q].size());
      for (const auto& [objects, pat] : logs[q].entries()) {
        WritePattern(&writer, pat);
      }
    }
    last_state_bytes = state.size();
    env.ack(id, "enumerate", worker, std::move(state),
            eenv.enumerate_stats);
    return true;
  };
  flow::BarrierAligner<pattern::Partition> barriers(
      eenv.producers, env.restored_id, eenv.enumerate_stats, tr, worker);
  std::vector<flow::Element<pattern::Partition>> batch;
  while (alive && input.PopBatch(batch, env.pop_batch_max) > 0) {
    for (flow::Element<pattern::Partition>& element : batch) {
      if (!alive) break;
      if (env.checkpointing) {
        barriers.OnElement(std::move(element), handle, on_checkpoint);
      } else {
        handle(std::move(element));
      }
    }
  }
  if (env.crashed->load()) return;  // uncommitted logs die with the crash
  feed(buffer.DrainAll());
  for (const auto& e : enumerators) e->Finish();
  for (const auto& e : enumerators) {
    const pattern::EnumerationStats es = e->enumeration_stats();
    counters.enum_strings_opened.fetch_add(es.strings_opened,
                                           std::memory_order_relaxed);
    counters.enum_strings_closed.fetch_add(es.strings_closed,
                                           std::memory_order_relaxed);
    counters.enum_candidates_peak.fetch_add(es.candidates_peak,
                                            std::memory_order_relaxed);
    counters.enum_apriori_nodes.fetch_add(es.apriori_nodes,
                                          std::memory_order_relaxed);
    counters.enum_apriori_pruned.fetch_add(es.apriori_pruned,
                                           std::memory_order_relaxed);
  }
  if (transactional) eenv.commit(std::move(logs));
  eenv.progress(worker, kEndOfStreamTime);
}

}  // namespace comove::core
