#include "core/icpe_engine.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "common/serde.h"
#include "common/stopwatch.h"
#include "core/completion_tracker.h"
#include "core/stage_workers.h"
#include "core/state_serde.h"
#include "flow/checkpoint/barrier_aligner.h"
#include "flow/checkpoint/coordinator.h"
#include "flow/exchange.h"
#include "flow/snapshot_assembler.h"
#include "flow/task_group.h"
#include "flow/watermark_aligner.h"

namespace comove::core {

const char* EnumeratorKindName(EnumeratorKind kind) {
  switch (kind) {
    case EnumeratorKind::kBA:
      return "BA";
    case EnumeratorKind::kFBA:
      return "FBA";
    case EnumeratorKind::kVBA:
      return "VBA";
    case EnumeratorKind::kNone:
      return "none";
  }
  return "unknown";
}

std::string BuildFingerprint(const trajgen::Dataset& dataset,
                             const IcpeOptions& options) {
  // Everything that shapes the pipeline's state or routing is included;
  // pure performance knobs (batch size, channel capacity, stats) are not.
  // Deliberately also excludes how the pipeline is deployed (process
  // count, transport): a distributed run at the same parallelism may
  // restore a single-process checkpoint and vice versa.
  std::string fp = "records=" + std::to_string(dataset.records.size());
  fp += ";p=" + std::to_string(options.parallelism);
  fp += ";cells=" + std::to_string(options.join_parallel_cells ? 1 : 0);
  fp += ";clustering=" +
        std::to_string(static_cast<int>(options.clustering));
  fp += ";eps=" + std::to_string(options.cluster_options.join.eps);
  fp += ";lg=" +
        std::to_string(options.cluster_options.join.grid_cell_width);
  fp += ";minpts=" +
        std::to_string(options.cluster_options.dbscan.min_pts);
  const auto add_query = [&fp](const PatternQuery& q) {
    fp += ";q=" + std::to_string(q.constraints.m) + "," +
          std::to_string(q.constraints.k) + "," +
          std::to_string(q.constraints.l) + "," +
          std::to_string(q.constraints.g) + "," +
          EnumeratorKindName(q.enumerator);
  };
  if (options.enumerator != EnumeratorKind::kNone) {
    add_query(PatternQuery{options.constraints, options.enumerator});
  }
  for (const PatternQuery& q : options.extra_queries) add_query(q);
  return fp;
}

IcpeResult RunIcpe(const trajgen::Dataset& dataset,
                   const IcpeOptions& options) {
  COMOVE_CHECK(options.parallelism > 0);
  COMOVE_CHECK(options.constraints.IsValid());
  const std::int32_t p = options.parallelism;
  // Consumers drain up to this many already-queued elements per lock
  // acquisition; PopBatch never waits to fill a batch, so a larger value
  // costs no latency.
  const std::size_t pop_batch_max =
      std::max<std::size_t>(std::size_t{1}, options.exchange_batch_size);

  // The query set: the primary query (unless kNone) plus extras, all
  // evaluated over one shared cluster stream.
  const QueryPlan plan = BuildQueryPlan(options);
  const std::vector<PatternQuery>& queries = plan.queries;
  const bool enumerate = plan.enumerate();
  const PatternConstraints& partition_constraints =
      plan.partition_constraints;

  // --- Tracing (zero-cost when off: `tr` stays null and every record
  // site is one untaken branch). An explicit recorder wins; a bare
  // trace_path gets a run-owned recorder whose events are written on exit.
  std::optional<flow::TraceRecorder> owned_trace;
  flow::TraceRecorder* const tr =
      options.trace != nullptr
          ? options.trace
          : (!options.trace_path.empty() ? &owned_trace.emplace()
                                         : nullptr);
  /// How many of the slowest snapshots get a per-stage breakdown.
  constexpr std::size_t kWorstSnapshots = 5;

  // The sampler reads the same counters, so sampling implies stats.
  const bool collect_stats =
      options.collect_stats || options.sample_interval_ms > 0;

  // Declared before the exchanges so the stats outlive every channel
  // holding a pointer into the registry.
  flow::StageStatsRegistry stats_registry;
  auto stats_for = [&](const char* stage) -> flow::StageStats* {
    return collect_stats ? &stats_registry.Get(stage) : nullptr;
  };
  if (collect_stats && options.join_parallel_cells) {
    // The grid exchanges are constructed after the partition exchange;
    // pre-register every stage so the stats table reads in pipeline order.
    stats_registry.Get("source->assembler");
    stats_registry.Get("assembler->grid_allocate");
    stats_registry.Get("grid_allocate->grid_query");
    stats_registry.Get("allocate/query->grid_sync");
    stats_registry.Get("grid_sync->enumerate");
  }

  flow::Exchange<GpsRecord> source_exchange(
      1, 1, options.channel_capacity, stats_for("source->assembler"));
  flow::Exchange<Snapshot> snapshot_exchange(
      1, p, options.channel_capacity,
      stats_for(options.join_parallel_cells ? "assembler->grid_allocate"
                                            : "assembler->cluster"));
  flow::Exchange<pattern::Partition> partition_exchange(
      p, p, options.channel_capacity,
      stats_for(options.join_parallel_cells ? "grid_sync->enumerate"
                                            : "cluster->enumerate"));
  // Extra exchanges of the Fig. 5 cell-parallel mode (lazily created).
  std::optional<flow::Exchange<CellMsg>> query_exchange;
  std::optional<flow::Exchange<SyncMsg>> sync_exchange;

  // --- Checkpointing and recovery plumbing (the fault-tolerance layer).
  const bool checkpointing = options.checkpoint_interval > 0;
  if (checkpointing) {
    COMOVE_CHECK_MSG(options.snapshot_store != nullptr,
                     "checkpoint_interval requires a snapshot_store");
    COMOVE_CHECK_MSG(options.replay_shuffle_window <= 0,
                     "checkpointing requires ordered replay");
  }
  if (options.recover) {
    COMOVE_CHECK_MSG(options.snapshot_store != nullptr,
                     "recover requires a snapshot_store");
  }
  const std::string fingerprint =
      (checkpointing || options.recover)
          ? BuildFingerprint(dataset, options)
          : std::string();
  std::optional<flow::CheckpointBundle> restored;
  if (options.recover) {
    restored = options.snapshot_store->ReadLatest();
    if (restored) {
      COMOVE_CHECK_MSG(restored->fingerprint == fingerprint,
                       "checkpoint fingerprint mismatch: the store was "
                       "written by a different dataset or pipeline shape");
    }
  }
  const std::int64_t restored_id = restored ? restored->id : 0;
  std::optional<flow::CheckpointCoordinator> coordinator;
  if (checkpointing) {
    const std::int32_t expected_acks =
        2 + (options.join_parallel_cells ? 3 * p : p) +
        (enumerate ? p : 0);
    coordinator.emplace(expected_acks, options.snapshot_store, fingerprint,
                        stats_for("checkpoint"), restored_id);
  }
  FaultInjector injector(options.fault);
  std::atomic<bool> crashed{false};

  flow::StageStats* const assembler_stats = stats_for("source->assembler");
  flow::StageStats* const enumerate_stats =
      enumerate ? stats_for(options.join_parallel_cells
                                ? "grid_sync->enumerate"
                                : "cluster->enumerate")
                : nullptr;

  flow::SnapshotMetrics metrics;
  // Tracing ranks the worst snapshots by measured latency, which needs
  // the individual values, not just the histogram.
  if (tr != nullptr) metrics.KeepPerSnapshot(true);
  CompletionTracker tracker(p);
  TimeAccumulator cluster_time;
  TimeAccumulator enum_time;
  PipelineCounters counters;

  std::mutex collector_mu;
  std::vector<pattern::PatternCollector> collectors(queries.size());
  // One sink per query, all sharing the mutex and the optional callback.
  auto make_sink = [&](std::size_t query) {
    return [&collectors, &collector_mu, &options,
            query](const CoMovementPattern& pat) {
      std::lock_guard<std::mutex> lock(collector_mu);
      collectors[query].Add(pat);
      if (options.on_pattern) options.on_pattern(pat);
    };
  };

  // --- The deployment-independent subtask environment (see
  // core/stage_workers.h). This single-process deployment cancels every
  // exchange on a crash and acks straight into the coordinator.
  StageEnv env;
  env.options = &options;
  env.tr = tr;
  env.injector = &injector;
  env.crashed = &crashed;
  // Simulates a process kill: every channel is cancelled so blocked
  // producers and consumers unwind instead of deadlocking on
  // backpressure, and all in-flight data is dropped.
  env.crash_all = [&] {
    crashed.store(true);
    source_exchange.Cancel();
    snapshot_exchange.Cancel();
    partition_exchange.Cancel();
    if (query_exchange) query_exchange->Cancel();
    if (sync_exchange) sync_exchange->Cancel();
  };
  // Snapshot-bytes accounting goes on the acking operator's input-exchange
  // row; the coordinator separately totals persisted bytes under
  // "checkpoint".
  env.ack = [&](std::int64_t id, const char* op, std::int32_t subtask,
                std::string state, flow::StageStats* stats) {
    if (stats != nullptr) {
      stats->OnSnapshot(static_cast<std::int64_t>(state.size()), id);
    }
    const std::uint64_t t0 = tr != nullptr ? tr->NowNs() : 0;
    coordinator->Ack(id, op, subtask, std::move(state));
    if (tr != nullptr) {
      // One span per operator ack, named after the operator; aux carries
      // the checkpoint id so a timeline groups one cut's acks together.
      tr->RecordSpanSince("checkpoint", op, subtask, kNoTime, t0, id);
    }
  };
  env.restored_state = [&](const char* op,
                           std::int32_t subtask) -> const std::string* {
    return restored ? restored->Find(op, subtask) : nullptr;
  };
  env.checkpointing = checkpointing;
  env.restored_id = restored_id;
  env.pop_batch_max = pop_batch_max;

  // Completion progress: both the clustering-only and the enumeration
  // paths mark snapshots answered through the same tracker.
  ProgressFn progress = [&](std::int32_t worker, Timestamp through) {
    for (const Timestamp done : tracker.Update(worker, through)) {
      metrics.MarkComplete(done);
    }
  };

  // Stage environments outlive the task group (workers hold references).
  ClusterStageEnv cluster_env;
  cluster_env.cluster_time = &cluster_time;
  cluster_env.counters = &counters;
  cluster_env.cluster_stats = options.join_parallel_cells
                                  ? nullptr
                                  : stats_for("assembler->cluster");
  cluster_env.partition_constraints = &partition_constraints;
  cluster_env.enumerate = enumerate;
  cluster_env.progress = progress;

  EnumerateStageEnv enumerate_env;
  enumerate_env.queries = &queries;
  enumerate_env.enum_time = &enum_time;
  enumerate_env.counters = &counters;
  enumerate_env.enumerate_stats = enumerate_stats;
  enumerate_env.producers = p;
  enumerate_env.transactional = checkpointing || restored.has_value();
  enumerate_env.direct_sink = make_sink;
  if (options.on_pattern) {
    enumerate_env.on_pattern = [&](const CoMovementPattern& pat) {
      std::lock_guard<std::mutex> lock(collector_mu);
      options.on_pattern(pat);
    };
  }
  enumerate_env.commit =
      [&](std::vector<pattern::PatternCollector>&& logs) {
        std::lock_guard<std::mutex> lock(collector_mu);
        for (std::size_t q = 0; q < queries.size(); ++q) {
          for (const CoMovementPattern& pat : logs[q].Patterns()) {
            collectors[q].Add(pat);
          }
        }
      };
  enumerate_env.progress = progress;

  // Live time-series sampling runs for the whole pipeline lifetime,
  // including the drain; stopped (and joined) right after JoinAll.
  std::optional<flow::MetricsSampler> sampler;
  if (options.sample_interval_ms > 0) {
    sampler.emplace(stats_registry, options.sample_interval_ms);
    sampler->Start();
  }

  flow::TaskGroup tasks;

  // --- Source: replays records with birth-bound watermarks, either in
  // time order or deterministically shuffled inside a sliding window (the
  // §4 synchronisation then has to reassemble the chains downstream).
  tasks.Spawn([&] { RunSourceSubtask(dataset, env, source_exchange); });

  // --- Assembler: §4 last-time synchronisation into snapshots.
  tasks.Spawn([&] {
    RunAssemblerSubtask(env, source_exchange.channel(0), snapshot_exchange,
                        &metrics, &tracker, &counters, assembler_stats);
  });

  // Shared post-clustering actions of the cell-parallel mode (the
  // snapshot-parallel equivalents live inside RunClusterSubtask).
  auto record_cluster_stats = [&](const ClusterSnapshot& clustered) {
    for (const Cluster& c : clustered.clusters) {
      counters.cluster_count.fetch_add(1, std::memory_order_relaxed);
      counters.cluster_member_sum.fetch_add(
          static_cast<std::int64_t>(c.members.size()),
          std::memory_order_relaxed);
    }
  };
  // Each clustering worker owns a BatchingSender over the partition
  // exchange (partitions are the highest-fanout payload: one per cluster
  // member set per snapshot), so the shared lambdas take the sender.
  auto route_partitions = [&](flow::BatchingSender<pattern::Partition>& out,
                              const ClusterSnapshot& clustered) {
    for (pattern::Partition& part :
         pattern::MakePartitions(clustered, partition_constraints)) {
      const std::size_t target = OwnerPartition(part.owner, p);
      out.Send(target, std::move(part));
    }
  };
  auto clustering_progress =
      [&](flow::BatchingSender<pattern::Partition>& out,
          std::int32_t worker, Timestamp w) {
        if (enumerate) {
          out.BroadcastWatermark(w);
        } else {
          progress(worker, w);
        }
      };

  if (!options.join_parallel_cells) {
    // --- Cluster workers: snapshot-parallel indexed clustering (§5.3).
    tasks.SpawnIndexed(p, [&](std::int32_t worker) {
      RunClusterSubtask(worker, env, cluster_env,
                        snapshot_exchange.channel(worker),
                        partition_exchange);
    });
  } else {
    // --- The literal Fig. 5 dataflow: GridAllocate -> cell-keyed
    // GridQuery -> GridSync + DBSCAN, each a parallel stage.
    COMOVE_CHECK_MSG(
        options.clustering != cluster::ClusteringMethod::kGDC,
        "join_parallel_cells supports the GR-index methods (RJC/SRJ)");
    const bool use_lemmas =
        options.clustering == cluster::ClusteringMethod::kRJC;
    query_exchange.emplace(p, p, options.channel_capacity,
                           stats_for("grid_allocate->grid_query"));
    sync_exchange.emplace(2 * p, p, options.channel_capacity,
                          stats_for("allocate/query->grid_sync"));

    flow::StageStats* const allocate_stats =
        stats_for("assembler->grid_allocate");
    flow::StageStats* const grid_query_stats =
        stats_for("grid_allocate->grid_query");
    flow::StageStats* const grid_sync_stats =
        stats_for("allocate/query->grid_sync");

    // GridAllocate subtasks: replicate locations into GridObjects and
    // forward the raw snapshot to the sync stage for DBSCAN.
    tasks.SpawnIndexed(p, [&, allocate_stats](std::int32_t worker) {
      const GridKeyHash cell_hash;
      // CellMsg is the highest-volume payload in this mode (every object
      // replicated per overlapped cell), so its sends are batched; the
      // objects vector is reused across snapshots.
      flow::BatchingSender<CellMsg> cell_sender(*query_exchange, worker,
                                                options.exchange_batch_size,
                                                tr, "cells");
      std::vector<cluster::GridObject> objects;
      // Grid geometry derived (and the cell width validated) once per
      // worker, not once per snapshot.
      const GridIndex grid(options.cluster_options.join.grid_cell_width);
      auto& input = snapshot_exchange.channel(worker);
      while (auto element = input.Pop()) {
        if (element->is_data()) {
          const Timestamp t = element->data.time;
          Stopwatch watch;
          const std::uint64_t t0 = tr != nullptr ? tr->NowNs() : 0;
          cluster::GridAllocate(element->data, grid,
                                options.cluster_options.join.eps,
                                use_lemmas, objects);
          cluster_time.Add(watch.ElapsedMillis());
          if (tr != nullptr) {
            tr->RecordSpanSince("join", "allocate", worker, t, t0);
          }
          for (cluster::GridObject& object : objects) {
            const std::size_t target =
                cell_hash(object.key) % static_cast<std::size_t>(p);
            cell_sender.Send(target, CellMsg{t, std::move(object)});
          }
          SyncMsg msg;
          msg.time = t;
          msg.is_snapshot = true;
          msg.snapshot = std::move(element->data);
          sync_exchange->Send(worker,
                              static_cast<std::size_t>(t) %
                                  static_cast<std::size_t>(p),
                              std::move(msg));
        } else if (element->is_barrier()) {
          // Single producer, stateless stage: ack empty and fan the
          // barrier out on both output exchanges.
          const std::int64_t id = element->checkpoint;
          env.ack(id, "grid_allocate", worker, std::string(),
                  allocate_stats);
          cell_sender.BroadcastBarrier(id);
          sync_exchange->BroadcastBarrier(worker, id);
        } else {
          cell_sender.BroadcastWatermark(element->watermark);
          sync_exchange->BroadcastWatermark(worker, element->watermark);
        }
      }
      cell_sender.Close();
      sync_exchange->CloseProducer(worker);
    });

    // GridQuery subtasks: per-cell Algorithm 2 once a snapshot's objects
    // are complete (aligned watermark), then ship the neighbour stream.
    tasks.SpawnIndexed(p, [&, grid_query_stats](std::int32_t worker) {
      flow::WatermarkAligner aligner(p);
      std::map<Timestamp,
               std::unordered_map<GridKey, std::vector<cluster::GridObject>,
                                  GridKeyHash>>
          cells_by_time;
      // One kernel scratch per worker, reused across cells: the R-tree
      // path recycles its pages (RTree::Clear), the sweep path its SoA
      // columns - steady state allocates nothing either way.
      cluster::CellQueryScratch cell_scratch;
      // Per-worker delta cache (incremental mode). The cell-keyed
      // exchange pins every cell to one GridQuery subtask and the aligned
      // watermarks process times in order, so a cell's cached bucket is
      // exactly its contents at the last snapshot that occupied it.
      // Derived state: never checkpointed, so recovery starts it cold.
      cluster::CellDeltaCache delta_cache;
      const bool incremental = options.cluster_options.join.incremental;
      if (const std::string* bytes =
              env.restored_state("grid_query", worker)) {
        BinaryReader reader(*bytes);
        COMOVE_CHECK_MSG(aligner.RestoreState(&reader),
                         "corrupt grid_query checkpoint");
        const std::uint64_t times = reader.ReadU64();
        for (std::uint64_t i = 0; i < times && reader.ok(); ++i) {
          const auto t = static_cast<Timestamp>(reader.ReadI64());
          const std::uint64_t objects = reader.ReadU64();
          for (std::uint64_t j = 0; j < objects && reader.ok(); ++j) {
            cluster::GridObject object = ReadGridObject(&reader);
            cells_by_time[t][object.key].push_back(std::move(object));
          }
        }
        COMOVE_CHECK_MSG(reader.ok() && reader.AtEnd(),
                         "corrupt grid_query checkpoint");
      }
      auto process_through = [&](Timestamp w) {
        while (!cells_by_time.empty() &&
               cells_by_time.begin()->first <= w) {
          const Timestamp t = cells_by_time.begin()->first;
          Stopwatch watch;
          const std::uint64_t t0 = tr != nullptr ? tr->NowNs() : 0;
          std::vector<NeighborPair> pairs;
          // Once-per-snapshot arena rewind of the sweep kernel's columns
          // (mirrors RunJoin in the snapshot-parallel path).
          cell_scratch.sweep.BeginSnapshot();
          if (incremental) delta_cache.BeginSnapshot();
          for (auto& [key, objects] : cells_by_time.begin()->second) {
            if (incremental) {
              delta_cache.QueryCell(objects, key,
                                    options.cluster_options.join,
                                    use_lemmas, cell_scratch, pairs);
            } else {
              cluster::GridQuery(objects, options.cluster_options.join,
                                 use_lemmas, cell_scratch, pairs);
            }
          }
          if (incremental) delta_cache.EndSnapshot();
          cluster_time.Add(watch.ElapsedMillis());
          if (tr != nullptr) {
            tr->RecordSpanSince("join", "cell_query", worker, t, t0);
          }
          SyncMsg msg;
          msg.time = t;
          msg.pairs = std::move(pairs);
          sync_exchange->Send(p + worker,
                              static_cast<std::size_t>(t) %
                                  static_cast<std::size_t>(p),
                              std::move(msg));
          cells_by_time.erase(cells_by_time.begin());
        }
      };
      auto handle = [&](flow::Element<CellMsg>&& element) {
        if (element.is_data()) {
          cells_by_time[element.data.time][element.data.object.key]
              .push_back(std::move(element.data.object));
        } else if (auto advanced = aligner.Update(element.producer,
                                                  element.watermark)) {
          process_through(*advanced);
          sync_exchange->BroadcastWatermark(p + worker, *advanced);
        }
      };
      // The aligned cut: every pre-barrier object or watermark of every
      // producer has been absorbed above; what is not yet queried sits in
      // cells_by_time and is saved verbatim.
      auto on_checkpoint = [&](std::int64_t id) {
        std::string state;
        BinaryWriter writer(&state);
        aligner.SaveState(&writer);
        std::uint64_t total = 0;
        writer.WriteU64(cells_by_time.size());
        for (const auto& [t, cells] : cells_by_time) {
          writer.WriteI64(t);
          total = 0;
          for (const auto& [key, objects] : cells) total += objects.size();
          writer.WriteU64(total);
          for (const auto& [key, objects] : cells) {
            for (const cluster::GridObject& object : objects) {
              WriteGridObject(&writer, object);
            }
          }
        }
        env.ack(id, "grid_query", worker, std::move(state),
                grid_query_stats);
        sync_exchange->BroadcastBarrier(p + worker, id);
        return true;
      };
      flow::BarrierAligner<CellMsg> barriers(p, restored_id,
                                             grid_query_stats, tr, worker);
      auto& input = query_exchange->channel(worker);
      std::vector<flow::Element<CellMsg>> batch;
      while (input.PopBatch(batch, pop_batch_max) > 0) {
        for (flow::Element<CellMsg>& element : batch) {
          if (checkpointing) {
            barriers.OnElement(std::move(element), handle, on_checkpoint);
          } else {
            handle(std::move(element));
          }
        }
      }
      if (!crashed.load()) process_through(kEndOfStreamTime);
      counters.delta_cells_seen.fetch_add(
          static_cast<std::int64_t>(delta_cache.cells_seen),
          std::memory_order_relaxed);
      counters.delta_cells_replayed.fetch_add(
          static_cast<std::int64_t>(delta_cache.cells_replayed),
          std::memory_order_relaxed);
      counters.arena_bytes.fetch_add(
          static_cast<std::int64_t>(cell_scratch.sweep.arena.block_bytes()),
          std::memory_order_relaxed);
      counters.arena_allocations.fetch_add(
          static_cast<std::int64_t>(
              cell_scratch.sweep.arena.allocations()),
          std::memory_order_relaxed);
      sync_exchange->CloseProducer(p + worker);
    });

    // GridSync + DBSCAN subtasks: merge per-cell neighbour streams with
    // the raw snapshot, cluster, and hand off to enumeration.
    tasks.SpawnIndexed(p, [&, record_cluster_stats, route_partitions,
                           clustering_progress,
                           grid_sync_stats](std::int32_t worker) {
      flow::BatchingSender<pattern::Partition> partition_sender(
          partition_exchange, worker, options.exchange_batch_size, tr,
          "partitions");
      flow::WatermarkAligner aligner(2 * p);
      struct PendingTime {
        bool have_snapshot = false;
        Snapshot snapshot;
        std::vector<NeighborPair> pairs;
      };
      std::map<Timestamp, PendingTime> buffer;
      // DBSCAN interning/CSR buffers, reused across this worker's
      // snapshots, plus the GridSync sort's radix scratch.
      cluster::DbscanScratch dbscan_scratch;
      cluster::PairSortScratch sort_scratch;
      // Whole-snapshot DBSCAN memo (incremental mode): this worker sees
      // every p-th snapshot time, so the memo compares against the last
      // snapshot it clustered. Derived state - recovery starts it cold.
      cluster::DbscanMemo dbscan_memo;
      const bool incremental = options.cluster_options.join.incremental;
      if (const std::string* bytes =
              env.restored_state("grid_sync", worker)) {
        BinaryReader reader(*bytes);
        COMOVE_CHECK_MSG(aligner.RestoreState(&reader),
                         "corrupt grid_sync checkpoint");
        const std::uint64_t times = reader.ReadU64();
        for (std::uint64_t i = 0; i < times && reader.ok(); ++i) {
          const auto t = static_cast<Timestamp>(reader.ReadI64());
          PendingTime& pending = buffer[t];
          pending.have_snapshot = reader.ReadBool();
          pending.snapshot = ReadSnapshot(&reader);
          const std::uint64_t pairs = reader.ReadU64();
          for (std::uint64_t j = 0; j < pairs && reader.ok(); ++j) {
            pending.pairs.push_back(ReadNeighborPair(&reader));
          }
        }
        COMOVE_CHECK_MSG(reader.ok() && reader.AtEnd(),
                         "corrupt grid_sync checkpoint");
      }
      auto process_through = [&](Timestamp w) {
        while (!buffer.empty() && buffer.begin()->first <= w) {
          const Timestamp t = buffer.begin()->first;
          PendingTime pending = std::move(buffer.begin()->second);
          buffer.erase(buffer.begin());
          COMOVE_CHECK_MSG(pending.have_snapshot,
                           "neighbour pairs arrived for a snapshot that "
                           "never did");
          Stopwatch watch;
          const std::uint64_t t0 = tr != nullptr ? tr->NowNs() : 0;
          // GridSync: canonical order + dedup (required for the SRJ
          // variant, a no-op for RJC with both lemmas).
          cluster::SortUniquePairs(pending.pairs, sort_scratch,
                                   options.cluster_options.join.simd);
          const ClusterSnapshot clustered =
              incremental
                  ? cluster::DbscanFromNeighborsCached(
                        pending.snapshot, pending.pairs,
                        options.cluster_options.dbscan, dbscan_scratch,
                        dbscan_memo)
                  : cluster::DbscanFromNeighbors(
                        pending.snapshot, pending.pairs,
                        options.cluster_options.dbscan, dbscan_scratch);
          cluster_time.Add(watch.ElapsedMillis());
          if (tr != nullptr) {
            // Covers the GridSync merge (sort + dedup) and the DBSCAN
            // pass - the whole per-snapshot cost of this stage.
            tr->RecordSpanSince("dbscan", "sync_dbscan", worker, t, t0);
          }
          record_cluster_stats(clustered);
          if (enumerate) route_partitions(partition_sender, clustered);
        }
      };
      auto handle = [&](flow::Element<SyncMsg>&& element) {
        if (element.is_data()) {
          PendingTime& pending = buffer[element.data.time];
          if (element.data.is_snapshot) {
            pending.have_snapshot = true;
            pending.snapshot = std::move(element.data.snapshot);
          } else {
            pending.pairs.insert(pending.pairs.end(),
                                 element.data.pairs.begin(),
                                 element.data.pairs.end());
          }
        } else if (auto advanced = aligner.Update(element.producer,
                                                  element.watermark)) {
          process_through(*advanced);
          clustering_progress(partition_sender, worker, *advanced);
        }
      };
      bool alive = true;
      auto on_checkpoint = [&](std::int64_t id) {
        // This stage is the crash site for "cluster" faults in cells
        // mode: the snapshot below is never taken, so checkpoint `id`
        // cannot complete.
        if (injector.ShouldCrash("cluster", worker, id)) {
          env.crash_all();
          alive = false;
          return false;
        }
        std::string state;
        BinaryWriter writer(&state);
        aligner.SaveState(&writer);
        writer.WriteU64(buffer.size());
        for (const auto& [t, pending] : buffer) {
          writer.WriteI64(t);
          writer.WriteBool(pending.have_snapshot);
          WriteSnapshot(&writer, pending.snapshot);
          writer.WriteU64(pending.pairs.size());
          for (const NeighborPair& pair : pending.pairs) {
            WriteNeighborPair(&writer, pair);
          }
        }
        env.ack(id, "grid_sync", worker, std::move(state),
                grid_sync_stats);
        if (enumerate) partition_sender.BroadcastBarrier(id);
        return true;
      };
      flow::BarrierAligner<SyncMsg> barriers(2 * p, restored_id,
                                             grid_sync_stats, tr, worker);
      auto& input = sync_exchange->channel(worker);
      while (alive) {
        auto element = input.Pop();
        if (!element) break;
        if (checkpointing) {
          barriers.OnElement(std::move(*element), handle, on_checkpoint);
        } else {
          handle(std::move(*element));
        }
      }
      if (!crashed.load()) process_through(kEndOfStreamTime);
      counters.delta_dbscan_replays.fetch_add(
          static_cast<std::int64_t>(dbscan_memo.replays),
          std::memory_order_relaxed);
      counters.arena_bytes.fetch_add(
          static_cast<std::int64_t>(dbscan_scratch.arena.block_bytes()),
          std::memory_order_relaxed);
      counters.arena_allocations.fetch_add(
          static_cast<std::int64_t>(dbscan_scratch.arena.allocations()),
          std::memory_order_relaxed);
      if (enumerate) partition_sender.Close();
    });
  }

  // --- Enumeration workers: id-partitioned BA / FBA / VBA.
  if (enumerate) {
    tasks.SpawnIndexed(p, [&](std::int32_t worker) {
      RunEnumerateSubtask(worker, env, enumerate_env,
                          partition_exchange.channel(worker));
    });
  }

  tasks.JoinAll();
  if (sampler) sampler->Stop();
  const bool was_crashed = crashed.load();
  if (!was_crashed) {
    COMOVE_CHECK_MSG(tracker.pending() == 0,
                     "pipeline drained with incomplete snapshots");
  }

  IcpeResult result;
  result.crashed = was_crashed;
  result.last_checkpoint_id =
      coordinator ? coordinator->last_completed() : restored_id;
  if (coordinator) {
    result.checkpoints_completed = coordinator->completed_count();
    result.checkpoints_failed = coordinator->failed_count();
  }
  if (!collectors.empty() &&
      options.enumerator != EnumeratorKind::kNone) {
    result.patterns = collectors[0].Patterns();
    for (std::size_t q = 1; q < collectors.size(); ++q) {
      result.extra_patterns.push_back(collectors[q].Patterns());
    }
  } else {
    // Primary was kNone: every collector belongs to an extra query.
    for (auto& collector : collectors) {
      result.extra_patterns.push_back(collector.Patterns());
    }
  }
  result.snapshots = metrics.Collect();
  if (collect_stats) result.stage_stats = stats_registry.Snapshot();
  if (sampler) result.time_series = sampler->samples();
  if (tr != nullptr) {
    // Workers are joined: the recorder is quiesced and safe to read.
    result.trace_events = tr->recorded();
    result.trace_dropped = tr->dropped();
    result.worst_snapshots = flow::BuildWorstSnapshotBreakdown(
        tr->Events(), metrics.PerSnapshot(), kWorstSnapshots);
    if (!options.trace_path.empty()) {
      std::ofstream out(options.trace_path);
      COMOVE_CHECK_MSG(out.good(), "cannot open trace_path %s",
                       options.trace_path.c_str());
      tr->WriteChromeTrace(out);
    }
  }
  result.avg_cluster_ms = cluster_time.Average();
  result.avg_enum_ms = enum_time.Average();
  result.cluster_count = counters.cluster_count.load();
  result.snapshot_count = counters.snapshot_count.load();
  result.avg_cluster_size =
      result.cluster_count > 0
          ? static_cast<double>(counters.cluster_member_sum.load()) /
                static_cast<double>(result.cluster_count)
          : 0.0;
  result.delta_cells_seen = counters.delta_cells_seen.load();
  result.delta_cells_replayed = counters.delta_cells_replayed.load();
  result.delta_dbscan_replays = counters.delta_dbscan_replays.load();
  result.arena_bytes = counters.arena_bytes.load();
  result.arena_allocations = counters.arena_allocations.load();
  result.enum_strings_opened = counters.enum_strings_opened.load();
  result.enum_strings_closed = counters.enum_strings_closed.load();
  result.enum_candidates_peak = counters.enum_candidates_peak.load();
  result.enum_apriori_nodes = counters.enum_apriori_nodes.load();
  result.enum_apriori_pruned = counters.enum_apriori_pruned.load();
  return result;
}

}  // namespace comove::core
