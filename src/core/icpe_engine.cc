#include "core/icpe_engine.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/completion_tracker.h"
#include "flow/exchange.h"
#include "flow/reorder_buffer.h"
#include "flow/snapshot_assembler.h"
#include "flow/task_group.h"
#include "flow/watermark_aligner.h"
#include "pattern/baseline_enumerator.h"
#include "pattern/fixed_bit_enumerator.h"
#include "pattern/variable_bit_enumerator.h"

namespace comove::core {

namespace {

constexpr Timestamp kMaxTime = std::numeric_limits<Timestamp>::max();

std::size_t OwnerPartition(TrajectoryId owner, std::int32_t p) {
  // Knuth multiplicative mix; trajectory ids are dense so a plain modulo
  // would correlate with the id-assignment scheme.
  return (static_cast<std::uint32_t>(owner) * 2654435761u) %
         static_cast<std::uint32_t>(p);
}

/// One replicated GridObject tagged with its snapshot time: the payload
/// of the cell-keyed exchange in the Fig. 5 dataflow mode.
struct CellMsg {
  Timestamp time = 0;
  cluster::GridObject object;
};

/// Input of the GridSync/DBSCAN stage: either the raw snapshot (shipped
/// once) or a batch of neighbour pairs from one GridQuery subtask.
struct SyncMsg {
  Timestamp time = 0;
  bool is_snapshot = false;
  Snapshot snapshot;
  std::vector<NeighborPair> pairs;
};

/// Thread-safe accumulation of per-snapshot stage compute times.
struct TimeAccumulator {
  mutable std::mutex mu;
  double total_ms = 0.0;
  std::int64_t count = 0;

  void Add(double ms) {
    std::lock_guard<std::mutex> lock(mu);
    total_ms += ms;
    ++count;
  }
  double Average() const {
    std::lock_guard<std::mutex> lock(mu);
    return count > 0 ? total_ms / static_cast<double>(count) : 0.0;
  }
};

std::unique_ptr<pattern::StreamingEnumerator> MakeEnumerator(
    EnumeratorKind kind, const PatternConstraints& constraints,
    pattern::PatternSink sink) {
  switch (kind) {
    case EnumeratorKind::kBA:
      return std::make_unique<pattern::BaselineEnumerator>(constraints,
                                                           std::move(sink));
    case EnumeratorKind::kFBA:
      return std::make_unique<pattern::FixedBitEnumerator>(constraints,
                                                           std::move(sink));
    case EnumeratorKind::kVBA:
      return std::make_unique<pattern::VariableBitEnumerator>(
          constraints, std::move(sink));
    case EnumeratorKind::kNone:
      break;
  }
  COMOVE_CHECK(false);
  return nullptr;
}

}  // namespace

const char* EnumeratorKindName(EnumeratorKind kind) {
  switch (kind) {
    case EnumeratorKind::kBA:
      return "BA";
    case EnumeratorKind::kFBA:
      return "FBA";
    case EnumeratorKind::kVBA:
      return "VBA";
    case EnumeratorKind::kNone:
      return "none";
  }
  return "unknown";
}

IcpeResult RunIcpe(const trajgen::Dataset& dataset,
                   const IcpeOptions& options) {
  COMOVE_CHECK(options.parallelism > 0);
  COMOVE_CHECK(options.constraints.IsValid());
  const std::int32_t p = options.parallelism;
  // Consumers drain up to this many already-queued elements per lock
  // acquisition; PopBatch never waits to fill a batch, so a larger value
  // costs no latency.
  const std::size_t pop_batch_max =
      std::max<std::size_t>(std::size_t{1}, options.exchange_batch_size);

  // The query set: the primary query (unless kNone) plus extras, all
  // evaluated over one shared cluster stream.
  std::vector<PatternQuery> queries;
  if (options.enumerator != EnumeratorKind::kNone) {
    queries.push_back(
        PatternQuery{options.constraints, options.enumerator});
  }
  for (const PatternQuery& q : options.extra_queries) {
    COMOVE_CHECK(q.constraints.IsValid());
    COMOVE_CHECK(q.enumerator != EnumeratorKind::kNone);
    queries.push_back(q);
  }
  const bool enumerate = !queries.empty();
  // Partitions are computed once with the loosest significance bound; the
  // per-query M is enforced during enumeration (Lemma 3 only removes
  // work, never results).
  PatternConstraints partition_constraints =
      enumerate ? queries.front().constraints : options.constraints;
  for (const PatternQuery& q : queries) {
    partition_constraints.m = std::min(partition_constraints.m,
                                       q.constraints.m);
  }

  // Declared before the exchanges so the stats outlive every channel
  // holding a pointer into the registry.
  flow::StageStatsRegistry stats_registry;
  auto stats_for = [&](const char* stage) -> flow::StageStats* {
    return options.collect_stats ? &stats_registry.Get(stage) : nullptr;
  };
  if (options.collect_stats && options.join_parallel_cells) {
    // The grid exchanges are constructed after the partition exchange;
    // pre-register every stage so the stats table reads in pipeline order.
    stats_registry.Get("source->assembler");
    stats_registry.Get("assembler->grid_allocate");
    stats_registry.Get("grid_allocate->grid_query");
    stats_registry.Get("allocate/query->grid_sync");
    stats_registry.Get("grid_sync->enumerate");
  }

  flow::Exchange<GpsRecord> source_exchange(
      1, 1, options.channel_capacity, stats_for("source->assembler"));
  flow::Exchange<Snapshot> snapshot_exchange(
      1, p, options.channel_capacity,
      stats_for(options.join_parallel_cells ? "assembler->grid_allocate"
                                            : "assembler->cluster"));
  flow::Exchange<pattern::Partition> partition_exchange(
      p, p, options.channel_capacity,
      stats_for(options.join_parallel_cells ? "grid_sync->enumerate"
                                            : "cluster->enumerate"));
  // Extra exchanges of the Fig. 5 cell-parallel mode (lazily created).
  std::optional<flow::Exchange<CellMsg>> query_exchange;
  std::optional<flow::Exchange<SyncMsg>> sync_exchange;

  flow::SnapshotMetrics metrics;
  CompletionTracker tracker(p);
  TimeAccumulator cluster_time;
  TimeAccumulator enum_time;
  std::atomic<std::int64_t> cluster_count{0};
  std::atomic<std::int64_t> cluster_member_sum{0};
  std::atomic<std::int64_t> snapshot_count{0};

  std::mutex collector_mu;
  std::vector<pattern::PatternCollector> collectors(queries.size());
  // One sink per query, all sharing the mutex and the optional callback.
  auto make_sink = [&](std::size_t query) {
    return [&collectors, &collector_mu, &options,
            query](const CoMovementPattern& pat) {
      std::lock_guard<std::mutex> lock(collector_mu);
      collectors[query].Add(pat);
      if (options.on_pattern) options.on_pattern(pat);
    };
  };

  flow::TaskGroup tasks;

  // --- Source: replays records with birth-bound watermarks, either in
  // time order or deterministically shuffled inside a sliding window (the
  // §4 synchronisation then has to reassemble the chains downstream).
  tasks.Spawn([&] {
    flow::BatchingSender<GpsRecord> sender(source_exchange, 0,
                                           options.exchange_batch_size);
    const auto throttle = [&] {
      if (options.replay_delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options.replay_delay_us));
      }
    };
    if (options.replay_shuffle_window <= 0) {
      Timestamp current = kNoTime;
      for (const GpsRecord& record : dataset.records) {
        if (record.time != current) {
          COMOVE_CHECK(record.time > current);
          // No trajectory can be born before this batch's time anymore.
          sender.BroadcastWatermark(record.time - 1);
          current = record.time;
          throttle();
        }
        sender.Send(0, record);
      }
      if (current != kNoTime) {
        sender.BroadcastWatermark(current);
      }
      sender.Close();
      return;
    }
    // Shuffled replay: flush blocks of `window` consecutive time units in
    // a random permutation; the watermark trails each complete block.
    Rng rng(options.shuffle_seed);
    const Timestamp window = options.replay_shuffle_window;
    std::vector<GpsRecord> block;
    Timestamp block_start = kNoTime;
    auto flush = [&] {
      for (std::size_t i = block.size(); i > 1; --i) {
        std::swap(block[i - 1],
                  block[static_cast<std::size_t>(rng.UniformInt(
                      0, static_cast<std::int64_t>(i) - 1))]);
      }
      Timestamp max_time = kNoTime;
      for (const GpsRecord& record : block) {
        max_time = std::max(max_time, record.time);
        sender.Send(0, record);
      }
      if (max_time != kNoTime) {
        sender.BroadcastWatermark(max_time);
      }
      block.clear();
    };
    for (const GpsRecord& record : dataset.records) {
      if (block_start == kNoTime) block_start = record.time;
      if (record.time >= block_start + window) {
        flush();
        block_start = record.time;
        throttle();
      }
      block.push_back(record);
    }
    flush();
    sender.Close();
  });

  // --- Assembler: §4 last-time synchronisation into snapshots.
  tasks.Spawn([&] {
    flow::SnapshotAssembler assembler;
    auto route = [&](std::vector<Snapshot> snapshots) {
      for (Snapshot& snapshot : snapshots) {
        const Timestamp t = snapshot.time;
        metrics.MarkIngest(t);
        tracker.Register(t);
        snapshot_count.fetch_add(1, std::memory_order_relaxed);
        snapshot_exchange.Send(0, static_cast<std::size_t>(t) %
                                      static_cast<std::size_t>(p),
                               std::move(snapshot));
        snapshot_exchange.BroadcastWatermark(0, t);
      }
    };
    auto& input = source_exchange.channel(0);
    std::vector<flow::Element<GpsRecord>> batch;
    while (input.PopBatch(batch, pop_batch_max) > 0) {
      for (flow::Element<GpsRecord>& element : batch) {
        if (element.is_data()) {
          route(assembler.OnRecord(element.data));
        } else {
          route(assembler.AdvanceBirthBound(element.watermark));
        }
      }
    }
    route(assembler.Finish());
    snapshot_exchange.BroadcastWatermark(0, kMaxTime);
    snapshot_exchange.CloseProducer(0);
  });

  // Shared post-clustering actions of both clustering execution modes.
  auto record_cluster_stats = [&](const ClusterSnapshot& clustered) {
    for (const Cluster& c : clustered.clusters) {
      cluster_count.fetch_add(1, std::memory_order_relaxed);
      cluster_member_sum.fetch_add(
          static_cast<std::int64_t>(c.members.size()),
          std::memory_order_relaxed);
    }
  };
  // Each clustering worker owns a BatchingSender over the partition
  // exchange (partitions are the highest-fanout payload: one per cluster
  // member set per snapshot), so the shared lambdas take the sender.
  auto route_partitions = [&](flow::BatchingSender<pattern::Partition>& out,
                              const ClusterSnapshot& clustered) {
    for (pattern::Partition& part :
         pattern::MakePartitions(clustered, partition_constraints)) {
      const std::size_t target = OwnerPartition(part.owner, p);
      out.Send(target, std::move(part));
    }
  };
  auto clustering_progress = [&](flow::BatchingSender<pattern::Partition>& out,
                                 std::int32_t worker, Timestamp w) {
    if (enumerate) {
      out.BroadcastWatermark(w);
    } else {
      for (const Timestamp done : tracker.Update(worker, w)) {
        metrics.MarkComplete(done);
      }
    }
  };

  if (!options.join_parallel_cells) {
    // --- Cluster workers: snapshot-parallel indexed clustering (§5.3).
    tasks.SpawnIndexed(p, [&, record_cluster_stats, route_partitions,
                           clustering_progress](std::int32_t worker) {
      flow::BatchingSender<pattern::Partition> partition_sender(
          partition_exchange, worker, options.exchange_batch_size);
      // Join + DBSCAN working memory, reused across this worker's snapshots.
      cluster::ClusterScratch scratch;
      auto& input = snapshot_exchange.channel(worker);
      while (auto element = input.Pop()) {
        if (element->is_data()) {
          Stopwatch watch;
          const ClusterSnapshot clustered = cluster::ClusterSnapshotWith(
              options.clustering, element->data, options.cluster_options,
              scratch);
          cluster_time.Add(watch.ElapsedMillis());
          record_cluster_stats(clustered);
          if (enumerate) route_partitions(partition_sender, clustered);
        } else {
          // All of this worker's snapshots <= watermark are done (FIFO).
          clustering_progress(partition_sender, worker, element->watermark);
        }
      }
      if (enumerate) partition_sender.Close();
    });
  } else {
    // --- The literal Fig. 5 dataflow: GridAllocate -> cell-keyed
    // GridQuery -> GridSync + DBSCAN, each a parallel stage.
    COMOVE_CHECK_MSG(
        options.clustering != cluster::ClusteringMethod::kGDC,
        "join_parallel_cells supports the GR-index methods (RJC/SRJ)");
    const bool use_lemmas =
        options.clustering == cluster::ClusteringMethod::kRJC;
    query_exchange.emplace(p, p, options.channel_capacity,
                           stats_for("grid_allocate->grid_query"));
    sync_exchange.emplace(2 * p, p, options.channel_capacity,
                          stats_for("allocate/query->grid_sync"));

    // GridAllocate subtasks: replicate locations into GridObjects and
    // forward the raw snapshot to the sync stage for DBSCAN.
    tasks.SpawnIndexed(p, [&](std::int32_t worker) {
      const GridKeyHash cell_hash;
      // CellMsg is the highest-volume payload in this mode (every object
      // replicated per overlapped cell), so its sends are batched; the
      // objects vector is reused across snapshots.
      flow::BatchingSender<CellMsg> cell_sender(*query_exchange, worker,
                                                options.exchange_batch_size);
      std::vector<cluster::GridObject> objects;
      // Grid geometry derived (and the cell width validated) once per
      // worker, not once per snapshot.
      const GridIndex grid(options.cluster_options.join.grid_cell_width);
      auto& input = snapshot_exchange.channel(worker);
      while (auto element = input.Pop()) {
        if (element->is_data()) {
          const Timestamp t = element->data.time;
          Stopwatch watch;
          cluster::GridAllocate(element->data, grid,
                                options.cluster_options.join.eps,
                                use_lemmas, objects);
          cluster_time.Add(watch.ElapsedMillis());
          for (cluster::GridObject& object : objects) {
            const std::size_t target =
                cell_hash(object.key) % static_cast<std::size_t>(p);
            cell_sender.Send(target, CellMsg{t, std::move(object)});
          }
          SyncMsg msg;
          msg.time = t;
          msg.is_snapshot = true;
          msg.snapshot = std::move(element->data);
          sync_exchange->Send(worker,
                              static_cast<std::size_t>(t) %
                                  static_cast<std::size_t>(p),
                              std::move(msg));
        } else {
          cell_sender.BroadcastWatermark(element->watermark);
          sync_exchange->BroadcastWatermark(worker, element->watermark);
        }
      }
      cell_sender.Close();
      sync_exchange->CloseProducer(worker);
    });

    // GridQuery subtasks: per-cell Algorithm 2 once a snapshot's objects
    // are complete (aligned watermark), then ship the neighbour stream.
    tasks.SpawnIndexed(p, [&](std::int32_t worker) {
      flow::WatermarkAligner aligner(p);
      std::map<Timestamp,
               std::unordered_map<GridKey, std::vector<cluster::GridObject>,
                                  GridKeyHash>>
          cells_by_time;
      // One kernel scratch per worker, reused across cells: the R-tree
      // path recycles its pages (RTree::Clear), the sweep path its SoA
      // columns - steady state allocates nothing either way.
      cluster::CellQueryScratch cell_scratch;
      auto process_through = [&](Timestamp w) {
        while (!cells_by_time.empty() &&
               cells_by_time.begin()->first <= w) {
          const Timestamp t = cells_by_time.begin()->first;
          Stopwatch watch;
          std::vector<NeighborPair> pairs;
          for (auto& [key, objects] : cells_by_time.begin()->second) {
            cluster::GridQuery(objects, options.cluster_options.join,
                               use_lemmas, cell_scratch, pairs);
          }
          cluster_time.Add(watch.ElapsedMillis());
          SyncMsg msg;
          msg.time = t;
          msg.pairs = std::move(pairs);
          sync_exchange->Send(p + worker,
                              static_cast<std::size_t>(t) %
                                  static_cast<std::size_t>(p),
                              std::move(msg));
          cells_by_time.erase(cells_by_time.begin());
        }
      };
      auto& input = query_exchange->channel(worker);
      std::vector<flow::Element<CellMsg>> batch;
      while (input.PopBatch(batch, pop_batch_max) > 0) {
        for (flow::Element<CellMsg>& element : batch) {
          if (element.is_data()) {
            cells_by_time[element.data.time][element.data.object.key]
                .push_back(std::move(element.data.object));
          } else if (auto advanced = aligner.Update(element.producer,
                                                    element.watermark)) {
            process_through(*advanced);
            sync_exchange->BroadcastWatermark(p + worker, *advanced);
          }
        }
      }
      process_through(kMaxTime);
      sync_exchange->CloseProducer(p + worker);
    });

    // GridSync + DBSCAN subtasks: merge per-cell neighbour streams with
    // the raw snapshot, cluster, and hand off to enumeration.
    tasks.SpawnIndexed(p, [&, record_cluster_stats, route_partitions,
                           clustering_progress](std::int32_t worker) {
      flow::BatchingSender<pattern::Partition> partition_sender(
          partition_exchange, worker, options.exchange_batch_size);
      flow::WatermarkAligner aligner(2 * p);
      struct PendingTime {
        bool have_snapshot = false;
        Snapshot snapshot;
        std::vector<NeighborPair> pairs;
      };
      std::map<Timestamp, PendingTime> buffer;
      // DBSCAN interning/CSR buffers, reused across this worker's
      // snapshots.
      cluster::DbscanScratch dbscan_scratch;
      auto process_through = [&](Timestamp w) {
        while (!buffer.empty() && buffer.begin()->first <= w) {
          PendingTime pending = std::move(buffer.begin()->second);
          buffer.erase(buffer.begin());
          COMOVE_CHECK_MSG(pending.have_snapshot,
                           "neighbour pairs arrived for a snapshot that "
                           "never did");
          Stopwatch watch;
          // GridSync: canonical order + dedup (required for the SRJ
          // variant, a no-op for RJC with both lemmas).
          std::sort(pending.pairs.begin(), pending.pairs.end());
          pending.pairs.erase(
              std::unique(pending.pairs.begin(), pending.pairs.end()),
              pending.pairs.end());
          const ClusterSnapshot clustered = cluster::DbscanFromNeighbors(
              pending.snapshot, pending.pairs,
              options.cluster_options.dbscan, dbscan_scratch);
          cluster_time.Add(watch.ElapsedMillis());
          record_cluster_stats(clustered);
          if (enumerate) route_partitions(partition_sender, clustered);
        }
      };
      auto& input = sync_exchange->channel(worker);
      while (auto element = input.Pop()) {
        if (element->is_data()) {
          PendingTime& pending = buffer[element->data.time];
          if (element->data.is_snapshot) {
            pending.have_snapshot = true;
            pending.snapshot = std::move(element->data.snapshot);
          } else {
            pending.pairs.insert(pending.pairs.end(),
                                 element->data.pairs.begin(),
                                 element->data.pairs.end());
          }
        } else if (auto advanced = aligner.Update(element->producer,
                                                  element->watermark)) {
          process_through(*advanced);
          clustering_progress(partition_sender, worker, *advanced);
        }
      }
      process_through(kMaxTime);
      if (enumerate) partition_sender.Close();
    });
  }

  // --- Enumeration workers: id-partitioned BA / FBA / VBA.
  if (enumerate) {
    tasks.SpawnIndexed(p, [&](std::int32_t worker) {
      // One enumerator per query; all consume the shared partition stream.
      std::vector<std::unique_ptr<pattern::StreamingEnumerator>> enumerators;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        enumerators.push_back(MakeEnumerator(
            queries[q].enumerator, queries[q].constraints, make_sink(q)));
      }
      flow::WatermarkAligner aligner(p);
      flow::TimeReorderBuffer<pattern::Partition> buffer;

      // The worker is done with a time only when EVERY query is.
      auto finalized_through = [&]() {
        Timestamp through = kMaxTime;
        for (const auto& e : enumerators) {
          const Timestamp f = e->FinalizedThrough();
          through = std::min(through, f == kNoTime
                                          ? std::numeric_limits<
                                                Timestamp>::min()
                                          : f);
        }
        return through;
      };

      auto feed = [&](std::vector<std::pair<Timestamp, pattern::Partition>>
                          batch) {
        std::size_t i = 0;
        while (i < batch.size()) {
          const Timestamp t = batch[i].first;
          std::vector<pattern::Partition> parts;
          while (i < batch.size() && batch[i].first == t) {
            parts.push_back(std::move(batch[i].second));
            ++i;
          }
          Stopwatch watch;
          for (std::size_t q = 0; q < enumerators.size(); ++q) {
            // The last query consumes the originals; earlier ones copies.
            enumerators[q]->OnPartitions(
                t, q + 1 == enumerators.size()
                       ? std::move(parts)
                       : std::vector<pattern::Partition>(parts));
          }
          enum_time.Add(watch.ElapsedMillis());
        }
      };

      auto& input = partition_exchange.channel(worker);
      std::vector<flow::Element<pattern::Partition>> batch;
      while (input.PopBatch(batch, pop_batch_max) > 0) {
        for (flow::Element<pattern::Partition>& element : batch) {
          if (element.is_data()) {
            buffer.Add(element.data.time, std::move(element.data));
          } else if (auto advanced = aligner.Update(element.producer,
                                                    element.watermark)) {
            const Timestamp w = *advanced;
            feed(buffer.DrainThrough(w));
            if (w != kMaxTime) {
              Stopwatch watch;
              for (const auto& e : enumerators) e->AdvanceTime(w);
              enum_time.Add(watch.ElapsedMillis());
            }
            // A snapshot counts as answered once its pattern decisions
            // are final across every query (for VBA this is deferred
            // until strings close - the §6.3 latency/throughput trade).
            for (const Timestamp done :
                 tracker.Update(worker, finalized_through())) {
              metrics.MarkComplete(done);
            }
          }
        }
      }
      feed(buffer.DrainAll());
      for (const auto& e : enumerators) e->Finish();
      for (const Timestamp done : tracker.Update(worker, kMaxTime)) {
        metrics.MarkComplete(done);
      }
    });
  }

  tasks.JoinAll();
  COMOVE_CHECK_MSG(tracker.pending() == 0,
                   "pipeline drained with incomplete snapshots");

  IcpeResult result;
  if (!collectors.empty() &&
      options.enumerator != EnumeratorKind::kNone) {
    result.patterns = collectors[0].Patterns();
    for (std::size_t q = 1; q < collectors.size(); ++q) {
      result.extra_patterns.push_back(collectors[q].Patterns());
    }
  } else {
    // Primary was kNone: every collector belongs to an extra query.
    for (auto& collector : collectors) {
      result.extra_patterns.push_back(collector.Patterns());
    }
  }
  result.snapshots = metrics.Collect();
  if (options.collect_stats) result.stage_stats = stats_registry.Snapshot();
  result.avg_cluster_ms = cluster_time.Average();
  result.avg_enum_ms = enum_time.Average();
  result.cluster_count = cluster_count.load();
  result.snapshot_count = snapshot_count.load();
  result.avg_cluster_size =
      result.cluster_count > 0
          ? static_cast<double>(cluster_member_sum.load()) /
                static_cast<double>(result.cluster_count)
          : 0.0;
  return result;
}

}  // namespace comove::core
