#include "core/distributed.h"

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/serde.h"
#include "core/completion_tracker.h"
#include "core/stage_workers.h"
#include "core/state_serde.h"
#include "core/wire_codecs.h"
#include "flow/checkpoint/coordinator.h"
#include "flow/exchange.h"
#include "flow/metrics.h"
#include "flow/metrics_sampler.h"
#include "flow/net/peer_link.h"
#include "flow/net/socket.h"
#include "flow/net/socket_transport.h"
#include "flow/net/wire.h"
#include "flow/task_group.h"
#include "flow/trace.h"

extern char** environ;

namespace comove::core {
namespace {

using flow::net::Accept;
using flow::net::Connect;
using flow::net::Listen;
using flow::net::Listener;
using flow::net::MsgType;
using flow::net::PeerLink;
using flow::net::SocketTransport;

/// Control frame tags, all above MsgType::kFirstControl so they share the
/// data links without colliding with kElements/kCloseProducer.
enum CtrlTag : std::uint8_t {
  kTagHello = 16,      ///< worker -> coord: u32 index, string listen_addr
  kTagConfig = 17,     ///< coord -> worker: the full WorkerSetup blob
  kTagAck = 18,        ///< worker -> coord: checkpoint state ack
  kTagProgress = 19,   ///< worker -> coord: subtask finalized through t
  kTagResult = 20,     ///< worker -> coord: counters + times + patterns
  kTagPeerHello = 21,  ///< worker -> worker: u32 index (mesh handshake)
  kTagStats = 22,      ///< worker -> coord: stage-stats snapshots
  kTagTrace = 23,      ///< worker -> coord: trace events + clock anchors
};

constexpr std::uint8_t kSnapshotEdge = 0;   ///< assembler -> cluster
constexpr std::uint8_t kPartitionEdge = 1;  ///< cluster -> enumerate
constexpr std::uint32_t kConfigVersion = 2;
constexpr std::int64_t kWorkerHandshakeTimeoutMs = 15000;
/// Cadence of periodic worker STATS frames when no sampler interval is
/// set; with a sampler, the worker ships at the sampler's own cadence so
/// the coordinator-side series sees remote rows advance between ticks.
constexpr std::int64_t kDefaultStatsShipIntervalMs = 100;

/// Contiguous subtask range [lo, hi) of worker `w` out of `count`.
std::pair<std::int32_t, std::int32_t> SubtaskRange(std::int32_t parallelism,
                                                   std::int32_t count,
                                                   std::int32_t w) {
  const auto lo = static_cast<std::int32_t>(
      static_cast<std::int64_t>(w) * parallelism / count);
  const auto hi = static_cast<std::int32_t>(
      static_cast<std::int64_t>(w + 1) * parallelism / count);
  return {lo, hi};
}

std::string CoordinatorAddress(const std::string& transport) {
  if (transport == "tcp") return "tcp:127.0.0.1:0";
  // Unique per (pid, run) so parallel tests never collide on a path.
  static std::atomic<std::uint64_t> seq{0};
  return "unix:/tmp/comove-net-" + std::to_string(::getpid()) + "-" +
         std::to_string(seq.fetch_add(1)) + ".sock";
}

std::string WorkerListenAddress(const std::string& coord_address,
                                std::int32_t index) {
  if (coord_address.rfind("unix:", 0) == 0) {
    return coord_address + ".w" + std::to_string(index);
  }
  return "tcp:127.0.0.1:0";
}

void UnlinkIfUnix(const std::string& address) {
  if (address.rfind("unix:", 0) == 0) ::unlink(address.c_str() + 5);
}

/// Everything a worker process needs to run its subtask range,
/// reconstructed bit-for-bit from the CONFIG frame. The options carry
/// enumerator=kNone with the full query set in extra_queries, so
/// BuildQueryPlan on the worker yields the coordinator's exact plan
/// (same queries, same partition_constraints fold).
struct WorkerSetup {
  std::int32_t worker_count = 0;
  std::int32_t worker_index = 0;
  std::int32_t lo = 0;
  std::int32_t hi = 0;
  std::vector<std::string> peer_addresses;
  IcpeOptions options;
  bool checkpointing = false;
  std::int64_t restored_id = 0;
  std::map<std::pair<std::string, std::int32_t>, std::string> restored;
  /// Observability: whether to keep a worker-side stats registry / trace
  /// recorder and ship them back over the control link.
  bool collect_stats = false;
  bool trace = false;
  std::int64_t stats_interval_ms = kDefaultStatsShipIntervalMs;
  /// Coordinator trace clock (TraceRecorder::NowNs) at CONFIG-encode
  /// time; paired with the worker clock at CONFIG-decode time it aligns
  /// the two timelines to within the one-way CONFIG latency.
  std::uint64_t coord_trace_now = 0;
};

void EncodeConfig(BinaryWriter* w, const WorkerSetup& s) {
  w->WriteU8(kTagConfig);
  w->WriteU32(kConfigVersion);
  w->WriteI32(s.worker_count);
  w->WriteI32(s.worker_index);
  w->WriteI32(s.options.parallelism);
  w->WriteI32(s.lo);
  w->WriteI32(s.hi);
  w->WriteU64(s.peer_addresses.size());
  for (const std::string& addr : s.peer_addresses) w->WriteString(addr);
  w->WriteU64(s.options.channel_capacity);
  w->WriteU64(s.options.exchange_batch_size);
  w->WriteU8(static_cast<std::uint8_t>(s.options.clustering));
  const cluster::RangeJoinOptions& join = s.options.cluster_options.join;
  w->WriteDouble(join.grid_cell_width);
  w->WriteDouble(join.eps);
  w->WriteU8(static_cast<std::uint8_t>(join.metric));
  w->WriteU8(static_cast<std::uint8_t>(join.kernel));
  w->WriteU8(static_cast<std::uint8_t>(join.simd));
  w->WriteBool(join.incremental);
  w->WriteI32(join.rtree.max_entries);
  w->WriteI32(join.rtree.min_entries);
  w->WriteBool(join.rtree.enable_reinsert);
  w->WriteI32(s.options.cluster_options.dbscan.min_pts);
  w->WriteU64(s.options.extra_queries.size());
  for (const PatternQuery& q : s.options.extra_queries) {
    w->WriteI32(q.constraints.m);
    w->WriteI32(q.constraints.k);
    w->WriteI32(q.constraints.l);
    w->WriteI32(q.constraints.g);
    w->WriteU8(static_cast<std::uint8_t>(q.enumerator));
  }
  w->WriteBool(s.checkpointing);
  w->WriteI64(s.restored_id);
  w->WriteString(s.options.fault.stage);
  w->WriteI32(s.options.fault.subtask);
  w->WriteI64(s.options.fault.at_checkpoint);
  w->WriteU64(s.restored.size());
  for (const auto& [key, bytes] : s.restored) {
    w->WriteString(key.first);
    w->WriteI32(key.second);
    w->WriteString(bytes);
  }
  w->WriteBool(s.collect_stats);
  w->WriteBool(s.trace);
  w->WriteI64(s.stats_interval_ms);
  w->WriteU64(s.coord_trace_now);
}

/// Decodes a CONFIG body (reader positioned after the tag). Returns false
/// on corruption or out-of-range values.
bool DecodeConfig(BinaryReader* r, WorkerSetup* s) {
  if (r->ReadU32() != kConfigVersion) return false;
  s->worker_count = r->ReadI32();
  s->worker_index = r->ReadI32();
  s->options.parallelism = r->ReadI32();
  s->lo = r->ReadI32();
  s->hi = r->ReadI32();
  const std::uint64_t peers = r->ReadU64();
  if (!r->ok() || peers != static_cast<std::uint64_t>(s->worker_count)) {
    return false;
  }
  for (std::uint64_t i = 0; i < peers; ++i) {
    s->peer_addresses.push_back(r->ReadString());
  }
  s->options.channel_capacity = static_cast<std::size_t>(r->ReadU64());
  s->options.exchange_batch_size = static_cast<std::size_t>(r->ReadU64());
  const std::uint8_t clustering = r->ReadU8();
  if (clustering > 2) return false;
  s->options.clustering = static_cast<cluster::ClusteringMethod>(clustering);
  cluster::RangeJoinOptions& join = s->options.cluster_options.join;
  join.grid_cell_width = r->ReadDouble();
  join.eps = r->ReadDouble();
  const std::uint8_t metric = r->ReadU8();
  const std::uint8_t kernel = r->ReadU8();
  const std::uint8_t simd = r->ReadU8();
  if (metric > 1 || kernel > 1 || simd > 2) return false;
  join.metric = static_cast<DistanceMetric>(metric);
  join.kernel = static_cast<cluster::JoinKernel>(kernel);
  join.simd = static_cast<SimdLevel>(simd);
  join.incremental = r->ReadBool();
  join.rtree.max_entries = r->ReadI32();
  join.rtree.min_entries = r->ReadI32();
  join.rtree.enable_reinsert = r->ReadBool();
  s->options.cluster_options.dbscan.min_pts = r->ReadI32();
  const std::uint64_t queries = r->ReadU64();
  if (!r->ok() || queries > r->remaining()) return false;
  s->options.enumerator = EnumeratorKind::kNone;
  for (std::uint64_t i = 0; i < queries; ++i) {
    PatternQuery q;
    q.constraints.m = r->ReadI32();
    q.constraints.k = r->ReadI32();
    q.constraints.l = r->ReadI32();
    q.constraints.g = r->ReadI32();
    const std::uint8_t kind = r->ReadU8();
    if (kind > 2) return false;  // kBA/kFBA/kVBA; kNone never ships
    q.enumerator = static_cast<EnumeratorKind>(kind);
    if (!r->ok() || !q.constraints.IsValid()) return false;
    s->options.extra_queries.push_back(q);
  }
  s->checkpointing = r->ReadBool();
  s->restored_id = r->ReadI64();
  s->options.fault.stage = r->ReadString();
  s->options.fault.subtask = r->ReadI32();
  s->options.fault.at_checkpoint = r->ReadI64();
  const std::uint64_t states = r->ReadU64();
  if (!r->ok() || states > r->remaining()) return false;
  for (std::uint64_t i = 0; i < states; ++i) {
    std::string op = r->ReadString();
    const std::int32_t subtask = r->ReadI32();
    std::string bytes = r->ReadString();
    s->restored[{std::move(op), subtask}] = std::move(bytes);
  }
  s->collect_stats = r->ReadBool();
  s->trace = r->ReadBool();
  s->stats_interval_ms = r->ReadI64();
  s->coord_trace_now = r->ReadU64();
  if (!r->ok() || !r->AtEnd()) return false;
  return s->worker_count > 0 && s->worker_index >= 0 &&
         s->worker_index < s->worker_count && s->options.parallelism > 0 &&
         s->lo >= 0 && s->lo <= s->hi &&
         s->hi <= s->options.parallelism;
}

/// The 13 run counters in their fixed wire order (= declaration order).
std::array<std::atomic<std::int64_t>*, 13> CounterFields(
    PipelineCounters* c) {
  return {&c->cluster_count,       &c->cluster_member_sum,
          &c->snapshot_count,      &c->delta_cells_seen,
          &c->delta_cells_replayed, &c->delta_dbscan_replays,
          &c->arena_bytes,         &c->arena_allocations,
          &c->enum_strings_opened, &c->enum_strings_closed,
          &c->enum_candidates_peak, &c->enum_apriori_nodes,
          &c->enum_apriori_pruned};
}

void FoldTime(TimeAccumulator* acc, double total_ms, std::int64_t count) {
  std::lock_guard<std::mutex> lock(acc->mu);
  acc->total_ms += total_ms;
  acc->count += count;
}

void EncodeResult(BinaryWriter* w, PipelineCounters* counters,
                  const TimeAccumulator& cluster_time,
                  const TimeAccumulator& enum_time,
                  const std::vector<pattern::PatternCollector>& collectors) {
  w->WriteU8(kTagResult);
  for (std::atomic<std::int64_t>* field : CounterFields(counters)) {
    w->WriteI64(field->load(std::memory_order_relaxed));
  }
  w->WriteDouble(cluster_time.total_ms);
  w->WriteI64(cluster_time.count);
  w->WriteDouble(enum_time.total_ms);
  w->WriteI64(enum_time.count);
  w->WriteU64(collectors.size());
  for (const pattern::PatternCollector& collector : collectors) {
    w->WriteU64(collector.size());
    for (const auto& [objects, pat] : collector.entries()) {
      WritePattern(w, pat);
    }
  }
}

/// Folds one worker's RESULT body (reader past the tag) into the
/// coordinator's run state. Thread-safe against concurrent results.
bool FoldResult(BinaryReader* r, PipelineCounters* counters,
                TimeAccumulator* cluster_time, TimeAccumulator* enum_time,
                std::mutex* collector_mu,
                std::vector<pattern::PatternCollector>* collectors) {
  for (std::atomic<std::int64_t>* field : CounterFields(counters)) {
    field->fetch_add(r->ReadI64(), std::memory_order_relaxed);
  }
  const double cluster_ms = r->ReadDouble();
  const std::int64_t cluster_count = r->ReadI64();
  const double enum_ms = r->ReadDouble();
  const std::int64_t enum_count = r->ReadI64();
  if (!r->ok()) return false;
  FoldTime(cluster_time, cluster_ms, cluster_count);
  FoldTime(enum_time, enum_ms, enum_count);
  const std::uint64_t queries = r->ReadU64();
  if (!r->ok() || queries != collectors->size()) return false;
  std::lock_guard<std::mutex> lock(*collector_mu);
  for (std::uint64_t q = 0; q < queries; ++q) {
    const std::uint64_t patterns = r->ReadU64();
    if (!r->ok() || patterns > r->remaining()) return false;
    for (std::uint64_t i = 0; i < patterns; ++i) {
      const CoMovementPattern pat = ReadPattern(r);
      if (!r->ok()) return false;
      (*collectors)[q].Add(pat);
    }
  }
  return r->ok() && r->AtEnd();
}

pid_t SpawnWorker(const std::string& binary,
                  const std::string& coord_address, std::int32_t index) {
  const std::string index_arg = std::to_string(index);
  std::array<char*, 5> argv = {
      const_cast<char*>(binary.c_str()),
      const_cast<char*>(kNetWorkerFlag),
      const_cast<char*>(coord_address.c_str()),
      const_cast<char*>(index_arg.c_str()),
      nullptr,
  };
  pid_t pid = -1;
  if (::posix_spawn(&pid, binary.c_str(), nullptr, nullptr, argv.data(),
                    environ) != 0) {
    return -1;
  }
  return pid;
}

}  // namespace

int NetWorkerMain(const std::string& coordinator_address,
                  std::int32_t worker_index) {
  // --- Handshake: dial the coordinator, stand up our own listener,
  // introduce ourselves, and block for the configuration. Everything here
  // is single-threaded (no reader threads yet), so blocking reads are
  // safe.
  UniqueFd coord_fd = Connect(coordinator_address, kWorkerHandshakeTimeoutMs);
  if (!coord_fd.valid()) {
    std::fprintf(stderr, "net worker %d: cannot reach coordinator %s\n",
                 worker_index, coordinator_address.c_str());
    return 2;
  }
  PeerLink coord(std::move(coord_fd));
  const std::string listen_address =
      WorkerListenAddress(coordinator_address, worker_index);
  std::string listen_error;
  Listener listener = Listen(listen_address, &listen_error);
  if (!listener.valid()) {
    std::fprintf(stderr, "net worker %d: listen %s failed: %s\n",
                 worker_index, listen_address.c_str(),
                 listen_error.c_str());
    return 2;
  }
  {
    std::string hello;
    BinaryWriter writer(&hello);
    writer.WriteU8(kTagHello);
    writer.WriteU32(static_cast<std::uint32_t>(worker_index));
    writer.WriteString(listener.address);
    if (!coord.SendFrame(hello)) return 2;
  }
  WorkerSetup setup;
  {
    std::string frame;
    if (!coord.ReadFrameBlocking(&frame, kWorkerHandshakeTimeoutMs)) {
      std::fprintf(stderr, "net worker %d: no CONFIG from coordinator\n",
                   worker_index);
      return 2;
    }
    BinaryReader reader(frame);
    if (reader.ReadU8() != kTagConfig || !DecodeConfig(&reader, &setup) ||
        setup.worker_index != worker_index) {
      std::fprintf(stderr, "net worker %d: bad CONFIG frame\n",
                   worker_index);
      return 2;
    }
  }
  const std::int32_t worker_count = setup.worker_count;
  const std::int32_t p = setup.options.parallelism;

  // --- Worker-side observability. The worker keeps its own stats
  // registry and trace recorder and ships both to the coordinator over
  // the control link: throttled STATS frames piggyback on the progress
  // cadence, and a final STATS + TRACE pair precedes the RESULT on the
  // same FIFO link, so the coordinator has merged them by the time the
  // result is accounted. Handshake frames stay uncounted on both ends
  // (link stats attach only after CONFIG here, after CONFIG-send on the
  // coordinator, and after PeerHello on both mesh sides), which keeps the
  // per-link frame counters symmetric across a clean run.
  const QueryPlan plan = BuildQueryPlan(setup.options);
  const bool enumerate = plan.enumerate();
  const bool wcollect = setup.collect_stats;
  flow::StageStatsRegistry wstats;
  std::optional<flow::TraceRecorder> owned_wtrace;
  flow::TraceRecorder* const wtr =
      setup.trace ? &owned_wtrace.emplace() : nullptr;
  // Clock-alignment anchor: our recorder clock at CONFIG receipt pairs
  // with the coordinator clock stamped into the CONFIG.
  const std::uint64_t trace_anchor = wtr != nullptr ? wtr->NowNs() : 0;
  flow::StageStats* snapshot_stats = nullptr;
  flow::StageStats* partition_stats = nullptr;
  if (wcollect) {
    // Deterministic registry order: stage rows first, then the links.
    // The coordinator pre-registers the same rows (prefixed "w<i>:") and
    // matches incoming snapshots by name.
    snapshot_stats = &wstats.Get("assembler->cluster");
    if (enumerate) partition_stats = &wstats.Get("cluster->enumerate");
    coord.set_stats(&wstats.Get("link:coord"));
    for (std::int32_t j = 0; j < worker_count; ++j) {
      if (j != worker_index) wstats.Get("link:w" + std::to_string(j));
    }
  }

  // --- Worker mesh for the p x p partition edge: connect to every
  // lower-indexed worker, then accept every higher-indexed one. Safe
  // ordering: the coordinator sends CONFIG only after ALL workers said
  // HELLO, so every listener already exists when the dialing starts.
  std::vector<std::unique_ptr<PeerLink>> peers(
      static_cast<std::size_t>(worker_count));
  for (std::int32_t i = 0; i < worker_index; ++i) {
    UniqueFd fd = Connect(setup.peer_addresses[static_cast<std::size_t>(i)],
                          kWorkerHandshakeTimeoutMs);
    if (!fd.valid()) return 2;
    auto link = std::make_unique<PeerLink>(std::move(fd));
    std::string hello;
    BinaryWriter writer(&hello);
    writer.WriteU8(kTagPeerHello);
    writer.WriteU32(static_cast<std::uint32_t>(worker_index));
    if (!link->SendFrame(hello)) return 2;
    if (wcollect) {
      link->set_stats(&wstats.Get("link:w" + std::to_string(i)));
    }
    peers[static_cast<std::size_t>(i)] = std::move(link);
  }
  for (std::int32_t n = worker_index + 1; n < worker_count; ++n) {
    UniqueFd fd = Accept(listener, kWorkerHandshakeTimeoutMs);
    if (!fd.valid()) return 2;
    auto link = std::make_unique<PeerLink>(std::move(fd));
    std::string frame;
    if (!link->ReadFrameBlocking(&frame, kWorkerHandshakeTimeoutMs)) {
      return 2;
    }
    BinaryReader reader(frame);
    const std::uint8_t tag = reader.ReadU8();
    const auto index = static_cast<std::int32_t>(reader.ReadU32());
    if (tag != kTagPeerHello || !reader.ok() || !reader.AtEnd() ||
        index <= worker_index || index >= worker_count ||
        peers[static_cast<std::size_t>(index)] != nullptr) {
      return 2;
    }
    if (wcollect) {
      link->set_stats(&wstats.Get("link:w" + std::to_string(index)));
    }
    peers[static_cast<std::size_t>(index)] = std::move(link);
  }

  // --- Transports. The snapshot edge only receives here (the assembler
  // lives on the coordinator); the partition edge routes each remote
  // consumer through the link of its hosting worker.
  std::vector<PeerLink*> snapshot_route(static_cast<std::size_t>(p),
                                        nullptr);
  std::vector<PeerLink*> partition_route(static_cast<std::size_t>(p),
                                         nullptr);
  std::vector<std::int32_t> peer_subtasks(
      static_cast<std::size_t>(worker_count), 0);
  for (std::int32_t w = 0; w < worker_count; ++w) {
    const auto [lo, hi] = SubtaskRange(p, worker_count, w);
    peer_subtasks[static_cast<std::size_t>(w)] = hi - lo;
    if (w == worker_index) continue;
    for (std::int32_t c = lo; c < hi; ++c) {
      partition_route[static_cast<std::size_t>(c)] =
          peers[static_cast<std::size_t>(w)].get();
    }
  }
  SocketTransport<Snapshot, SnapshotCodec> snapshot_transport(
      1, p, kSnapshotEdge, setup.lo, setup.hi, snapshot_route,
      setup.options.channel_capacity, snapshot_stats);
  SocketTransport<pattern::Partition, PartitionCodec> partition_transport(
      p, p, kPartitionEdge, setup.lo, setup.hi, partition_route,
      setup.options.channel_capacity, partition_stats);

  std::atomic<bool> crashed{false};
  std::atomic<bool> finished{false};
  auto declare_crash = [&] {
    bool expected = false;
    if (!crashed.compare_exchange_strong(expected, true)) return;
    snapshot_transport.Cancel();
    partition_transport.Cancel();
  };

  // --- Link readers. Close accounting decides whether a peer's EOF is a
  // clean finish or a crash: every close frame of a link arrives before
  // its EOF (FIFO), so by on_close time the counters are final. The
  // counters are only ever touched from that link's own reader thread.
  std::int64_t coord_snapshot_closes = 0;
  std::vector<std::int64_t> peer_partition_closes(
      static_cast<std::size_t>(worker_count), 0);
  auto on_frame = [&](std::int64_t* close_count,
                      std::string_view payload) {
    BinaryReader reader(payload);
    const std::uint8_t tag = reader.ReadU8();
    if (tag == static_cast<std::uint8_t>(MsgType::kElements)) {
      const std::uint8_t edge = reader.ReadU8();
      bool ok = reader.ok();
      if (ok && edge == kSnapshotEdge) {
        ok = snapshot_transport.OnElements(&reader);
      } else if (ok && edge == kPartitionEdge) {
        ok = partition_transport.OnElements(&reader);
      } else {
        ok = false;
      }
      if (!ok) declare_crash();
    } else if (tag == static_cast<std::uint8_t>(MsgType::kCloseProducer)) {
      const std::uint8_t edge = reader.ReadU8();
      reader.ReadI32();  // producer index, informational
      if (!reader.ok()) {
        declare_crash();
        return;
      }
      if (edge == kSnapshotEdge) {
        snapshot_transport.OnCloseProducer();
      } else if (edge == kPartitionEdge) {
        partition_transport.OnCloseProducer();
      }
      ++*close_count;
    }
    // Unknown control tags are ignored (forward compatibility).
  };
  coord.Start(
      [&](std::string_view payload) {
        on_frame(&coord_snapshot_closes, payload);
      },
      [&] {
        // Coordinator EOF is clean only once we are past our RESULT
        // (the coordinator half-closes after collecting it).
        if (!finished.load(std::memory_order_acquire)) declare_crash();
      });
  for (std::int32_t w = 0; w < worker_count; ++w) {
    if (w == worker_index || peers[static_cast<std::size_t>(w)] == nullptr) {
      continue;
    }
    std::int64_t* closes = &peer_partition_closes[static_cast<std::size_t>(w)];
    const std::int64_t expected_closes = peer_subtasks[static_cast<std::size_t>(w)];
    peers[static_cast<std::size_t>(w)]->Start(
        [&, closes](std::string_view payload) { on_frame(closes, payload); },
        [&, closes, expected_closes] {
          // Peer EOF after all its producer closes = it finished; EOF
          // before that = it died mid-stream.
          if (*closes < expected_closes) declare_crash();
        });
  }

  // --- Run state and the subtask environment. Acks and progress go to
  // the coordinator as control frames; patterns fold into worker-local
  // collectors shipped with the RESULT (always transactional: commit
  // happens only at a normal exit, so a crashed worker contributes
  // nothing and recovery regenerates its patterns exactly).
  FaultInjector injector(setup.options.fault);
  PipelineCounters counters;
  TimeAccumulator cluster_time;
  TimeAccumulator enum_time;
  std::mutex collector_mu;
  std::vector<pattern::PatternCollector> collectors(plan.queries.size());

  StageEnv env;
  env.options = &setup.options;
  env.tr = wtr;
  env.injector = &injector;
  env.crashed = &crashed;
  // An injected fault is a REAL process kill here: no destructors, no
  // RESULT, sockets slam shut - exactly what recovery must survive.
  env.crash_all = [] { std::_Exit(3); };
  env.ack = [&](std::int64_t id, const char* op, std::int32_t subtask,
                std::string state, flow::StageStats* stats) {
    if (stats != nullptr) {
      stats->OnSnapshot(static_cast<std::int64_t>(state.size()), id);
    }
    const std::uint64_t t0 = wtr != nullptr ? wtr->NowNs() : 0;
    std::string payload;
    BinaryWriter writer(&payload);
    writer.WriteU8(kTagAck);
    writer.WriteString(op);
    writer.WriteI32(subtask);
    writer.WriteI64(id);
    writer.WriteString(state);
    coord.SendFrame(payload);
    if (wtr != nullptr) {
      wtr->RecordSpanSince("checkpoint", op, subtask, kNoTime, t0, id);
    }
  };
  env.restored_state = [&](const char* op,
                           std::int32_t subtask) -> const std::string* {
    const auto it = setup.restored.find({std::string(op), subtask});
    return it != setup.restored.end() ? &it->second : nullptr;
  };
  env.checkpointing = setup.checkpointing;
  env.restored_id = setup.restored_id;
  env.pop_batch_max =
      std::max<std::size_t>(std::size_t{1}, setup.options.exchange_batch_size);

  // Periodic + final stats shipping. SendFrame serialises on the link's
  // send mutex, so STATS frames from different subtask threads interleave
  // safely with acks, progress, and shipped data.
  auto ship_stats = [&](bool final_frame) {
    std::string payload;
    BinaryWriter writer(&payload);
    writer.WriteU8(kTagStats);
    writer.WriteBool(final_frame);
    const std::vector<flow::StageStatsSnapshot> rows = wstats.Snapshot();
    writer.WriteU64(rows.size());
    for (const flow::StageStatsSnapshot& row : rows) {
      flow::net::WriteStageStatsSnapshot(&writer, row);
    }
    coord.SendFrame(payload);
  };
  std::atomic<std::int64_t> last_stats_ms{0};
  auto maybe_ship_stats = [&] {
    if (!wcollect) return;
    const std::int64_t now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    std::int64_t last = last_stats_ms.load(std::memory_order_relaxed);
    if (now_ms - last < setup.stats_interval_ms) return;
    if (!last_stats_ms.compare_exchange_strong(last, now_ms,
                                               std::memory_order_relaxed)) {
      return;  // another subtask just shipped this interval
    }
    ship_stats(false);
  };

  ProgressFn progress = [&](std::int32_t subtask, Timestamp through) {
    std::string payload;
    BinaryWriter writer(&payload);
    writer.WriteU8(kTagProgress);
    writer.WriteI32(subtask);
    writer.WriteI64(through);
    coord.SendFrame(payload);
    maybe_ship_stats();
  };

  ClusterStageEnv cluster_env;
  cluster_env.cluster_time = &cluster_time;
  cluster_env.counters = &counters;
  cluster_env.cluster_stats = snapshot_stats;
  cluster_env.partition_constraints = &plan.partition_constraints;
  cluster_env.enumerate = enumerate;
  cluster_env.progress = progress;

  EnumerateStageEnv enumerate_env;
  enumerate_env.queries = &plan.queries;
  enumerate_env.enum_time = &enum_time;
  enumerate_env.counters = &counters;
  enumerate_env.enumerate_stats = partition_stats;
  enumerate_env.producers = p;
  enumerate_env.transactional = true;
  enumerate_env.commit =
      [&](std::vector<pattern::PatternCollector>&& logs) {
        std::lock_guard<std::mutex> lock(collector_mu);
        for (std::size_t q = 0; q < collectors.size(); ++q) {
          for (const CoMovementPattern& pat : logs[q].Patterns()) {
            collectors[q].Add(pat);
          }
        }
      };
  enumerate_env.progress = progress;

  // --- The subtasks themselves: the exact same bodies RunIcpe runs.
  {
    flow::TaskGroup tasks;
    for (std::int32_t s = setup.lo; s < setup.hi; ++s) {
      tasks.Spawn([&, s] {
        RunClusterSubtask(s, env, cluster_env,
                          snapshot_transport.channel(s),
                          partition_transport);
      });
    }
    if (enumerate) {
      for (std::int32_t s = setup.lo; s < setup.hi; ++s) {
        tasks.Spawn([&, s] {
          RunEnumerateSubtask(s, env, enumerate_env,
                              partition_transport.channel(s));
        });
      }
    }
    tasks.JoinAll();
  }

  if (crashed.load()) {
    // A peer (or the coordinator) died. Exit hard: _Exit drops every
    // socket at once, so the remaining processes observe our EOF
    // immediately instead of deadlocking on PeerLink reader joins.
    UnlinkIfUnix(listener.address);
    std::_Exit(1);
  }

  finished.store(true, std::memory_order_release);
  // Final observability frames precede the RESULT on the same FIFO link:
  // when the coordinator accounts the result, the merge is complete.
  if (wcollect) ship_stats(true);
  if (wtr != nullptr) {
    // Subtask threads are joined, so Events() is complete and sorted.
    std::string payload;
    BinaryWriter writer(&payload);
    writer.WriteU8(kTagTrace);
    writer.WriteU64(trace_anchor);
    writer.WriteU64(setup.coord_trace_now);
    writer.WriteI64(wtr->recorded());
    writer.WriteI64(wtr->dropped());
    const std::vector<flow::TraceEvent> events = wtr->Events();
    writer.WriteU64(events.size());
    for (const flow::TraceEvent& e : events) {
      flow::net::WriteTraceEvent(&writer, e);
    }
    coord.SendFrame(payload);
  }
  {
    std::string payload;
    BinaryWriter writer(&payload);
    EncodeResult(&writer, &counters, cluster_time, enum_time, collectors);
    coord.SendFrame(payload);
  }
  // Half-close everything, then join readers: the coordinator closes our
  // link after collecting the RESULT, peers after finishing their own
  // ranges.
  coord.CloseSend();
  for (auto& peer : peers) {
    if (peer) peer->CloseSend();
  }
  for (auto& peer : peers) {
    if (peer) peer->Shutdown();
  }
  coord.Shutdown();
  UnlinkIfUnix(listener.address);
  return 0;
}

std::optional<int> MaybeNetWorker(int argc, char** argv) {
  if (argc >= 4 && std::string_view(argv[1]) == kNetWorkerFlag) {
    return NetWorkerMain(argv[2], std::atoi(argv[3]));
  }
  return std::nullopt;
}

IcpeResult RunIcpeDistributed(const trajgen::Dataset& dataset,
                              const IcpeOptions& options,
                              const DistributedOptions& dist) {
  COMOVE_CHECK(options.parallelism > 0);
  COMOVE_CHECK(options.constraints.IsValid());
  COMOVE_CHECK_MSG(!options.join_parallel_cells,
                   "distributed runs use the snapshot-parallel pipeline");
  COMOVE_CHECK_MSG(!options.on_pattern,
                   "on_pattern cannot cross a process boundary");
  COMOVE_CHECK_MSG(dist.transport == "unix" || dist.transport == "tcp",
                   "transport must be \"unix\" or \"tcp\"");
  const std::int32_t p = options.parallelism;
  const std::int32_t worker_count = dist.workers;
  COMOVE_CHECK_MSG(worker_count >= 1 && worker_count <= p,
                   "need 1 <= workers <= parallelism");
  const std::size_t pop_batch_max =
      std::max<std::size_t>(std::size_t{1}, options.exchange_batch_size);

  const QueryPlan plan = BuildQueryPlan(options);
  const std::vector<PatternQuery>& queries = plan.queries;
  const bool enumerate = plan.enumerate();

  std::optional<flow::TraceRecorder> owned_trace;
  flow::TraceRecorder* const tr =
      options.trace != nullptr
          ? options.trace
          : (!options.trace_path.empty() ? &owned_trace.emplace()
                                         : nullptr);
  constexpr std::size_t kWorstSnapshots = 5;
  const bool collect_stats =
      options.collect_stats || options.sample_interval_ms > 0;
  flow::StageStatsRegistry stats_registry;
  auto stats_for = [&](const char* stage) -> flow::StageStats* {
    return collect_stats ? &stats_registry.Get(stage) : nullptr;
  };

  // --- Checkpointing/recovery plumbing, identical to RunIcpe; the
  // fingerprint deliberately excludes the deployment, so a distributed
  // run restores single-process checkpoints and vice versa.
  const bool checkpointing = options.checkpoint_interval > 0;
  if (checkpointing) {
    COMOVE_CHECK_MSG(options.snapshot_store != nullptr,
                     "checkpoint_interval requires a snapshot_store");
    COMOVE_CHECK_MSG(options.replay_shuffle_window <= 0,
                     "checkpointing requires ordered replay");
  }
  if (options.recover) {
    COMOVE_CHECK_MSG(options.snapshot_store != nullptr,
                     "recover requires a snapshot_store");
  }
  const std::string fingerprint =
      (checkpointing || options.recover)
          ? BuildFingerprint(dataset, options)
          : std::string();
  std::optional<flow::CheckpointBundle> restored;
  if (options.recover) {
    restored = options.snapshot_store->ReadLatest();
    if (restored) {
      COMOVE_CHECK_MSG(restored->fingerprint == fingerprint,
                       "checkpoint fingerprint mismatch: the store was "
                       "written by a different dataset or pipeline shape");
    }
  }
  const std::int64_t restored_id = restored ? restored->id : 0;
  std::optional<flow::CheckpointCoordinator> coordinator;
  if (checkpointing) {
    const std::int32_t expected_acks = 2 + p + (enumerate ? p : 0);
    coordinator.emplace(expected_acks, options.snapshot_store, fingerprint,
                        stats_for("checkpoint"), restored_id);
  }

  // --- Spawn the workers and complete the handshake: accept W links,
  // read each HELLO (index + listen address), then send every worker its
  // CONFIG - which includes ALL worker addresses, making the mesh dial-up
  // race-free (every listener provably exists).
  std::string listen_error;
  Listener listener =
      Listen(CoordinatorAddress(dist.transport), &listen_error);
  COMOVE_CHECK_MSG(listener.valid(), "coordinator listen failed: %s",
                   listen_error.c_str());
  const std::string binary =
      dist.worker_binary.empty() ? "/proc/self/exe" : dist.worker_binary;
  std::vector<pid_t> pids;
  for (std::int32_t w = 0; w < worker_count; ++w) {
    const pid_t pid = SpawnWorker(binary, listener.address, w);
    COMOVE_CHECK_MSG(pid > 0, "cannot spawn worker process %d", w);
    pids.push_back(pid);
  }
  std::vector<std::unique_ptr<PeerLink>> links(
      static_cast<std::size_t>(worker_count));
  std::vector<std::string> worker_addresses(
      static_cast<std::size_t>(worker_count));
  for (std::int32_t n = 0; n < worker_count; ++n) {
    UniqueFd fd = Accept(listener, dist.connect_timeout_ms);
    COMOVE_CHECK_MSG(fd.valid(), "timed out waiting for worker HELLO");
    auto link = std::make_unique<PeerLink>(std::move(fd));
    std::string frame;
    COMOVE_CHECK_MSG(link->ReadFrameBlocking(&frame, dist.connect_timeout_ms),
                     "worker handshake failed");
    BinaryReader reader(frame);
    const std::uint8_t tag = reader.ReadU8();
    const auto index = static_cast<std::int32_t>(reader.ReadU32());
    std::string address = reader.ReadString();
    COMOVE_CHECK_MSG(tag == kTagHello && reader.ok() && reader.AtEnd() &&
                         index >= 0 && index < worker_count &&
                         links[static_cast<std::size_t>(index)] == nullptr,
                     "bad worker HELLO");
    links[static_cast<std::size_t>(index)] = std::move(link);
    worker_addresses[static_cast<std::size_t>(index)] = std::move(address);
  }
  for (std::int32_t w = 0; w < worker_count; ++w) {
    WorkerSetup setup;
    setup.worker_count = worker_count;
    setup.worker_index = w;
    std::tie(setup.lo, setup.hi) = SubtaskRange(p, worker_count, w);
    setup.peer_addresses = worker_addresses;
    setup.options.parallelism = p;
    setup.options.channel_capacity = options.channel_capacity;
    setup.options.exchange_batch_size = options.exchange_batch_size;
    setup.options.clustering = options.clustering;
    setup.options.cluster_options = options.cluster_options;
    setup.options.enumerator = EnumeratorKind::kNone;
    setup.options.extra_queries = queries;
    setup.options.fault = options.fault;
    setup.checkpointing = checkpointing;
    setup.restored_id = restored_id;
    setup.collect_stats = collect_stats;
    setup.trace = tr != nullptr;
    if (options.sample_interval_ms > 0) {
      setup.stats_interval_ms = options.sample_interval_ms;
    }
    if (restored) {
      // Workers only host cluster (stateless, empty acks) and enumerate
      // subtasks; ship exactly those states from the bundle.
      for (const flow::OperatorState& state : restored->states) {
        if (state.op == "cluster" || state.op == "enumerate") {
          setup.restored[{state.op, state.subtask}] = state.bytes;
        }
      }
    }
    // The clock anchor is per-worker: stamped right before the send so
    // the pairing with the worker's decode-time clock is as tight as the
    // one-way CONFIG latency allows.
    setup.coord_trace_now = tr != nullptr ? tr->NowNs() : 0;
    std::string payload;
    BinaryWriter writer(&payload);
    EncodeConfig(&writer, setup);
    links[static_cast<std::size_t>(w)]->SendFrame(payload);
    if (collect_stats) {
      // Attach link stats only after CONFIG so the handshake frames stay
      // uncounted on both ends (the worker mirrors this), keeping frame
      // counters symmetric across a clean run.
      links[static_cast<std::size_t>(w)]->set_stats(
          &stats_registry.Get("link:w" + std::to_string(w)));
    }
  }
  if (collect_stats) {
    // Pre-register every row the workers will ship, in deterministic
    // order: the sampler matches rows positionally on the append-only
    // registry, so the layout must be stable from its first tick.
    for (std::int32_t w = 0; w < worker_count; ++w) {
      const std::string prefix = "w" + std::to_string(w) + ":";
      stats_registry.Get(prefix + "assembler->cluster");
      if (enumerate) stats_registry.Get(prefix + "cluster->enumerate");
      stats_registry.Get(prefix + "link:coord");
      for (std::int32_t j = 0; j < worker_count; ++j) {
        if (j != w) stats_registry.Get(prefix + "link:w" + std::to_string(j));
      }
    }
  }
  std::optional<flow::MetricsSampler> sampler;
  if (options.sample_interval_ms > 0) {
    sampler.emplace(stats_registry, options.sample_interval_ms);
    sampler->Start();
  }

  // --- Coordinator-local pipeline state. The snapshot-edge transport has
  // an empty local consumer range: every cluster subtask is remote, and
  // route[c] is the link of the worker hosting subtask c.
  FaultInjector injector(options.fault);
  std::atomic<bool> crashed{false};
  flow::Exchange<GpsRecord> source_exchange(
      1, 1, options.channel_capacity, stats_for("source->assembler"));
  std::vector<PeerLink*> snapshot_route(static_cast<std::size_t>(p),
                                        nullptr);
  for (std::int32_t w = 0; w < worker_count; ++w) {
    const auto [lo, hi] = SubtaskRange(p, worker_count, w);
    for (std::int32_t c = lo; c < hi; ++c) {
      snapshot_route[static_cast<std::size_t>(c)] =
          links[static_cast<std::size_t>(w)].get();
    }
  }
  SocketTransport<Snapshot, SnapshotCodec> snapshot_transport(
      1, p, kSnapshotEdge, 0, 0, snapshot_route,
      options.channel_capacity);

  flow::SnapshotMetrics metrics;
  if (tr != nullptr) metrics.KeepPerSnapshot(true);
  CompletionTracker tracker(p);
  TimeAccumulator cluster_time;
  TimeAccumulator enum_time;
  PipelineCounters counters;
  std::mutex collector_mu;
  std::vector<pattern::PatternCollector> collectors(queries.size());

  StageEnv env;
  env.options = &options;
  env.tr = tr;
  env.injector = &injector;
  env.crashed = &crashed;
  env.crash_all = [&] {
    crashed.store(true);
    source_exchange.Cancel();
    snapshot_transport.Cancel();  // no local channels; kept for symmetry
  };
  env.ack = [&](std::int64_t id, const char* op, std::int32_t subtask,
                std::string state, flow::StageStats* stats) {
    if (stats != nullptr) {
      stats->OnSnapshot(static_cast<std::int64_t>(state.size()), id);
    }
    const std::uint64_t t0 = tr != nullptr ? tr->NowNs() : 0;
    coordinator->Ack(id, op, subtask, std::move(state));
    if (tr != nullptr) {
      tr->RecordSpanSince("checkpoint", op, subtask, kNoTime, t0, id);
    }
  };
  env.restored_state = [&](const char* op,
                           std::int32_t subtask) -> const std::string* {
    return restored ? restored->Find(op, subtask) : nullptr;
  };
  env.checkpointing = checkpointing;
  env.restored_id = restored_id;
  env.pop_batch_max = pop_batch_max;

  ProgressFn progress = [&](std::int32_t worker, Timestamp through) {
    for (const Timestamp done : tracker.Update(worker, through)) {
      metrics.MarkComplete(done);
    }
  };

  // --- Link readers: dispatch worker acks, progress, and results. One
  // accounting slot per worker flips exactly once - on RESULT or on an
  // EOF without one (a crash) - and the run ends when all W flipped.
  // Merged observability state: each slot is written only by its worker's
  // link reader thread and read after Shutdown() joins that thread.
  flow::net::TraceStringTable trace_strings;
  std::vector<flow::ProcessTrace> worker_traces(
      static_cast<std::size_t>(worker_count));
  std::vector<char> stats_final(static_cast<std::size_t>(worker_count), 0);
  std::vector<char> trace_received(static_cast<std::size_t>(worker_count),
                                   0);

  std::mutex link_mu;
  std::condition_variable link_cv;
  std::int32_t links_done = 0;
  std::vector<std::atomic<bool>> accounted(
      static_cast<std::size_t>(worker_count));
  for (auto& flag : accounted) flag.store(false);
  auto account_once = [&](std::int32_t w, bool with_result) {
    bool expected = false;
    if (!accounted[static_cast<std::size_t>(w)].compare_exchange_strong(
            expected, true)) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(link_mu);
      ++links_done;
    }
    link_cv.notify_all();
    if (!with_result) {
      // Worker died mid-run: cancel the local stages so the source and
      // assembler unwind instead of streaming into a dead pipeline.
      crashed.store(true);
      source_exchange.Cancel();
    }
  };

  for (std::int32_t w = 0; w < worker_count; ++w) {
    PeerLink* link = links[static_cast<std::size_t>(w)].get();
    link->Start(
        [&, w](std::string_view payload) {
          BinaryReader reader(payload);
          const std::uint8_t tag = reader.ReadU8();
          switch (tag) {
            case kTagAck: {
              std::string op = reader.ReadString();
              const std::int32_t subtask = reader.ReadI32();
              const std::int64_t id = reader.ReadI64();
              std::string state = reader.ReadString();
              if (!reader.ok() || !reader.AtEnd() || !coordinator) break;
              // Remote snapshot-size stats are not charged to a local
              // stage row; the "checkpoint" row still totals persisted
              // bytes.
              coordinator->Ack(id, std::move(op), subtask,
                               std::move(state));
              break;
            }
            case kTagProgress: {
              const std::int32_t subtask = reader.ReadI32();
              const auto through =
                  static_cast<Timestamp>(reader.ReadI64());
              if (!reader.ok() || !reader.AtEnd()) break;
              progress(subtask, through);
              break;
            }
            case kTagResult: {
              if (FoldResult(&reader, &counters, &cluster_time,
                             &enum_time, &collector_mu, &collectors)) {
                account_once(w, true);
              }
              break;
            }
            case kTagStats: {
              const bool final_frame = reader.ReadBool();
              const std::uint64_t rows = reader.ReadU64();
              if (!reader.ok() || rows > reader.remaining()) break;
              const std::string prefix = "w" + std::to_string(w) + ":";
              bool ok = true;
              for (std::uint64_t i = 0; ok && i < rows; ++i) {
                flow::StageStatsSnapshot snap;
                ok = flow::net::ReadStageStatsSnapshot(&reader, &snap);
                if (ok) {
                  // OverwriteFrom stamps the remote counters into the
                  // local row, so the sampler sees remote gauges (queue
                  // depth, watermarks) advance like local ones.
                  stats_registry.Get(prefix + snap.stage)
                      .OverwriteFrom(snap);
                }
              }
              if (ok && reader.AtEnd() && final_frame) {
                stats_final[static_cast<std::size_t>(w)] = 1;
              }
              break;
            }
            case kTagTrace: {
              const std::uint64_t worker_anchor = reader.ReadU64();
              const std::uint64_t coord_anchor = reader.ReadU64();
              const std::int64_t recorded = reader.ReadI64();
              const std::int64_t dropped = reader.ReadI64();
              const std::uint64_t events = reader.ReadU64();
              if (!reader.ok() || events > reader.remaining()) break;
              // Both anchors were taken at CONFIG time (coordinator side
              // at encode, worker side at decode), so shifting by their
              // difference puts the worker lane on the coordinator clock
              // to within the one-way CONFIG latency.
              const std::int64_t offset =
                  static_cast<std::int64_t>(coord_anchor) -
                  static_cast<std::int64_t>(worker_anchor);
              flow::ProcessTrace proc;
              proc.process_name = "w" + std::to_string(w);
              proc.pid = 2 + w;
              proc.recorded = recorded;
              proc.dropped = dropped;
              proc.events.reserve(static_cast<std::size_t>(events));
              bool ok = true;
              for (std::uint64_t i = 0; ok && i < events; ++i) {
                flow::TraceEvent e;
                ok = flow::net::ReadTraceEvent(&reader, &trace_strings,
                                               &e);
                if (!ok) break;
                const std::int64_t shifted =
                    static_cast<std::int64_t>(e.start_ns) + offset;
                // Clamping keeps the lane monotone: events were sorted
                // before the (constant) shift.
                e.start_ns =
                    shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
                proc.events.push_back(e);
              }
              if (ok && reader.AtEnd()) {
                worker_traces[static_cast<std::size_t>(w)] =
                    std::move(proc);
                trace_received[static_cast<std::size_t>(w)] = 1;
              }
              break;
            }
            default:
              break;  // data frames never flow worker -> coordinator
          }
        },
        [&, w] { account_once(w, false); });
  }

  // --- Run the coordinator-local stages, then wait for every worker to
  // either report its result or die.
  {
    flow::TaskGroup tasks;
    tasks.Spawn([&] { RunSourceSubtask(dataset, env, source_exchange); });
    tasks.Spawn([&] {
      RunAssemblerSubtask(env, source_exchange.channel(0),
                          snapshot_transport, &metrics, &tracker, &counters,
                          stats_for("source->assembler"));
    });
    tasks.JoinAll();
  }
  {
    std::unique_lock<std::mutex> lock(link_mu);
    link_cv.wait(lock, [&] { return links_done == worker_count; });
  }
  for (auto& link : links) link->CloseSend();
  for (auto& link : links) link->Shutdown();
  if (sampler) sampler->Stop();
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      crashed.store(true);
    }
  }
  UnlinkIfUnix(listener.address);

  const bool was_crashed = crashed.load();
  if (!was_crashed) {
    COMOVE_CHECK_MSG(tracker.pending() == 0,
                     "pipeline drained with incomplete snapshots");
    // Fail loudly rather than under-report: on a clean run every worker
    // must have delivered its final stats and trace (both precede the
    // RESULT on the same FIFO link). Crashed runs keep whatever partial
    // rows arrived; OverwriteFrom never leaves a row half-written.
    for (std::int32_t w = 0; w < worker_count; ++w) {
      COMOVE_CHECK_MSG(
          !collect_stats || stats_final[static_cast<std::size_t>(w)] != 0,
          "worker %d finished without shipping final stage stats", w);
      COMOVE_CHECK_MSG(
          tr == nullptr || trace_received[static_cast<std::size_t>(w)] != 0,
          "worker %d finished without shipping its trace", w);
    }
  }

  // --- Result assembly, mirroring RunIcpe. stage_stats carry the
  // coordinator rows plus every worker's rows (prefixed "w<i>:") merged
  // from the STATS frames; the trace gets one lane group per process.
  IcpeResult result;
  result.crashed = was_crashed;
  result.last_checkpoint_id =
      coordinator ? coordinator->last_completed() : restored_id;
  if (coordinator) {
    result.checkpoints_completed = coordinator->completed_count();
    result.checkpoints_failed = coordinator->failed_count();
  }
  if (!collectors.empty() &&
      options.enumerator != EnumeratorKind::kNone) {
    result.patterns = collectors[0].Patterns();
    for (std::size_t q = 1; q < collectors.size(); ++q) {
      result.extra_patterns.push_back(collectors[q].Patterns());
    }
  } else {
    for (auto& collector : collectors) {
      result.extra_patterns.push_back(collector.Patterns());
    }
  }
  result.snapshots = metrics.Collect();
  if (collect_stats) result.stage_stats = stats_registry.Snapshot();
  if (sampler) result.time_series = sampler->samples();
  if (tr != nullptr) {
    std::vector<flow::ProcessTrace> processes;
    processes.push_back(flow::ProcessTrace{
        "coord", 1, tr->Events(), tr->recorded(), tr->dropped()});
    for (std::int32_t w = 0; w < worker_count; ++w) {
      if (trace_received[static_cast<std::size_t>(w)] != 0) {
        processes.push_back(
            std::move(worker_traces[static_cast<std::size_t>(w)]));
      }
    }
    std::vector<flow::TraceEvent> merged;
    std::int64_t total_recorded = 0;
    std::int64_t total_dropped = 0;
    for (const flow::ProcessTrace& proc : processes) {
      merged.insert(merged.end(), proc.events.begin(), proc.events.end());
      total_recorded += proc.recorded;
      total_dropped += proc.dropped;
    }
    result.trace_events = total_recorded;
    result.trace_dropped = total_dropped;
    result.worst_snapshots = flow::BuildWorstSnapshotBreakdown(
        merged, metrics.PerSnapshot(), kWorstSnapshots);
    if (!options.trace_path.empty()) {
      std::ofstream out(options.trace_path);
      COMOVE_CHECK_MSG(out.good(), "cannot open trace_path %s",
                       options.trace_path.c_str());
      flow::WriteChromeTraceMerged(processes, out);
    }
  }
  result.avg_cluster_ms = cluster_time.Average();
  result.avg_enum_ms = enum_time.Average();
  result.cluster_count = counters.cluster_count.load();
  result.snapshot_count = counters.snapshot_count.load();
  result.avg_cluster_size =
      result.cluster_count > 0
          ? static_cast<double>(counters.cluster_member_sum.load()) /
                static_cast<double>(result.cluster_count)
          : 0.0;
  result.delta_cells_seen = counters.delta_cells_seen.load();
  result.delta_cells_replayed = counters.delta_cells_replayed.load();
  result.delta_dbscan_replays = counters.delta_dbscan_replays.load();
  result.arena_bytes = counters.arena_bytes.load();
  result.arena_allocations = counters.arena_allocations.load();
  result.enum_strings_opened = counters.enum_strings_opened.load();
  result.enum_strings_closed = counters.enum_strings_closed.load();
  result.enum_candidates_peak = counters.enum_candidates_peak.load();
  result.enum_apriori_nodes = counters.enum_apriori_nodes.load();
  result.enum_apriori_pruned = counters.enum_apriori_pruned.load();
  return result;
}

}  // namespace comove::core
