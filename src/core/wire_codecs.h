#ifndef COMOVE_CORE_WIRE_CODECS_H_
#define COMOVE_CORE_WIRE_CODECS_H_

#include "core/stage_workers.h"
#include "core/state_serde.h"

/// \file
/// Codec policies plugging the pipeline's value types into the
/// payload-agnostic net transport (flow/net/wire.h expects
/// `Codec::Write(BinaryWriter*, const T&)` and
/// `bool Codec::Read(BinaryReader*, T*)`). They reuse the exact
/// state_serde encodings, so an element's bytes on the wire match its
/// bytes inside a checkpoint - one format to fuzz, one to version.
/// flow/ stays ignorant of core types; this header is the one place the
/// two meet.

namespace comove::core {

struct SnapshotCodec {
  static void Write(BinaryWriter* w, const Snapshot& s) {
    WriteSnapshot(w, s);
  }
  static bool Read(BinaryReader* r, Snapshot* out) {
    *out = ReadSnapshot(r);
    return r->ok();
  }
};

struct PartitionCodec {
  static void Write(BinaryWriter* w, const pattern::Partition& p) {
    WritePartition(w, p);
  }
  static bool Read(BinaryReader* r, pattern::Partition* out) {
    *out = ReadPartition(r);
    return r->ok();
  }
};

inline void WriteCellMsg(BinaryWriter* w, const CellMsg& m) {
  w->WriteI32(m.time);
  WriteGridObject(w, m.object);
}

inline CellMsg ReadCellMsg(BinaryReader* r) {
  CellMsg m;
  m.time = r->ReadI32();
  m.object = ReadGridObject(r);
  return r->ok() ? m : CellMsg{};
}

/// Cell-keyed edge payload (Fig. 5 mode). Not shipped by the current
/// distributed topology - which rejects join_parallel_cells - but kept
/// wire-ready and covered by the round-trip tests so the format exists
/// before the mode needs it.
struct CellMsgCodec {
  static void Write(BinaryWriter* w, const CellMsg& m) {
    WriteCellMsg(w, m);
  }
  static bool Read(BinaryReader* r, CellMsg* out) {
    *out = ReadCellMsg(r);
    return r->ok();
  }
};

}  // namespace comove::core

#endif  // COMOVE_CORE_WIRE_CODECS_H_
