#ifndef COMOVE_CORE_ICPE_ENGINE_H_
#define COMOVE_CORE_ICPE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "common/constraints.h"
#include "common/types.h"
#include "core/recovery.h"
#include "flow/checkpoint/snapshot_store.h"
#include "flow/metrics.h"
#include "flow/metrics_sampler.h"
#include "flow/stage_stats.h"
#include "flow/trace.h"
#include "trajgen/dataset.h"

/// \file
/// The end-to-end ICPE framework (Fig. 3) on the comove::flow engine:
///
///   Source (1)  - replays a dataset as a record stream with "last time"
///                 links and birth-bound watermarks.
///   Assembler(1)- §4 time synchronisation: records -> complete snapshots.
///   Cluster (N) - indexed clustering per snapshot (RJC / SRJ / GDC),
///                 parallel across snapshots per §5.3, pipelined via
///                 bounded channels.
///   Enumerate(N)- id-based partitioning routes P_t(o) by hash(o); each
///                 subtask runs BA / FBA / VBA over its owners, releasing
///                 ticks in order via aligned watermarks.
///
/// Latency is the per-snapshot response time (ingest at the assembler to
/// the moment every enumeration subtask has processed the snapshot);
/// throughput is snapshots per second - the paper's §7 metrics.

namespace comove::core {

/// Which §6 enumerator the pipeline runs.
enum class EnumeratorKind {
  kBA,   ///< exponential baseline (Algorithm 3)
  kFBA,  ///< fixed-length bit compression (Algorithm 4)
  kVBA,  ///< variable-length bit compression (Algorithm 5)
  kNone, ///< clustering-only pipeline (Fig. 10/11 experiments)
};

/// Printable enumerator name ("BA", "FBA", "VBA", "none").
const char* EnumeratorKindName(EnumeratorKind kind);

/// One additional pattern query evaluated on the shared cluster stream
/// (multi-query mode): clustering cost is paid once, enumeration runs per
/// query. See IcpeOptions::extra_queries.
struct PatternQuery {
  PatternConstraints constraints{2, 4, 2, 2};
  EnumeratorKind enumerator = EnumeratorKind::kFBA;
};

/// Full pipeline configuration.
struct IcpeOptions {
  cluster::ClusteringMethod clustering = cluster::ClusteringMethod::kRJC;
  EnumeratorKind enumerator = EnumeratorKind::kFBA;
  cluster::ClusteringOptions cluster_options;
  PatternConstraints constraints{2, 4, 2, 2};
  std::int32_t parallelism = 4;        ///< subtasks per parallel stage (N)
  std::size_t channel_capacity = 128;  ///< pipelined backpressure depth

  /// Producer-side transfer batch on the pipeline's high-volume exchanges
  /// (records, replicated grid objects, id partitions): each producer
  /// accumulates up to this many elements per destination before one
  /// PushBatch moves them under a single lock round-trip - Flink's
  /// buffer-oriented network transfer, which the per-element baseline
  /// forgoes. Watermarks flush pending data first, so batching never
  /// reorders a record past its watermark and results are bit-identical
  /// for every value. 1 disables batching (the true per-element path).
  std::size_t exchange_batch_size = 64;

  /// Clustering execution mode. `false` (default) parallelises across
  /// snapshots, which §5.3 endorses ("we achieve the parallelism by
  /// clustering snapshots separately"). `true` runs the literal Fig. 5
  /// dataflow instead: GridAllocate subtasks ship GridObjects through a
  /// cell-keyed exchange to GridQuery subtasks, whose neighbour streams a
  /// GridSync/DBSCAN stage merges per snapshot. Only supported for the
  /// GR-index methods (kRJC/kSRJ); it exposes the per-cell shuffle volume
  /// the paper's Flink deployment pays.
  bool join_parallel_cells = false;

  /// When > 0, the replay source delivers records *out of order* within a
  /// sliding window of this many time units (deterministically shuffled
  /// by `shuffle_seed`). This exercises the §4 "last time"
  /// synchronisation under realistic network reordering; results are
  /// identical to ordered replay by construction.
  Timestamp replay_shuffle_window = 0;
  std::uint64_t shuffle_seed = 1;

  /// When > 0, the source sleeps this many microseconds every time the
  /// replayed stream advances to a new snapshot time - simulating a live
  /// arrival rate instead of full-speed replay. Combine with `on_pattern`
  /// for real-time dashboards (see examples/live_dashboard).
  std::int64_t replay_delay_us = 0;

  /// Optional real-time pattern callback, invoked as soon as any
  /// enumeration subtask proves a pattern (before deduplication, so the
  /// same object set may be reported more than once with different
  /// witnesses). Invocations are serialised by the engine; the callback
  /// need not be thread-safe but must not block for long. In multi-query
  /// mode the callback receives patterns of ALL queries.
  std::function<void(const CoMovementPattern&)> on_pattern;

  /// When true, every inter-stage exchange reports per-stage counters
  /// (records/watermarks moved, queue depths, blocked-time split into
  /// backpressure and starvation) into IcpeResult::stage_stats. Off by
  /// default: the instrumented path adds a few atomic ops per element, the
  /// disabled path only untaken branches.
  bool collect_stats = false;

  /// Additional pattern queries sharing the clustering stage (the join
  /// and DBSCAN cost is paid once for all queries; each enumeration
  /// subtask runs one enumerator per query). Id-based partitions are
  /// computed with the smallest M across all queries - a superset of each
  /// query's own partitions, which is harmless: enumeration enforces the
  /// per-query M (Lemma 3 only ever removes work, never results).
  std::vector<PatternQuery> extra_queries;

  /// When > 0, the source injects a checkpoint barrier every this many
  /// snapshot times; every operator snapshots its state at the aligned
  /// barrier (a consistent cut) and the completed checkpoint is persisted
  /// to `snapshot_store`. Requires ordered replay (replay_shuffle_window
  /// == 0) and a non-null store. 0 disables checkpointing.
  std::int64_t checkpoint_interval = 0;

  /// Where completed checkpoints go (not owned; must outlive the run).
  flow::SnapshotStore* snapshot_store = nullptr;

  /// When true, the run restores the store's latest completed checkpoint
  /// before processing: the source rewinds to the saved offset, every
  /// stateful operator reloads its snapshot, and patterns already emitted
  /// before the cut are re-seeded - the run's output is bit-identical to
  /// a failure-free run over the same dataset. A cold store falls back to
  /// a normal run.
  bool recover = false;

  /// Fault injection (tests/benches): crash a named stage while it
  /// snapshots a given checkpoint. Empty stage = no fault.
  FaultSpec fault;

  /// When non-empty, the run records per-stage spans (see flow/trace.h)
  /// and writes them as Chrome trace_event JSON to this path - loadable
  /// in chrome://tracing or Perfetto. Tracing also retains per-snapshot
  /// latencies to build IcpeResult::worst_snapshots.
  std::string trace_path;

  /// External span recorder (not owned; must outlive the run). When set,
  /// the engine records into it instead of (or in addition to - see
  /// trace_path) its own recorder; useful for tests and for aggregating
  /// several runs into one timeline. Null + empty trace_path = tracing
  /// fully off (the hot paths pay one untaken branch).
  flow::TraceRecorder* trace = nullptr;

  /// When > 0, a MetricsSampler thread snapshots every stage's counters
  /// at this cadence into IcpeResult::time_series (implies stats
  /// collection for the run). 0 disables sampling.
  std::int64_t sample_interval_ms = 0;
};

/// Everything a pipeline run reports.
struct IcpeResult {
  std::vector<CoMovementPattern> patterns;  ///< deduplicated (primary query)
  /// Per-extra-query deduplicated patterns, index-aligned with
  /// IcpeOptions::extra_queries.
  std::vector<std::vector<CoMovementPattern>> extra_patterns;
  flow::RunMetrics snapshots;      ///< latency (avg/max/p50/p95/p99) + tps
  /// Per-exchange counters in pipeline order (source -> assembler ->
  /// cluster or grid stages -> enumerate); empty unless
  /// IcpeOptions::collect_stats was set. See flow::StageStatsSnapshot for
  /// how to read a backpressure report.
  std::vector<flow::StageStatsSnapshot> stage_stats;
  double avg_cluster_ms = 0.0;     ///< mean per-snapshot clustering compute
  double avg_enum_ms = 0.0;        ///< mean per-tick enumeration compute
  double avg_cluster_size = 0.0;   ///< mean members per emitted cluster
  std::int64_t cluster_count = 0;  ///< clusters across all snapshots
  std::int64_t snapshot_count = 0;

  /// Delta-path effectiveness, summed over every cluster/query worker;
  /// all zero unless ClusteringOptions::join.incremental was set.
  /// `delta_cells_seen` counts occupied (cell, snapshot) pairs,
  /// `delta_cells_replayed` how many were served from the per-cell memo
  /// instead of a re-sweep, `delta_dbscan_replays` how many snapshots
  /// replayed the previous cluster set without running DBSCAN.
  std::int64_t delta_cells_seen = 0;
  std::int64_t delta_cells_replayed = 0;
  std::int64_t delta_dbscan_replays = 0;

  /// Enumeration-stage counters, summed over every enumeration worker and
  /// query as the workers exit (all zero with EnumeratorKind::kNone).
  /// Opened/closed count per-(owner, trajectory) membership bit strings
  /// (BA: subset candidates); peak is the high-water mark of live strings
  /// (VBA: retained closed candidates). Apriori nodes/pruned tally
  /// enumeration tree nodes expanded versus cut by the running-popcount /
  /// (K, L, G) prune - the work the candidate filter saves.
  std::int64_t enum_strings_opened = 0;
  std::int64_t enum_strings_closed = 0;
  std::int64_t enum_candidates_peak = 0;
  std::int64_t enum_apriori_nodes = 0;
  std::int64_t enum_apriori_pruned = 0;

  /// Arena-backed scratch footprint, summed over every cluster/query/sync
  /// worker as it exits: retained arena bytes and lifetime bump-allocation
  /// count. In steady state allocations stays flat per snapshot (the
  /// arenas rewind instead of reallocating); per-snapshot heap churn
  /// regressions show up as growth here.
  std::int64_t arena_bytes = 0;
  std::int64_t arena_allocations = 0;

  /// True when an injected fault killed the pipeline mid-run; patterns
  /// then cover only what was emitted before the crash, and a recovery
  /// run (IcpeOptions::recover) is expected to follow.
  bool crashed = false;
  std::int64_t last_checkpoint_id = 0;    ///< newest persisted checkpoint
  std::int64_t checkpoints_completed = 0; ///< persisted this run
  std::int64_t checkpoints_failed = 0;    ///< aborted by store failures

  /// Sampled time series (one entry per tick); empty unless
  /// IcpeOptions::sample_interval_ms > 0.
  std::vector<flow::MetricsSample> time_series;
  /// Worst-k snapshots by measured latency with their per-stage span-time
  /// breakdown; empty unless tracing was on.
  std::vector<flow::SnapshotStageBreakdown> worst_snapshots;
  std::int64_t trace_events = 0;   ///< spans/instants recorded (0 = off)
  std::int64_t trace_dropped = 0;  ///< lost to ring wraparound
};

/// Fingerprint of (dataset, pipeline shape) stamped into every checkpoint
/// bundle; a recovery whose fingerprint differs refuses to restore.
/// Batch size, channel capacity, and stats collection are deliberately
/// excluded - they do not affect results.
std::string BuildFingerprint(const trajgen::Dataset& dataset,
                             const IcpeOptions& options);

/// Runs the full ICPE pipeline over a dataset replayed as a stream.
/// Thread usage: 2 + 2 * parallelism workers for the run's duration.
IcpeResult RunIcpe(const trajgen::Dataset& dataset,
                   const IcpeOptions& options);

}  // namespace comove::core

#endif  // COMOVE_CORE_ICPE_ENGINE_H_
