#ifndef COMOVE_CORE_DISTRIBUTED_H_
#define COMOVE_CORE_DISTRIBUTED_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/icpe_engine.h"

/// \file
/// The multi-process deployment of the ICPE pipeline - the "distributed"
/// in the paper's title made real. One coordinator process hosts the
/// source, the assembler, the checkpoint coordinator, and all run-level
/// accounting (latency metrics, completion tracking, pattern collectors);
/// W worker processes each host a contiguous range of the cluster and
/// enumerate subtasks. Edges that cross a process boundary run over the
/// flow/net SocketTransport (UNIX-domain or TCP loopback), with data,
/// watermarks, and checkpoint barriers all in-band - so barrier alignment
/// and exactly-once recovery work unchanged across processes, and a
/// distributed run emits the bit-identical pattern multiset of a
/// single-process run at the same parallelism (RunIcpe and
/// RunIcpeDistributed execute the very same stage bodies from
/// core/stage_workers.h; only the edges differ).
///
/// Control traffic shares the data links: workers ack checkpoints,
/// report completion progress, ship periodic and final stage-stats
/// snapshots plus their trace events, and deliver their final counters
/// and pattern folds back to the coordinator as framed control messages.

namespace comove::core {

/// How a distributed run is deployed.
struct DistributedOptions {
  /// Worker process count; each hosts ~parallelism/workers subtasks of
  /// the cluster and enumerate stages (1 <= workers <= parallelism).
  std::int32_t workers = 2;
  /// "unix" (UNIX-domain stream sockets under /tmp) or "tcp" (loopback
  /// with ephemeral ports).
  std::string transport = "unix";
  /// Binary to spawn as worker processes; it must route the sentinel
  /// argv through MaybeNetWorker early in main(). Empty uses
  /// /proc/self/exe, i.e. re-executes the calling binary.
  std::string worker_binary;
  /// Budget for every blocking handshake step (connect, HELLO, CONFIG).
  std::int64_t connect_timeout_ms = 15000;
};

/// First argv of a spawned worker process.
inline constexpr char kNetWorkerFlag[] = "--comove-net-worker";

/// Runs the pipeline across 1 + workers processes and assembles the same
/// IcpeResult a single-process run reports. Observability is merged
/// across the process boundary: stage_stats carry the coordinator rows,
/// each worker's rows prefixed "w<i>:" (including its cluster/enumerate
/// edges), and "link:*" rows with per-PeerLink transport counters
/// (frames/bytes, blocked time, CRC rejects); the trace is one Chrome
/// timeline with a lane group per process, worker clocks aligned via the
/// CONFIG handshake.
///
/// Restrictions: join_parallel_cells and on_pattern are not supported
/// (the cells dataflow is single-process only; live callbacks cannot
/// cross a process boundary).
IcpeResult RunIcpeDistributed(const trajgen::Dataset& dataset,
                              const IcpeOptions& options,
                              const DistributedOptions& dist);

/// Worker-process entry: connects to the coordinator, receives its
/// configuration, runs its subtask range, ships the result back. Returns
/// the process exit code (0 ok, 2 handshake failure, 1 peer crash; an
/// injected fault exits 3 without returning).
int NetWorkerMain(const std::string& coordinator_address,
                  std::int32_t worker_index);

/// Call first in main(): when argv marks this process as a spawned net
/// worker (argv[1] == kNetWorkerFlag), runs the worker and returns its
/// exit code; otherwise nullopt and main proceeds normally. This is what
/// lets any host binary (tool, test, bench) double as the worker binary.
std::optional<int> MaybeNetWorker(int argc, char** argv);

}  // namespace comove::core

#endif  // COMOVE_CORE_DISTRIBUTED_H_
