#ifndef COMOVE_CORE_STATE_SERDE_H_
#define COMOVE_CORE_STATE_SERDE_H_

#include <cstdint>

#include "common/serde.h"
#include "common/types.h"
#include "cluster/grid_object.h"
#include "pattern/partition.h"

/// \file
/// Binary encodings of the pipeline value types that live inside operator
/// state at a checkpoint cut: snapshots buffered before clustering, grid
/// objects and neighbor pairs buffered between the Fig.5 cell stages, and
/// partitions held in the enumerate stage's reorder buffer. Readers
/// report corruption through the BinaryReader ok() flag - a failed read
/// yields a zero-valued object, never undefined behaviour.

namespace comove::core {

inline void WritePoint(BinaryWriter* w, const Point& p) {
  w->WriteDouble(p.x);
  w->WriteDouble(p.y);
}

inline Point ReadPoint(BinaryReader* r) {
  Point p;
  p.x = r->ReadDouble();
  p.y = r->ReadDouble();
  return p;
}

inline void WriteSnapshot(BinaryWriter* w, const Snapshot& s) {
  w->WriteI32(s.time);
  w->WriteU64(s.entries.size());
  for (const SnapshotEntry& e : s.entries) {
    w->WriteI64(e.id);
    WritePoint(w, e.location);
  }
}

inline Snapshot ReadSnapshot(BinaryReader* r) {
  Snapshot s;
  s.time = r->ReadI32();
  const std::uint64_t count = r->ReadU64();
  if (!r->ok() || count > r->remaining()) {
    // An entry count beyond the remaining bytes is corruption, and must
    // FAIL the reader - returning an empty snapshot with the reader
    // still ok would let a truncated wire element decode silently.
    r->MarkCorrupt();
    return {};
  }
  s.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && r->ok(); ++i) {
    SnapshotEntry e;
    e.id = r->ReadI64();
    e.location = ReadPoint(r);
    s.entries.push_back(e);
  }
  return r->ok() ? s : Snapshot{};
}

inline void WriteGridObject(BinaryWriter* w, const cluster::GridObject& o) {
  w->WriteI32(o.key.cx);
  w->WriteI32(o.key.cy);
  w->WriteBool(o.is_query);
  w->WriteI64(o.id);
  WritePoint(w, o.location);
}

inline cluster::GridObject ReadGridObject(BinaryReader* r) {
  cluster::GridObject o;
  o.key.cx = r->ReadI32();
  o.key.cy = r->ReadI32();
  o.is_query = r->ReadBool();
  o.id = r->ReadI64();
  o.location = ReadPoint(r);
  return o;
}

inline void WriteNeighborPair(BinaryWriter* w, const NeighborPair& p) {
  w->WriteI64(p.a);
  w->WriteI64(p.b);
}

inline NeighborPair ReadNeighborPair(BinaryReader* r) {
  NeighborPair p;
  p.a = r->ReadI64();
  p.b = r->ReadI64();
  return p;
}

inline void WritePartition(BinaryWriter* w, const pattern::Partition& p) {
  w->WriteI64(p.owner);
  w->WriteI32(p.time);
  w->WriteIntVector(p.members);
}

inline pattern::Partition ReadPartition(BinaryReader* r) {
  pattern::Partition p;
  p.owner = r->ReadI64();
  p.time = r->ReadI32();
  p.members = r->ReadIntVector<TrajectoryId>();
  return p;
}

inline void WritePattern(BinaryWriter* w, const CoMovementPattern& p) {
  w->WriteIntVector(p.objects);
  w->WriteIntVector(p.times);
}

inline CoMovementPattern ReadPattern(BinaryReader* r) {
  CoMovementPattern p;
  p.objects = r->ReadIntVector<TrajectoryId>();
  p.times = r->ReadIntVector<Timestamp>();
  return p;
}

}  // namespace comove::core

#endif  // COMOVE_CORE_STATE_SERDE_H_
