#ifndef COMOVE_CORE_STAGE_WORKERS_H_
#define COMOVE_CORE_STAGE_WORKERS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/completion_tracker.h"
#include "core/icpe_engine.h"
#include "flow/channel.h"
#include "flow/element.h"
#include "flow/net/transport.h"
#include "pattern/enumerator.h"
#include "pattern/partition.h"
#include "pattern/streaming_enumerator.h"

/// \file
/// The ICPE pipeline's subtask bodies, factored out of RunIcpe so that
/// every deployment - single process (core/icpe_engine.cc) and
/// multi-process over sockets (core/distributed.cc) - runs the exact same
/// operator code against a Transport edge. Bit-identical results across
/// deployments hold by construction: only the edges differ.
///
/// Each Run*Subtask call is one subtask: it drains its input channel (or
/// replays the dataset, for the source), produces onto a Transport, and
/// returns when the stream finishes or the pipeline crashes. Everything
/// deployment-specific - where acks go, how completion progress reaches
/// the tracker, where patterns are committed - enters through the
/// environment structs as callbacks.

namespace comove::core {

/// Sentinel watermark closing the stream ("no more snapshots ever").
inline constexpr Timestamp kEndOfStreamTime =
    std::numeric_limits<Timestamp>::max();

/// Partition routing of id-based partitions: Knuth multiplicative mix;
/// trajectory ids are dense so a plain modulo would correlate with the
/// id-assignment scheme. Every deployment must agree on this function -
/// it decides which process owns which trajectory.
inline std::size_t OwnerPartition(TrajectoryId owner, std::int32_t p) {
  return (static_cast<std::uint32_t>(owner) * 2654435761u) %
         static_cast<std::uint32_t>(p);
}

/// One replicated GridObject tagged with its snapshot time: the payload
/// of the cell-keyed exchange in the Fig. 5 dataflow mode.
struct CellMsg {
  Timestamp time = 0;
  cluster::GridObject object;
};

/// Input of the GridSync/DBSCAN stage: either the raw snapshot (shipped
/// once) or a batch of neighbour pairs from one GridQuery subtask.
struct SyncMsg {
  Timestamp time = 0;
  bool is_snapshot = false;
  Snapshot snapshot;
  std::vector<NeighborPair> pairs;
};

/// Thread-safe accumulation of per-snapshot stage compute times.
struct TimeAccumulator {
  mutable std::mutex mu;
  double total_ms = 0.0;
  std::int64_t count = 0;

  void Add(double ms) {
    std::lock_guard<std::mutex> lock(mu);
    total_ms += ms;
    ++count;
  }
  double Average() const {
    std::lock_guard<std::mutex> lock(mu);
    return count > 0 ? total_ms / static_cast<double>(count) : 0.0;
  }
};

/// The cross-subtask result counters of a run, folded in by each worker
/// as it exits. One struct instead of a dozen loose atomics so a remote
/// deployment can ship the whole block back to the coordinator.
struct PipelineCounters {
  std::atomic<std::int64_t> cluster_count{0};
  std::atomic<std::int64_t> cluster_member_sum{0};
  std::atomic<std::int64_t> snapshot_count{0};
  std::atomic<std::int64_t> delta_cells_seen{0};
  std::atomic<std::int64_t> delta_cells_replayed{0};
  std::atomic<std::int64_t> delta_dbscan_replays{0};
  std::atomic<std::int64_t> arena_bytes{0};
  std::atomic<std::int64_t> arena_allocations{0};
  std::atomic<std::int64_t> enum_strings_opened{0};
  std::atomic<std::int64_t> enum_strings_closed{0};
  std::atomic<std::int64_t> enum_candidates_peak{0};
  std::atomic<std::int64_t> enum_apriori_nodes{0};
  std::atomic<std::int64_t> enum_apriori_pruned{0};
};

/// Builds the enumerator a PatternQuery asks for.
std::unique_ptr<pattern::StreamingEnumerator> MakeEnumerator(
    EnumeratorKind kind, const PatternConstraints& constraints,
    pattern::PatternSink sink);

/// The query set of a run plus the loosest partitioning bound: partitions
/// are computed once with the smallest M across queries (Lemma 3 only
/// removes work, never results); each query enforces its own M during
/// enumeration.
struct QueryPlan {
  std::vector<PatternQuery> queries;
  PatternConstraints partition_constraints;

  bool enumerate() const { return !queries.empty(); }
};

QueryPlan BuildQueryPlan(const IcpeOptions& options);

/// Acknowledges one operator's checkpoint snapshot: (id, op, subtask,
/// state bytes, the stats row the snapshot size is charged to).
using AckFn = std::function<void(std::int64_t, const char*, std::int32_t,
                                 std::string, flow::StageStats*)>;

/// Returns the restored state bytes of (op, subtask), or null when the
/// run starts cold.
using RestoredStateFn =
    std::function<const std::string*(const char*, std::int32_t)>;

/// Reports that enumeration subtask `worker` finalized every snapshot
/// time <= `through` (feeds the completion tracker / latency metrics,
/// which live wherever the coordinator lives).
using ProgressFn = std::function<void(std::int32_t, Timestamp)>;

/// Deployment-independent context shared by every subtask of one run.
struct StageEnv {
  const IcpeOptions* options = nullptr;
  flow::TraceRecorder* tr = nullptr;
  FaultInjector* injector = nullptr;
  std::atomic<bool>* crashed = nullptr;
  /// Simulates a process kill: cancel every local edge (in process) or
  /// exit the worker process outright (distributed).
  std::function<void()> crash_all;
  AckFn ack;
  RestoredStateFn restored_state;
  bool checkpointing = false;
  std::int64_t restored_id = 0;
  /// Consumers drain up to this many queued elements per lock round-trip.
  std::size_t pop_batch_max = 1;
};

/// Source subtask: replays `dataset` with birth-bound watermarks and
/// periodic checkpoint barriers onto the record edge.
void RunSourceSubtask(const trajgen::Dataset& dataset, const StageEnv& env,
                      flow::Transport<GpsRecord>& out);

/// Assembler subtask: §4 last-time synchronisation of the record stream
/// into complete snapshots, routed onto the snapshot edge by time.
/// `metrics`/`tracker`/`counters` record snapshot ingest (they live with
/// the assembler, i.e. on the coordinator).
void RunAssemblerSubtask(const StageEnv& env,
                         flow::Channel<flow::Element<GpsRecord>>& input,
                         flow::Transport<Snapshot>& out,
                         flow::SnapshotMetrics* metrics,
                         CompletionTracker* tracker,
                         PipelineCounters* counters,
                         flow::StageStats* assembler_stats);

/// Per-stage context of the snapshot-parallel clustering subtasks.
struct ClusterStageEnv {
  TimeAccumulator* cluster_time = nullptr;
  PipelineCounters* counters = nullptr;
  flow::StageStats* cluster_stats = nullptr;
  const PatternConstraints* partition_constraints = nullptr;
  bool enumerate = true;
  /// Completion progress for clustering-only pipelines (enumerate off);
  /// unused otherwise.
  ProgressFn progress;
};

/// Clustering subtask `worker`: indexed clustering per snapshot (§5.3),
/// partitions routed by OwnerPartition onto the partition edge.
void RunClusterSubtask(std::int32_t worker, const StageEnv& env,
                       const ClusterStageEnv& cenv,
                       flow::Channel<flow::Element<Snapshot>>& input,
                       flow::Transport<pattern::Partition>& out);

/// Per-stage context of the enumeration subtasks.
struct EnumerateStageEnv {
  const std::vector<PatternQuery>* queries = nullptr;
  TimeAccumulator* enum_time = nullptr;
  PipelineCounters* counters = nullptr;
  flow::StageStats* enumerate_stats = nullptr;
  /// Producer count of the partition edge (the clustering parallelism);
  /// sized the worker's watermark and barrier aligners.
  std::int32_t producers = 0;
  /// Exactly-once mode: patterns fold into a worker-local collector that
  /// is part of the checkpointed state and handed to `commit` only at a
  /// normal exit. Off: every emission goes straight to `direct_sink`.
  bool transactional = false;
  std::function<pattern::PatternSink(std::size_t)> direct_sink;
  /// Streaming callback in transactional mode (already serialised by the
  /// caller); null when the run has no on_pattern observer.
  std::function<void(const CoMovementPattern&)> on_pattern;
  /// Receives the worker's per-query pattern folds at a NORMAL exit in
  /// transactional mode - never after a crash.
  std::function<void(std::vector<pattern::PatternCollector>&&)> commit;
  ProgressFn progress;
};

/// Enumeration subtask `worker`: one enumerator per query over the shared
/// partition stream, releasing ticks in order via aligned watermarks.
void RunEnumerateSubtask(
    std::int32_t worker, const StageEnv& env, const EnumerateStageEnv& eenv,
    flow::Channel<flow::Element<pattern::Partition>>& input);

}  // namespace comove::core

#endif  // COMOVE_CORE_STAGE_WORKERS_H_
