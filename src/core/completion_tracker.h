#ifndef COMOVE_CORE_COMPLETION_TRACKER_H_
#define COMOVE_CORE_COMPLETION_TRACKER_H_

#include <algorithm>
#include <limits>
#include <mutex>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/types.h"

/// \file
/// Tracks when every parallel subtask of the final stage has processed a
/// given snapshot time, which is the moment the paper's per-snapshot
/// "response time" clock stops.

namespace comove::core {

/// Thread-safe min-progress tracker over `worker_count` workers. Snapshot
/// times are registered on ingest; Update(worker, through) reports that a
/// worker finished everything <= `through` and returns the registered
/// times that just became complete (all workers past them), ascending.
class CompletionTracker {
 public:
  explicit CompletionTracker(std::int32_t worker_count)
      : progress_(static_cast<std::size_t>(worker_count),
                  std::numeric_limits<Timestamp>::min()) {
    COMOVE_CHECK(worker_count > 0);
  }

  /// Registers a snapshot time awaiting completion (called at ingest).
  void Register(Timestamp time) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.insert(time);
  }

  /// Reports worker progress; returns newly completed snapshot times.
  std::vector<Timestamp> Update(std::int32_t worker, Timestamp through) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& p = progress_.at(static_cast<std::size_t>(worker));
    p = std::max(p, through);
    const Timestamp frontier =
        *std::min_element(progress_.begin(), progress_.end());
    std::vector<Timestamp> completed;
    while (!pending_.empty() && *pending_.begin() <= frontier) {
      completed.push_back(*pending_.begin());
      pending_.erase(pending_.begin());
    }
    return completed;
  }

  /// Times still awaiting completion (used at shutdown assertions).
  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Timestamp> progress_;
  std::set<Timestamp> pending_;
};

}  // namespace comove::core

#endif  // COMOVE_CORE_COMPLETION_TRACKER_H_
