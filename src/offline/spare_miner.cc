#include "offline/spare_miner.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/time_sequence.h"

namespace comove::offline {

namespace {

/// Sorted-vector intersection of two time lists.
std::vector<Timestamp> IntersectTimes(const std::vector<Timestamp>& a,
                                      const std::vector<Timestamp>& b) {
  std::vector<Timestamp> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Apriori enumeration inside one star: grow neighbour subsets in
/// increasing id order, intersecting time lists; prune as soon as the
/// intersection cannot satisfy (K, L, G) (monotone under intersection).
class StarEnumerator {
 public:
  StarEnumerator(const StarPartition& star,
                 const PatternConstraints& constraints,
                 std::vector<CoMovementPattern>* out)
      : star_(star), constraints_(constraints), out_(out) {}

  void Run() {
    chosen_.clear();
    Recurse(0, {});
  }

 private:
  void Recurse(std::size_t start, const std::vector<Timestamp>& times) {
    for (std::size_t i = start; i < star_.neighbor_ids.size(); ++i) {
      std::vector<Timestamp> combined =
          chosen_.empty() ? star_.co_times[i]
                          : IntersectTimes(times, star_.co_times[i]);
      // Apriori prune: intersections only shrink.
      if (static_cast<std::int32_t>(combined.size()) < constraints_.k) {
        continue;
      }
      chosen_.push_back(i);
      const auto level = static_cast<std::int32_t>(chosen_.size());
      if (level >= constraints_.m - 1) {
        std::vector<Timestamp> witness =
            BestQualifyingSubsequence(combined, constraints_);
        if (!witness.empty()) {
          Emit(std::move(witness));
          Recurse(i + 1, combined);
        }
        // Invalid at this level: all supersets are invalid too (their
        // time lists are subsets). This is the same monotonicity the
        // streaming FBA/VBA exploit.
      } else {
        Recurse(i + 1, combined);
      }
      chosen_.pop_back();
    }
  }

  void Emit(std::vector<Timestamp> witness) {
    CoMovementPattern pattern;
    pattern.objects.reserve(chosen_.size() + 1);
    pattern.objects.push_back(star_.center);
    for (const std::size_t i : chosen_) {
      pattern.objects.push_back(star_.neighbor_ids[i]);
    }
    std::sort(pattern.objects.begin(), pattern.objects.end());
    pattern.times = std::move(witness);
    out_->push_back(std::move(pattern));
  }

  const StarPartition& star_;
  const PatternConstraints& constraints_;
  std::vector<CoMovementPattern>* out_;
  std::vector<std::size_t> chosen_;
};

}  // namespace

std::vector<StarPartition> BuildStarPartitions(
    const std::vector<ClusterSnapshot>& history,
    const PatternConstraints& constraints) {
  COMOVE_CHECK(constraints.IsValid());
  // center -> neighbour -> co-clustered times.
  std::map<TrajectoryId, std::map<TrajectoryId, std::vector<Timestamp>>>
      stars;
  for (const ClusterSnapshot& snapshot : history) {
    for (const Cluster& cluster : snapshot.clusters) {
      if (static_cast<std::int32_t>(cluster.members.size()) <
          constraints.m) {
        continue;  // Lemma 3: too small to host any pattern
      }
      for (std::size_t i = 0; i < cluster.members.size(); ++i) {
        for (std::size_t j = i + 1; j < cluster.members.size(); ++j) {
          stars[cluster.members[i]][cluster.members[j]].push_back(
              snapshot.time);
        }
      }
    }
  }
  std::vector<StarPartition> out;
  for (auto& [center, neighbors] : stars) {
    if (static_cast<std::int32_t>(neighbors.size()) < constraints.m - 1) {
      continue;
    }
    StarPartition star;
    star.center = center;
    for (auto& [id, times] : neighbors) {
      std::sort(times.begin(), times.end());
      times.erase(std::unique(times.begin(), times.end()), times.end());
      star.neighbor_ids.push_back(id);
      star.co_times.push_back(std::move(times));
    }
    out.push_back(std::move(star));
  }
  return out;
}

std::vector<CoMovementPattern> MineOffline(
    const std::vector<ClusterSnapshot>& history,
    const PatternConstraints& constraints) {
  std::vector<CoMovementPattern> raw;
  for (const StarPartition& star :
       BuildStarPartitions(history, constraints)) {
    // Candidate filter: a neighbour whose own co-time list cannot qualify
    // can never appear in a valid pattern of this star.
    StarPartition filtered;
    filtered.center = star.center;
    for (std::size_t i = 0; i < star.neighbor_ids.size(); ++i) {
      if (HasQualifyingSubsequence(star.co_times[i], constraints)) {
        filtered.neighbor_ids.push_back(star.neighbor_ids[i]);
        filtered.co_times.push_back(star.co_times[i]);
      }
    }
    if (static_cast<std::int32_t>(filtered.neighbor_ids.size()) <
        constraints.m - 1) {
      continue;
    }
    StarEnumerator(filtered, constraints, &raw).Run();
  }
  // Dedup by object set, keeping the longest witness.
  std::map<std::vector<TrajectoryId>, CoMovementPattern> dedup;
  for (CoMovementPattern& p : raw) {
    auto [it, inserted] = dedup.try_emplace(p.objects, p);
    if (!inserted && p.times.size() > it->second.times.size()) {
      it->second = std::move(p);
    }
  }
  std::vector<CoMovementPattern> out;
  out.reserve(dedup.size());
  for (auto& [objects, p] : dedup) out.push_back(std::move(p));
  return out;
}

}  // namespace comove::offline
