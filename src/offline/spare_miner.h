#ifndef COMOVE_OFFLINE_SPARE_MINER_H_
#define COMOVE_OFFLINE_SPARE_MINER_H_

#include <cstdint>
#include <vector>

#include "common/constraints.h"
#include "common/types.h"

/// \file
/// Offline (historical) co-movement pattern mining in the style of SPARE
/// (Fan et al. [10]), the system the paper adapts into its streaming
/// baseline. SPARE assumes the whole trajectory history is available and
/// partitions it with *star partitioning*: for every object o, the star
/// S(o) holds every object o' > o that ever shares a cluster with o,
/// together with the full list of their co-clustered times. Patterns
/// anchored at o are then mined inside S(o) with apriori enumeration over
/// time-list intersections.
///
/// The paper's §1 observation is precisely that this partitioning cannot
/// work online: whether o and o' are related is only known once all data
/// has been seen. This module exists (a) as the honest offline baseline
/// for benchmarks, and (b) as an independent oracle for the streaming
/// enumerators - on any finite stream, offline and online mining must
/// agree exactly (tests enforce this).

namespace comove::offline {

/// One star partition S(o).
struct StarPartition {
  TrajectoryId center = 0;
  /// Neighbours with id > center that ever co-cluster with the center,
  /// ascending by id, each with the sorted times of co-clustering.
  std::vector<TrajectoryId> neighbor_ids;
  std::vector<std::vector<Timestamp>> co_times;
};

/// Builds all star partitions of a clustered history. Cluster snapshots
/// may arrive in any order; member lists must be sorted (the library
/// contract). Stars whose neighbour count cannot satisfy M-1 are dropped
/// (Lemma 3 analogue).
std::vector<StarPartition> BuildStarPartitions(
    const std::vector<ClusterSnapshot>& history,
    const PatternConstraints& constraints);

/// Mines all CP(M, K, L, G) patterns from a clustered history: star
/// partitioning + apriori enumeration with time-list intersection.
/// Returns deduplicated patterns sorted by object set, each with its
/// longest qualifying witness.
std::vector<CoMovementPattern> MineOffline(
    const std::vector<ClusterSnapshot>& history,
    const PatternConstraints& constraints);

}  // namespace comove::offline

#endif  // COMOVE_OFFLINE_SPARE_MINER_H_
