#include "apps/svg_export.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/check.h"
#include "pattern/analysis.h"

namespace comove::apps {

namespace {

/// A small qualitative palette; communities cycle through it.
constexpr const char* kPalette[] = {
    "#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4",
    "#46f0f0", "#f032e6", "#bcf60c", "#008080", "#9a6324",
};
constexpr std::size_t kPaletteSize = std::size(kPalette);

}  // namespace

void WriteSvg(const trajgen::Dataset& dataset,
              const std::vector<CoMovementPattern>& patterns,
              std::ostream& out, const SvgOptions& options) {
  COMOVE_CHECK(options.width > 0 && options.height > 0);

  // Colour assignment: travel community index -> palette entry.
  std::map<TrajectoryId, std::size_t> community_of;
  {
    const auto graph = pattern::CoMovementGraph::FromPatterns(patterns);
    std::size_t index = 0;
    for (const auto& community : graph.Components()) {
      for (const TrajectoryId id : community) community_of[id] = index;
      ++index;
    }
  }

  // Extent -> viewport transform.
  const trajgen::DatasetStats stats = dataset.ComputeStats();
  const Rect extent = stats.extent;
  const double span_x = std::max(extent.Width(), 1e-9);
  const double span_y = std::max(extent.Height(), 1e-9);
  const double scale =
      std::min((options.width - 2 * options.margin) / span_x,
               (options.height - 2 * options.margin) / span_y);
  const auto tx = [&](double x) {
    return options.margin + (x - extent.min_x) * scale;
  };
  const auto ty = [&](double y) {
    // SVG's y axis points down; flip so north stays up.
    return options.height - options.margin - (y - extent.min_y) * scale;
  };

  // Group per trajectory (records are time-sorted).
  std::map<TrajectoryId, std::vector<Point>> paths;
  for (const GpsRecord& r : dataset.records) {
    paths[r.id].push_back(r.location);
  }

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.width << "\" height=\"" << options.height
      << "\" viewBox=\"0 0 " << options.width << " " << options.height
      << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  out << "<!-- dataset: " << dataset.name << ", " << paths.size()
      << " trajectories, " << patterns.size() << " patterns -->\n";

  // Grey background trajectories first so coloured groups stay on top.
  for (const bool coloured_pass : {false, true}) {
    for (const auto& [id, points] : paths) {
      if (points.size() < options.min_reports) continue;
      const auto community = community_of.find(id);
      const bool coloured = community != community_of.end();
      if (coloured != coloured_pass) continue;
      const char* color =
          coloured ? kPalette[community->second % kPaletteSize] : "#cccccc";
      const char* opacity = coloured ? "0.9" : "0.35";
      out << "<polyline fill=\"none\" stroke=\"" << color
          << "\" stroke-opacity=\"" << opacity << "\" stroke-width=\""
          << options.stroke << "\" points=\"";
      for (const Point& p : points) {
        out << tx(p.x) << ',' << ty(p.y) << ' ';
      }
      out << "\"/>\n";
      if (options.draw_points) {
        for (const Point& p : points) {
          out << "<circle cx=\"" << tx(p.x) << "\" cy=\"" << ty(p.y)
              << "\" r=\"" << options.stroke * 1.5 << "\" fill=\"" << color
              << "\" fill-opacity=\"" << opacity << "\"/>\n";
        }
      }
    }
  }
  out << "</svg>\n";
}

}  // namespace comove::apps
