#ifndef COMOVE_APPS_JSON_EXPORT_H_
#define COMOVE_APPS_JSON_EXPORT_H_

#include <iosfwd>
#include <vector>

#include "common/types.h"
#include "core/icpe_engine.h"

/// \file
/// JSON export of detection results for downstream tooling (dashboards,
/// notebooks). Hand-rolled writer - the schema is small and fixed, and
/// the library carries no third-party dependencies.

namespace comove::apps {

/// Version stamped into WriteResultJson output as "schema_version".
/// History: 1 - metrics + patterns + per-stage backpressure counters;
/// 2 - checkpoint health (per-stage barrier/alignment/snapshot counters,
/// run-level crashed/last_checkpoint_id/checkpoints_{completed,failed});
/// 3 - tracing/time-series observability: run-level trace_events and
/// trace_dropped, per-stage last_watermark (stages now mirror
/// flow::StageStatsFields exactly), optional "time_series" (sampler
/// ticks) and "worst_snapshots" (per-stage latency breakdown) arrays;
/// 4 - enumeration-stage counters: run-level enum_strings_opened,
/// enum_strings_closed, enum_candidates_peak, enum_apriori_nodes,
/// enum_apriori_pruned (the delta_cells_* precedent applied to the
/// pattern stage);
/// 5 - cross-process observability: per-stage bytes_pushed, bytes_popped
/// and crc_rejects (nonzero on transport "link:*" rows), and distributed
/// runs emit worker-labelled stage rows ("w<i>:assembler->cluster", ...)
/// plus per-PeerLink "link:*" rows merged from worker STATS frames.
inline constexpr int kResultJsonSchemaVersion = 5;

/// Writes `patterns` as a JSON array of {"objects": [...], "times": [...]}.
void WritePatternsJson(const std::vector<CoMovementPattern>& patterns,
                       std::ostream& out);

/// Writes a full run result: metrics plus patterns.
/// {
///   "snapshots": N, "avg_latency_ms": ..., "p50_latency_ms": ...,
///   "p95_latency_ms": ..., "p99_latency_ms": ..., "throughput_tps": ...,
///   "avg_cluster_ms": ..., "avg_enum_ms": ..., "avg_cluster_size": ...,
///   "stages": [...],     // present only when collect_stats was set
///   "patterns": [...]
/// }
void WriteResultJson(const core::IcpeResult& result, std::ostream& out);

/// Writes per-stage observability counters as a JSON array of objects,
/// one per exchange in pipeline order:
/// [{"stage": "...", "records_pushed": N, ..., "pop_blocked_ms": X}, ...]
void WriteStageStatsJson(
    const std::vector<flow::StageStatsSnapshot>& stages,
    std::ostream& out);

}  // namespace comove::apps

#endif  // COMOVE_APPS_JSON_EXPORT_H_
