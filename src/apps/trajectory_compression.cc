#include "apps/trajectory_compression.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "pattern/analysis.h"

namespace comove::apps {

namespace {

/// Bytes of a zigzag varint encoding of v.
std::size_t VarintBytes(std::int64_t v) {
  std::uint64_t z = (static_cast<std::uint64_t>(v) << 1) ^
                    static_cast<std::uint64_t>(v >> 63);
  std::size_t bytes = 1;
  while (z >= 0x80) {
    z >>= 7;
    ++bytes;
  }
  return bytes;
}

}  // namespace

std::size_t CompressedTrajectories::EstimateBytes() const {
  std::size_t bytes = 0;
  for (const auto& [id, records] : trajectories) {
    bytes += 8;  // id + reference id + record count header
    for (const CompressedRecord& r : records) {
      bytes += VarintBytes(r.time - r.last_time);  // delta-coded time
      bytes += 1;                                  // flags
      if (r.is_delta) {
        bytes += VarintBytes(r.qx) + VarintBytes(r.qy);
      } else {
        bytes += 16;  // two raw doubles
      }
    }
  }
  return bytes;
}

std::size_t CompressedTrajectories::delta_records() const {
  std::size_t n = 0;
  for (const auto& [id, records] : trajectories) {
    for (const CompressedRecord& r : records) {
      if (r.is_delta) ++n;
    }
  }
  return n;
}

std::size_t CompressedTrajectories::total_records() const {
  std::size_t n = 0;
  for (const auto& [id, records] : trajectories) n += records.size();
  return n;
}

trajgen::Dataset CompressedTrajectories::Decompress() const {
  // Process objects in ascending id order: every reference has a smaller
  // id, so its positions are already materialised.
  const double step = tolerance > 0.0 ? tolerance : 1.0;
  std::map<std::pair<TrajectoryId, Timestamp>, Point> at;
  trajgen::DatasetBuilder builder(name);
  for (const auto& [id, records] : trajectories) {
    const auto ref_it = references.find(id);
    const TrajectoryId ref =
        ref_it == references.end() ? kNoReference : ref_it->second;
    for (const CompressedRecord& r : records) {
      Point p;
      if (r.is_delta) {
        COMOVE_CHECK_MSG(ref != kNoReference && ref < id,
                         "delta record without a valid reference");
        const auto base = at.find({ref, r.time});
        COMOVE_CHECK_MSG(base != at.end(),
                         "reference position missing at delta time");
        p = Point{base->second.x + r.qx * step,
                  base->second.y + r.qy * step};
      } else {
        p = Point{r.x, r.y};
      }
      at[{id, r.time}] = p;
      builder.Add(id, r.time, p);
    }
  }
  trajgen::Dataset out = builder.Finalize(interval_seconds);
  return out;
}

CompressedTrajectories CompressWithPatterns(
    const trajgen::Dataset& dataset,
    const std::vector<CoMovementPattern>& patterns,
    const CompressionOptions& options) {
  COMOVE_CHECK(options.tolerance >= 0.0 && options.max_delta > 0.0);

  // Reference selection: strongest co-mover with a smaller id.
  const auto graph = pattern::CoMovementGraph::FromPatterns(patterns);
  std::map<TrajectoryId, TrajectoryId> references;
  {
    std::map<TrajectoryId, std::int64_t> best_weight;
    for (const CoMovementPattern& p : patterns) {
      for (std::size_t i = 0; i < p.objects.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
          // objects sorted: p.objects[j] < p.objects[i].
          const TrajectoryId self = p.objects[i];
          const TrajectoryId candidate = p.objects[j];
          const std::int64_t weight = graph.EdgeWeight(self, candidate);
          auto it = best_weight.find(self);
          if (it == best_weight.end() || weight > it->second) {
            best_weight[self] = weight;
            references[self] = candidate;
          }
        }
      }
    }
  }

  // Position lookup of the ORIGINAL data (deltas are computed against the
  // reconstructed reference positions so quantisation error does not
  // accumulate along reference chains).
  const double step = options.tolerance > 0.0 ? options.tolerance : 1.0;
  std::map<std::pair<TrajectoryId, Timestamp>, Point> reconstructed;

  CompressedTrajectories out;
  out.name = dataset.name;
  out.interval_seconds = dataset.interval_seconds;
  out.tolerance = options.tolerance;
  out.references = references;

  // Group records per trajectory (records are time-sorted already).
  std::map<TrajectoryId, std::vector<const GpsRecord*>> per_object;
  for (const GpsRecord& r : dataset.records) {
    per_object[r.id].push_back(&r);
  }

  for (const auto& [id, records] : per_object) {
    const auto ref_it = references.find(id);
    const TrajectoryId ref = ref_it == references.end()
                                 ? CompressedTrajectories::kNoReference
                                 : ref_it->second;
    std::vector<CompressedRecord> compressed;
    compressed.reserve(records.size());
    for (const GpsRecord* r : records) {
      CompressedRecord cr;
      cr.time = r->time;
      cr.last_time = r->last_time;
      Point stored = r->location;
      // tolerance == 0 disables quantised deltas entirely (lossless).
      if (options.tolerance > 0.0 &&
          ref != CompressedTrajectories::kNoReference) {
        const auto base = reconstructed.find({ref, r->time});
        if (base != reconstructed.end()) {
          const double dx = r->location.x - base->second.x;
          const double dy = r->location.y - base->second.y;
          if (std::abs(dx) <= options.max_delta &&
              std::abs(dy) <= options.max_delta) {
            cr.is_delta = true;
            cr.qx = static_cast<std::int32_t>(std::lround(dx / step));
            cr.qy = static_cast<std::int32_t>(std::lround(dy / step));
            stored = Point{base->second.x + cr.qx * step,
                           base->second.y + cr.qy * step};
          }
        }
      }
      if (!cr.is_delta) {
        cr.x = r->location.x;
        cr.y = r->location.y;
      }
      reconstructed[{id, r->time}] = stored;
      compressed.push_back(cr);
    }
    out.trajectories.emplace(id, std::move(compressed));
  }
  return out;
}

}  // namespace comove::apps
