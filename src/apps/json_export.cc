#include "apps/json_export.h"

#include <ostream>

namespace comove::apps {

namespace {

template <typename T>
void WriteIntArray(const std::vector<T>& values, std::ostream& out) {
  out << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out << ',';
    out << values[i];
  }
  out << ']';
}

void WritePattern(const CoMovementPattern& p, std::ostream& out) {
  out << "{\"objects\":";
  WriteIntArray(p.objects, out);
  out << ",\"times\":";
  WriteIntArray(p.times, out);
  out << '}';
}

}  // namespace

void WritePatternsJson(const std::vector<CoMovementPattern>& patterns,
                       std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (i) out << ",";
    out << "\n  ";
    WritePattern(patterns[i], out);
  }
  out << "\n]\n";
}

void WriteResultJson(const core::IcpeResult& result, std::ostream& out) {
  out << "{\n";
  out << "  \"schema_version\": " << kResultJsonSchemaVersion << ",\n";
  out << "  \"snapshots\": " << result.snapshots.snapshots << ",\n";
  out << "  \"avg_latency_ms\": " << result.snapshots.average_latency_ms
      << ",\n";
  out << "  \"max_latency_ms\": " << result.snapshots.max_latency_ms
      << ",\n";
  out << "  \"p50_latency_ms\": " << result.snapshots.p50_latency_ms
      << ",\n";
  out << "  \"p95_latency_ms\": " << result.snapshots.p95_latency_ms
      << ",\n";
  out << "  \"p99_latency_ms\": " << result.snapshots.p99_latency_ms
      << ",\n";
  out << "  \"throughput_tps\": " << result.snapshots.throughput_tps
      << ",\n";
  out << "  \"avg_cluster_ms\": " << result.avg_cluster_ms << ",\n";
  out << "  \"avg_enum_ms\": " << result.avg_enum_ms << ",\n";
  out << "  \"avg_cluster_size\": " << result.avg_cluster_size << ",\n";
  out << "  \"cluster_count\": " << result.cluster_count << ",\n";
  out << "  \"crashed\": " << (result.crashed ? "true" : "false") << ",\n";
  out << "  \"last_checkpoint_id\": " << result.last_checkpoint_id
      << ",\n";
  out << "  \"checkpoints_completed\": " << result.checkpoints_completed
      << ",\n";
  out << "  \"checkpoints_failed\": " << result.checkpoints_failed
      << ",\n";
  if (!result.stage_stats.empty()) {
    out << "  \"stages\": ";
    WriteStageStatsJson(result.stage_stats, out);
    out << ",\n";
  }
  out << "  \"patterns\": ";
  WritePatternsJson(result.patterns, out);
  out << "}\n";
}

void WriteStageStatsJson(
    const std::vector<flow::StageStatsSnapshot>& stages,
    std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const flow::StageStatsSnapshot& s = stages[i];
    if (i) out << ",";
    out << "\n    {\"stage\": \"" << s.stage << "\""
        << ", \"records_pushed\": " << s.records_pushed
        << ", \"records_popped\": " << s.records_popped
        << ", \"watermarks_pushed\": " << s.watermarks_pushed
        << ", \"watermarks_popped\": " << s.watermarks_popped
        << ", \"queue_depth\": " << s.queue_depth
        << ", \"max_queue_depth\": " << s.max_queue_depth
        << ", \"push_blocked_ms\": " << s.push_blocked_ms
        << ", \"pop_blocked_ms\": " << s.pop_blocked_ms
        << ", \"barriers_pushed\": " << s.barriers_pushed
        << ", \"barriers_popped\": " << s.barriers_popped
        << ", \"align_blocked_ms\": " << s.align_blocked_ms
        << ", \"snapshot_bytes\": " << s.snapshot_bytes
        << ", \"last_checkpoint_id\": " << s.last_checkpoint_id
        << ", \"batches_pushed\": " << s.batches_pushed
        << ", \"avg_batch_size\": " << s.avg_batch_size
        << ", \"batch_size_histogram\": [";
    for (std::size_t b = 0; b < s.batch_size_histogram.size(); ++b) {
      if (b) out << ", ";
      out << s.batch_size_histogram[b];
    }
    out << "]}";
  }
  out << "\n  ]";
}

}  // namespace comove::apps
