#include "apps/json_export.h"

#include <ostream>

namespace comove::apps {

namespace {

template <typename T>
void WriteIntArray(const std::vector<T>& values, std::ostream& out) {
  out << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out << ',';
    out << values[i];
  }
  out << ']';
}

void WritePattern(const CoMovementPattern& p, std::ostream& out) {
  out << "{\"objects\":";
  WriteIntArray(p.objects, out);
  out << ",\"times\":";
  WriteIntArray(p.times, out);
  out << '}';
}

}  // namespace

void WritePatternsJson(const std::vector<CoMovementPattern>& patterns,
                       std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (i) out << ",";
    out << "\n  ";
    WritePattern(patterns[i], out);
  }
  out << "\n]\n";
}

void WriteResultJson(const core::IcpeResult& result, std::ostream& out) {
  out << "{\n";
  out << "  \"snapshots\": " << result.snapshots.snapshots << ",\n";
  out << "  \"avg_latency_ms\": " << result.snapshots.average_latency_ms
      << ",\n";
  out << "  \"max_latency_ms\": " << result.snapshots.max_latency_ms
      << ",\n";
  out << "  \"throughput_tps\": " << result.snapshots.throughput_tps
      << ",\n";
  out << "  \"avg_cluster_ms\": " << result.avg_cluster_ms << ",\n";
  out << "  \"avg_enum_ms\": " << result.avg_enum_ms << ",\n";
  out << "  \"avg_cluster_size\": " << result.avg_cluster_size << ",\n";
  out << "  \"cluster_count\": " << result.cluster_count << ",\n";
  out << "  \"patterns\": ";
  WritePatternsJson(result.patterns, out);
  out << "}\n";
}

}  // namespace comove::apps
