#include "apps/json_export.h"

#include <ostream>

namespace comove::apps {

namespace {

template <typename T>
void WriteIntArray(const std::vector<T>& values, std::ostream& out) {
  out << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out << ',';
    out << values[i];
  }
  out << ']';
}

void WritePattern(const CoMovementPattern& p, std::ostream& out) {
  out << "{\"objects\":";
  WriteIntArray(p.objects, out);
  out << ",\"times\":";
  WriteIntArray(p.times, out);
  out << '}';
}

}  // namespace

void WritePatternsJson(const std::vector<CoMovementPattern>& patterns,
                       std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (i) out << ",";
    out << "\n  ";
    WritePattern(patterns[i], out);
  }
  out << "\n]\n";
}

void WriteResultJson(const core::IcpeResult& result, std::ostream& out) {
  out << "{\n";
  out << "  \"schema_version\": " << kResultJsonSchemaVersion << ",\n";
  out << "  \"snapshots\": " << result.snapshots.snapshots << ",\n";
  out << "  \"avg_latency_ms\": " << result.snapshots.average_latency_ms
      << ",\n";
  out << "  \"max_latency_ms\": " << result.snapshots.max_latency_ms
      << ",\n";
  out << "  \"p50_latency_ms\": " << result.snapshots.p50_latency_ms
      << ",\n";
  out << "  \"p95_latency_ms\": " << result.snapshots.p95_latency_ms
      << ",\n";
  out << "  \"p99_latency_ms\": " << result.snapshots.p99_latency_ms
      << ",\n";
  out << "  \"throughput_tps\": " << result.snapshots.throughput_tps
      << ",\n";
  out << "  \"avg_cluster_ms\": " << result.avg_cluster_ms << ",\n";
  out << "  \"avg_enum_ms\": " << result.avg_enum_ms << ",\n";
  out << "  \"avg_cluster_size\": " << result.avg_cluster_size << ",\n";
  out << "  \"cluster_count\": " << result.cluster_count << ",\n";
  out << "  \"enum_strings_opened\": " << result.enum_strings_opened
      << ",\n";
  out << "  \"enum_strings_closed\": " << result.enum_strings_closed
      << ",\n";
  out << "  \"enum_candidates_peak\": " << result.enum_candidates_peak
      << ",\n";
  out << "  \"enum_apriori_nodes\": " << result.enum_apriori_nodes << ",\n";
  out << "  \"enum_apriori_pruned\": " << result.enum_apriori_pruned
      << ",\n";
  out << "  \"crashed\": " << (result.crashed ? "true" : "false") << ",\n";
  out << "  \"last_checkpoint_id\": " << result.last_checkpoint_id
      << ",\n";
  out << "  \"checkpoints_completed\": " << result.checkpoints_completed
      << ",\n";
  out << "  \"checkpoints_failed\": " << result.checkpoints_failed
      << ",\n";
  out << "  \"trace_events\": " << result.trace_events << ",\n";
  out << "  \"trace_dropped\": " << result.trace_dropped << ",\n";
  if (!result.stage_stats.empty()) {
    out << "  \"stages\": ";
    WriteStageStatsJson(result.stage_stats, out);
    out << ",\n";
  }
  if (!result.time_series.empty()) {
    out << "  \"time_series\": ";
    flow::WriteTimeSeriesJson(result.time_series, out);
    out << ",\n";
  }
  if (!result.worst_snapshots.empty()) {
    out << "  \"worst_snapshots\": [";
    for (std::size_t i = 0; i < result.worst_snapshots.size(); ++i) {
      const flow::SnapshotStageBreakdown& row = result.worst_snapshots[i];
      if (i) out << ',';
      out << "\n    {\"snapshot_time\": " << row.snapshot_time
          << ", \"latency_ms\": " << row.latency_ms << ", \"stages\": {";
      for (std::size_t j = 0; j < row.stage_ms.size(); ++j) {
        if (j) out << ", ";
        out << '"' << row.stage_ms[j].first
            << "\": " << row.stage_ms[j].second;
      }
      out << "}}";
    }
    out << "\n  ],\n";
  }
  out << "  \"patterns\": ";
  WritePatternsJson(result.patterns, out);
  out << "}\n";
}

void WriteStageStatsJson(
    const std::vector<flow::StageStatsSnapshot>& stages,
    std::ostream& out) {
  // Driven by the shared field table, so the JSON keys and the text
  // table of PrintStageStats cannot diverge (export_test pins this).
  const std::vector<flow::StageStatsField>& fields =
      flow::StageStatsFields();
  out << "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const flow::StageStatsSnapshot& s = stages[i];
    if (i) out << ",";
    out << "\n    {\"stage\": \"" << s.stage << "\"";
    for (const flow::StageStatsField& f : fields) {
      out << ", \"" << f.json_name << "\": ";
      const double v = f.value(s);
      if (f.integral) {
        out << static_cast<std::int64_t>(v);
      } else {
        out << v;
      }
    }
    out << ", \"batch_size_histogram\": [";
    for (std::size_t b = 0; b < s.batch_size_histogram.size(); ++b) {
      if (b) out << ", ";
      out << s.batch_size_histogram[b];
    }
    out << "]}";
  }
  out << "\n  ]";
}

}  // namespace comove::apps
