#ifndef COMOVE_APPS_SVG_EXPORT_H_
#define COMOVE_APPS_SVG_EXPORT_H_

#include <iosfwd>
#include <vector>

#include "common/types.h"
#include "trajgen/dataset.h"

/// \file
/// SVG rendering of trajectory datasets and detected patterns: each
/// trajectory becomes a polyline, members of co-movement patterns share a
/// colour, everything else is drawn in grey. Useful for debugging
/// clustering/enumeration parameter choices and for documentation.

namespace comove::apps {

/// Rendering knobs.
struct SvgOptions {
  double width = 900.0;    ///< canvas width in px
  double height = 900.0;   ///< canvas height in px
  double margin = 20.0;    ///< border around the data extent
  double stroke = 1.0;     ///< polyline stroke width
  bool draw_points = false;  ///< also mark every report
  /// Only trajectories with at least this many reports are drawn.
  std::size_t min_reports = 2;
};

/// Writes an SVG document rendering `dataset`. Trajectories belonging to
/// any of `patterns` are coloured per travel community (connected
/// co-movement component); others are light grey.
void WriteSvg(const trajgen::Dataset& dataset,
              const std::vector<CoMovementPattern>& patterns,
              std::ostream& out, const SvgOptions& options = {});

}  // namespace comove::apps

#endif  // COMOVE_APPS_SVG_EXPORT_H_
