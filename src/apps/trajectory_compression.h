#ifndef COMOVE_APPS_TRAJECTORY_COMPRESSION_H_
#define COMOVE_APPS_TRAJECTORY_COMPRESSION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "trajgen/dataset.h"

/// \file
/// Pattern-based trajectory compression - one of the two applications the
/// paper's introduction motivates (besides future-movement prediction).
/// Objects that co-move are redundant: once one member of a pattern is
/// stored, the others are small offsets from it. This module implements
/// reference-delta compression driven by detected co-movement patterns:
///
///   1. From the patterns, each object picks at most one *reference*
///      co-mover with a smaller id (so references form a forest and
///      decompression can proceed in id order).
///   2. Every record is stored either absolutely (16 bytes) or, when the
///      reference reported at the same time and is nearby, as a
///      quantised delta against the reference's position (variable
///      length, typically 2-6 bytes).
///
/// Compression is lossy up to a configurable per-coordinate tolerance;
/// with tolerance 0 every record is stored absolutely (lossless, no
/// compression from deltas). Decompression reproduces the dataset with
/// per-coordinate error bounded by tolerance/2; tests verify the bound.

namespace comove::apps {

/// Compression knobs.
struct CompressionOptions {
  /// Quantisation step of the deltas; the introduced per-coordinate
  /// error is at most tolerance / 2. 0 disables deltas (lossless).
  double tolerance = 0.1;
  /// Deltas larger than this fall back to absolute storage (a straggling
  /// co-mover is cheaper absolute than as a huge delta).
  double max_delta = 256.0;
};

/// One stored record: absolute or delta-against-reference.
struct CompressedRecord {
  Timestamp time = 0;
  Timestamp last_time = kNoTime;
  bool is_delta = false;
  /// Absolute coordinates (is_delta == false)...
  double x = 0.0;
  double y = 0.0;
  /// ... or quantised offsets from the reference (is_delta == true).
  std::int32_t qx = 0;
  std::int32_t qy = 0;
};

/// A compressed dataset with enough structure to decompress.
struct CompressedTrajectories {
  std::string name;
  double interval_seconds = 1.0;
  double tolerance = 0.0;
  /// Reference object per object id; kNoReference when standalone.
  static constexpr TrajectoryId kNoReference = -1;
  std::map<TrajectoryId, TrajectoryId> references;
  std::map<TrajectoryId, std::vector<CompressedRecord>> trajectories;

  /// Serialised size estimate in bytes under a varint wire format (the
  /// honest metric: absolute records cost 16+ bytes, delta records cost
  /// the varint length of their quantised offsets).
  std::size_t EstimateBytes() const;

  /// Count of records stored as deltas.
  std::size_t delta_records() const;
  std::size_t total_records() const;

  /// Reconstructs the dataset; per-coordinate error <= tolerance.
  trajgen::Dataset Decompress() const;
};

/// Compresses `dataset` using the co-movement `patterns` detected on it.
CompressedTrajectories CompressWithPatterns(
    const trajgen::Dataset& dataset,
    const std::vector<CoMovementPattern>& patterns,
    const CompressionOptions& options = {});

}  // namespace comove::apps

#endif  // COMOVE_APPS_TRAJECTORY_COMPRESSION_H_
