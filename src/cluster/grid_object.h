#ifndef COMOVE_CLUSTER_GRID_OBJECT_H_
#define COMOVE_CLUSTER_GRID_OBJECT_H_

#include "common/types.h"
#include "index/grid_index.h"

/// \file
/// GridObject (Definition 12): the replication unit of the distributed
/// range join. A location is shipped to grid cells either as a *data*
/// object (it belongs to the cell and is indexed there) or as a *query*
/// object (its range region intersects the cell, so results for it may
/// live there).

namespace comove::cluster {

/// One replicated location, tagged with the destination cell and role.
struct GridObject {
  GridKey key;               ///< destination grid cell
  bool is_query = false;     ///< false: data object; true: query object
  TrajectoryId id = 0;
  Point location;

  /// Exact equality (coordinates compared bitwise-equal as doubles); the
  /// delta path uses bucket equality to prove a cell's join output is
  /// unchanged.
  friend bool operator==(const GridObject& a, const GridObject& b) {
    return a.key == b.key && a.is_query == b.is_query && a.id == b.id &&
           a.location == b.location;
  }
};

}  // namespace comove::cluster

#endif  // COMOVE_CLUSTER_GRID_OBJECT_H_
