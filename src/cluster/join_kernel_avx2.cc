// AVX2 kernels of the sweep join and the radix histogram pass. This is
// the ONLY translation unit compiled with -mavx2 (see
// src/cluster/CMakeLists.txt); callers gate on cluster::ResolveSimdLevel
// before entering. Everything here has internal linkage or is declared in
// simd_kernels.h and crosses the TU boundary as raw pointers/PODs - no
// std containers, no shared inline helpers - so the linker can never pick
// an AVX2-compiled copy of an ODR-merged symbol for a scalar caller. The
// few predicates the kernels need are re-derived locally and MUST keep
// the exact arithmetic of their scalar references (WithinDistance in
// common/geometry.h, InUpperHalf in cluster/join_kernel.h): same operand
// order, one rounding per operation, no FMA contraction (-mavx2 does not
// enable -mfma, and we never use fmadd intrinsics).

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "cluster/simd_kernels.h"

namespace comove::cluster::simd {

bool Avx2CompiledIn() { return true; }

namespace {

/// Survivor lane indices per 4-bit movemask value (lane i survives when
/// bit i is set), for the mask-compress store: the LUT row is added to
/// the chunk base and stored whole; only the first popcount entries are
/// meaningful, so the destination needs 3 slack slots.
alignas(64) constexpr std::uint32_t kCompressLut[16][4] = {
    {0, 0, 0, 0}, {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0},
    {2, 0, 0, 0}, {0, 2, 0, 0}, {1, 2, 0, 0}, {0, 1, 2, 0},
    {3, 0, 0, 0}, {0, 3, 0, 0}, {1, 3, 0, 0}, {0, 1, 3, 0},
    {2, 3, 0, 0}, {0, 2, 3, 0}, {1, 2, 3, 0}, {0, 1, 2, 3},
};

/// Appends the surviving lane indices (base + set bit positions of
/// `mask`, ascending) at `dst`; returns how many were appended.
inline std::uint32_t CompressStore(std::uint32_t* dst, std::uint32_t base,
                                   unsigned mask) {
  const __m128i lanes =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kCompressLut[mask]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                   _mm_add_epi32(lanes, _mm_set1_epi32(static_cast<int>(base))));
  return static_cast<std::uint32_t>(__builtin_popcount(mask));
}

/// Local copy of WithinDistance (common/geometry.h) for the scalar tail
/// loops; internal linkage keeps it out of ODR merging. Arithmetic must
/// match the reference token for token.
inline bool WithinScalar(bool l1, double qx, double qy, double x, double y,
                         double eps) {
  if (l1) return __builtin_fabs(qx - x) + __builtin_fabs(qy - y) <= eps;
  const double dx = qx - x;
  const double dy = qy - y;
  return dx * dx + dy * dy <= eps * eps;
}

/// Local copy of InUpperHalf (cluster/join_kernel.h).
inline bool UpperHalfScalar(double qx, double qy, TrajectoryId qid, double x,
                            double y, TrajectoryId id) {
  if (y != qy) return y > qy;
  if (x != qx) return x > qx;
  return id > qid;
}

/// Local copy of the x-band prefilter's pass condition:
/// !(x < min_x) && !(x > max_x). Kept separate from WithinScalar because
/// the band is NOT redundant at rounded-tie boundaries (min_x = q.x - eps
/// can round up past a point the metric alone would accept), so dropping
/// it would break bit-identity with the scalar kernel.
inline bool InBandScalar(double x, double min_x, double max_x) {
  return !(x < min_x) && !(x > max_x);
}

inline void EmitPair(PairSink& sink, TrajectoryId a, TrajectoryId b) {
  if (sink.size == sink.capacity) {
    sink.flush(sink.ctx, sink.buf, sink.size);
    sink.size = 0;
  }
  const TrajectoryId lo = b < a ? b : a;
  const TrajectoryId hi = b < a ? a : b;
  sink.buf[sink.size++] = NeighborPair{lo, hi};
}

/// 4-lane WithinDistance: same operations and order as the scalar form
/// (sub, abs-as-bitmask / mul, add, ordered-quiet compare - NaN lanes
/// fail, exactly like the scalar <=).
template <bool kL1>
inline __m256d WithinMask(__m256d qx, __m256d qy, __m256d x4, __m256d y4,
                          __m256d eps4, __m256d eps_sq4, __m256d abs_mask) {
  const __m256d dx = _mm256_sub_pd(qx, x4);
  const __m256d dy = _mm256_sub_pd(qy, y4);
  if constexpr (kL1) {
    const __m256d sum = _mm256_add_pd(_mm256_and_pd(dx, abs_mask),
                                      _mm256_and_pd(dy, abs_mask));
    return _mm256_cmp_pd(sum, eps4, _CMP_LE_OQ);
  } else {
    const __m256d sum =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    return _mm256_cmp_pd(sum, eps_sq4, _CMP_LE_OQ);
  }
}

/// 4-lane x-band pass condition !(x < min_x) && !(x > max_x). The
/// unordered-quiet predicates make NaN x lanes pass, like the scalar
/// band (WithinDistance rejects them right after either way).
inline __m256d BandMask(__m256d x4, __m256d min_x4, __m256d max_x4) {
  return _mm256_and_pd(_mm256_cmp_pd(x4, min_x4, _CMP_NLT_UQ),
                       _mm256_cmp_pd(x4, max_x4, _CMP_NGT_UQ));
}

/// 4-lane InUpperHalf: y > qy, ties on y broken by x > qx, ties on both
/// by id > qid. The EQ_OQ/GT_OQ pair reproduces the scalar's != / >
/// branches exactly (NaN lanes: both false -> predicate false, matching
/// `NaN != qy -> return NaN > qy` = false).
inline __m256d UpperHalfMask(__m256d qx, __m256d qy, __m256i qid4, __m256d x4,
                             __m256d y4, __m256i id4) {
  const __m256d y_gt = _mm256_cmp_pd(y4, qy, _CMP_GT_OQ);
  const __m256d y_eq = _mm256_cmp_pd(y4, qy, _CMP_EQ_OQ);
  const __m256d x_gt = _mm256_cmp_pd(x4, qx, _CMP_GT_OQ);
  const __m256d x_eq = _mm256_cmp_pd(x4, qx, _CMP_EQ_OQ);
  const __m256d id_gt = _mm256_castsi256_pd(_mm256_cmpgt_epi64(id4, qid4));
  const __m256d x_break = _mm256_or_pd(x_gt, _mm256_and_pd(x_eq, id_gt));
  return _mm256_or_pd(y_gt, _mm256_and_pd(y_eq, x_break));
}

template <bool kL1>
void DataDataImpl(const ColumnsView& d, double eps, std::uint32_t* cand,
                  PairSink& sink) {
  const double* x = d.x;
  const double* y = d.y;
  const TrajectoryId* id = d.id;
  const std::size_t nd = d.n;
  const __m256d eps4 = _mm256_set1_pd(eps);
  const __m256d eps_sq4 = _mm256_set1_pd(eps * eps);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  std::size_t lo = 0;
  for (std::size_t j = 1; j < nd; ++j) {
    const double qx = x[j];
    const double qy = y[j];
    const double min_y = qy - eps;
    while (lo < j && y[lo] < min_y) ++lo;
    const double min_x = qx - eps;
    const double max_x = qx + eps;
    const __m256d qx4 = _mm256_set1_pd(qx);
    const __m256d qy4 = _mm256_set1_pd(qy);
    const __m256d min_x4 = _mm256_set1_pd(min_x);
    const __m256d max_x4 = _mm256_set1_pd(max_x);
    std::uint32_t ncand = 0;
    std::size_t i = lo;
    for (; i + 4 <= j; i += 4) {
      const __m256d x4 = _mm256_loadu_pd(x + i);
      const __m256d y4 = _mm256_loadu_pd(y + i);
      const __m256d pred = _mm256_and_pd(
          BandMask(x4, min_x4, max_x4),
          WithinMask<kL1>(qx4, qy4, x4, y4, eps4, eps_sq4, abs_mask));
      const unsigned m = static_cast<unsigned>(_mm256_movemask_pd(pred));
      if (m != 0) {
        ncand += CompressStore(cand + ncand, static_cast<std::uint32_t>(i), m);
      }
    }
    for (; i < j; ++i) {
      if (!InBandScalar(x[i], min_x, max_x)) continue;
      if (!WithinScalar(kL1, qx, qy, x[i], y[i], eps)) continue;
      cand[ncand++] = static_cast<std::uint32_t>(i);
    }
    const TrajectoryId qid = id[j];
    for (std::uint32_t c = 0; c < ncand; ++c) {
      EmitPair(sink, id[cand[c]], qid);
    }
  }
}

/// Prefix-of-ones of a 4-bit mask (lanes before the first zero bit):
/// the in-window scan stops at the FIRST y beyond max_y, exactly like
/// the scalar loop condition, even for out-of-contract unsorted input.
inline unsigned PrefixMask(unsigned m) {
  const unsigned first_zero = ~m & (m + 1);
  return first_zero - 1;
}

template <bool kL1, bool kUpperHalf>
void QueryDataImpl(const ColumnsView& d, const ColumnsView& q, double eps,
                   std::uint32_t* cand, PairSink& sink) {
  const double* x = d.x;
  const double* y = d.y;
  const TrajectoryId* id = d.id;
  const std::size_t nd = d.n;
  const __m256d eps4 = _mm256_set1_pd(eps);
  const __m256d eps_sq4 = _mm256_set1_pd(eps * eps);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  std::size_t lo = 0;
  for (std::size_t qi = 0; qi < q.n; ++qi) {
    const double qx = q.x[qi];
    const double qy = q.y[qi];
    const TrajectoryId qid = q.id[qi];
    const double max_y = qy + eps;
    const double min_x = qx - eps;
    const double max_x = qx + eps;
    if constexpr (kUpperHalf) {
      // Lemma 1: only data at y >= q.y can be in q's upper half-space.
      while (lo < nd && y[lo] < qy) ++lo;
    } else {
      const double min_y = qy - eps;
      while (lo < nd && y[lo] < min_y) ++lo;
    }
    const __m256d qx4 = _mm256_set1_pd(qx);
    const __m256d qy4 = _mm256_set1_pd(qy);
    const __m256d max_y4 = _mm256_set1_pd(max_y);
    const __m256d min_x4 = _mm256_set1_pd(min_x);
    const __m256d max_x4 = _mm256_set1_pd(max_x);
    const __m256i qid4 = _mm256_set1_epi64x(qid);
    std::uint32_t ncand = 0;
    std::size_t k = lo;
    for (; k + 4 <= nd; k += 4) {
      const __m256d x4 = _mm256_loadu_pd(x + k);
      const __m256d y4 = _mm256_loadu_pd(y + k);
      const unsigned my = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_cmp_pd(y4, max_y4, _CMP_LE_OQ)));
      __m256d pred = _mm256_and_pd(
          BandMask(x4, min_x4, max_x4),
          WithinMask<kL1>(qx4, qy4, x4, y4, eps4, eps_sq4, abs_mask));
      if constexpr (kUpperHalf) {
        const __m256i id4 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(id + k));
        pred = _mm256_and_pd(pred, UpperHalfMask(qx4, qy4, qid4, x4, y4, id4));
      }
      const unsigned m =
          static_cast<unsigned>(_mm256_movemask_pd(pred)) & PrefixMask(my);
      if (m != 0) {
        ncand += CompressStore(cand + ncand, static_cast<std::uint32_t>(k), m);
      }
      if (my != 0xFu) break;  // window ended inside this chunk
    }
    if (k + 4 > nd) {
      for (; k < nd && y[k] <= max_y; ++k) {
        if (!InBandScalar(x[k], min_x, max_x)) continue;
        if constexpr (kUpperHalf) {
          if (!UpperHalfScalar(qx, qy, qid, x[k], y[k], id[k])) continue;
        }
        if (!WithinScalar(kL1, qx, qy, x[k], y[k], eps)) continue;
        cand[ncand++] = static_cast<std::uint32_t>(k);
      }
    }
    for (std::uint32_t c = 0; c < ncand; ++c) {
      EmitPair(sink, qid, id[cand[c]]);
    }
  }
}

}  // namespace

void SweepDataDataAvx2(const ColumnsView& d, double eps, bool l1,
                       std::uint32_t* cand, PairSink& sink) {
  if (l1) {
    DataDataImpl<true>(d, eps, cand, sink);
  } else {
    DataDataImpl<false>(d, eps, cand, sink);
  }
}

void SweepQueryDataAvx2(const ColumnsView& d, const ColumnsView& q,
                        double eps, bool l1, bool use_lemma2,
                        std::uint32_t* cand, PairSink& sink) {
  if (d.n == 0) return;
  if (l1) {
    if (use_lemma2) {
      QueryDataImpl<true, true>(d, q, eps, cand, sink);
    } else {
      QueryDataImpl<true, false>(d, q, eps, cand, sink);
    }
  } else {
    if (use_lemma2) {
      QueryDataImpl<false, true>(d, q, eps, cand, sink);
    } else {
      QueryDataImpl<false, false>(d, q, eps, cand, sink);
    }
  }
}

void PackWideHistogramsAvx2(const NeighborPair* pairs, std::size_t n,
                            std::uint64_t* keys, std::uint32_t* counts) {
  constexpr std::size_t kBuckets = std::size_t{1} << 16;
  std::uint32_t* c0 = counts;
  std::uint32_t* c1 = counts + kBuckets;
  std::uint32_t* c2 = counts + 2 * kBuckets;
  std::uint32_t* c3 = counts + 3 * kBuckets;
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Pairs load as qword lanes [a0 b0 a1 b1] / [a2 b2 a3 b3]; each key
    // is (a << 32) | (b & 0xffffffff) (PackedKey in join_kernel.cc).
    // Shifting a up and byte-shifting b's low half down one lane lines
    // both up in the even lanes; two 4x64 permutes + a blend pack the
    // four keys of the two vectors into one.
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pairs + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pairs + i + 2));
    const __m256i k01 = _mm256_or_si256(
        _mm256_slli_epi64(v0, 32),
        _mm256_bsrli_epi128(_mm256_and_si256(v0, mask32), 8));
    const __m256i k23 = _mm256_or_si256(
        _mm256_slli_epi64(v1, 32),
        _mm256_bsrli_epi128(_mm256_and_si256(v1, mask32), 8));
    const __m256i packed = _mm256_blend_epi32(
        _mm256_permute4x64_epi64(k01, 0x08),
        _mm256_permute4x64_epi64(k23, 0x80), 0xF0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i), packed);
    for (int t = 0; t < 4; ++t) {
      const std::uint64_t key = keys[i + static_cast<std::size_t>(t)];
      ++c0[key & 0xFFFF];
      ++c1[(key >> 16) & 0xFFFF];
      ++c2[(key >> 32) & 0xFFFF];
      ++c3[key >> 48];
    }
  }
  for (; i < n; ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pairs[i].a))
         << 32) |
        static_cast<std::uint32_t>(pairs[i].b);
    keys[i] = key;
    ++c0[key & 0xFFFF];
    ++c1[(key >> 16) & 0xFFFF];
    ++c2[(key >> 32) & 0xFFFF];
    ++c3[key >> 48];
  }
}

}  // namespace comove::cluster::simd
