#include "cluster/range_join.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace comove::cluster {

namespace {

NeighborPair Canonical(TrajectoryId a, TrajectoryId b) {
  return a < b ? NeighborPair{a, b} : NeighborPair{b, a};
}

/// Lemma 1 half-space predicate: `v` lies in the half of `q`'s range
/// region that q is responsible for. Strictly above; ties on y broken by
/// x, ties on both by id, so every cross-cell pair is claimed by exactly
/// one side even for coincident coordinates.
bool InUpperHalf(const Point& q, TrajectoryId q_id, const Point& v,
                 TrajectoryId v_id) {
  if (v.y != q.y) return v.y > q.y;
  if (v.x != q.x) return v.x > q.x;
  return v_id > q_id;
}

}  // namespace

std::vector<GridObject> GridAllocate(const Snapshot& snapshot,
                                     const RangeJoinOptions& options,
                                     bool use_lemma1) {
  std::vector<GridObject> out;
  GridAllocate(snapshot, options, use_lemma1, out);
  return out;
}

void GridAllocate(const Snapshot& snapshot, const RangeJoinOptions& options,
                  bool use_lemma1, std::vector<GridObject>& out) {
  const GridIndex grid(options.grid_cell_width);
  out.clear();
  out.reserve(snapshot.entries.size() * 2);
  for (const SnapshotEntry& e : snapshot.entries) {
    const GridKey home = grid.KeyOf(e.location);
    out.push_back(GridObject{home, /*is_query=*/false, e.id, e.location});
    const Rect region =
        use_lemma1 ? Rect::UpperRangeRegion(e.location, options.eps)
                   : Rect::RangeRegion(e.location, options.eps);
    for (const GridKey& key : grid.KeysIntersecting(region)) {
      if (key == home) continue;
      out.push_back(GridObject{key, /*is_query=*/true, e.id, e.location});
    }
  }
}

std::vector<NeighborPair> GridQuery(
    const std::vector<GridObject>& cell_objects,
    const RangeJoinOptions& options, bool use_lemma2) {
  std::vector<NeighborPair> out;
  RTree tree(options.rtree);
  GridQuery(cell_objects, options, use_lemma2, tree, out);
  return out;
}

void GridQuery(const std::vector<GridObject>& cell_objects,
               const RangeJoinOptions& options, bool use_lemma2, RTree& tree,
               std::vector<NeighborPair>& out) {
  tree.Clear();

  if (use_lemma2) {
    // Pass 1 (Lemma 2): each data object queries the partially built tree
    // and is inserted afterwards; every within-cell pair is produced once,
    // and the index is ready when the pass ends.
    for (const GridObject& o : cell_objects) {
      if (o.is_query) continue;
      tree.QueryRect(Rect::RangeRegion(o.location, options.eps),
                     [&](TrajectoryId id, const Point& p) {
                       if (Distance(options.metric, o.location, p) <=
                           options.eps) {
                         out.push_back(Canonical(o.id, id));
                       }
                     });
      tree.Insert(o.location, o.id);
    }
    // Pass 2: query objects see only their Lemma 1 half-space, so the
    // owning side of each cross-cell pair reports it exactly once.
    for (const GridObject& o : cell_objects) {
      if (!o.is_query) continue;
      tree.QueryRect(Rect::RangeRegion(o.location, options.eps),
                     [&](TrajectoryId id, const Point& p) {
                       if (Distance(options.metric, o.location, p) <=
                               options.eps &&
                           InUpperHalf(o.location, o.id, p, id)) {
                         out.push_back(Canonical(o.id, id));
                       }
                     });
    }
    return;
  }

  // Traditional scheme (SRJ): build the full local index first, then run
  // every object's full-region query. Pairs are produced from both sides
  // and within-cell pairs twice; GridSync deduplicates.
  for (const GridObject& o : cell_objects) {
    if (!o.is_query) tree.Insert(o.location, o.id);
  }
  for (const GridObject& o : cell_objects) {
    tree.QueryRect(Rect::RangeRegion(o.location, options.eps),
                   [&](TrajectoryId id, const Point& p) {
                     if (id != o.id &&
                         Distance(options.metric, o.location, p) <=
                             options.eps) {
                       out.push_back(Canonical(o.id, id));
                     }
                   });
  }
}

std::vector<NeighborPair> GridSync(
    std::vector<std::vector<NeighborPair>> per_cell) {
  std::vector<NeighborPair> out;
  std::size_t total = 0;
  for (const auto& v : per_cell) total += v.size();
  out.reserve(total);
  for (auto& v : per_cell) {
    out.insert(out.end(), v.begin(), v.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// Shared driver: allocate, bucket by cell, per-cell query, sync - all in
/// `scratch`, whose buffers (object vector, cell buckets, R-tree pages,
/// result vector) carry their capacity from snapshot to snapshot. The
/// result lands in scratch.pairs.
void RunJoin(const Snapshot& snapshot, const RangeJoinOptions& options,
             bool use_lemma1, bool use_lemma2, JoinScratch& scratch) {
  COMOVE_CHECK(options.eps > 0.0 && options.grid_cell_width > 0.0);
  GridAllocate(snapshot, options, use_lemma1, scratch.objects);
  // Bucket into the persistent cell map. Buckets left over from earlier
  // snapshots are empty (cleared below), so first-touch marks a cell
  // active; iteration then follows the deterministic active list instead
  // of unordered_map order.
  scratch.active_cells.clear();
  for (GridObject& o : scratch.objects) {
    std::vector<GridObject>& cell = scratch.cells[o.key];
    if (cell.empty()) scratch.active_cells.push_back(o.key);
    cell.push_back(std::move(o));
  }
  if (!scratch.tree.has_value()) scratch.tree.emplace(options.rtree);
  scratch.pairs.clear();
  for (const GridKey& key : scratch.active_cells) {
    std::vector<GridObject>& cell_objects = scratch.cells.find(key)->second;
    GridQuery(cell_objects, options, use_lemma2, *scratch.tree,
              scratch.pairs);
    cell_objects.clear();  // keep the bucket's capacity for the next snapshot
  }
  // GridSync on the merged stream: canonical order + dedup.
  std::sort(scratch.pairs.begin(), scratch.pairs.end());
  scratch.pairs.erase(
      std::unique(scratch.pairs.begin(), scratch.pairs.end()),
      scratch.pairs.end());
}

}  // namespace

std::vector<NeighborPair> RangeJoinRJC(const Snapshot& snapshot,
                                       const RangeJoinOptions& options,
                                       const RangeJoinVariant& variant) {
  JoinScratch scratch;
  RunJoin(snapshot, options, variant.use_lemma1, variant.use_lemma2,
          scratch);
  return std::move(scratch.pairs);
}

const std::vector<NeighborPair>& RangeJoinRJC(
    const Snapshot& snapshot, const RangeJoinOptions& options,
    const RangeJoinVariant& variant, JoinScratch& scratch) {
  RunJoin(snapshot, options, variant.use_lemma1, variant.use_lemma2,
          scratch);
  return scratch.pairs;
}

std::vector<NeighborPair> RangeJoinSRJ(const Snapshot& snapshot,
                                       const RangeJoinOptions& options) {
  JoinScratch scratch;
  RunJoin(snapshot, options, /*use_lemma1=*/false, /*use_lemma2=*/false,
          scratch);
  return std::move(scratch.pairs);
}

const std::vector<NeighborPair>& RangeJoinSRJ(const Snapshot& snapshot,
                                              const RangeJoinOptions& options,
                                              JoinScratch& scratch) {
  RunJoin(snapshot, options, /*use_lemma1=*/false, /*use_lemma2=*/false,
          scratch);
  return scratch.pairs;
}

std::vector<NeighborPair> RangeJoinBrute(const Snapshot& snapshot,
                                         double eps,
                                         DistanceMetric metric) {
  std::vector<NeighborPair> out;
  const auto& e = snapshot.entries;
  for (std::size_t i = 0; i < e.size(); ++i) {
    for (std::size_t j = i + 1; j < e.size(); ++j) {
      if (Distance(metric, e[i].location, e[j].location) <= eps) {
        out.push_back(Canonical(e[i].id, e[j].id));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace comove::cluster
