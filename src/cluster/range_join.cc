#include "cluster/range_join.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace comove::cluster {

std::vector<GridObject> GridAllocate(const Snapshot& snapshot,
                                     const RangeJoinOptions& options,
                                     bool use_lemma1) {
  std::vector<GridObject> out;
  const GridIndex grid(options.grid_cell_width);
  GridAllocate(snapshot, grid, options.eps, use_lemma1, out);
  return out;
}

void GridAllocate(const Snapshot& snapshot, const GridIndex& grid,
                  double eps, bool use_lemma1,
                  std::vector<GridObject>& out) {
  out.clear();
  out.reserve(snapshot.entries.size() * 2);
  for (const SnapshotEntry& e : snapshot.entries) {
    const GridKey home = grid.KeyOf(e.location);
    out.push_back(GridObject{home, /*is_query=*/false, e.id, e.location});
    const Rect region = use_lemma1 ? Rect::UpperRangeRegion(e.location, eps)
                                   : Rect::RangeRegion(e.location, eps);
    grid.ForEachKeyIntersecting(region, [&](const GridKey& key) {
      if (key == home) return;
      out.push_back(GridObject{key, /*is_query=*/true, e.id, e.location});
    });
  }
}

namespace {

/// The literal Algorithm 2: per-object probes of a per-cell R-tree.
void RTreeCellJoin(const std::vector<GridObject>& cell_objects,
                   const RangeJoinOptions& options, bool use_lemma2,
                   RTree& tree, std::vector<NeighborPair>& out) {
  tree.Clear();

  if (use_lemma2) {
    // Pass 1 (Lemma 2): each data object queries the partially built tree
    // and is inserted afterwards; every within-cell pair is produced once,
    // and the index is ready when the pass ends.
    for (const GridObject& o : cell_objects) {
      if (o.is_query) continue;
      tree.QueryRect(Rect::RangeRegion(o.location, options.eps),
                     [&](TrajectoryId id, const Point& p) {
                       if (WithinDistance(options.metric, o.location, p,
                                          options.eps)) {
                         out.push_back(CanonicalPair(o.id, id));
                       }
                     });
      tree.Insert(o.location, o.id);
    }
    // Pass 2: query objects see only their Lemma 1 half-space, so the
    // owning side of each cross-cell pair reports it exactly once.
    for (const GridObject& o : cell_objects) {
      if (!o.is_query) continue;
      tree.QueryRect(Rect::RangeRegion(o.location, options.eps),
                     [&](TrajectoryId id, const Point& p) {
                       if (WithinDistance(options.metric, o.location, p,
                                          options.eps) &&
                           InUpperHalf(o.location, o.id, p, id)) {
                         out.push_back(CanonicalPair(o.id, id));
                       }
                     });
    }
    return;
  }

  // Traditional scheme (SRJ): build the full local index first, then run
  // every object's full-region query. Pairs are produced from both sides
  // and within-cell pairs twice; GridSync deduplicates.
  for (const GridObject& o : cell_objects) {
    if (!o.is_query) tree.Insert(o.location, o.id);
  }
  for (const GridObject& o : cell_objects) {
    tree.QueryRect(Rect::RangeRegion(o.location, options.eps),
                   [&](TrajectoryId id, const Point& p) {
                     if (id != o.id &&
                         WithinDistance(options.metric, o.location, p,
                                        options.eps)) {
                       out.push_back(CanonicalPair(o.id, id));
                     }
                   });
  }
}

}  // namespace

std::vector<NeighborPair> GridQuery(
    const std::vector<GridObject>& cell_objects,
    const RangeJoinOptions& options, bool use_lemma2) {
  std::vector<NeighborPair> out;
  CellQueryScratch scratch;
  GridQuery(cell_objects, options, use_lemma2, scratch, out);
  return out;
}

void GridQuery(const std::vector<GridObject>& cell_objects,
               const RangeJoinOptions& options, bool use_lemma2,
               CellQueryScratch& scratch, std::vector<NeighborPair>& out) {
  if (options.kernel == JoinKernel::kSweep) {
    SweepCellJoin(cell_objects, options.eps, options.metric, use_lemma2,
                  options.simd, scratch.sweep, out);
    return;
  }
  if (!scratch.tree.has_value()) scratch.tree.emplace(options.rtree);
  RTreeCellJoin(cell_objects, options, use_lemma2, *scratch.tree, out);
}

std::vector<NeighborPair> GridSync(
    std::vector<std::vector<NeighborPair>>&& per_cell) {
  std::vector<NeighborPair> out;
  std::size_t total = 0;
  for (const auto& v : per_cell) total += v.size();
  out.reserve(total);
  for (auto& v : per_cell) {
    out.insert(out.end(), v.begin(), v.end());
  }
  SortUniquePairs(out);
  return out;
}

void CellDeltaCache::QueryCell(std::vector<GridObject>& cell_objects,
                               const GridKey& key,
                               const RangeJoinOptions& options,
                               bool use_lemma2, CellQueryScratch& kernel,
                               std::vector<NeighborPair>& out) {
  // Replays may repeat work only the downstream SortUniquePairs (or the
  // Fig. 5 sync stage's sort + unique) would remove anyway, so the merged
  // stream is bit-identical to a full recompute.
  auto it = entries.find(key);
  if (it == entries.end()) {
    Entry fresh;
    if (!pool.empty()) {
      // Recycle an evicted entry's vector capacity for the new cell.
      fresh = std::move(pool.back());
      pool.pop_back();
      fresh.bucket.clear();
      fresh.pairs.clear();
    }
    it = entries.emplace(key, std::move(fresh)).first;
  }
  Entry& entry = it->second;
  ++cells_seen;
  entry.last_used = epoch;
  if (entry.bucket == cell_objects) {
    ++cells_replayed;
  } else {
    entry.pairs.clear();
    GridQuery(cell_objects, options, use_lemma2, kernel, entry.pairs);
    // The bucket becomes the memo key; swapping hands its storage over
    // and leaves the old key's capacity in the caller's bucket for the
    // next snapshot.
    entry.bucket.swap(cell_objects);
  }
  out.insert(out.end(), entry.pairs.begin(), entry.pairs.end());
}

void CellDeltaCache::EndSnapshot() {
  if (epoch % kEvictAfterEpochs != 0) return;
  for (auto it = entries.begin(); it != entries.end();) {
    if (it->second.last_used + kEvictAfterEpochs <= epoch) {
      if (pool.size() < kMaxPooledEntries) {
        pool.push_back(std::move(it->second));
      }
      it = entries.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

/// Shared driver: allocate, bucket by cell, per-cell query, sync - all in
/// `scratch`, whose buffers (object vector, cell buckets, kernel state,
/// result vector) carry their capacity from snapshot to snapshot. The
/// result lands in scratch.pairs.
void RunJoin(const Snapshot& snapshot, const RangeJoinOptions& options,
             bool use_lemma1, bool use_lemma2, JoinScratch& scratch) {
  if (!scratch.grid.has_value()) {
    // First call on this scratch: validate the options and derive the
    // grid geometry once for the whole run.
    COMOVE_CHECK(options.eps > 0.0);
    scratch.grid.emplace(options.grid_cell_width);
  }
  // Once-per-snapshot arena rewind of the sweep kernel's SoA columns.
  scratch.cell.sweep.BeginSnapshot();
  // Fused GridAllocate + bucketing: each object goes straight into its
  // cell's bucket in the persistent map instead of through an
  // intermediate flat vector (same emission order, so every bucket holds
  // the exact sequence the two-phase form produced - the delta cache's
  // bucket memo depends on that). Buckets left over from earlier
  // snapshots are empty (cleared below), so first-touch marks a cell
  // active; iteration then follows the deterministic active list instead
  // of map order.
  scratch.active_cells.clear();
  const GridIndex& grid = *scratch.grid;
  const auto bucket_push = [&scratch](const GridKey& key,
                                      const GridObject& o) {
    std::vector<GridObject>& cell = scratch.cells.BucketFor(key);
    if (cell.empty()) scratch.active_cells.push_back(key);
    cell.push_back(o);
  };
  // OR-fold of the snapshot's ids, a conservative superset of the pair
  // stream's fold: hands SortUniquePairs its radix tier without a scan
  // over the (much longer) pair stream.
  TrajectoryId id_fold = 0;
  for (const SnapshotEntry& e : snapshot.entries) {
    id_fold |= e.id;
    const GridKey home = grid.KeyOf(e.location);
    bucket_push(home, GridObject{home, /*is_query=*/false, e.id, e.location});
    const Rect region = use_lemma1
                            ? Rect::UpperRangeRegion(e.location, options.eps)
                            : Rect::RangeRegion(e.location, options.eps);
    grid.ForEachKeyIntersecting(region, [&](const GridKey& key) {
      if (key == home) return;
      bucket_push(key, GridObject{key, /*is_query=*/true, e.id, e.location});
    });
  }
  scratch.pairs.clear();
  if (options.incremental) scratch.delta.BeginSnapshot();
  for (const GridKey& key : scratch.active_cells) {
    std::vector<GridObject>& cell_objects = scratch.cells.BucketFor(key);
    if (options.incremental) {
      scratch.delta.QueryCell(cell_objects, key, options, use_lemma2,
                              scratch.cell, scratch.pairs);
    } else {
      GridQuery(cell_objects, options, use_lemma2, scratch.cell,
                scratch.pairs);
    }
    cell_objects.clear();  // keep the bucket's capacity for the next snapshot
  }
  if (options.incremental) scratch.delta.EndSnapshot();
  // GridSync on the merged stream: canonical order + dedup.
  SortUniquePairs(scratch.pairs, id_fold, scratch.sort, options.simd);
}

}  // namespace

std::vector<NeighborPair> RangeJoinRJC(const Snapshot& snapshot,
                                       const RangeJoinOptions& options,
                                       const RangeJoinVariant& variant) {
  JoinScratch scratch;
  RunJoin(snapshot, options, variant.use_lemma1, variant.use_lemma2,
          scratch);
  return std::move(scratch.pairs);
}

const std::vector<NeighborPair>& RangeJoinRJC(
    const Snapshot& snapshot, const RangeJoinOptions& options,
    const RangeJoinVariant& variant, JoinScratch& scratch) {
  RunJoin(snapshot, options, variant.use_lemma1, variant.use_lemma2,
          scratch);
  return scratch.pairs;
}

std::vector<NeighborPair> RangeJoinSRJ(const Snapshot& snapshot,
                                       const RangeJoinOptions& options) {
  JoinScratch scratch;
  RunJoin(snapshot, options, /*use_lemma1=*/false, /*use_lemma2=*/false,
          scratch);
  return std::move(scratch.pairs);
}

const std::vector<NeighborPair>& RangeJoinSRJ(const Snapshot& snapshot,
                                              const RangeJoinOptions& options,
                                              JoinScratch& scratch) {
  RunJoin(snapshot, options, /*use_lemma1=*/false, /*use_lemma2=*/false,
          scratch);
  return scratch.pairs;
}

std::vector<NeighborPair> RangeJoinBrute(const Snapshot& snapshot,
                                         double eps,
                                         DistanceMetric metric) {
  std::vector<NeighborPair> out;
  const auto& e = snapshot.entries;
  for (std::size_t i = 0; i < e.size(); ++i) {
    for (std::size_t j = i + 1; j < e.size(); ++j) {
      if (WithinDistance(metric, e[i].location, e[j].location, eps)) {
        out.push_back(CanonicalPair(e[i].id, e[j].id));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace comove::cluster
