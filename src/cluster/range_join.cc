#include "cluster/range_join.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace comove::cluster {

namespace {

NeighborPair Canonical(TrajectoryId a, TrajectoryId b) {
  return a < b ? NeighborPair{a, b} : NeighborPair{b, a};
}

/// Lemma 1 half-space predicate: `v` lies in the half of `q`'s range
/// region that q is responsible for. Strictly above; ties on y broken by
/// x, ties on both by id, so every cross-cell pair is claimed by exactly
/// one side even for coincident coordinates.
bool InUpperHalf(const Point& q, TrajectoryId q_id, const Point& v,
                 TrajectoryId v_id) {
  if (v.y != q.y) return v.y > q.y;
  if (v.x != q.x) return v.x > q.x;
  return v_id > q_id;
}

}  // namespace

std::vector<GridObject> GridAllocate(const Snapshot& snapshot,
                                     const RangeJoinOptions& options,
                                     bool use_lemma1) {
  const GridIndex grid(options.grid_cell_width);
  std::vector<GridObject> out;
  out.reserve(snapshot.entries.size() * 2);
  for (const SnapshotEntry& e : snapshot.entries) {
    const GridKey home = grid.KeyOf(e.location);
    out.push_back(GridObject{home, /*is_query=*/false, e.id, e.location});
    const Rect region =
        use_lemma1 ? Rect::UpperRangeRegion(e.location, options.eps)
                   : Rect::RangeRegion(e.location, options.eps);
    for (const GridKey& key : grid.KeysIntersecting(region)) {
      if (key == home) continue;
      out.push_back(GridObject{key, /*is_query=*/true, e.id, e.location});
    }
  }
  return out;
}

std::vector<NeighborPair> GridQuery(
    const std::vector<GridObject>& cell_objects,
    const RangeJoinOptions& options, bool use_lemma2) {
  std::vector<NeighborPair> out;
  RTree tree(options.rtree);

  if (use_lemma2) {
    // Pass 1 (Lemma 2): each data object queries the partially built tree
    // and is inserted afterwards; every within-cell pair is produced once,
    // and the index is ready when the pass ends.
    for (const GridObject& o : cell_objects) {
      if (o.is_query) continue;
      tree.QueryRect(Rect::RangeRegion(o.location, options.eps),
                     [&](TrajectoryId id, const Point& p) {
                       if (Distance(options.metric, o.location, p) <=
                           options.eps) {
                         out.push_back(Canonical(o.id, id));
                       }
                     });
      tree.Insert(o.location, o.id);
    }
    // Pass 2: query objects see only their Lemma 1 half-space, so the
    // owning side of each cross-cell pair reports it exactly once.
    for (const GridObject& o : cell_objects) {
      if (!o.is_query) continue;
      tree.QueryRect(Rect::RangeRegion(o.location, options.eps),
                     [&](TrajectoryId id, const Point& p) {
                       if (Distance(options.metric, o.location, p) <=
                               options.eps &&
                           InUpperHalf(o.location, o.id, p, id)) {
                         out.push_back(Canonical(o.id, id));
                       }
                     });
    }
    return out;
  }

  // Traditional scheme (SRJ): build the full local index first, then run
  // every object's full-region query. Pairs are produced from both sides
  // and within-cell pairs twice; GridSync deduplicates.
  for (const GridObject& o : cell_objects) {
    if (!o.is_query) tree.Insert(o.location, o.id);
  }
  for (const GridObject& o : cell_objects) {
    tree.QueryRect(Rect::RangeRegion(o.location, options.eps),
                   [&](TrajectoryId id, const Point& p) {
                     if (id != o.id &&
                         Distance(options.metric, o.location, p) <=
                             options.eps) {
                       out.push_back(Canonical(o.id, id));
                     }
                   });
  }
  return out;
}

std::vector<NeighborPair> GridSync(
    std::vector<std::vector<NeighborPair>> per_cell) {
  std::vector<NeighborPair> out;
  std::size_t total = 0;
  for (const auto& v : per_cell) total += v.size();
  out.reserve(total);
  for (auto& v : per_cell) {
    out.insert(out.end(), v.begin(), v.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// Shared driver: allocate, bucket by cell, per-cell query, sync.
std::vector<NeighborPair> RunJoin(const Snapshot& snapshot,
                                  const RangeJoinOptions& options,
                                  bool use_lemma1, bool use_lemma2) {
  COMOVE_CHECK(options.eps > 0.0 && options.grid_cell_width > 0.0);
  const std::vector<GridObject> objects =
      GridAllocate(snapshot, options, use_lemma1);
  std::unordered_map<GridKey, std::vector<GridObject>, GridKeyHash> cells;
  for (const GridObject& o : objects) {
    cells[o.key].push_back(o);
  }
  std::vector<std::vector<NeighborPair>> per_cell;
  per_cell.reserve(cells.size());
  for (auto& [key, cell_objects] : cells) {
    per_cell.push_back(GridQuery(cell_objects, options, use_lemma2));
  }
  return GridSync(std::move(per_cell));
}

}  // namespace

std::vector<NeighborPair> RangeJoinRJC(const Snapshot& snapshot,
                                       const RangeJoinOptions& options,
                                       const RangeJoinVariant& variant) {
  return RunJoin(snapshot, options, variant.use_lemma1, variant.use_lemma2);
}

std::vector<NeighborPair> RangeJoinSRJ(const Snapshot& snapshot,
                                       const RangeJoinOptions& options) {
  return RunJoin(snapshot, options, /*use_lemma1=*/false,
                 /*use_lemma2=*/false);
}

std::vector<NeighborPair> RangeJoinBrute(const Snapshot& snapshot,
                                         double eps,
                                         DistanceMetric metric) {
  std::vector<NeighborPair> out;
  const auto& e = snapshot.entries;
  for (std::size_t i = 0; i < e.size(); ++i) {
    for (std::size_t j = i + 1; j < e.size(); ++j) {
      if (Distance(metric, e[i].location, e[j].location) <= eps) {
        out.push_back(Canonical(e[i].id, e[j].id));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace comove::cluster
