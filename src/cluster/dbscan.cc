#include "cluster/dbscan.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace comove::cluster {

ClusterSnapshot DbscanFromNeighbors(const Snapshot& snapshot,
                                    const std::vector<NeighborPair>& pairs,
                                    const DbscanOptions& options) {
  DbscanScratch scratch;
  return DbscanFromNeighbors(snapshot, pairs, options, scratch);
}

ClusterSnapshot DbscanFromNeighbors(const Snapshot& snapshot,
                                    const std::vector<NeighborPair>& pairs,
                                    const DbscanOptions& options,
                                    DbscanScratch& scratch) {
  COMOVE_CHECK(options.min_pts >= 1);
  const std::size_t n = snapshot.entries.size();

  // One arena rewind per call; every buffer below re-reserves its full
  // footprint in a single bump (sizes are all known up front).
  scratch.BeginSnapshot();
  Arena& arena = scratch.arena;

  // Dense indexing of the snapshot's trajectory ids: a sorted flat table
  // instead of a hash map, so lookups are cache-friendly binary searches
  // and the table's arena footprint survives across snapshots.
  auto& interner = scratch.interner;
  interner.Reserve(arena, n);
  for (std::size_t i = 0; i < n; ++i) {
    interner.PushBack(
        DbscanIdIndex{snapshot.entries[i].id, static_cast<std::int32_t>(i)});
  }
  std::sort(interner.begin(), interner.end(),
            [](const DbscanIdIndex& a, const DbscanIdIndex& b) {
              return a.id < b.id;
            });
  for (std::size_t i = 1; i < n; ++i) {
    COMOVE_CHECK_MSG(interner[i].id != interner[i - 1].id,
                     "duplicate trajectory in snapshot");
  }
  const auto index_of = [&interner](TrajectoryId id) {
    const auto it = std::lower_bound(
        interner.begin(), interner.end(), id,
        [](const DbscanIdIndex& e, TrajectoryId v) { return e.id < v; });
    COMOVE_CHECK_MSG(it != interner.end() && it->id == id,
                     "join pair references id outside the snapshot");
    return it->index;
  };

  // Intern the pair endpoints once; both CSR passes below reuse them.
  auto& edges = scratch.edges;
  edges.Reserve(arena, pairs.size());
  for (const NeighborPair& p : pairs) {
    edges.PushBack(DbscanEdge{index_of(p.a), index_of(p.b)});
  }

  // CSR adjacency via two-pass counting sort: degree count, prefix sum,
  // fill. Each node's neighbours land in pair-list order - the order the
  // vector-of-vectors build produced - so traversal is unchanged.
  auto& offsets = scratch.offsets;
  offsets.Assign(arena, n + 1, 0);
  for (const auto& [a, b] : edges) {
    ++offsets[static_cast<std::size_t>(a) + 1];
    ++offsets[static_cast<std::size_t>(b) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
  auto& cursor = scratch.cursor;
  cursor.Resize(arena, n);
  if (n != 0) {
    std::memcpy(cursor.data(), offsets.data(), n * sizeof(std::int32_t));
  }
  auto& adjacency = scratch.adjacency;
  adjacency.Resize(arena, 2 * edges.size());
  for (const auto& [a, b] : edges) {
    adjacency[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(a)]++)] = b;
    adjacency[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(b)]++)] = a;
  }

  // Core test: |neighbourhood| = degree + 1 (the point itself counts).
  auto& core = scratch.core;
  core.Resize(arena, n);
  for (std::size_t i = 0; i < n; ++i) {
    core[i] = offsets[i + 1] - offsets[i] + 1 >= options.min_pts ? 1 : 0;
  }

  // Expand clusters: BFS over core-core edges; border points (non-core
  // within eps of a core) join the first cluster that reaches them.
  constexpr std::int32_t kUnassigned = -1;
  auto& cluster_of = scratch.cluster_of;
  cluster_of.Assign(arena, n, kUnassigned);
  std::int32_t next_cluster = 0;
  auto& frontier = scratch.frontier;
  // Each node enters a frontier at most once across all seeds (assignment
  // happens before the push), so capacity n covers every BFS.
  frontier.Reserve(arena, n);
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (!core[seed] || cluster_of[seed] != kUnassigned) continue;
    const std::int32_t cid = next_cluster++;
    cluster_of[seed] = cid;
    frontier.Clear();
    frontier.PushBack(static_cast<std::int32_t>(seed));
    while (!frontier.empty()) {
      const auto u = static_cast<std::size_t>(frontier.Back());
      frontier.PopBack();
      const std::int32_t end = offsets[u + 1];
      for (std::int32_t e = offsets[u]; e < end; ++e) {
        const std::int32_t vi = adjacency[static_cast<std::size_t>(e)];
        const auto v = static_cast<std::size_t>(vi);
        if (cluster_of[v] != kUnassigned) continue;
        cluster_of[v] = cid;
        if (core[v]) frontier.PushBack(vi);
      }
    }
  }

  // Materialise cluster member lists.
  std::vector<Cluster> clusters(static_cast<std::size_t>(next_cluster));
  for (std::int32_t c = 0; c < next_cluster; ++c) {
    clusters[static_cast<std::size_t>(c)].cluster_id = c;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster_of[i] != kUnassigned) {
      clusters[static_cast<std::size_t>(cluster_of[i])].members.push_back(
          snapshot.entries[i].id);
    }
  }
  for (Cluster& c : clusters) {
    std::sort(c.members.begin(), c.members.end());
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.members.front() < b.members.front();
            });
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    clusters[c].cluster_id = static_cast<std::int32_t>(c);
  }

  ClusterSnapshot out;
  out.time = snapshot.time;
  out.clusters = std::move(clusters);
  return out;
}

namespace {

/// True when the memoised inputs match this snapshot exactly. The id
/// comparison is order-sensitive because seed order (= entry order)
/// decides which cluster claims a border point reachable from several.
bool MemoMatches(const DbscanMemo& memo, const Snapshot& snapshot,
                 const std::vector<NeighborPair>& pairs,
                 const DbscanOptions& options) {
  if (!memo.valid || memo.min_pts != options.min_pts) return false;
  if (memo.ids.size() != snapshot.entries.size()) return false;
  for (std::size_t i = 0; i < memo.ids.size(); ++i) {
    if (memo.ids[i] != snapshot.entries[i].id) return false;
  }
  return memo.pairs == pairs;
}

}  // namespace

ClusterSnapshot DbscanFromNeighborsCached(
    const Snapshot& snapshot, const std::vector<NeighborPair>& pairs,
    const DbscanOptions& options, DbscanScratch& scratch, DbscanMemo& memo) {
  if (MemoMatches(memo, snapshot, pairs, options)) {
    ++memo.replays;
    ClusterSnapshot out;
    out.time = snapshot.time;
    out.clusters = memo.clusters;
    return out;
  }
  ClusterSnapshot out = DbscanFromNeighbors(snapshot, pairs, options, scratch);
  memo.valid = true;
  memo.min_pts = options.min_pts;
  memo.ids.clear();
  memo.ids.reserve(snapshot.entries.size());
  for (const SnapshotEntry& e : snapshot.entries) memo.ids.push_back(e.id);
  memo.pairs = pairs;
  memo.clusters = out.clusters;
  return out;
}

}  // namespace comove::cluster
