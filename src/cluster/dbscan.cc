#include "cluster/dbscan.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace comove::cluster {

ClusterSnapshot DbscanFromNeighbors(const Snapshot& snapshot,
                                    const std::vector<NeighborPair>& pairs,
                                    const DbscanOptions& options) {
  COMOVE_CHECK(options.min_pts >= 1);
  const std::size_t n = snapshot.entries.size();

  // Dense indexing of the snapshot's trajectory ids.
  std::unordered_map<TrajectoryId, std::int32_t> index_of;
  index_of.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool inserted =
        index_of.emplace(snapshot.entries[i].id, static_cast<std::int32_t>(i))
            .second;
    COMOVE_CHECK_MSG(inserted, "duplicate trajectory in snapshot");
  }

  // Adjacency from the join output.
  std::vector<std::vector<std::int32_t>> adjacency(n);
  for (const NeighborPair& p : pairs) {
    const auto ia = index_of.find(p.a);
    const auto ib = index_of.find(p.b);
    COMOVE_CHECK_MSG(ia != index_of.end() && ib != index_of.end(),
                     "join pair references id outside the snapshot");
    adjacency[static_cast<std::size_t>(ia->second)].push_back(ib->second);
    adjacency[static_cast<std::size_t>(ib->second)].push_back(ia->second);
  }

  // Core test: |neighbourhood| = degree + 1 (the point itself counts).
  std::vector<bool> core(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    core[i] = static_cast<std::int32_t>(adjacency[i].size()) + 1 >=
              options.min_pts;
  }

  // Expand clusters: BFS over core-core edges; border points (non-core
  // within eps of a core) join the first cluster that reaches them.
  constexpr std::int32_t kUnassigned = -1;
  std::vector<std::int32_t> cluster_of(n, kUnassigned);
  std::int32_t next_cluster = 0;
  std::vector<std::int32_t> frontier;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (!core[seed] || cluster_of[seed] != kUnassigned) continue;
    const std::int32_t cid = next_cluster++;
    cluster_of[seed] = cid;
    frontier.assign(1, static_cast<std::int32_t>(seed));
    while (!frontier.empty()) {
      const auto u = static_cast<std::size_t>(frontier.back());
      frontier.pop_back();
      for (const std::int32_t vi : adjacency[u]) {
        const auto v = static_cast<std::size_t>(vi);
        if (cluster_of[v] != kUnassigned) continue;
        cluster_of[v] = cid;
        if (core[v]) frontier.push_back(vi);
      }
    }
  }

  // Materialise cluster member lists.
  std::vector<Cluster> clusters(static_cast<std::size_t>(next_cluster));
  for (std::int32_t c = 0; c < next_cluster; ++c) {
    clusters[static_cast<std::size_t>(c)].cluster_id = c;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster_of[i] != kUnassigned) {
      clusters[static_cast<std::size_t>(cluster_of[i])].members.push_back(
          snapshot.entries[i].id);
    }
  }
  for (Cluster& c : clusters) {
    std::sort(c.members.begin(), c.members.end());
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.members.front() < b.members.front();
            });
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    clusters[c].cluster_id = static_cast<std::int32_t>(c);
  }

  ClusterSnapshot out;
  out.time = snapshot.time;
  out.clusters = std::move(clusters);
  return out;
}

}  // namespace comove::cluster
