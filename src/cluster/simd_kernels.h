#ifndef COMOVE_CLUSTER_SIMD_KERNELS_H_
#define COMOVE_CLUSTER_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/types.h"

/// \file
/// AVX2 fast paths of the sweep join kernel and the radix sort, defined
/// in join_kernel_avx2.cc - the only translation unit compiled with
/// -mavx2. Everything crossing this boundary is raw pointers and PODs on
/// purpose: per-file SIMD flags leak through ODR-merged inline functions
/// and template instantiations (the linker keeps ONE copy of
/// vector::push_back and friends, possibly the AVX2-compiled one, which
/// would crash scalar callers on pre-AVX2 hardware). The AVX2 TU
/// therefore touches no std containers and no shared inline helpers; it
/// re-derives the few predicates it needs with internal linkage, and
/// emits pairs through the PairSink flush callback below.
///
/// Callers must consult cluster::ResolveSimdLevel (join_kernel.h) before
/// calling any *Avx2 function; calling them on a CPU without AVX2 is
/// undefined (illegal instruction).

namespace comove::cluster::simd {

/// One role's sorted SoA columns (x[i], y[i], id[i]), sorted by
/// (y, x, id). Pointers come from 32-byte-aligned arena storage.
struct ColumnsView {
  const double* x;
  const double* y;
  const TrajectoryId* id;
  std::size_t n;
};

/// Fixed-capacity pair buffer the kernels write into; `flush` (defined in
/// a scalar TU) drains it into the caller's result vector when full and
/// once more after the kernel returns.
struct PairSink {
  NeighborPair* buf;
  std::size_t size;
  std::size_t capacity;
  void* ctx;
  void (*flush)(void* ctx, const NeighborPair* buf, std::size_t n);
};

/// True when the AVX2 kernels were compiled into this binary (x86 build
/// with -mavx2 available and COMOVE_DISABLE_AVX2 off).
bool Avx2CompiledIn();

/// Data-data sweep (Lemma 2 analogue): for every j pairs d[j] with the
/// surviving predecessors in its eps window. `cand` needs room for
/// d.n + 4 indices (mask-compress stores whole lanes). Appends
/// canonicalised pairs through `sink`. Identical pair set, order, and
/// boundary behaviour as the scalar loop in join_kernel.cc.
void SweepDataDataAvx2(const ColumnsView& d, double eps, bool l1,
                       std::uint32_t* cand, PairSink& sink);

/// Query-data sweep: pairs each query object with the data objects of its
/// window, applying the Lemma 1 half-space predicate when `use_lemma2`
/// (RJC) and the full range region otherwise (SRJ). Same contract as
/// SweepDataDataAvx2 otherwise.
void SweepQueryDataAvx2(const ColumnsView& d, const ColumnsView& q,
                        double eps, bool l1, bool use_lemma2,
                        std::uint32_t* cand, PairSink& sink);

/// Pack + histogram pass of SortUniquePairs' wide radix tier: packs four
/// pairs per iteration into 64-bit keys with AVX2, stores them to `keys`,
/// and accumulates the four 16-bit digit histograms. `counts` points at
/// 4 * 65536 zeroed slots (field f at counts + f * 65536).
void PackWideHistogramsAvx2(const NeighborPair* pairs, std::size_t n,
                            std::uint64_t* keys, std::uint32_t* counts);

}  // namespace comove::cluster::simd

#endif  // COMOVE_CLUSTER_SIMD_KERNELS_H_
