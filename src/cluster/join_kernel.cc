#include "cluster/join_kernel.h"

#include <algorithm>

namespace comove::cluster {

const char* JoinKernelName(JoinKernel kernel) {
  switch (kernel) {
    case JoinKernel::kRTree:
      return "rtree";
    case JoinKernel::kSweep:
      return "sweep";
  }
  return "unknown";
}

namespace {

/// Gathers the objects of one role into sorted SoA columns: indices are
/// collected, sorted by (y, x, id), then scattered into the flat arrays -
/// the only indirection the kernel pays; both sweeps below run over
/// contiguous memory.
void BuildSortedColumns(const std::vector<GridObject>& objects,
                        bool want_query, std::vector<std::uint32_t>& order,
                        std::vector<double>& x, std::vector<double>& y,
                        std::vector<TrajectoryId>& id) {
  order.clear();
  for (std::uint32_t i = 0; i < objects.size(); ++i) {
    if (objects[i].is_query == want_query) order.push_back(i);
  }
  std::sort(order.begin(), order.end(),
            [&objects](std::uint32_t a, std::uint32_t b) {
              const GridObject& oa = objects[a];
              const GridObject& ob = objects[b];
              if (oa.location.y != ob.location.y) {
                return oa.location.y < ob.location.y;
              }
              if (oa.location.x != ob.location.x) {
                return oa.location.x < ob.location.x;
              }
              return oa.id < ob.id;
            });
  x.clear();
  y.clear();
  id.clear();
  x.reserve(order.size());
  y.reserve(order.size());
  id.reserve(order.size());
  for (const std::uint32_t i : order) {
    x.push_back(objects[i].location.x);
    y.push_back(objects[i].location.y);
    id.push_back(objects[i].id);
  }
}

}  // namespace

void SweepCellJoin(const std::vector<GridObject>& cell_objects, double eps,
                   DistanceMetric metric, bool use_lemma2,
                   SweepCell& scratch, std::vector<NeighborPair>& out) {
  BuildSortedColumns(cell_objects, /*want_query=*/false, scratch.order,
                     scratch.data_x, scratch.data_y, scratch.data_id);
  BuildSortedColumns(cell_objects, /*want_query=*/true, scratch.order,
                     scratch.query_x, scratch.query_y, scratch.query_id);
  const std::vector<double>& dx = scratch.data_x;
  const std::vector<double>& dy = scratch.data_y;
  const std::vector<TrajectoryId>& did = scratch.data_id;
  const std::size_t nd = did.size();
  const std::size_t nq = scratch.query_id.size();

  // Data-data sweep. Pairing each object only with sorted predecessors is
  // the sweep analogue of Lemma 2's query-before-insert: every pair shows
  // up exactly once. The window bound (y >= o.y - eps) and the x band use
  // the arithmetic of Rect::RangeRegion/Contains, followed by the same
  // WithinDistance refinement, so the candidate filter chain matches the
  // R-tree path's.
  for (std::size_t j = 1; j < nd; ++j) {
    const Point pj{dx[j], dy[j]};
    const double min_y = pj.y - eps;
    const double min_x = pj.x - eps;
    const double max_x = pj.x + eps;
    for (std::size_t i = j; i-- > 0;) {
      if (dy[i] < min_y) break;  // sorted: everything below is out too
      if (dx[i] < min_x || dx[i] > max_x) continue;
      if (!WithinDistance(metric, pj, Point{dx[i], dy[i]}, eps)) continue;
      out.push_back(CanonicalPair(did[i], did[j]));
    }
  }

  if (nd == 0) return;

  // Query-data sweep. Queries ascend in y, so the window start `lo` only
  // ever advances - a classic merge between the two sorted columns.
  std::size_t lo = 0;
  for (std::size_t q = 0; q < nq; ++q) {
    const Point pq{scratch.query_x[q], scratch.query_y[q]};
    const TrajectoryId qid = scratch.query_id[q];
    const double max_y = pq.y + eps;
    const double min_x = pq.x - eps;
    const double max_x = pq.x + eps;
    if (use_lemma2) {
      // Lemma 1: only data at y >= q.y can be in q's upper half-space.
      while (lo < nd && dy[lo] < pq.y) ++lo;
      for (std::size_t k = lo; k < nd && dy[k] <= max_y; ++k) {
        if (dx[k] < min_x || dx[k] > max_x) continue;
        const Point pd{dx[k], dy[k]};
        if (!InUpperHalf(pq, qid, pd, did[k])) continue;
        if (!WithinDistance(metric, pq, pd, eps)) continue;
        out.push_back(CanonicalPair(qid, did[k]));
      }
    } else {
      // SRJ scheme: the full range region, duplicates removed at sync.
      const double min_y = pq.y - eps;
      while (lo < nd && dy[lo] < min_y) ++lo;
      for (std::size_t k = lo; k < nd && dy[k] <= max_y; ++k) {
        if (dx[k] < min_x || dx[k] > max_x) continue;
        const Point pd{dx[k], dy[k]};
        if (!WithinDistance(metric, pq, pd, eps)) continue;
        out.push_back(CanonicalPair(qid, did[k]));
      }
    }
  }
}

namespace {

/// Below this, comparison sort wins over the radix passes' fixed cost
/// (histogram memory touches dominate tiny inputs).
constexpr std::size_t kRadixMinPairs = 4096;
constexpr std::size_t kRadixBuckets = 1u << 16;

/// Lexicographic (a, b) order as one unsigned 64-bit key; order-preserving
/// only when both ids are non-negative AND fit in 32 bits (callers check).
/// The casts below truncate wider ids, which would silently scramble the
/// radix order, so SortUniquePairs gates on the id range first.
inline std::uint64_t PackedKey(const NeighborPair& p) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.a)) << 32) |
         static_cast<std::uint32_t>(p.b);
}

}  // namespace

void SortUniquePairs(std::vector<NeighborPair>& pairs,
                     std::vector<NeighborPair>& tmp) {
  const std::size_t n = pairs.size();
  bool radixable = n >= kRadixMinPairs;
  if (radixable) {
    // OR-fold of every id: a negative id sets the sign bit, an id above
    // 2^32 sets a bit in [32, 63) - either disqualifies the packed key
    // (PackedKey truncates each id to 32 bits).
    TrajectoryId any = 0;
    for (const NeighborPair& p : pairs) any |= p.a | p.b;
    radixable = any >= 0 && (any >> 32) == 0;
  }
  if (!radixable) {
    std::sort(pairs.begin(), pairs.end());
  } else {
    // LSD radix over four 16-bit digits: each pass is a stable counting
    // sort, so the final order is exactly the lexicographic order the
    // comparison sort produces. All four histograms come from one data
    // pass; a pass whose digit is constant (common - ids rarely exceed
    // 16 bits) is the identity and is skipped.
    tmp.resize(n);
    std::vector<std::uint32_t> counts(4 * kRadixBuckets, 0);
    for (const NeighborPair& p : pairs) {
      const std::uint64_t key = PackedKey(p);
      ++counts[key & 0xFFFF];
      ++counts[kRadixBuckets + ((key >> 16) & 0xFFFF)];
      ++counts[2 * kRadixBuckets + ((key >> 32) & 0xFFFF)];
      ++counts[3 * kRadixBuckets + (key >> 48)];
    }
    NeighborPair* src = pairs.data();
    NeighborPair* dst = tmp.data();
    for (int pass = 0; pass < 4; ++pass) {
      std::uint32_t* cursor = counts.data() + pass * kRadixBuckets;
      const int shift = 16 * pass;
      // Digits are permutation-invariant, so the histogram stays valid no
      // matter which buffer currently holds the data.
      if (cursor[(PackedKey(src[0]) >> shift) & 0xFFFF] == n) continue;
      std::uint32_t sum = 0;
      for (std::size_t b = 0; b < kRadixBuckets; ++b) {
        const std::uint32_t count = cursor[b];
        cursor[b] = sum;
        sum += count;
      }
      for (std::size_t i = 0; i < n; ++i) {
        dst[cursor[(PackedKey(src[i]) >> shift) & 0xFFFF]++] = src[i];
      }
      std::swap(src, dst);
    }
    if (src != pairs.data()) std::copy(src, src + n, pairs.data());
  }
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
}

}  // namespace comove::cluster
