#include "cluster/join_kernel.h"

#include <algorithm>
#include <cstring>

#include "cluster/simd_kernels.h"

namespace comove::cluster {

const char* JoinKernelName(JoinKernel kernel) {
  switch (kernel) {
    case JoinKernel::kRTree:
      return "rtree";
    case JoinKernel::kSweep:
      return "sweep";
  }
  return "unknown";
}

bool SimdKernelsAvailable() {
  return simd::Avx2CompiledIn() && GetCpuFeatures().avx2;
}

SimdLevel ResolveSimdLevel(SimdLevel requested) {
  if (requested == SimdLevel::kScalar) return SimdLevel::kScalar;
  const bool avx2_ok = SimdKernelsAvailable();
  if (requested == SimdLevel::kAvx2) {
    return avx2_ok ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  }
  if (GetCpuFeatures().force_scalar) return SimdLevel::kScalar;
  return avx2_ok ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

#if !defined(COMOVE_HAVE_AVX2_KERNELS)
// Stubs for builds without the AVX2 TU (COMOVE_DISABLE_AVX2, non-x86, or
// a compiler without -mavx2). ResolveSimdLevel never returns kAvx2 then,
// so the kernel entry points are unreachable.
namespace simd {
bool Avx2CompiledIn() { return false; }
void SweepDataDataAvx2(const ColumnsView&, double, bool, std::uint32_t*,
                       PairSink&) {
  COMOVE_CHECK(false);
}
void SweepQueryDataAvx2(const ColumnsView&, const ColumnsView&, double, bool,
                        bool, std::uint32_t*, PairSink&) {
  COMOVE_CHECK(false);
}
void PackWideHistogramsAvx2(const NeighborPair*, std::size_t,
                            std::uint64_t*, std::uint32_t*) {
  COMOVE_CHECK(false);
}
}  // namespace simd
#endif  // !COMOVE_HAVE_AVX2_KERNELS

namespace {

/// Gathers the objects of one role into y-sorted SoA columns: (y, x, id)
/// records are copied out contiguously, sorted, then scattered into the
/// flat arrays. Sorting the compact records (instead of indices into the
/// GridObject vector) keeps every comparison inside memory the sort is
/// already streaming. The comparator looks at y alone: the sweeps only
/// need the window invariant (y ascending), and the emitted pair SET is
/// invariant under tie order - the data-data sweep pairs positions i < j
/// whatever the tie permutation, the query-data sweep filters by
/// coordinate predicates, and downstream SortUniquePairs canonicalises
/// the order - so breaking ties by x and id would buy nothing and cost
/// two extra compares per comparison.
void BuildSortedColumns(const std::vector<GridObject>& objects,
                        bool want_query, Arena& arena,
                        ArenaVector<SweepSortRec>& recs,
                        ArenaVector<double>& x, ArenaVector<double>& y,
                        ArenaVector<TrajectoryId>& id) {
  recs.Clear();
  recs.Reserve(arena, objects.size());
  for (const GridObject& o : objects) {
    if (o.is_query == want_query) {
      recs.PushBack(SweepSortRec{o.location.y, o.location.x, o.id});
    }
  }
  std::sort(recs.begin(), recs.end(),
            [](const SweepSortRec& a, const SweepSortRec& b) {
              return a.y < b.y;
            });
  x.Clear();
  y.Clear();
  id.Clear();
  x.Reserve(arena, recs.size());
  y.Reserve(arena, recs.size());
  id.Reserve(arena, recs.size());
  for (const SweepSortRec& rec : recs) {
    x.PushBack(rec.x);
    y.PushBack(rec.y);
    id.PushBack(rec.id);
  }
}

/// PairSink staging capacity: 2048 pairs (32 KiB) stays cache-resident
/// while amortising the flush indirection to nothing.
constexpr std::size_t kPairSinkPairs = 2048;

void FlushPairsToVector(void* ctx, const NeighborPair* buf, std::size_t n) {
  auto* out = static_cast<std::vector<NeighborPair>*>(ctx);
  out->insert(out->end(), buf, buf + n);
}

/// The scalar reference sweeps. Both run the ascending two-pointer window
/// form (the window start `lo` only advances because the y columns are
/// sorted and the window bound is monotone in the outer index) - the same
/// shape the AVX2 kernels chunk into 4-wide lanes, so the two paths visit
/// candidates in the same order with the same filter chain.
void ScalarSweep(const SweepCell& s, double eps, DistanceMetric metric,
                 bool use_lemma2, std::vector<NeighborPair>& out) {
  const double* dx = s.data_x.data();
  const double* dy = s.data_y.data();
  const TrajectoryId* did = s.data_id.data();
  const std::size_t nd = s.data_id.size();
  const std::size_t nq = s.query_id.size();

  // Data-data sweep. Pairing each object only with sorted predecessors is
  // the sweep analogue of Lemma 2's query-before-insert: every pair shows
  // up exactly once. The window bound (y >= o.y - eps) and the x band use
  // the arithmetic of Rect::RangeRegion/Contains, followed by the same
  // WithinDistance refinement, so the candidate filter chain matches the
  // R-tree path's.
  std::size_t dlo = 0;
  for (std::size_t j = 1; j < nd; ++j) {
    const Point pj{dx[j], dy[j]};
    const double min_y = pj.y - eps;
    while (dlo < j && dy[dlo] < min_y) ++dlo;
    const double min_x = pj.x - eps;
    const double max_x = pj.x + eps;
    for (std::size_t i = dlo; i < j; ++i) {
      if (dx[i] < min_x || dx[i] > max_x) continue;
      if (!WithinDistance(metric, pj, Point{dx[i], dy[i]}, eps)) continue;
      out.push_back(CanonicalPair(did[i], did[j]));
    }
  }

  if (nd == 0) return;

  // Query-data sweep. Queries ascend in y, so the window start `lo` only
  // ever advances - a classic merge between the two sorted columns.
  std::size_t lo = 0;
  for (std::size_t q = 0; q < nq; ++q) {
    const Point pq{s.query_x[q], s.query_y[q]};
    const TrajectoryId qid = s.query_id[q];
    const double max_y = pq.y + eps;
    const double min_x = pq.x - eps;
    const double max_x = pq.x + eps;
    if (use_lemma2) {
      // Lemma 1: only data at y >= q.y can be in q's upper half-space.
      while (lo < nd && dy[lo] < pq.y) ++lo;
      for (std::size_t k = lo; k < nd && dy[k] <= max_y; ++k) {
        if (dx[k] < min_x || dx[k] > max_x) continue;
        const Point pd{dx[k], dy[k]};
        if (!InUpperHalf(pq, qid, pd, did[k])) continue;
        if (!WithinDistance(metric, pq, pd, eps)) continue;
        out.push_back(CanonicalPair(qid, did[k]));
      }
    } else {
      // SRJ scheme: the full range region, duplicates removed at sync.
      const double min_y = pq.y - eps;
      while (lo < nd && dy[lo] < min_y) ++lo;
      for (std::size_t k = lo; k < nd && dy[k] <= max_y; ++k) {
        if (dx[k] < min_x || dx[k] > max_x) continue;
        const Point pd{dx[k], dy[k]};
        if (!WithinDistance(metric, pq, pd, eps)) continue;
        out.push_back(CanonicalPair(qid, did[k]));
      }
    }
  }
}

void Avx2Sweep(SweepCell& s, double eps, DistanceMetric metric,
               bool use_lemma2, std::vector<NeighborPair>& out) {
  const std::size_t nd = s.data_id.size();
  // A window never exceeds the data column; the compress store writes
  // whole 4-lane groups, so give the survivor buffer 4 slack slots.
  s.cand.Reserve(s.arena, nd + 4);
  s.pair_buf.Reserve(s.arena, kPairSinkPairs);
  simd::PairSink sink{s.pair_buf.data(), 0, kPairSinkPairs, &out,
                      &FlushPairsToVector};
  const simd::ColumnsView d{s.data_x.data(), s.data_y.data(),
                            s.data_id.data(), nd};
  const simd::ColumnsView q{s.query_x.data(), s.query_y.data(),
                            s.query_id.data(), s.query_id.size()};
  const bool l1 = metric == DistanceMetric::kL1;
  simd::SweepDataDataAvx2(d, eps, l1, s.cand.data(), sink);
  simd::SweepQueryDataAvx2(d, q, eps, l1, use_lemma2, s.cand.data(), sink);
  if (sink.size != 0) sink.flush(sink.ctx, sink.buf, sink.size);
}

}  // namespace

void SweepCellJoin(const std::vector<GridObject>& cell_objects, double eps,
                   DistanceMetric metric, bool use_lemma2, SimdLevel simd,
                   SweepCell& scratch, std::vector<NeighborPair>& out) {
  BuildSortedColumns(cell_objects, /*want_query=*/false, scratch.arena,
                     scratch.sort_recs, scratch.data_x, scratch.data_y,
                     scratch.data_id);
  BuildSortedColumns(cell_objects, /*want_query=*/true, scratch.arena,
                     scratch.sort_recs, scratch.query_x, scratch.query_y,
                     scratch.query_id);
  if (ResolveSimdLevel(simd) == SimdLevel::kAvx2) {
    Avx2Sweep(scratch, eps, metric, use_lemma2, out);
  } else {
    ScalarSweep(scratch, eps, metric, use_lemma2, out);
  }
}

namespace {

/// Below this, comparison sort wins over the radix passes' fixed cost
/// (histogram memory touches dominate tiny inputs).
constexpr std::size_t kRadixMinPairs = 4096;
constexpr std::size_t kRadixBuckets = 1u << 16;
constexpr unsigned kNarrowBits = 11;
constexpr std::size_t kNarrowBuckets = std::size_t{1} << kNarrowBits;

/// Lexicographic (a, b) order as one unsigned 64-bit key; order-preserving
/// only when both ids are non-negative AND fit in 32 bits (callers check).
/// The casts below truncate wider ids, which would silently scramble the
/// radix order, so SortUniquePairs gates on the id range first.
inline std::uint64_t PackedKey(const NeighborPair& p) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.a)) << 32) |
         static_cast<std::uint32_t>(p.b);
}

/// The narrow-tier key (both ids < 2^16, the common case): 32 bits,
/// sorted in three 11-bit passes whose 2 KiB-entry count tables stay L1
/// resident - measurably faster than two 2^16-bucket passes, whose 64K
/// scatter streams thrash the TLB.
inline std::uint32_t PackedKey32(const NeighborPair& p) {
  return (static_cast<std::uint32_t>(p.a) << 16) |
         static_cast<std::uint32_t>(p.b);
}

/// Packs every pair into its radix key and accumulates all digit
/// histograms in the same pass (the keys are stored anyway, so the pack
/// write is free work for the scatter passes that follow). The wide
/// variant has an AVX2 twin in join_kernel_avx2.cc; the narrow tier stays
/// scalar on purpose - its three 8 KiB count tables are L1-resident and
/// the packed key is two ALU ops, so SIMD packing costs more in lane
/// extraction than it saves (measured).
void PackWideHistograms(const NeighborPair* pairs, std::size_t n,
                        std::uint64_t* keys, std::uint32_t* counts) {
  std::uint32_t* c0 = counts;
  std::uint32_t* c1 = counts + kRadixBuckets;
  std::uint32_t* c2 = counts + 2 * kRadixBuckets;
  std::uint32_t* c3 = counts + 3 * kRadixBuckets;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = PackedKey(pairs[i]);
    keys[i] = key;
    ++c0[key & 0xFFFF];
    ++c1[(key >> 16) & 0xFFFF];
    ++c2[(key >> 32) & 0xFFFF];
    ++c3[key >> 48];
  }
}

void PackNarrowHistograms(const NeighborPair* pairs, std::size_t n,
                          std::uint32_t* keys, std::uint32_t* counts) {
  std::uint32_t* c0 = counts;
  std::uint32_t* c1 = counts + kNarrowBuckets;
  std::uint32_t* c2 = counts + 2 * kNarrowBuckets;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t key = PackedKey32(pairs[i]);
    keys[i] = key;
    ++c0[key & (kNarrowBuckets - 1)];
    ++c1[(key >> kNarrowBits) & (kNarrowBuckets - 1)];
    ++c2[key >> (2 * kNarrowBits)];
  }
}

/// The LSD pass loop shared by both tiers, over the packed keys alone
/// (4 or 8 bytes each instead of the 16-byte pairs - a third of the
/// scatter traffic). Each pass is a stable counting sort on one digit, so
/// the final order is exactly the lexicographic pair order the comparison
/// sort produces. A pass whose digit is constant is the identity
/// permutation and is skipped (digits are permutation-invariant, so the
/// histogram stays valid no matter which buffer currently holds the
/// keys). Returns the buffer the sorted keys ended up in.
template <unsigned kDigitBits, int kPasses, typename Key>
Key* RunRadixPasses(Key* src, Key* dst, std::size_t n,
                    std::uint32_t* counts) {
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  constexpr Key kDigitMask = static_cast<Key>(kBuckets - 1);
  for (int pass = 0; pass < kPasses; ++pass) {
    std::uint32_t* cursor = counts + pass * kBuckets;
    const unsigned shift = kDigitBits * static_cast<unsigned>(pass);
    if (cursor[(src[0] >> shift) & kDigitMask] == n) continue;
    std::uint32_t sum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint32_t count = cursor[b];
      cursor[b] = sum;
      sum += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[cursor[(src[i] >> shift) & kDigitMask]++] = src[i];
    }
    std::swap(src, dst);
  }
  return src;
}

}  // namespace

void SortUniquePairs(std::vector<NeighborPair>& pairs,
                     PairSortScratch& scratch, SimdLevel simd) {
  // OR-fold of every id: a negative id sets the sign bit, an id above
  // 2^32 sets a bit in [32, 63) - either disqualifies the packed key
  // (PackedKey truncates each id to 32 bits). It also selects the tier:
  // ids all below 2^16 take the narrow 32-bit-key path.
  TrajectoryId any = 0;
  if (pairs.size() >= kRadixMinPairs) {
    for (const NeighborPair& p : pairs) any |= p.a | p.b;
  }
  SortUniquePairs(pairs, any, scratch, simd);
}

void SortUniquePairs(std::vector<NeighborPair>& pairs, TrajectoryId id_fold,
                     PairSortScratch& scratch, SimdLevel simd) {
  const std::size_t n = pairs.size();
  const TrajectoryId any = id_fold;
  const bool radixable =
      n >= kRadixMinPairs && any >= 0 && (any >> 32) == 0;
  if (!radixable) {
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    return;
  }
  if ((any >> 16) == 0) {
    // Narrow tier: 32-bit keys, three 11-bit digits.
    auto& counts = scratch.counts;
    if (counts.size() < 3 * kNarrowBuckets) counts.resize(3 * kNarrowBuckets);
    std::memset(counts.data(), 0, 3 * kNarrowBuckets * sizeof(std::uint32_t));
    scratch.keys32.resize(n);
    scratch.keys32_tmp.resize(n);
    PackNarrowHistograms(pairs.data(), n, scratch.keys32.data(),
                         counts.data());
    const std::uint32_t* sorted = RunRadixPasses<kNarrowBits, 3>(
        scratch.keys32.data(), scratch.keys32_tmp.data(), n, counts.data());
    // Unpack the sorted keys back into pairs, dropping duplicates in the
    // same pass (equal pairs pack to equal keys, now adjacent).
    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t key = sorted[i];
      if (i != 0 && key == sorted[i - 1]) continue;
      pairs[m++] = NeighborPair{static_cast<TrajectoryId>(key >> 16),
                                static_cast<TrajectoryId>(key & 0xFFFF)};
    }
    pairs.resize(m);
    return;
  }
  // Wide tier: 64-bit keys, four 16-bit digits.
  const bool avx2 = ResolveSimdLevel(simd) == SimdLevel::kAvx2;
  auto& counts = scratch.counts;
  if (counts.size() < 4 * kRadixBuckets) counts.resize(4 * kRadixBuckets);
  std::memset(counts.data(), 0, 4 * kRadixBuckets * sizeof(std::uint32_t));
  scratch.keys64.resize(n);
  scratch.keys64_tmp.resize(n);
  if (avx2) {
    simd::PackWideHistogramsAvx2(pairs.data(), n, scratch.keys64.data(),
                                 counts.data());
  } else {
    PackWideHistograms(pairs.data(), n, scratch.keys64.data(), counts.data());
  }
  const std::uint64_t* sorted = RunRadixPasses<16, 4>(
      scratch.keys64.data(), scratch.keys64_tmp.data(), n, counts.data());
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = sorted[i];
    if (i != 0 && key == sorted[i - 1]) continue;
    pairs[m++] = NeighborPair{static_cast<TrajectoryId>(key >> 32),
                              static_cast<TrajectoryId>(key & 0xFFFFFFFF)};
  }
  pairs.resize(m);
}

void SortUniquePairs(std::vector<NeighborPair>& pairs) {
  PairSortScratch scratch;
  SortUniquePairs(pairs, scratch, SimdLevel::kAuto);
}

}  // namespace comove::cluster
