#ifndef COMOVE_CLUSTER_CLUSTERING_H_
#define COMOVE_CLUSTER_CLUSTERING_H_

#include <cstdint>

#include "cluster/dbscan.h"
#include "cluster/range_join.h"
#include "common/types.h"

/// \file
/// Snapshot clustering facade: one entry point covering the paper's three
/// compared methods (RJC - ours; SRJ and GDC - adapted baselines, §7.1).

namespace comove::cluster {

/// Which clustering method to run.
enum class ClusteringMethod {
  kRJC,  ///< GR-index range join with Lemmas 1+2, then DBSCAN (ours)
  kSRJ,  ///< full-replication GR-index join [36], then DBSCAN
  kGDC,  ///< eps/2-grid neighbour search [14], then DBSCAN
};

/// Printable method name ("RJC", "SRJ", "GDC").
const char* ClusteringMethodName(ClusteringMethod method);

/// Combined knobs for snapshot clustering.
struct ClusteringOptions {
  RangeJoinOptions join;    ///< lg, eps, kernel, R-tree tuning (GDC: eps)
  DbscanOptions dbscan;     ///< minPts
};

/// Working memory of the whole per-snapshot clustering path: the range
/// join's buffers plus DBSCAN's interning/CSR buffers, kept side by side
/// so one worker reuses every allocation of the snapshot pipeline. Owned
/// by one worker thread; not thread-safe.
struct ClusterScratch {
  JoinScratch join;
  DbscanScratch dbscan;
  /// Whole-snapshot DBSCAN memo, consulted only when
  /// ClusteringOptions::join.incremental is set.
  DbscanMemo dbscan_memo;
};

/// Clusters one snapshot with the chosen method. All methods produce
/// identical clusters (they only differ in cost); tests assert this.
ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options);

/// ClusterSnapshotWith reusing `scratch` for the join's and DBSCAN's
/// working memory across snapshots (the streaming hot path; see
/// ClusterScratch). GDC has no join stage and uses only the DBSCAN part.
ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options,
                                    ClusterScratch& scratch);

/// Wall time of the two phases of one ClusterSnapshotWith call, so a
/// tracer can attribute a snapshot's clustering cost to the neighbour
/// search (range join / grid query) vs the DBSCAN pass separately.
struct ClusterPhaseNs {
  std::uint64_t join_ns = 0;    ///< neighbour-pair production
  std::uint64_t dbscan_ns = 0;  ///< DBSCAN over the pairs
};

/// ClusterSnapshotWith that additionally reports per-phase wall time into
/// `phases` when non-null (null is exactly the untimed overload: the
/// clock is never read).
ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options,
                                    ClusterScratch& scratch,
                                    ClusterPhaseNs* phases);

}  // namespace comove::cluster

#endif  // COMOVE_CLUSTER_CLUSTERING_H_
