#ifndef COMOVE_CLUSTER_DBSCAN_H_
#define COMOVE_CLUSTER_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

/// \file
/// DBSCAN (§3.2 / §5.3) evaluated on the output of a range join: once the
/// eps-neighbour pairs of a snapshot are known, cores, density
/// reachability and clusters follow in a single O(n + |pairs|) pass -
/// which is why the paper concentrates all indexing effort on the join.

namespace comove::cluster {

/// DBSCAN density parameters. A location is a core point when its
/// eps-neighbourhood (including itself, as in the reference algorithm)
/// contains at least min_pts locations.
struct DbscanOptions {
  std::int32_t min_pts = 10;
};

/// Runs DBSCAN over one snapshot given its range-join result.
///
/// `pairs` must contain each unordered eps-neighbour pair exactly once
/// (the contract of RangeJoinRJC/SRJ/Brute). Clusters are connected
/// components of core points plus their density-reachable border points;
/// a border point reachable from several clusters is assigned to the one
/// with the smallest cluster id, matching the deterministic single-
/// assignment of classic DBSCAN. Noise points appear in no cluster.
/// Cluster members are sorted ascending; clusters are ordered by their
/// smallest member and numbered 0, 1, ... within the snapshot.
ClusterSnapshot DbscanFromNeighbors(const Snapshot& snapshot,
                                    const std::vector<NeighborPair>& pairs,
                                    const DbscanOptions& options);

}  // namespace comove::cluster

#endif  // COMOVE_CLUSTER_DBSCAN_H_
