#ifndef COMOVE_CLUSTER_DBSCAN_H_
#define COMOVE_CLUSTER_DBSCAN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/types.h"

/// \file
/// DBSCAN (§3.2 / §5.3) evaluated on the output of a range join: once the
/// eps-neighbour pairs of a snapshot are known, cores, density
/// reachability and clusters follow in a single O(n + |pairs|) pass -
/// which is why the paper concentrates all indexing effort on the join.
///
/// The evaluation runs over flat arrays end to end: trajectory ids are
/// interned into dense indices with a sorted table (no per-snapshot hash
/// map), the adjacency is CSR (degree count -> prefix sum -> fill, a
/// two-pass counting sort over the pair list - no per-node vectors), and
/// the BFS walks the CSR arrays. All working memory lives in a reusable
/// DbscanScratch so the streaming hot path allocates nothing per snapshot
/// beyond the returned ClusterSnapshot.

namespace comove::cluster {

/// DBSCAN density parameters. A location is a core point when its
/// eps-neighbourhood (including itself, as in the reference algorithm)
/// contains at least min_pts locations.
struct DbscanOptions {
  std::int32_t min_pts = 10;
};

/// One interner row: a trajectory id and its index in the snapshot's
/// entry order. A plain struct (not std::pair) so it is trivially
/// copyable for the arena-backed buffers below.
struct DbscanIdIndex {
  TrajectoryId id;
  std::int32_t index;
};

/// One join pair re-expressed in dense snapshot indices.
struct DbscanEdge {
  std::int32_t a;
  std::int32_t b;
};

/// Reusable working memory for DbscanFromNeighbors, carved from one
/// Arena. Every buffer's size is known up front (n or |pairs|), so each
/// call rewinds the arena once and re-reserves every buffer in a single
/// bump - the steady state touches the same addresses every snapshot and
/// allocates nothing. Owned by one worker thread; not thread-safe.
struct DbscanScratch {
  Arena arena;
  /// Dense id interning: (trajectory id, snapshot index), sorted by id.
  /// Computed once per snapshot; lookups are binary searches over a flat
  /// array instead of hash probes.
  ArenaVector<DbscanIdIndex> interner;
  /// The join pairs re-expressed in dense indices (interned once, used by
  /// both CSR passes).
  ArenaVector<DbscanEdge> edges;
  ArenaVector<std::int32_t> offsets;    ///< CSR row offsets (n + 1)
  ArenaVector<std::int32_t> cursor;     ///< CSR fill cursors
  ArenaVector<std::int32_t> adjacency;  ///< CSR column indices (2 |pairs|)
  ArenaVector<std::int32_t> cluster_of;
  ArenaVector<std::int32_t> frontier;
  ArenaVector<std::uint8_t> core;

  /// Rewinds the arena (called once per DbscanFromNeighbors call = once
  /// per snapshot on a streaming worker).
  void BeginSnapshot() {
    arena.Reset();
    interner.Release();
    edges.Release();
    offsets.Release();
    cursor.Release();
    adjacency.Release();
    cluster_of.Release();
    frontier.Release();
    core.Release();
  }
};

/// Runs DBSCAN over one snapshot given its range-join result.
///
/// `pairs` must contain each unordered eps-neighbour pair exactly once
/// (the contract of RangeJoinRJC/SRJ/Brute). Clusters are connected
/// components of core points plus their density-reachable border points;
/// a border point reachable from several clusters is assigned to the one
/// with the smallest cluster id, matching the deterministic single-
/// assignment of classic DBSCAN. Noise points appear in no cluster.
/// Cluster members are sorted ascending; clusters are ordered by their
/// smallest member and numbered 0, 1, ... within the snapshot.
ClusterSnapshot DbscanFromNeighbors(const Snapshot& snapshot,
                                    const std::vector<NeighborPair>& pairs,
                                    const DbscanOptions& options);

/// DbscanFromNeighbors reusing `scratch` across snapshots (the streaming
/// hot-path form); identical output to the allocating overload.
ClusterSnapshot DbscanFromNeighbors(const Snapshot& snapshot,
                                    const std::vector<NeighborPair>& pairs,
                                    const DbscanOptions& options,
                                    DbscanScratch& scratch);

/// Whole-snapshot memo of the incremental delta path. DBSCAN's output is
/// a pure function of the snapshot's id sequence, the pair list, and
/// min_pts - positions enter only through the pairs - so when all three
/// match the previous snapshot the cluster set can be replayed verbatim
/// (only the timestamp changes). Like CellDeltaCache this is derived
/// state: never checkpointed, cleared on recovery.
struct DbscanMemo {
  bool valid = false;
  std::int32_t min_pts = 0;
  std::vector<TrajectoryId> ids;    ///< entry ids, in snapshot order
  std::vector<NeighborPair> pairs;  ///< canonical pair list
  std::vector<Cluster> clusters;    ///< memoised output
  std::uint64_t replays = 0;        ///< lifetime replay count

  void Clear() {
    valid = false;
    min_pts = 0;
    ids.clear();
    pairs.clear();
    clusters.clear();
    replays = 0;
  }
};

/// DbscanFromNeighbors through `memo`: replays the previous cluster set
/// when (ids, pairs, min_pts) are unchanged, otherwise computes and
/// re-memoises. Identical output to the uncached overloads either way.
ClusterSnapshot DbscanFromNeighborsCached(
    const Snapshot& snapshot, const std::vector<NeighborPair>& pairs,
    const DbscanOptions& options, DbscanScratch& scratch, DbscanMemo& memo);

}  // namespace comove::cluster

#endif  // COMOVE_CLUSTER_DBSCAN_H_
