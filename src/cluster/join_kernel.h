#ifndef COMOVE_CLUSTER_JOIN_KERNEL_H_
#define COMOVE_CLUSTER_JOIN_KERNEL_H_

#include <cstdint>
#include <vector>

#include "cluster/grid_object.h"
#include "common/geometry.h"
#include "common/types.h"

/// \file
/// Flat plane-sweep join kernel: the cache-friendly per-cell execution
/// path of GridQuery (Algorithm 2). Instead of probing an R-tree once per
/// object, the cell's objects are laid out in structure-of-arrays form
/// (separate x[] / y[] / id[] columns, data and query roles split so the
/// hot loops carry no role branch), sorted by (y, x, id), and joined with
/// a plane sweep: advance a window while y_j - y_i <= eps, refine
/// candidates on the x band and the exact metric (WithinDistance). Every
/// filter applies the same arithmetic as the R-tree path's closed-rect
/// test followed by the same refinement predicate, so the emitted pair
/// SET is identical and GridSync produces bit-identical output.
///
/// Lemma semantics are reproduced exactly:
///  - Lemma 2 (query-before-insert): the data-data sweep pairs each data
///    object only with data objects earlier in the sorted order - the
///    sweep analogue of querying the partially built tree - yielding
///    every within-cell pair exactly once.
///  - Lemma 1 (half-space claim): query objects scan only data at
///    y >= their own y and keep the InUpperHalf tie-breaks, so each
///    cross-cell pair is claimed by exactly one side.
/// Without Lemma 2 the kernel mirrors the SRJ scheme: full-window scans
/// whose duplicates GridSync removes.

namespace comove::cluster {

/// Selects the per-cell join kernel of GridQuery.
enum class JoinKernel : std::uint8_t {
  kRTree,  ///< per-object R-tree probes (the literal Algorithm 2)
  kSweep,  ///< SoA sort + plane sweep (default; same output, faster)
};

/// Printable kernel name ("rtree" / "sweep").
const char* JoinKernelName(JoinKernel kernel);

/// Canonicalises an unordered neighbour pair to a < b.
inline NeighborPair CanonicalPair(TrajectoryId a, TrajectoryId b) {
  return a < b ? NeighborPair{a, b} : NeighborPair{b, a};
}

/// Lemma 1 half-space predicate: `v` lies in the half of `q`'s range
/// region that q is responsible for. Strictly above; ties on y broken by
/// x, ties on both by id, so every cross-cell pair is claimed by exactly
/// one side even for coincident coordinates.
inline bool InUpperHalf(const Point& q, TrajectoryId q_id, const Point& v,
                        TrajectoryId v_id) {
  if (v.y != q.y) return v.y > q.y;
  if (v.x != q.x) return v.x > q.x;
  return v_id > q_id;
}

/// Reusable SoA buffers of the sweep kernel. One instance serves every
/// cell of every snapshot: vectors are cleared per cell but keep their
/// capacity, so steady state allocates nothing. Owned by one worker
/// thread; not thread-safe.
struct SweepCell {
  // Data objects of the cell, sorted by (y, x, id).
  std::vector<double> data_x;
  std::vector<double> data_y;
  std::vector<TrajectoryId> data_id;
  // Query objects of the cell, sorted by (y, x, id).
  std::vector<double> query_x;
  std::vector<double> query_y;
  std::vector<TrajectoryId> query_id;
  // Permutation scratch for the sort (indices into the cell's objects).
  std::vector<std::uint32_t> order;
};

/// Joins ONE grid cell's objects with the plane sweep, appending pairs to
/// `out`. Drop-in replacement for the R-tree form of GridQuery: with
/// `use_lemma2` emits every within-cell data pair exactly once plus each
/// query object's Lemma 1 half-space matches; without it emits
/// full-region matches from both sides (the SRJ scheme - GridSync
/// deduplicates). `cell_objects` may interleave data and query objects in
/// any order.
void SweepCellJoin(const std::vector<GridObject>& cell_objects, double eps,
                   DistanceMetric metric, bool use_lemma2,
                   SweepCell& scratch, std::vector<NeighborPair>& out);

/// Canonical GridSync finalisation: sorts `pairs` lexicographically and
/// removes duplicates, exactly like `std::sort` + `std::unique` but fast
/// on large pair streams. Each pair packs into one 64-bit key (each id
/// truncated to 32 bits), sorted by LSD radix over 16-bit digits with
/// trivial passes skipped; comparison sort remains the fallback for small
/// inputs, for negative ids, and for ids that need more than 32 bits
/// (either way the packed key would not preserve order). `tmp` is
/// ping-pong scratch and holds garbage afterwards.
void SortUniquePairs(std::vector<NeighborPair>& pairs,
                     std::vector<NeighborPair>& tmp);

}  // namespace comove::cluster

#endif  // COMOVE_CLUSTER_JOIN_KERNEL_H_
