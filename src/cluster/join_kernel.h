#ifndef COMOVE_CLUSTER_JOIN_KERNEL_H_
#define COMOVE_CLUSTER_JOIN_KERNEL_H_

#include <cstdint>
#include <vector>

#include "cluster/grid_object.h"
#include "common/arena.h"
#include "common/cpu_features.h"
#include "common/geometry.h"
#include "common/types.h"

/// \file
/// Flat plane-sweep join kernel: the cache-friendly per-cell execution
/// path of GridQuery (Algorithm 2). Instead of probing an R-tree once per
/// object, the cell's objects are laid out in structure-of-arrays form
/// (separate x[] / y[] / id[] columns, data and query roles split so the
/// hot loops carry no role branch), sorted by y, and joined with
/// a plane sweep: advance a window while y_j - y_i <= eps, refine
/// candidates on the x band and the exact metric (WithinDistance). Every
/// filter applies the same arithmetic as the R-tree path's closed-rect
/// test followed by the same refinement predicate, so the emitted pair
/// SET is identical and GridSync produces bit-identical output.
///
/// Lemma semantics are reproduced exactly:
///  - Lemma 2 (query-before-insert): the data-data sweep pairs each data
///    object only with data objects earlier in the sorted order - the
///    sweep analogue of querying the partially built tree - yielding
///    every within-cell pair exactly once.
///  - Lemma 1 (half-space claim): query objects scan only data at
///    y >= their own y and keep the InUpperHalf tie-breaks, so each
///    cross-cell pair is claimed by exactly one side.
/// Without Lemma 2 the kernel mirrors the SRJ scheme: full-window scans
/// whose duplicates GridSync removes.
///
/// The refinement runs either as the scalar reference loops below or as
/// AVX2 kernels (simd_kernels.h) that apply the identical filter chain
/// four lanes at a time and mask-compress the survivors - same pair set
/// bit for bit, selected per call through ResolveSimdLevel. The SoA
/// columns live in a per-cell Arena (32-byte aligned, reset once per
/// snapshot), so the vector loads never split cache lines and the steady
/// state allocates nothing.

namespace comove::cluster {

/// Selects the per-cell join kernel of GridQuery.
enum class JoinKernel : std::uint8_t {
  kRTree,  ///< per-object R-tree probes (the literal Algorithm 2)
  kSweep,  ///< SoA sort + plane sweep (default; same output, faster)
};

/// Printable kernel name ("rtree" / "sweep").
const char* JoinKernelName(JoinKernel kernel);

/// True when the AVX2 kernels are usable here: compiled into the binary
/// AND supported by this CPU (with OS YMM state). Says nothing about the
/// COMOVE_FORCE_SCALAR override; see ResolveSimdLevel.
bool SimdKernelsAvailable();

/// Resolves a requested SimdLevel to the level that will actually run:
/// kScalar stays scalar; kAvx2 degrades to scalar when unavailable (so
/// test matrices run anywhere); kAuto picks AVX2 when available unless
/// COMOVE_FORCE_SCALAR pins the reference path. Never returns kAuto.
SimdLevel ResolveSimdLevel(SimdLevel requested);

/// Canonicalises an unordered neighbour pair to a < b.
inline NeighborPair CanonicalPair(TrajectoryId a, TrajectoryId b) {
  return a < b ? NeighborPair{a, b} : NeighborPair{b, a};
}

/// Lemma 1 half-space predicate: `v` lies in the half of `q`'s range
/// region that q is responsible for. Strictly above; ties on y broken by
/// x, ties on both by id, so every cross-cell pair is claimed by exactly
/// one side even for coincident coordinates.
inline bool InUpperHalf(const Point& q, TrajectoryId q_id, const Point& v,
                        TrajectoryId v_id) {
  if (v.y != q.y) return v.y > q.y;
  if (v.x != q.x) return v.x > q.x;
  return v_id > q_id;
}

/// One object while sorting into SoA columns, held contiguously so the
/// sort touches no other memory (sorting these beats sorting indices
/// into the GridObject vector).
struct SweepSortRec {
  double y;
  double x;
  TrajectoryId id;
};

/// Reusable SoA buffers of the sweep kernel, carved from one Arena so
/// every column is 32-byte aligned for the AVX2 loads. One instance
/// serves every cell of every snapshot; BeginSnapshot() (called once per
/// snapshot by RunJoin / the cells-mode worker) rewinds the arena and the
/// high-water marks re-reserve the full footprint in one bump each, so
/// steady state touches the same addresses every snapshot and allocates
/// nothing. Owned by one worker thread; not thread-safe.
struct SweepCell {
  Arena arena;
  // Data objects of the cell, sorted by y.
  ArenaVector<double> data_x;
  ArenaVector<double> data_y;
  ArenaVector<TrajectoryId> data_id;
  // Query objects of the cell, sorted by y.
  ArenaVector<double> query_x;
  ArenaVector<double> query_y;
  ArenaVector<TrajectoryId> query_id;
  // Sort scratch: one record per object of the role being built.
  ArenaVector<SweepSortRec> sort_recs;
  // Mask-compressed survivor indices of one sweep window (AVX2 path).
  ArenaVector<std::uint32_t> cand;
  // Fixed-size pair staging buffer of the AVX2 PairSink.
  ArenaVector<NeighborPair> pair_buf;

  /// Rewinds the arena; every vector above is re-reserved on next use.
  void BeginSnapshot() {
    arena.Reset();
    data_x.Release();
    data_y.Release();
    data_id.Release();
    query_x.Release();
    query_y.Release();
    query_id.Release();
    sort_recs.Release();
    cand.Release();
    pair_buf.Release();
  }
};

/// Joins ONE grid cell's objects with the plane sweep, appending pairs to
/// `out`. Drop-in replacement for the R-tree form of GridQuery: with
/// `use_lemma2` emits every within-cell data pair exactly once plus each
/// query object's Lemma 1 half-space matches; without it emits
/// full-region matches from both sides (the SRJ scheme - GridSync
/// deduplicates). `cell_objects` may interleave data and query objects in
/// any order. `simd` selects the refinement implementation (resolved via
/// ResolveSimdLevel); the emitted pair set is identical at every level.
void SweepCellJoin(const std::vector<GridObject>& cell_objects, double eps,
                   DistanceMetric metric, bool use_lemma2, SimdLevel simd,
                   SweepCell& scratch, std::vector<NeighborPair>& out);

/// Reusable buffers of SortUniquePairs' radix sort: the digit histograms
/// (24 KiB for the narrow tier, grown to 1 MiB - 4 x 2^16 counters - the
/// first time the wide tier runs) and the two packed-key ping-pong
/// buffers of whichever tiers have run. Without it every call
/// re-allocates them; a worker keeps one across snapshots.
struct PairSortScratch {
  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> keys32, keys32_tmp;  ///< narrow-tier keys
  std::vector<std::uint64_t> keys64, keys64_tmp;  ///< wide-tier keys
};

/// Canonical GridSync finalisation: sorts `pairs` lexicographically and
/// removes duplicates, exactly like `std::sort` + `std::unique` but fast
/// on large pair streams. The pairs are packed into integer keys, the
/// KEYS are radix-sorted (a quarter to half the scatter traffic of
/// moving 16-byte pairs), and the sorted keys are unpacked back into
/// `pairs` with duplicates dropped in the same pass. Two LSD tiers,
/// picked by the id range: ids below 2^16 (the common case) pack into
/// 32-bit keys sorted in three 11-bit passes whose count tables stay L1
/// resident; ids below 2^32 pack into 64-bit keys sorted in four 16-bit
/// passes. Constant-digit passes are skipped. Comparison sort remains the
/// fallback for small inputs, for negative ids, and for ids of 32+ bits
/// (the packed key would not preserve order). The wide tier's
/// pack-and-histogram pass runs vectorized when `simd` resolves to AVX2
/// (the narrow tier's L1-resident tables are faster scalar); the
/// resulting order is identical either way.
void SortUniquePairs(std::vector<NeighborPair>& pairs,
                     PairSortScratch& scratch,
                     SimdLevel simd = SimdLevel::kAuto);

/// SortUniquePairs for callers that already hold an OR-fold of every id
/// that can appear in `pairs` (RunJoin folds the snapshot's ids while
/// bucketing - far fewer than the pair stream's). The fold picks the
/// radix tier, so it may be any conservative superset of the pair ids'
/// fold: extra high bits only demote to a wider (still correct) tier.
void SortUniquePairs(std::vector<NeighborPair>& pairs, TrajectoryId id_fold,
                     PairSortScratch& scratch, SimdLevel simd);

/// SortUniquePairs with call-local scratch (cold paths, tests).
void SortUniquePairs(std::vector<NeighborPair>& pairs);

}  // namespace comove::cluster

#endif  // COMOVE_CLUSTER_JOIN_KERNEL_H_
