#include "cluster/gdc.h"

#include <algorithm>
#include <unordered_map>

#include "cluster/join_kernel.h"
#include "common/check.h"
#include "index/grid_index.h"

namespace comove::cluster {

namespace {

/// A point replicated into one eps-cell, tagged data (home) or query.
struct GdcObject {
  TrajectoryId id;
  Point location;
  bool is_query;
};

}  // namespace

std::vector<NeighborPair> GdcNeighborPairs(const Snapshot& snapshot,
                                           double eps,
                                           DistanceMetric metric) {
  COMOVE_CHECK(eps > 0.0);
  // GDC's grid derives from eps itself: cells of width eps, each cell a
  // keyed partition (this is the Flink adaptation the paper benchmarks -
  // [14] is a centralized algorithm). Every point is a data object in its
  // home cell and a query object in all 8 neighbouring cells, since
  // eps-neighbours can live at most one eps-cell away. The eps-derived
  // grid is exactly the weakness §7.1 observes: it creates far more
  // partitions and replicas than the lg-tuned GR-index.
  const GridIndex grid(eps);
  std::unordered_map<GridKey, std::vector<GdcObject>, GridKeyHash> cells;
  for (const SnapshotEntry& e : snapshot.entries) {
    const GridKey home = grid.KeyOf(e.location);
    cells[home].push_back(GdcObject{e.id, e.location, false});
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        if (dx == 0 && dy == 0) continue;
        cells[GridKey{home.cx + dx, home.cy + dy}].push_back(
            GdcObject{e.id, e.location, true});
      }
    }
  }

  // Per-cell processing: data-data pairs once per cell; query objects
  // probe the cell's data objects (duplicated across cells - GDC has no
  // Lemma 1/2 analogue, so GridSync-style dedup pays the bill).
  std::vector<NeighborPair> out;
  for (const auto& [key, objects] : cells) {
    for (std::size_t i = 0; i < objects.size(); ++i) {
      const GdcObject& a = objects[i];
      if (a.is_query) continue;
      for (std::size_t j = 0; j < objects.size(); ++j) {
        if (i == j) continue;
        const GdcObject& b = objects[j];
        if (!b.is_query && j < i) continue;  // data-data pair once
        if (a.id == b.id) continue;
        if (WithinDistance(metric, a.location, b.location, eps)) {
          out.push_back(a.id < b.id ? NeighborPair{a.id, b.id}
                                    : NeighborPair{b.id, a.id});
        }
      }
    }
  }
  SortUniquePairs(out);
  return out;
}

ClusterSnapshot GdcCluster(const Snapshot& snapshot, double eps,
                           const DbscanOptions& options,
                           DistanceMetric metric) {
  return DbscanFromNeighbors(
      snapshot, GdcNeighborPairs(snapshot, eps, metric), options);
}

}  // namespace comove::cluster
