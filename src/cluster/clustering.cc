#include "cluster/clustering.h"

#include <chrono>

#include "cluster/gdc.h"
#include "common/check.h"

namespace comove::cluster {

const char* ClusteringMethodName(ClusteringMethod method) {
  switch (method) {
    case ClusteringMethod::kRJC:
      return "RJC";
    case ClusteringMethod::kSRJ:
      return "SRJ";
    case ClusteringMethod::kGDC:
      return "GDC";
  }
  return "unknown";
}

ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options) {
  ClusterScratch scratch;
  return ClusterSnapshotWith(method, snapshot, options, scratch);
}

ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options,
                                    ClusterScratch& scratch) {
  return ClusterSnapshotWith(method, snapshot, options, scratch, nullptr);
}

ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options,
                                    ClusterScratch& scratch,
                                    ClusterPhaseNs* phases) {
  using Clock = std::chrono::steady_clock;
  const auto elapsed_ns = [](Clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             since)
            .count());
  };
  // Produce the neighbour pairs (the method-specific phase), timing it
  // only when the caller asked - the untimed path never reads a clock.
  const Clock::time_point join_start =
      phases != nullptr ? Clock::now() : Clock::time_point{};
  const std::vector<NeighborPair>* pairs = nullptr;
  std::vector<NeighborPair> gdc_pairs;
  switch (method) {
    case ClusteringMethod::kRJC:
      pairs = &RangeJoinRJC(snapshot, options.join, {}, scratch.join);
      break;
    case ClusteringMethod::kSRJ:
      pairs = &RangeJoinSRJ(snapshot, options.join, scratch.join);
      break;
    case ClusteringMethod::kGDC:
      gdc_pairs =
          GdcNeighborPairs(snapshot, options.join.eps, options.join.metric);
      pairs = &gdc_pairs;
      break;
  }
  COMOVE_CHECK(pairs != nullptr);
  const Clock::time_point dbscan_start =
      phases != nullptr ? Clock::now() : Clock::time_point{};
  if (phases != nullptr) {
    phases->join_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dbscan_start -
                                                             join_start)
            .count());
  }
  // The incremental knob also memoises the DBSCAN stage: on the slow
  // workloads the delta path targets, the pair list is frequently
  // unchanged end to end, and the memo check costs one pass over it.
  ClusterSnapshot clustered =
      options.join.incremental
          ? DbscanFromNeighborsCached(snapshot, *pairs, options.dbscan,
                                      scratch.dbscan, scratch.dbscan_memo)
          : DbscanFromNeighbors(snapshot, *pairs, options.dbscan,
                                scratch.dbscan);
  if (phases != nullptr) phases->dbscan_ns = elapsed_ns(dbscan_start);
  return clustered;
}

}  // namespace comove::cluster
