#include "cluster/clustering.h"

#include "cluster/gdc.h"
#include "common/check.h"

namespace comove::cluster {

const char* ClusteringMethodName(ClusteringMethod method) {
  switch (method) {
    case ClusteringMethod::kRJC:
      return "RJC";
    case ClusteringMethod::kSRJ:
      return "SRJ";
    case ClusteringMethod::kGDC:
      return "GDC";
  }
  return "unknown";
}

ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options) {
  JoinScratch scratch;
  return ClusterSnapshotWith(method, snapshot, options, scratch);
}

ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options,
                                    JoinScratch& scratch) {
  switch (method) {
    case ClusteringMethod::kRJC:
      return DbscanFromNeighbors(
          snapshot, RangeJoinRJC(snapshot, options.join, {}, scratch),
          options.dbscan);
    case ClusteringMethod::kSRJ:
      return DbscanFromNeighbors(
          snapshot, RangeJoinSRJ(snapshot, options.join, scratch),
          options.dbscan);
    case ClusteringMethod::kGDC:
      return GdcCluster(snapshot, options.join.eps, options.dbscan,
                        options.join.metric);
  }
  COMOVE_CHECK(false);
  return ClusterSnapshot{};
}

}  // namespace comove::cluster
