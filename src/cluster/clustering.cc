#include "cluster/clustering.h"

#include "cluster/gdc.h"
#include "common/check.h"

namespace comove::cluster {

const char* ClusteringMethodName(ClusteringMethod method) {
  switch (method) {
    case ClusteringMethod::kRJC:
      return "RJC";
    case ClusteringMethod::kSRJ:
      return "SRJ";
    case ClusteringMethod::kGDC:
      return "GDC";
  }
  return "unknown";
}

ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options) {
  ClusterScratch scratch;
  return ClusterSnapshotWith(method, snapshot, options, scratch);
}

ClusterSnapshot ClusterSnapshotWith(ClusteringMethod method,
                                    const Snapshot& snapshot,
                                    const ClusteringOptions& options,
                                    ClusterScratch& scratch) {
  switch (method) {
    case ClusteringMethod::kRJC:
      return DbscanFromNeighbors(
          snapshot, RangeJoinRJC(snapshot, options.join, {}, scratch.join),
          options.dbscan, scratch.dbscan);
    case ClusteringMethod::kSRJ:
      return DbscanFromNeighbors(
          snapshot, RangeJoinSRJ(snapshot, options.join, scratch.join),
          options.dbscan, scratch.dbscan);
    case ClusteringMethod::kGDC:
      return DbscanFromNeighbors(
          snapshot,
          GdcNeighborPairs(snapshot, options.join.eps, options.join.metric),
          options.dbscan, scratch.dbscan);
  }
  COMOVE_CHECK(false);
  return ClusterSnapshot{};
}

}  // namespace comove::cluster
