#ifndef COMOVE_CLUSTER_RANGE_JOIN_H_
#define COMOVE_CLUSTER_RANGE_JOIN_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/grid_object.h"
#include "cluster/join_kernel.h"
#include "common/types.h"
#include "index/grid_index.h"
#include "index/rtree.h"

/// \file
/// GR-index based range join (§5.2). The join is decomposed exactly as in
/// the paper so the distributed pipeline can host each piece as a stage:
///
///   GridAllocate  - computes GridObjects (replication plan). With Lemma 1
///                   a location is only replicated to cells intersecting
///                   the *upper half* of its range region.
///   GridQuery     - per-cell processing. With Lemma 2 each data object is
///                   queried against the index *before* insertion, which
///                   yields every within-cell pair exactly once without
///                   building the index up front.
///   GridSync      - merges per-cell outputs (plus canonicalisation).
///
/// GridQuery runs one of two kernels (RangeJoinOptions::kernel): the
/// default flat plane sweep over sorted SoA columns (join_kernel.h), or
/// the literal per-object R-tree probes. Both produce the same pair set;
/// the R-tree path stays selectable for the lemma ablation benches.
///
/// All functions report each unordered neighbour pair {a, b} (a < b)
/// exactly once, excluding self pairs.

namespace comove::cluster {

/// Knobs of the range join.
struct RangeJoinOptions {
  double grid_cell_width = 1.0;  ///< lg
  double eps = 0.1;              ///< distance threshold
  DistanceMetric metric = DistanceMetric::kL1;  ///< refinement metric
  JoinKernel kernel = JoinKernel::kSweep;  ///< per-cell execution kernel
  /// SIMD dispatch of the sweep kernel and the radix sort (see
  /// ResolveSimdLevel). Pure performance knob - every level emits the
  /// identical pair set - so it is excluded from checkpoint fingerprints
  /// like the other tuning fields.
  SimdLevel simd = SimdLevel::kAuto;
  RTreeOptions rtree;            ///< local index tuning (kRTree kernel)
  /// Snapshot-to-snapshot delta path: per-cell memoisation keyed on the
  /// cell's exact GridObject bucket (see CellDeltaCache). Pure performance
  /// knob - the pair set is bit-identical either way - so it is excluded
  /// from checkpoint fingerprints like the other tuning fields.
  bool incremental = false;
};

/// Ablation switches; production RJC uses both lemmas.
struct RangeJoinVariant {
  bool use_lemma1 = true;  ///< upper-half replication
  bool use_lemma2 = true;  ///< query-before-insert during build
};

/// Per-cell working memory of GridQuery, covering both kernels: the
/// R-tree (constructed lazily, pages recycled via RTree::Clear) and the
/// sweep kernel's SoA buffers. One instance serves every cell a worker
/// processes; not thread-safe.
struct CellQueryScratch {
  std::optional<RTree> tree;  ///< kRTree kernel; lazily built from options
  SweepCell sweep;            ///< kSweep kernel SoA columns
};

/// Per-cell memo of the incremental delta path. For every grid cell the
/// cache keeps the exact GridObject bucket GridQuery last consumed and
/// the pairs it produced. A cell's bucket is the COMPLETE input of
/// GridQuery - data objects plus the Lemma 1 query replicas shipped in
/// from neighbouring cells - so bucket equality implies the cached pairs
/// are exactly what a re-sweep would emit, and a moved object dirties its
/// home cell and every cell it replicates into, which is precisely the
/// Lemma-1 neighbourhood that must be re-swept. Comparison is
/// order-sensitive and bitwise on coordinates: conservative (a reordered
/// but equal bucket just re-sweeps), never unsound.
///
/// Entries untouched for kEvictAfterEpochs join calls are dropped, so a
/// trajectory fleet drifting across the plane cannot grow the cache
/// without bound. The cache is pure derived state: it is never
/// checkpointed, and a worker restored from a snapshot simply starts
/// cold (see IcpeEngine recovery).
struct CellDeltaCache {
  /// A cached entry survives this many snapshots without its cell being
  /// occupied before eviction: long enough that a cell briefly emptying
  /// (a fleet passing through) keeps its memo, short enough that a fleet
  /// drifting across the plane leaves no unbounded trail.
  static constexpr std::uint64_t kEvictAfterEpochs = 64;

  struct Entry {
    std::vector<GridObject> bucket;   ///< input of the last real sweep
    std::vector<NeighborPair> pairs;  ///< output of that sweep
    std::uint64_t last_used = 0;      ///< epoch stamp for eviction
  };
  std::unordered_map<GridKey, Entry, GridKeyHash> entries;
  /// Evicted entries parked for reuse: their bucket/pair capacity goes to
  /// the next cell that enters the cache instead of back to the heap, so
  /// a fleet drifting across the grid churns no per-cell allocations.
  std::vector<Entry> pool;
  /// Pool size cap; beyond this, evicted entries really are freed.
  static constexpr std::size_t kMaxPooledEntries = 256;
  std::uint64_t epoch = 0;  ///< one tick per join call on this scratch

  // Lifetime counters (monotonic; read by IcpeResult / benches).
  std::uint64_t cells_seen = 0;      ///< occupied cells across all calls
  std::uint64_t cells_replayed = 0;  ///< of those, served from the cache

  /// Ticks the epoch; call once per snapshot before the QueryCell calls.
  void BeginSnapshot() { ++epoch; }

  /// Per-cell cached GridQuery: appends the cell's pairs to `out`,
  /// replaying the cached list when the bucket is unchanged since the
  /// last real sweep and re-sweeping (re-memoising) otherwise.
  /// `cell_objects` is consumed (left cleared-or-swapped; the caller
  /// clears it afterwards either way).
  void QueryCell(std::vector<GridObject>& cell_objects, const GridKey& key,
                 const RangeJoinOptions& options, bool use_lemma2,
                 CellQueryScratch& kernel, std::vector<NeighborPair>& out);

  /// Evicts entries whose cell has been unoccupied for kEvictAfterEpochs
  /// snapshots; amortised (the scan runs once per eviction period). Call
  /// once per snapshot after the QueryCell calls.
  void EndSnapshot();

  /// Drops all cached state (counters included); used on recovery.
  void Clear() {
    entries.clear();
    pool.clear();
    epoch = 0;
    cells_seen = 0;
    cells_replayed = 0;
  }
};

/// Open-addressing map from grid cell to its persistent GridObject
/// bucket, used by RunJoin's bucketing pass. One linear-probe lookup per
/// object on the hot path - measurably faster than the node-based
/// std::unordered_map it replaces (one hash + pointer chase + possible
/// allocation per object). Entries are never removed and bucket storage
/// is stable, so buckets keep their capacity across snapshots exactly
/// like the map-based form did. The reference returned by BucketFor is
/// invalidated by the next BucketFor call that inserts a new cell.
class CellBucketMap {
 public:
  std::vector<GridObject>& BucketFor(const GridKey& key) {
    if ((occupied_ + 1) * 4 > slots_.size() * 3) Grow();
    Slot* s = Probe(key);
    if (s->bucket < 0) {
      s->key = key;
      s->bucket = static_cast<std::int32_t>(buckets_.size());
      buckets_.emplace_back();
      ++occupied_;
    }
    return buckets_[static_cast<std::size_t>(s->bucket)];
  }

 private:
  struct Slot {
    GridKey key;
    std::int32_t bucket = -1;  ///< index into buckets_; -1 = empty
  };

  Slot* Probe(const GridKey& key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = GridKeyHash{}(key) & mask;
    while (slots_[i].bucket >= 0 && !(slots_[i].key == key)) {
      i = (i + 1) & mask;
    }
    return &slots_[i];
  }

  void Grow() {
    const std::size_t cap = slots_.empty() ? 512 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    for (const Slot& s : old) {
      if (s.bucket >= 0) *Probe(s.key) = s;
    }
  }

  std::vector<Slot> slots_;  ///< power-of-two table, load factor <= 3/4
  std::vector<std::vector<GridObject>> buckets_;
  std::size_t occupied_ = 0;
};

/// Reusable working memory for the per-snapshot range join. A streaming
/// pipeline joins one snapshot after another with the same options; a
/// fresh join allocates a GridObject vector, one bucket vector per touched
/// cell, per-cell kernel state, and the result vector - every snapshot. A
/// worker that keeps a JoinScratch across snapshots instead reuses all of
/// that capacity: vectors are cleared but not freed, the cell map keeps
/// its buckets (trajectories revisit the same cells), the R-tree recycles
/// its pages (RTree::Clear), and the grid geometry is validated and
/// derived once. Owned by one worker thread; not thread-safe. Assumes
/// stable RangeJoinOptions across calls.
struct JoinScratch {
  std::optional<GridIndex> grid;  ///< derived once from the options
  /// Cell buckets, filled straight from the snapshot (fused GridAllocate
  /// + bucketing). Entries persist across snapshots with cleared vectors;
  /// `active_cells` lists the keys actually occupied by the current call.
  CellBucketMap cells;
  std::vector<GridKey> active_cells;
  std::vector<NeighborPair> pairs;  ///< join result of the last call
  PairSortScratch sort;             ///< radix sort keys + histograms
  CellQueryScratch cell;                ///< per-cell kernel working memory
  CellDeltaCache delta;  ///< per-cell memo (options.incremental only)
};

/// GridAllocate (Algorithm 1): emits the GridObjects of `snapshot`. With
/// `use_lemma1` the query replication covers only the upper half of each
/// range region; otherwise the full region (the SRJ scheme).
std::vector<GridObject> GridAllocate(const Snapshot& snapshot,
                                     const RangeJoinOptions& options,
                                     bool use_lemma1 = true);

/// GridAllocate into a caller-owned buffer with a caller-owned grid:
/// `out` is cleared and refilled, retaining its capacity across
/// snapshots, and `grid` carries the cell geometry derived once per run
/// instead of once per snapshot (the hot-path form).
void GridAllocate(const Snapshot& snapshot, const GridIndex& grid,
                  double eps, bool use_lemma1, std::vector<GridObject>& out);

/// GridQuery (Algorithm 2) for the GridObjects of ONE grid cell, run with
/// the kernel selected by `options.kernel`.
///
/// With `use_lemma2`, data objects are processed query-then-insert; query
/// objects are answered against the finished data set with the Lemma 1
/// half-space predicate (strictly-above, or same-y right-of tiebreak) so
/// cross-cell pairs appear exactly once. Without `use_lemma2` every
/// object runs its full-region query against all data; the caller must
/// then deduplicate (GridSync does).
///
/// `cell_objects` may interleave data and query objects in any order.
std::vector<NeighborPair> GridQuery(const std::vector<GridObject>& cell_objects,
                                    const RangeJoinOptions& options,
                                    bool use_lemma2 = true);

/// GridQuery with caller-owned working memory: `scratch` holds the
/// selected kernel's state across cells (recycled R-tree pages or SoA
/// buffers), and pairs are APPENDED to `out` - callers chain all cells of
/// a snapshot into one result vector without a per-cell allocation.
void GridQuery(const std::vector<GridObject>& cell_objects,
               const RangeJoinOptions& options, bool use_lemma2,
               CellQueryScratch& scratch, std::vector<NeighborPair>& out);

/// GridSync: merges per-cell results, canonicalises pairs to a < b, sorts,
/// and removes duplicates (duplicates only exist for non-Lemma variants;
/// for full RJC this is a pure merge). Consumes the per-cell buffers - an
/// rvalue so call sites hand the buffers over instead of copying them.
std::vector<NeighborPair> GridSync(
    std::vector<std::vector<NeighborPair>>&& per_cell);

/// The complete range join RJ(snapshot, eps) over the GR-index: the
/// production path with both lemmas, or an ablation variant.
std::vector<NeighborPair> RangeJoinRJC(const Snapshot& snapshot,
                                       const RangeJoinOptions& options,
                                       const RangeJoinVariant& variant = {});

/// RangeJoinRJC reusing `scratch` across snapshots. Returns the result in
/// scratch.pairs (valid until the next call on the same scratch).
const std::vector<NeighborPair>& RangeJoinRJC(const Snapshot& snapshot,
                                              const RangeJoinOptions& options,
                                              const RangeJoinVariant& variant,
                                              JoinScratch& scratch);

/// SRJ baseline [36]: full range-region replication, index-then-query,
/// deduplication at sync. No Lemma 1 / Lemma 2 savings.
std::vector<NeighborPair> RangeJoinSRJ(const Snapshot& snapshot,
                                       const RangeJoinOptions& options);

/// RangeJoinSRJ reusing `scratch`; same contract as the RJC overload.
const std::vector<NeighborPair>& RangeJoinSRJ(const Snapshot& snapshot,
                                              const RangeJoinOptions& options,
                                              JoinScratch& scratch);

/// O(n^2) reference join used by tests and tiny snapshots.
std::vector<NeighborPair> RangeJoinBrute(
    const Snapshot& snapshot, double eps,
    DistanceMetric metric = DistanceMetric::kL1);

}  // namespace comove::cluster

#endif  // COMOVE_CLUSTER_RANGE_JOIN_H_
