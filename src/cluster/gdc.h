#ifndef COMOVE_CLUSTER_GDC_H_
#define COMOVE_CLUSTER_GDC_H_

#include <vector>

#include "cluster/dbscan.h"
#include "common/types.h"

/// \file
/// GDC baseline: grid-based DBSCAN (the paper's adaptation of [14] to the
/// distributed engine). The data space is divided by a grid derived from
/// eps itself - cells of width eps, each a keyed partition - and every
/// point is replicated to the 8 neighbouring cells, since eps-neighbours
/// can live at most one eps-cell away. The paper's observation (Fig.
/// 10/11) is that tying the partitioning to the small eps creates far
/// more partitions and replicas than the lg-tuned GR-index, which is
/// exactly what this implementation exhibits.

namespace comove::cluster {

/// Returns every unordered eps-neighbour pair (a < b, each once) using the
/// eps-width grid with 8-neighbour replication.
std::vector<NeighborPair> GdcNeighborPairs(
    const Snapshot& snapshot, double eps,
    DistanceMetric metric = DistanceMetric::kL1);

/// Full GDC clustering of one snapshot: eps-grid neighbour search
/// followed by the shared DBSCAN pass.
ClusterSnapshot GdcCluster(const Snapshot& snapshot, double eps,
                           const DbscanOptions& options,
                           DistanceMetric metric = DistanceMetric::kL1);

}  // namespace comove::cluster

#endif  // COMOVE_CLUSTER_GDC_H_
