#include "pattern/live_index.h"

#include <algorithm>

namespace comove::pattern {

void LivePatternIndex::Add(const CoMovementPattern& pattern) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = patterns_.try_emplace(pattern.objects, pattern);
  if (!inserted) {
    if (pattern.times.size() > it->second.times.size()) {
      it->second = pattern;
    }
    return;  // postings already exist
  }
  for (const TrajectoryId id : pattern.objects) {
    by_object_[id].insert(pattern.objects);
  }
}

std::size_t LivePatternIndex::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return patterns_.size();
}

std::vector<CoMovementPattern> LivePatternIndex::PatternsContaining(
    TrajectoryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CoMovementPattern> out;
  const auto it = by_object_.find(id);
  if (it == by_object_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& objects : it->second) {
    out.push_back(patterns_.at(objects));
  }
  return out;
}

std::vector<CoMovementPattern> LivePatternIndex::ActiveAt(
    Timestamp t) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CoMovementPattern> out;
  for (const auto& [objects, pattern] : patterns_) {
    if (std::binary_search(pattern.times.begin(), pattern.times.end(), t)) {
      out.push_back(pattern);
    }
  }
  return out;
}

std::vector<TrajectoryId> LivePatternIndex::CompanionsOf(
    TrajectoryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<TrajectoryId> companions;
  const auto it = by_object_.find(id);
  if (it != by_object_.end()) {
    for (const auto& objects : it->second) {
      for (const TrajectoryId other : objects) {
        if (other != id) companions.insert(other);
      }
    }
  }
  return {companions.begin(), companions.end()};
}

CoMovementPattern LivePatternIndex::StrongestPatternOf(
    TrajectoryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  CoMovementPattern best;
  const auto it = by_object_.find(id);
  if (it == by_object_.end()) return best;
  for (const auto& objects : it->second) {
    const CoMovementPattern& p = patterns_.at(objects);
    if (p.times.size() > best.times.size()) best = p;
  }
  return best;
}

}  // namespace comove::pattern
