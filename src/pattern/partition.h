#ifndef COMOVE_PATTERN_PARTITION_H_
#define COMOVE_PATTERN_PARTITION_H_

#include <vector>

#include "common/constraints.h"
#include "common/types.h"

/// \file
/// Id-based partitioning (§6.1): for every trajectory o of every
/// sufficiently large cluster (Lemma 3: |C| >= M), the partition P_t(o)
/// contains the cluster members with ids larger than o. Partitions of the
/// same owner are routed to the same subtask across time, which is the
/// whole distribution scheme - unlike SPARE's star partitioning it needs
/// no advance knowledge of which trajectories are related.

namespace comove::pattern {

/// One partition P_t(o).
struct Partition {
  TrajectoryId owner = 0;
  Timestamp time = 0;
  /// Cluster members with id > owner, ascending. May be empty (an owner
  /// whose cluster tail is empty still anchors patterns of other owners).
  std::vector<TrajectoryId> members;
};

/// Builds all partitions of one cluster snapshot, applying Lemma 3
/// (clusters smaller than `constraints.m` cannot host a pattern and are
/// dropped).
std::vector<Partition> MakePartitions(const ClusterSnapshot& snapshot,
                                      const PatternConstraints& constraints);

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_PARTITION_H_
