#ifndef COMOVE_PATTERN_ANALYSIS_H_
#define COMOVE_PATTERN_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"

/// \file
/// Post-processing of detected pattern sets. The general CP definition is
/// closed under object subsets, so raw enumerator output contains every
/// qualifying subset of each travelling group; downstream applications
/// usually want the maximal patterns, summary statistics, or the induced
/// co-movement relation between objects.

namespace comove::pattern {

/// Removes every pattern dominated by another: P is dominated by Q when
/// P.objects is a strict subset of Q.objects and P's witness times are a
/// subset of Q's. What remains are the maximal patterns (by object set,
/// at equal-or-better time support). Input order is preserved.
std::vector<CoMovementPattern> FilterMaximalPatterns(
    std::vector<CoMovementPattern> patterns);

/// Summary statistics over a pattern set.
struct PatternStatistics {
  std::int64_t pattern_count = 0;
  std::int64_t distinct_objects = 0;
  double mean_size = 0.0;           ///< objects per pattern
  double mean_duration = 0.0;       ///< |T| per pattern
  std::int64_t max_size = 0;
  std::int64_t max_duration = 0;
  /// Histogram: pattern size -> count.
  std::map<std::int64_t, std::int64_t> size_histogram;
};

PatternStatistics ComputePatternStatistics(
    const std::vector<CoMovementPattern>& patterns);

/// The co-movement relation induced by a pattern set: an undirected graph
/// over objects where an edge's weight is the longest witness duration of
/// any pattern containing both endpoints.
class CoMovementGraph {
 public:
  /// Builds the graph from patterns (every pair within each pattern).
  static CoMovementGraph FromPatterns(
      const std::vector<CoMovementPattern>& patterns);

  /// Longest shared witness duration, or 0 when a and b never co-move.
  std::int64_t EdgeWeight(TrajectoryId a, TrajectoryId b) const;

  /// Number of distinct co-movers of `id`.
  std::int64_t Degree(TrajectoryId id) const;

  /// Connected components ("travel communities"), each sorted ascending,
  /// ordered by smallest member. Objects with no edges are omitted.
  std::vector<std::vector<TrajectoryId>> Components() const;

  std::int64_t node_count() const {
    return static_cast<std::int64_t>(adjacency_.size());
  }
  std::int64_t edge_count() const { return edge_count_; }

 private:
  std::map<TrajectoryId, std::map<TrajectoryId, std::int64_t>> adjacency_;
  std::int64_t edge_count_ = 0;
};

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_ANALYSIS_H_
