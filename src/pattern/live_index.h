#ifndef COMOVE_PATTERN_LIVE_INDEX_H_
#define COMOVE_PATTERN_LIVE_INDEX_H_

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "pattern/enumerator.h"

/// \file
/// A queryable, thread-safe index over the patterns detected so far -
/// the structure an application (Fig. 1's movement predictor, a fleet
/// dashboard) keeps while the pipeline runs. Plug AsSink() into
/// IcpeOptions::on_pattern (or any enumerator) and query concurrently.

namespace comove::pattern {

/// Deduplicating live index with by-object and by-time lookups.
class LivePatternIndex {
 public:
  LivePatternIndex() = default;
  LivePatternIndex(const LivePatternIndex&) = delete;
  LivePatternIndex& operator=(const LivePatternIndex&) = delete;

  /// Sink to feed emissions into the index; safe from multiple threads.
  PatternSink AsSink() {
    return [this](const CoMovementPattern& p) { Add(p); };
  }

  void Add(const CoMovementPattern& pattern);

  /// Number of distinct object sets indexed.
  std::size_t size() const;

  /// Patterns whose object set contains `id`, ordered by object set.
  std::vector<CoMovementPattern> PatternsContaining(TrajectoryId id) const;

  /// Patterns whose witness sequence includes time `t`.
  std::vector<CoMovementPattern> ActiveAt(Timestamp t) const;

  /// All distinct co-movers of `id` across indexed patterns, ascending.
  std::vector<TrajectoryId> CompanionsOf(TrajectoryId id) const;

  /// The pattern containing `id` with the longest witness, or nullopt-ish
  /// empty pattern when none exists.
  CoMovementPattern StrongestPatternOf(TrajectoryId id) const;

 private:
  mutable std::mutex mu_;
  /// object set -> pattern (longest witness wins).
  std::map<std::vector<TrajectoryId>, CoMovementPattern> patterns_;
  /// object -> object sets containing it.
  std::map<TrajectoryId, std::set<std::vector<TrajectoryId>>> by_object_;
};

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_LIVE_INDEX_H_
