#include "pattern/variable_bit_enumerator.h"

#include <algorithm>

#include "common/check.h"
#include "pattern/fixed_bit_enumerator.h"

namespace comove::pattern {

VariableBitEnumerator::VariableBitEnumerator(
    const PatternConstraints& constraints, PatternSink sink)
    : StreamingEnumerator(constraints, std::move(sink)) {}

void VariableBitEnumerator::ProcessTime(Timestamp t,
                                        PartitionsByOwner&& by_owner) {
  // Ensure owner states exist for owners first seen at t.
  for (const auto& [owner, partition] : by_owner) {
    owners_.try_emplace(owner);
  }

  for (auto owner_it = owners_.begin(); owner_it != owners_.end();) {
    const TrajectoryId owner = owner_it->first;
    OwnerState& state = owner_it->second;
    const auto part_it = by_owner.find(owner);
    static const std::vector<TrajectoryId> kNoMembers;
    const std::vector<TrajectoryId>& members =
        part_it != by_owner.end() ? part_it->second.members : kNoMembers;

    // Lines 2-12 of Algorithm 5: extend every open string with this tick's
    // membership bit; strings whose gap exceeds G close (Lemma 7).
    std::vector<TrajectoryId> to_close;
    for (auto& [id, bits] : state.open) {
      const bool present =
          std::binary_search(members.begin(), members.end(), id);
      bits.Append(present);
      if (!present && bits.TrailingZeros() > constraints().g) {
        to_close.push_back(id);
      }
    }
    std::sort(to_close.begin(), to_close.end());
    for (const TrajectoryId id : to_close) {
      auto open_it = state.open.find(id);
      BitString bits = std::move(open_it->second);
      state.open.erase(open_it);
      open_starts_.erase(open_starts_.find(bits.start_time()));
      CloseString(owner, &state, id, std::move(bits));
    }

    // Lines 13-14: open a fresh string for members seen anew.
    for (const TrajectoryId id : members) {
      if (state.open.find(id) == state.open.end()) {
        BitString bits(t, 0);
        bits.Append(true);
        state.open.emplace(id, std::move(bits));
        open_starts_.insert(t);
      }
    }

    if (state.open.empty() && state.candidates.empty()) {
      owner_it = owners_.erase(owner_it);
    } else {
      ++owner_it;
    }
  }
}

void VariableBitEnumerator::CloseString(TrajectoryId owner,
                                        OwnerState* state, TrajectoryId id,
                                        BitString bits) {
  bits.TrimTrailingZeros();
  if (bits.length() == 0 || !bits.SatisfiesKLG(constraints())) {
    // tag = -1 in Algorithm 5: the episode can never qualify; discard.
    return;
  }
  Candidate closed{id, std::move(bits)};

  // Lines 15-20: filter the candidate list with Lemma 8 (windows must be
  // able to overlap by at least K), then enumerate patterns containing the
  // newly closed string.
  std::vector<TrajectoryId> ids;
  std::vector<BitString> bit_list;
  for (const Candidate& c : state->candidates) {
    const Timestamp overlap_start =
        std::max(c.bits.start_time(), closed.bits.start_time());
    const Timestamp overlap_end =
        std::min(c.end_time(), closed.end_time());
    if (overlap_end - overlap_start + 1 >= constraints().k) {
      ids.push_back(c.id);
      bit_list.push_back(c.bits);
    }
  }
  const auto require = static_cast<std::int32_t>(ids.size());
  ids.push_back(closed.id);
  bit_list.push_back(closed.bits);
  EnumerateFromCandidates(ids, bit_list, owner, constraints(), require,
                          sink());

  state->candidates.push_back(std::move(closed));
  ++candidate_count_;
}

void VariableBitEnumerator::FlushAtEnd(Timestamp /*next_time*/) {
  // Close every open string as if followed by G+1 empty snapshots.
  for (auto& [owner, state] : owners_) {
    std::vector<TrajectoryId> ids;
    ids.reserve(state.open.size());
    for (const auto& [id, bits] : state.open) ids.push_back(id);
    // Deterministic order keeps pattern emission reproducible.
    std::sort(ids.begin(), ids.end());
    for (const TrajectoryId id : ids) {
      auto it = state.open.find(id);
      BitString bits = std::move(it->second);
      state.open.erase(it);
      CloseString(owner, &state, id, std::move(bits));
    }
  }
  owners_.clear();
  open_starts_.clear();
  candidate_count_ = 0;
}

}  // namespace comove::pattern

namespace comove::pattern {

void VariableBitEnumerator::SaveDerived(BinaryWriter* writer) const {
  writer->WriteU64(owners_.size());
  for (const auto& [owner, state] : owners_) {
    writer->WriteI64(owner);
    writer->WriteU64(state.open.size());
    for (const auto& [id, bits] : state.open) {
      writer->WriteI64(id);
      bits.Serialize(writer);
    }
    writer->WriteU64(state.candidates.size());
    for (const Candidate& cand : state.candidates) {
      writer->WriteI64(cand.id);
      cand.bits.Serialize(writer);
    }
  }
}

bool VariableBitEnumerator::RestoreDerived(BinaryReader* reader) {
  owners_.clear();
  open_starts_.clear();
  candidate_count_ = 0;
  const std::uint64_t owner_count = reader->ReadU64();
  for (std::uint64_t i = 0; i < owner_count && reader->ok(); ++i) {
    const TrajectoryId owner = reader->ReadI64();
    OwnerState state;
    const std::uint64_t open_count = reader->ReadU64();
    for (std::uint64_t o = 0; o < open_count && reader->ok(); ++o) {
      const TrajectoryId id = reader->ReadI64();
      BitString bits;
      if (!bits.Deserialize(reader)) return false;
      open_starts_.insert(bits.start_time());
      state.open.emplace(id, std::move(bits));
    }
    const std::uint64_t cand_count = reader->ReadU64();
    for (std::uint64_t c = 0; c < cand_count && reader->ok(); ++c) {
      Candidate cand;
      cand.id = reader->ReadI64();
      if (!cand.bits.Deserialize(reader)) return false;
      ++candidate_count_;
      state.candidates.push_back(std::move(cand));
    }
    owners_.emplace(owner, std::move(state));
  }
  return reader->ok();
}

}  // namespace comove::pattern
