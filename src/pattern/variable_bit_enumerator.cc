#include "pattern/variable_bit_enumerator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace comove::pattern {

VariableBitEnumerator::VariableBitEnumerator(
    const PatternConstraints& constraints, PatternSink sink)
    : StreamingEnumerator(constraints, std::move(sink)) {}

EnumerationStats VariableBitEnumerator::enumeration_stats() const {
  EnumerationStats s = stats_;
  s.apriori_nodes = scratch_.nodes_visited;
  s.apriori_pruned = scratch_.nodes_pruned;
  return s;
}

void VariableBitEnumerator::ProcessTime(Timestamp t,
                                        PartitionsByOwner&& by_owner) {
  // Ensure owner states exist for owners first seen at t.
  for (const auto& [owner, partition] : by_owner) {
    owners_.try_emplace(owner);
  }

  for (auto owner_it = owners_.begin(); owner_it != owners_.end();) {
    const TrajectoryId owner = owner_it->first;
    OwnerState& state = owner_it->second;
    const auto part_it = by_owner.find(owner);
    static const std::vector<TrajectoryId> kNoMembers;
    const std::vector<TrajectoryId>& members =
        part_it != by_owner.end() ? part_it->second.members : kNoMembers;

    // Lines 2-12 of Algorithm 5, as one merge of the sorted open column
    // against the sorted member list. Present strings materialise their
    // pending zero run and gain a one; absent strings pay a single counter
    // increment, and close (Lemma 7) in ascending id order - the same
    // order the sort-then-close of the per-string walk produced - the
    // moment the run exceeds G. Closed entries are compacted out in place.
    std::size_t out = 0;
    std::size_t mi = 0;
    std::size_t fresh = 0;
    const std::size_t open_count = state.open.size();
    for (std::size_t oi = 0; oi < open_count; ++oi) {
      OpenString& s = state.open[oi];
      while (mi < members.size() && members[mi] < s.id) {
        ++mi;
        ++fresh;
      }
      const bool present = mi < members.size() && members[mi] == s.id;
      if (present) {
        ++mi;
        s.bits.AppendZeros(s.zero_run);
        s.bits.Append(true);
        s.zero_run = 0;
      } else {
        ++s.zero_run;
        if (s.zero_run > constraints().g) {
          open_starts_.erase(open_starts_.find(s.bits.start_time()));
          CloseString(owner, &state, s.id, std::move(s.bits));
          continue;  // entry retired, not copied to `out`
        }
      }
      if (out != oi) state.open[out] = std::move(s);
      ++out;
    }
    state.open.resize(out);
    fresh += members.size() - mi;

    // Lines 13-14: open a fresh string for members seen anew, spliced in
    // id order. (A string closed above cannot reopen here: closure implies
    // the id is absent from `members`.)
    if (fresh > 0) {
      merged_open_.clear();
      merged_open_.reserve(state.open.size() + fresh);
      std::size_t oi = 0;
      mi = 0;
      while (oi < state.open.size() || mi < members.size()) {
        const bool take_open =
            oi < state.open.size() &&
            (mi >= members.size() || state.open[oi].id <= members[mi]);
        if (take_open) {
          if (mi < members.size() && state.open[oi].id == members[mi]) ++mi;
          merged_open_.push_back(std::move(state.open[oi]));
          ++oi;
        } else {
          OpenString s;
          s.id = members[mi];
          s.bits = BitString(t, 0);
          s.bits.Append(true);
          merged_open_.push_back(std::move(s));
          open_starts_.insert(t);
          ++mi;
        }
      }
      state.open.swap(merged_open_);
      stats_.strings_opened += static_cast<std::int64_t>(fresh);
    }

    if (state.open.empty() && state.candidates.empty()) {
      owner_it = owners_.erase(owner_it);
    } else {
      ++owner_it;
    }
  }
}

void VariableBitEnumerator::CloseString(TrajectoryId owner,
                                        OwnerState* state, TrajectoryId id,
                                        BitString bits) {
  ++stats_.strings_closed;
  // Open strings are kept trimmed (pending zeros live in zero_run), so
  // this is a no-op on the ProcessTime path; it matters only for restored
  // or flushed strings.
  bits.TrimTrailingZeros();
  if (bits.length() == 0 || !bits.SatisfiesKLG(constraints())) {
    // tag = -1 in Algorithm 5: the episode can never qualify; discard.
    return;
  }
  Candidate closed{id, std::move(bits)};

  // Lines 15-20: filter the candidate list with Lemma 8 (windows must be
  // able to overlap by at least K), then enumerate patterns containing the
  // newly closed string. The views borrow the stored candidate strings -
  // no per-close deep copy of every surviving candidate's words.
  views_.clear();
  views_.push_back(CandidateView{closed.id, &closed.bits});
  for (const Candidate& c : state->candidates) {
    const Timestamp overlap_start =
        std::max(c.bits.start_time(), closed.bits.start_time());
    const Timestamp overlap_end = std::min(c.end_time(), closed.end_time());
    if (overlap_end - overlap_start + 1 >= constraints().k) {
      views_.push_back(CandidateView{c.id, &c.bits});
    }
  }
  EnumerateFromCandidates(views_.data(), views_.size(), owner, constraints(),
                          /*first_mandatory=*/true, sink(), &scratch_);

  state->candidates.push_back(std::move(closed));
  ++candidate_count_;
  stats_.candidates_peak = std::max(
      stats_.candidates_peak, static_cast<std::int64_t>(candidate_count_));
}

void VariableBitEnumerator::FlushAtEnd(Timestamp /*next_time*/) {
  // Close every open string as if followed by G+1 empty snapshots. The
  // open column is already sorted by id, which keeps pattern emission
  // reproducible.
  for (auto& [owner, state] : owners_) {
    for (std::size_t i = 0; i < state.open.size(); ++i) {
      CloseString(owner, &state, state.open[i].id,
                  std::move(state.open[i].bits));
    }
    state.open.clear();
  }
  owners_.clear();
  open_starts_.clear();
  candidate_count_ = 0;
}

void VariableBitEnumerator::SaveDerived(BinaryWriter* writer) const {
  writer->WriteU64(owners_.size());
  for (const auto& [owner, state] : owners_) {
    writer->WriteI64(owner);
    writer->WriteU64(state.open.size());
    for (const OpenString& s : state.open) {
      writer->WriteI64(s.id);
      // Materialise the pending zero run so the wire format stays the
      // plain bit string older bundles carry.
      BitString padded = s.bits;
      padded.AppendZeros(s.zero_run);
      padded.Serialize(writer);
    }
    writer->WriteU64(state.candidates.size());
    for (const Candidate& cand : state.candidates) {
      writer->WriteI64(cand.id);
      cand.bits.Serialize(writer);
    }
  }
}

bool VariableBitEnumerator::RestoreDerived(BinaryReader* reader) {
  owners_.clear();
  open_starts_.clear();
  candidate_count_ = 0;
  const std::uint64_t owner_count = reader->ReadU64();
  for (std::uint64_t i = 0; i < owner_count && reader->ok(); ++i) {
    const TrajectoryId owner = reader->ReadI64();
    OwnerState state;
    const std::uint64_t open_count = reader->ReadU64();
    for (std::uint64_t o = 0; o < open_count && reader->ok(); ++o) {
      const TrajectoryId id = reader->ReadI64();
      // The merge walk requires a strictly ascending open column.
      if (!state.open.empty() && id <= state.open.back().id) return false;
      BitString bits;
      if (!bits.Deserialize(reader)) return false;
      const std::int32_t zero_run = bits.TrailingZeros();
      // An open string always contains a one, and one with more than G
      // trailing zeros would already have closed (Lemma 7).
      if (bits.length() == 0 || zero_run >= bits.length()) return false;
      if (zero_run > constraints().g) return false;
      bits.TrimTrailingZeros();
      open_starts_.insert(bits.start_time());
      OpenString s;
      s.id = id;
      s.bits = std::move(bits);
      s.zero_run = zero_run;
      state.open.push_back(std::move(s));
    }
    const std::uint64_t cand_count = reader->ReadU64();
    for (std::uint64_t c = 0; c < cand_count && reader->ok(); ++c) {
      Candidate cand;
      cand.id = reader->ReadI64();
      if (!cand.bits.Deserialize(reader)) return false;
      // Only trimmed, (K, L, G)-qualifying strings ever enter the
      // candidate list; anything else is a corrupt bundle.
      if (cand.bits.length() == 0 ||
          !cand.bits.Get(cand.bits.length() - 1)) {
        return false;
      }
      if (!cand.bits.SatisfiesKLG(constraints())) return false;
      ++candidate_count_;
      state.candidates.push_back(std::move(cand));
    }
    owners_.emplace(owner, std::move(state));
  }
  return reader->ok();
}

}  // namespace comove::pattern
