#include "pattern/fixed_bit_enumerator.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/time_sequence.h"

namespace comove::pattern {

namespace {

/// Recursive apriori enumeration over arena-resident word rows. Indices
/// are chosen in increasing order; validity is evaluated from cardinality
/// M-1 on, and only valid patterns are extended (monotonicity: AND can
/// only clear bits). Below the target cardinality partial ANDs are pruned
/// by the generalised Lemma 8 check (fewer than K ones can never reach
/// duration K).
///
/// No allocation per node: every candidate is zero-extended once into a
/// shared frame [min start, max end) of `frame_len` bits, recursion level
/// d ANDs into the fixed arena slot d with a running popcount, and depth 0
/// aliases the candidate row itself. All slots live until the next
/// scratch-arena reset.
class AprioriRunner {
 public:
  AprioriRunner(const CandidateView* cands, std::size_t count,
                TrajectoryId owner, const PatternConstraints& constraints,
                bool first_mandatory, const PatternSink& sink,
                EnumerationScratch* scratch)
      : cands_(cands),
        count_(count),
        owner_(owner),
        constraints_(constraints),
        first_mandatory_(first_mandatory),
        sink_(sink),
        scratch_(scratch) {
    frame_start_ = cands[0].bits->start_time();
    Timestamp frame_end = frame_start_;
    for (std::size_t i = 0; i < count; ++i) {
      const BitString& b = *cands[i].bits;
      if (b.empty()) continue;
      frame_start_ = std::min(frame_start_, b.start_time());
      frame_end = std::max(frame_end, b.start_time() + b.length());
    }
    frame_len_ = std::max<std::int32_t>(frame_end - frame_start_, 0);
    nwords_ = BitString::WordCountFor(frame_len_);

    Arena& arena = scratch_->arena;
    arena.Reset();
    rows_ = static_cast<std::uint64_t*>(
        arena.Allocate(count * nwords_ * sizeof(std::uint64_t)));
    stack_ = static_cast<std::uint64_t*>(
        arena.Allocate(count * nwords_ * sizeof(std::uint64_t)));
    pops_ = static_cast<std::int32_t*>(
        arena.Allocate(count * sizeof(std::int32_t)));
    chosen_ = static_cast<std::size_t*>(
        arena.Allocate(count * sizeof(std::size_t)));
    std::memset(rows_, 0, count * nwords_ * sizeof(std::uint64_t));
    for (std::size_t i = 0; i < count; ++i) {
      ZeroExtendInto(*cands[i].bits, rows_ + i * nwords_);
      pops_[i] = CountOnesInWords(rows_ + i * nwords_, nwords_);
    }
  }

  void Run() {
    if (frame_len_ <= 0) return;
    if (!first_mandatory_) {
      Recurse(0, nullptr);
      return;
    }
    // Element 0 is mandatory (VBA: the newly closed string); every emitted
    // set contains it, so no previously known pattern is re-enumerated.
    ++scratch_->nodes_visited;
    if (pops_[0] < constraints_.k) {
      ++scratch_->nodes_pruned;
      return;
    }
    chosen_[0] = 0;
    depth_ = 1;
    if (1 >= constraints_.m - 1) {
      if (WordsSatisfyKLG(rows_, frame_len_, constraints_)) {
        Emit(rows_);
        Recurse(1, rows_);
      } else {
        ++scratch_->nodes_pruned;
      }
    } else {
      Recurse(1, rows_);
    }
  }

 private:
  /// Copies `src`'s packed words into the frame row: dst bit
  /// (src.start_time() - frame_start_ + j) = src bit j. Bits outside the
  /// source window stay zero, which is exactly why ANDing full frame rows
  /// equals AndAligned over the shrinking window intersection.
  void ZeroExtendInto(const BitString& src, std::uint64_t* dst) const {
    if (src.empty()) return;
    const std::int32_t offset = src.start_time() - frame_start_;
    const auto off_words = static_cast<std::size_t>(offset / 64);
    const std::int32_t off_bits = offset % 64;
    const std::uint64_t* words = src.word_data();
    const std::size_t wc = src.word_count();
    for (std::size_t w = 0; w < wc; ++w) {
      const std::uint64_t v = words[w];
      dst[off_words + w] |= v << off_bits;
      if (off_bits != 0) {
        const std::uint64_t hi = v >> (64 - off_bits);
        if (hi != 0) dst[off_words + w + 1] |= hi;
      }
    }
  }

  void Recurse(std::size_t start, const std::uint64_t* partial) {
    for (std::size_t i = start; i < count_; ++i) {
      ++scratch_->nodes_visited;
      const std::uint64_t* row = rows_ + i * nwords_;
      const std::uint64_t* combined;
      std::int32_t ones;
      if (depth_ == 0) {
        combined = row;
        ones = pops_[i];
      } else {
        std::uint64_t* slot = stack_ + depth_ * nwords_;
        ones = 0;
        for (std::size_t w = 0; w < nwords_; ++w) {
          const std::uint64_t v = partial[w] & row[w];
          slot[w] = v;
          ones += std::popcount(v);
        }
        combined = slot;
      }
      // Generalised Lemma 8: not enough ones left for duration K.
      if (ones < constraints_.k) {
        ++scratch_->nodes_pruned;
        continue;
      }
      chosen_[depth_] = i;
      ++depth_;
      if (static_cast<std::int32_t>(depth_) >= constraints_.m - 1) {
        if (WordsSatisfyKLG(combined, frame_len_, constraints_)) {
          Emit(combined);
          Recurse(i + 1, combined);
        } else {
          // Invalid at this level: apriori property prunes all supersets.
          ++scratch_->nodes_pruned;
        }
      } else {
        Recurse(i + 1, combined);
      }
      --depth_;
    }
  }

  void Emit(const std::uint64_t* combined) {
    CoMovementPattern pattern;
    pattern.objects.reserve(depth_ + 1);
    for (std::size_t d = 0; d < depth_; ++d) {
      pattern.objects.push_back(cands_[chosen_[d]].id);
    }
    pattern.objects.push_back(owner_);
    std::sort(pattern.objects.begin(), pattern.objects.end());
    scratch_->one_times.clear();
    AppendOneTimes(combined, frame_len_, frame_start_, &scratch_->one_times);
    pattern.times =
        BestQualifyingSubsequence(scratch_->one_times, constraints_);
    sink_(pattern);
  }

  const CandidateView* cands_;
  const std::size_t count_;
  const TrajectoryId owner_;
  const PatternConstraints& constraints_;
  const bool first_mandatory_;
  const PatternSink& sink_;
  EnumerationScratch* scratch_;

  Timestamp frame_start_ = 0;
  std::int32_t frame_len_ = 0;
  std::size_t nwords_ = 0;
  std::uint64_t* rows_ = nullptr;   ///< count x nwords zero-extended strings
  std::uint64_t* stack_ = nullptr;  ///< per-level partial-AND slots
  std::int32_t* pops_ = nullptr;    ///< per-candidate popcounts
  std::size_t* chosen_ = nullptr;   ///< candidate indices of the open path
  std::size_t depth_ = 0;
};

}  // namespace

void EnumerateFromCandidates(const CandidateView* candidates,
                             std::size_t count, TrajectoryId owner,
                             const PatternConstraints& constraints,
                             bool first_mandatory, const PatternSink& sink,
                             EnumerationScratch* scratch) {
  COMOVE_CHECK(scratch != nullptr);
  if (count == 0) return;
  if (static_cast<std::int32_t>(count) < constraints.m - 1) return;
  AprioriRunner(candidates, count, owner, constraints, first_mandatory, sink,
                scratch)
      .Run();
}

FixedBitEnumerator::FixedBitEnumerator(const PatternConstraints& constraints,
                                       PatternSink sink)
    : StreamingEnumerator(constraints, std::move(sink)),
      eta_(constraints.Eta()) {}

EnumerationStats FixedBitEnumerator::enumeration_stats() const {
  EnumerationStats s = stats_;
  s.apriori_nodes = scratch_.nodes_visited;
  s.apriori_pruned = scratch_.nodes_pruned;
  return s;
}

void FixedBitEnumerator::AppendTick(OwnerState* state) {
  const std::vector<TrajectoryId>& members = state->history.back();
  // Every live roller is history.size()-1 bits deep; append this tick's
  // membership bit to each with one walk of the two sorted columns.
  const std::size_t old_count = state->rolling_ids.size();
  std::size_t mi = 0;
  std::size_t fresh = 0;
  for (std::size_t ri = 0; ri < old_count; ++ri) {
    const TrajectoryId id = state->rolling_ids[ri];
    while (mi < members.size() && members[mi] < id) {
      ++mi;
      ++fresh;
    }
    const bool present = mi < members.size() && members[mi] == id;
    if (present) ++mi;
    state->rolling_bits[ri].Append(present);
  }
  fresh += members.size() - mi;
  if (fresh == 0) return;

  // Members seen for the first time in this window start a new roller
  // (zeros up to this tick, then a one); splice them in id order.
  const auto len = static_cast<std::int32_t>(state->history.size()) - 1;
  merged_ids_.clear();
  merged_bits_.clear();
  merged_ids_.reserve(old_count + fresh);
  merged_bits_.reserve(old_count + fresh);
  std::size_t ri = 0;
  mi = 0;
  while (ri < old_count || mi < members.size()) {
    const bool take_roller =
        ri < old_count &&
        (mi >= members.size() || state->rolling_ids[ri] <= members[mi]);
    if (take_roller) {
      if (mi < members.size() && state->rolling_ids[ri] == members[mi]) ++mi;
      merged_ids_.push_back(state->rolling_ids[ri]);
      merged_bits_.push_back(std::move(state->rolling_bits[ri]));
      ++ri;
    } else {
      BitString b(state->history_start, len);
      b.Append(true);
      merged_ids_.push_back(members[mi]);
      merged_bits_.push_back(std::move(b));
      ++mi;
    }
  }
  state->rolling_ids.swap(merged_ids_);
  state->rolling_bits.swap(merged_bits_);
  stats_.strings_opened += static_cast<std::int64_t>(fresh);
  live_rollers_ += static_cast<std::int64_t>(fresh);
  stats_.candidates_peak = std::max(stats_.candidates_peak, live_rollers_);
}

void FixedBitEnumerator::ProcessTime(Timestamp t,
                                     PartitionsByOwner&& by_owner) {
  // Extend histories of known owners; create states for new owners.
  for (auto& [owner, partition] : by_owner) {
    auto it = owners_.find(owner);
    if (it == owners_.end()) {
      OwnerState state;
      state.history_start = t;
      owners_.emplace(owner, std::move(state));
    }
  }
  for (auto& [owner, state] : owners_) {
    auto it = by_owner.find(owner);
    if (it != by_owner.end()) {
      state.history.push_back(std::move(it->second.members));
    } else {
      state.history.emplace_back();
    }
    AppendTick(&state);
  }
  // Complete windows: when a history reaches eta entries its front time is
  // fully covered and the Algorithm 4 batch can run; afterwards the window
  // advances by one - pop the front tick and funnel-shift every roller
  // instead of rebuilding eta bits per trajectory.
  for (auto it = owners_.begin(); it != owners_.end();) {
    OwnerState& state = it->second;
    if (static_cast<std::int32_t>(state.history.size()) == eta_) {
      if (!state.history.front().empty()) {
        RunWindow(it->first, state);
      }
      state.history.pop_front();
      ++state.history_start;
      std::size_t out = 0;
      for (std::size_t i = 0; i < state.rolling_bits.size(); ++i) {
        state.rolling_bits[i].DropFront();
        // An all-zero roller means the trajectory is absent from every
        // buffered tick: no future window can see it, drop it.
        if (!state.rolling_bits[i].IsZero()) {
          if (out != i) {
            state.rolling_ids[out] = state.rolling_ids[i];
            state.rolling_bits[out] = std::move(state.rolling_bits[i]);
          }
          ++out;
        }
      }
      const auto closed =
          static_cast<std::int64_t>(state.rolling_ids.size() - out);
      stats_.strings_closed += closed;
      live_rollers_ -= closed;
      state.rolling_ids.resize(out);
      state.rolling_bits.resize(out);
    }
    // No roller left <=> every buffered tick is empty for this owner.
    if (state.rolling_ids.empty()) {
      it = owners_.erase(it);
    } else {
      ++it;
    }
  }
}

void FixedBitEnumerator::RunWindow(TrajectoryId owner,
                                   const OwnerState& state) {
  const std::vector<TrajectoryId>& anchor = state.history.front();

  // Lines 2-8 of Algorithm 4: B[oi] for an anchor member oi is exactly its
  // rolling string (the window spans the full buffered history here);
  // keep those satisfying (K, L, G) as candidates. One walk of the two
  // sorted columns - an anchor member always has a roller (its bit 0 is
  // set), so the inner advance cannot run off the end.
  views_.clear();
  std::size_t ri = 0;
  for (const TrajectoryId oi : anchor) {
    while (ri < state.rolling_ids.size() && state.rolling_ids[ri] < oi) {
      ++ri;
    }
    COMOVE_DCHECK(ri < state.rolling_ids.size() &&
                  state.rolling_ids[ri] == oi);
    const BitString& b = state.rolling_bits[ri];
    ++ri;
    if (b.SatisfiesKLG(constraints())) {
      views_.push_back(CandidateView{oi, &b});
    }
  }

  // Lines 9-17: candidate-based apriori enumeration from level M-1.
  EnumerateFromCandidates(views_.data(), views_.size(), owner, constraints(),
                          /*first_mandatory=*/false, sink(), &scratch_);
}

void FixedBitEnumerator::FlushAtEnd(Timestamp next_time) {
  for (std::int32_t i = 0; i < eta_ && !owners_.empty(); ++i) {
    ProcessTime(next_time + i, {});
  }
  COMOVE_CHECK(owners_.empty());
}

void FixedBitEnumerator::SaveDerived(BinaryWriter* writer) const {
  writer->WriteU64(owners_.size());
  for (const auto& [owner, state] : owners_) {
    writer->WriteI64(owner);
    writer->WriteI32(state.history_start);
    writer->WriteU64(state.history.size());
    for (const auto& members : state.history) {
      writer->WriteIntVector(members);
    }
  }
}

bool FixedBitEnumerator::RestoreDerived(BinaryReader* reader) {
  owners_.clear();
  const std::uint64_t owner_count = reader->ReadU64();
  for (std::uint64_t i = 0; i < owner_count && reader->ok(); ++i) {
    const TrajectoryId owner = reader->ReadI64();
    OwnerState state;
    state.history_start = reader->ReadI32();
    const std::uint64_t history = reader->ReadU64();
    // A history longer than eta would be inconsistent state.
    if (history > static_cast<std::uint64_t>(eta_)) return false;
    for (std::uint64_t h = 0; h < history && reader->ok(); ++h) {
      auto members = reader->ReadIntVector<TrajectoryId>();
      if (!reader->ok()) return false;
      // RunWindow's merge walk (and the binary searches of older builds)
      // require strictly ascending member lists; reject corrupt bundles
      // instead of silently misbehaving.
      for (std::size_t j = 1; j < members.size(); ++j) {
        if (members[j] <= members[j - 1]) return false;
      }
      state.history.push_back(std::move(members));
      // Rollers are derived state: replay the tick to rebuild them.
      AppendTick(&state);
    }
    owners_.emplace(owner, std::move(state));
  }
  return reader->ok();
}

}  // namespace comove::pattern
