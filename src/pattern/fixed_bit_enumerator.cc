#include "pattern/fixed_bit_enumerator.h"

#include <algorithm>

#include "common/check.h"
#include "common/time_sequence.h"

namespace comove::pattern {

namespace {

/// Recursive apriori enumeration. Indices are chosen in increasing order;
/// validity is evaluated from cardinality m_minus_one on, and only valid
/// patterns are extended (monotonicity: AND can only clear bits). Below
/// the target cardinality partial ANDs are pruned by the generalised
/// Lemma 8 check (fewer than K ones can never reach duration K).
class AprioriEnumerator {
 public:
  AprioriEnumerator(const std::vector<TrajectoryId>& ids,
                    const std::vector<BitString>& bits, TrajectoryId owner,
                    const PatternConstraints& constraints,
                    bool first_mandatory, const PatternSink& sink)
      : ids_(ids),
        bits_(bits),
        owner_(owner),
        constraints_(constraints),
        first_mandatory_(first_mandatory),
        sink_(sink) {}

  void Run() {
    chosen_.clear();
    if (!first_mandatory_) {
      Recurse(0, BitString());
      return;
    }
    // Element 0 is mandatory (VBA: the newly closed string); every emitted
    // set contains it, so no previously known pattern is re-enumerated.
    if (ids_.empty()) return;
    const BitString& seed = bits_[0];
    if (seed.CountOnes() < constraints_.k) return;
    chosen_.push_back(0);
    if (1 >= constraints_.m - 1) {
      if (seed.SatisfiesKLG(constraints_)) {
        Emit(seed);
        Recurse(1, seed);
      }
    } else {
      Recurse(1, seed);
    }
  }

 private:
  void Recurse(std::size_t start, const BitString& partial) {
    for (std::size_t i = start; i < ids_.size(); ++i) {
      BitString combined = chosen_.empty()
                               ? bits_[i]
                               : BitString::AndAligned(partial, bits_[i]);
      // Generalised Lemma 8: not enough ones left for duration K.
      if (combined.CountOnes() < constraints_.k) continue;
      chosen_.push_back(i);
      const auto level = static_cast<std::int32_t>(chosen_.size());
      if (level >= constraints_.m - 1) {
        if (combined.SatisfiesKLG(constraints_)) {
          Emit(combined);
          Recurse(i + 1, combined);
        }
        // Invalid at this level: apriori property prunes all supersets.
      } else {
        Recurse(i + 1, combined);
      }
      chosen_.pop_back();
    }
  }

  void Emit(const BitString& combined) {
    CoMovementPattern pattern;
    pattern.objects.reserve(chosen_.size() + 1);
    for (const std::size_t i : chosen_) pattern.objects.push_back(ids_[i]);
    pattern.objects.push_back(owner_);
    std::sort(pattern.objects.begin(), pattern.objects.end());
    pattern.times =
        BestQualifyingSubsequence(combined.OneTimes(), constraints_);
    sink_(pattern);
  }

  const std::vector<TrajectoryId>& ids_;
  const std::vector<BitString>& bits_;
  const TrajectoryId owner_;
  const PatternConstraints& constraints_;
  const bool first_mandatory_;
  const PatternSink& sink_;
  std::vector<std::size_t> chosen_;
};

}  // namespace

void EnumerateFromCandidates(const std::vector<TrajectoryId>& candidate_ids,
                             const std::vector<BitString>& candidate_bits,
                             TrajectoryId owner,
                             const PatternConstraints& constraints,
                             std::int32_t require, const PatternSink& sink) {
  COMOVE_CHECK(candidate_ids.size() == candidate_bits.size());
  if (static_cast<std::int32_t>(candidate_ids.size()) < constraints.m - 1) {
    return;
  }
  if (require < 0) {
    AprioriEnumerator(candidate_ids, candidate_bits, owner, constraints,
                      /*first_mandatory=*/false, sink)
        .Run();
    return;
  }
  // Move the required candidate to the front so the recursion can make it
  // mandatory without exploring combinations that exclude it.
  const auto r = static_cast<std::size_t>(require);
  COMOVE_CHECK(r < candidate_ids.size());
  std::vector<TrajectoryId> ids;
  std::vector<BitString> bits;
  ids.reserve(candidate_ids.size());
  bits.reserve(candidate_bits.size());
  ids.push_back(candidate_ids[r]);
  bits.push_back(candidate_bits[r]);
  for (std::size_t i = 0; i < candidate_ids.size(); ++i) {
    if (i == r) continue;
    ids.push_back(candidate_ids[i]);
    bits.push_back(candidate_bits[i]);
  }
  AprioriEnumerator(ids, bits, owner, constraints, /*first_mandatory=*/true,
                    sink)
      .Run();
}

FixedBitEnumerator::FixedBitEnumerator(const PatternConstraints& constraints,
                                       PatternSink sink)
    : StreamingEnumerator(constraints, std::move(sink)),
      eta_(constraints.Eta()) {}

void FixedBitEnumerator::ProcessTime(Timestamp t,
                                     PartitionsByOwner&& by_owner) {
  // Extend histories of known owners; create states for new owners.
  for (auto& [owner, partition] : by_owner) {
    auto it = owners_.find(owner);
    if (it == owners_.end()) {
      OwnerState state;
      state.history_start = t;
      owners_.emplace(owner, std::move(state));
    }
  }
  for (auto& [owner, state] : owners_) {
    auto it = by_owner.find(owner);
    if (it != by_owner.end()) {
      state.history.push_back(std::move(it->second.members));
    } else {
      state.history.emplace_back();
    }
  }
  // Complete windows: when a history reaches eta entries its front time is
  // fully covered and the Algorithm 4 batch can run.
  for (auto it = owners_.begin(); it != owners_.end();) {
    OwnerState& state = it->second;
    if (static_cast<std::int32_t>(state.history.size()) == eta_) {
      if (!state.history.front().empty()) {
        RunWindow(it->first, state);
      }
      state.history.pop_front();
      ++state.history_start;
    }
    const bool all_empty =
        std::all_of(state.history.begin(), state.history.end(),
                    [](const auto& v) { return v.empty(); });
    if (all_empty) {
      it = owners_.erase(it);
    } else {
      ++it;
    }
  }
}

void FixedBitEnumerator::RunWindow(TrajectoryId owner,
                                   const OwnerState& state) {
  const Timestamp start = state.history_start;
  const std::vector<TrajectoryId>& anchor = state.history.front();

  // Lines 2-8 of Algorithm 4: build B[oi] for the anchor partition's
  // trajectories and keep those satisfying (K, L, G) as candidates.
  std::vector<TrajectoryId> candidate_ids;
  std::vector<BitString> candidate_bits;
  for (const TrajectoryId oi : anchor) {
    BitString b(start, eta_);
    std::int32_t j = 0;
    for (const auto& members : state.history) {
      if (std::binary_search(members.begin(), members.end(), oi)) {
        b.Set(j, true);
      }
      ++j;
    }
    if (b.SatisfiesKLG(constraints())) {
      candidate_ids.push_back(oi);
      candidate_bits.push_back(std::move(b));
    }
  }

  // Lines 9-17: candidate-based apriori enumeration from level M-1.
  EnumerateFromCandidates(candidate_ids, candidate_bits, owner,
                          constraints(), /*require=*/-1, sink());
}

void FixedBitEnumerator::FlushAtEnd(Timestamp next_time) {
  for (std::int32_t i = 0; i < eta_ && !owners_.empty(); ++i) {
    ProcessTime(next_time + i, {});
  }
  COMOVE_CHECK(owners_.empty());
}

}  // namespace comove::pattern

namespace comove::pattern {

void FixedBitEnumerator::SaveDerived(BinaryWriter* writer) const {
  writer->WriteU64(owners_.size());
  for (const auto& [owner, state] : owners_) {
    writer->WriteI64(owner);
    writer->WriteI32(state.history_start);
    writer->WriteU64(state.history.size());
    for (const auto& members : state.history) {
      writer->WriteIntVector(members);
    }
  }
}

bool FixedBitEnumerator::RestoreDerived(BinaryReader* reader) {
  owners_.clear();
  const std::uint64_t owner_count = reader->ReadU64();
  for (std::uint64_t i = 0; i < owner_count && reader->ok(); ++i) {
    const TrajectoryId owner = reader->ReadI64();
    OwnerState state;
    state.history_start = reader->ReadI32();
    const std::uint64_t history = reader->ReadU64();
    // A history longer than eta would be inconsistent state.
    if (history > static_cast<std::uint64_t>(eta_)) return false;
    for (std::uint64_t h = 0; h < history && reader->ok(); ++h) {
      state.history.push_back(reader->ReadIntVector<TrajectoryId>());
    }
    owners_.emplace(owner, std::move(state));
  }
  return reader->ok();
}

}  // namespace comove::pattern
