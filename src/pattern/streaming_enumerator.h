#ifndef COMOVE_PATTERN_STREAMING_ENUMERATOR_H_
#define COMOVE_PATTERN_STREAMING_ENUMERATOR_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "pattern/enumerator.h"
#include "pattern/partition.h"

/// \file
/// Shared streaming machinery of BA/FBA/VBA: ascending-time enforcement,
/// synthesis of empty ticks for skipped times, and the partition-level
/// entry point the distributed engine uses (each enumeration subtask only
/// receives the partitions of the owners routed to it).

namespace comove::pattern {

/// Enumeration-stage counters over one enumerator's lifetime, surfaced
/// through IcpeResult / --stats. "Strings" are per-(owner, trajectory)
/// bit strings: FBA counts one open per rolling window string created and
/// one close per window string retired; VBA counts its variable-length
/// open strings. Apriori counters tally enumeration tree nodes expanded
/// versus cut by the running-popcount / (K, L, G) prune.
struct EnumerationStats {
  std::int64_t strings_opened = 0;
  std::int64_t strings_closed = 0;
  std::int64_t candidates_peak = 0;  ///< max live candidate strings seen
  std::int64_t apriori_nodes = 0;
  std::int64_t apriori_pruned = 0;
};

/// Base class implementing the time bookkeeping; subclasses implement
/// ProcessTime (called once per tick, in order, with the tick's partitions
/// grouped by owner - possibly empty).
class StreamingEnumerator : public PatternEnumerator {
 public:
  using PartitionsByOwner = std::unordered_map<TrajectoryId, Partition>;

  StreamingEnumerator(const PatternConstraints& constraints,
                      PatternSink sink);

  /// Convenience entry: partitions the snapshot (Lemma 3 applied) and
  /// processes all owners. The engine uses OnPartitions instead.
  void OnClusterSnapshot(const ClusterSnapshot& snapshot) final;

  /// Feeds the partitions of one tick. `time` must be strictly greater
  /// than any previously fed tick; skipped times are synthesized as empty.
  void OnPartitions(Timestamp time, std::vector<Partition> partitions);

  /// Declares that every tick up to and including `time` is final without
  /// feeding data (watermark progress); empty ticks are synthesized.
  void AdvanceTime(Timestamp time);

  void Finish() final;

  /// Serialises the complete operator state (constraints fingerprint,
  /// time cursor, algorithm-specific state) into a checkpoint - the
  /// Flink-style durability hook. Restore into a fresh instance that was
  /// constructed with the SAME constraints; continuing the stream from
  /// the checkpointed position then yields byte-identical results.
  void SaveState(BinaryWriter* writer) const;

  /// Restores a checkpoint written by SaveState. Returns false (leaving
  /// the enumerator unusable) on corrupt data or a constraints mismatch.
  [[nodiscard]] bool RestoreState(BinaryReader* reader);

  /// The largest snapshot time whose pattern decisions are all final
  /// (§6.3's latency notion): BA/FBA finalise time t once the eta-window
  /// anchored at t has run; VBA finalises t only when no open bit string
  /// covering t remains. kNoTime when nothing is finalised yet.
  virtual Timestamp FinalizedThrough() const = 0;

  /// Lifetime enumeration counters (zeroes unless the subclass tracks
  /// them). Read after Finish(); not synchronised.
  virtual EnumerationStats enumeration_stats() const { return {}; }

  const PatternConstraints& constraints() const { return constraints_; }

  /// The most recent tick processed, or kNoTime before the first.
  Timestamp last_fed() const {
    return next_time_ == kNoTime ? kNoTime : next_time_ - 1;
  }

 protected:
  /// One tick of processing; `by_owner` may be empty.
  virtual void ProcessTime(Timestamp time, PartitionsByOwner&& by_owner) = 0;

  /// End-of-stream flush; the base guarantees ticks were contiguous.
  /// `next_time` is the first unprocessed tick (kNoTime if none was fed).
  virtual void FlushAtEnd(Timestamp next_time) = 0;

  /// Algorithm-specific checkpoint payload.
  virtual void SaveDerived(BinaryWriter* writer) const = 0;
  virtual bool RestoreDerived(BinaryReader* reader) = 0;

  const PatternSink& sink() const { return sink_; }

 private:
  void CatchUpTo(Timestamp time);

  PatternConstraints constraints_;
  PatternSink sink_;
  Timestamp next_time_ = kNoTime;
  bool finished_ = false;
};

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_STREAMING_ENUMERATOR_H_
