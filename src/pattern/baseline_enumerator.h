#ifndef COMOVE_PATTERN_BASELINE_ENUMERATOR_H_
#define COMOVE_PATTERN_BASELINE_ENUMERATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pattern/streaming_enumerator.h"

/// \file
/// BA - the baseline enumerator (Algorithm 3), an adaptation of SPARE [10]
/// to streams via id-based partitioning. For every partition P_t(o) it
/// materialises ALL subsets with >= M-1 members as candidates (O(2^|P|)
/// time and storage - the cost the bit-compression methods remove) and
/// verifies each against the next eta snapshots using Lemmas 5 and 6.

namespace comove::pattern {

/// Tuning of the baseline.
struct BaselineOptions {
  /// Hard cap on |P_t(o)| before subset materialisation; exceeding it
  /// aborts (the algorithm is exponential by design - the paper could not
  /// run BA on its larger workloads either, see Fig. 12).
  std::int32_t max_partition_size = 24;
};

/// Streaming BA enumerator covering all owners routed to this instance.
class BaselineEnumerator : public StreamingEnumerator {
 public:
  BaselineEnumerator(const PatternConstraints& constraints,
                     PatternSink sink, BaselineOptions options = {});

  /// Number of live candidates across all verification windows (the
  /// O(2^|P|) storage the paper talks about; exposed for tests/benches).
  std::size_t live_candidates() const { return live_candidates_; }

  /// Time t is decided once the window anchored at t has been verified
  /// against its eta snapshots, i.e. after tick t + eta - 1.
  Timestamp FinalizedThrough() const override {
    return last_fed() == kNoTime ? kNoTime : last_fed() - (eta_ - 1);
  }

  EnumerationStats enumeration_stats() const override { return stats_; }

 protected:
  void ProcessTime(Timestamp time, PartitionsByOwner&& by_owner) override;
  void FlushAtEnd(Timestamp next_time) override;
  void SaveDerived(BinaryWriter* writer) const override;
  bool RestoreDerived(BinaryReader* reader) override;

 private:
  /// One candidate pattern O within a verification window.
  struct Candidate {
    std::vector<TrajectoryId> objects;  ///< excludes the owner, sorted
    std::vector<Timestamp> times;       ///< accumulated time sequence T
    bool done = false;                  ///< emitted; kept to avoid re-emit
  };

  /// A verification window anchored at one start partition.
  struct Window {
    Timestamp start = 0;
    std::vector<Candidate> candidates;
  };

  struct OwnerState {
    std::vector<Window> windows;  ///< open windows, ascending start
  };

  void AdvanceCandidates(OwnerState* state, const Partition& partition,
                         TrajectoryId owner);
  void OpenWindow(OwnerState* state, const Partition& partition);
  void CloseExpiredWindows(Timestamp now);

  BaselineOptions options_;
  std::int32_t eta_;
  std::unordered_map<TrajectoryId, OwnerState> owners_;
  std::size_t live_candidates_ = 0;
  EnumerationStats stats_;
};

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_BASELINE_ENUMERATOR_H_
