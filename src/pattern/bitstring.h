#ifndef COMOVE_PATTERN_BITSTRING_H_
#define COMOVE_PATTERN_BITSTRING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/constraints.h"
#include "common/serde.h"
#include "common/types.h"

/// \file
/// Bit-compressed cluster-membership strings (§6.2, §6.3). Bit j of a
/// trajectory's string records whether it shared a cluster with the
/// partition owner at time start_time + j. Fixed-length strings (FBA) are
/// always eta bits; variable-length strings (VBA) grow per snapshot.
/// Storage is packed 64 bits per word - the point of the technique is the
/// O(eta * |P|) memory bound, so the packing is real, not a vector<bool>
/// stand-in.

namespace comove::pattern {

/// A packed bit string anchored at a start time.
class BitString {
 public:
  BitString() = default;

  /// A string of `length` zero bits starting at `start_time`.
  BitString(Timestamp start_time, std::int32_t length);

  /// Fixed-length construction: bits from the set positions in `times`
  /// (absolute timestamps), window [start_time, start_time + length).
  /// Times outside the window are ignored.
  static BitString FromTimes(Timestamp start_time, std::int32_t length,
                             const std::vector<Timestamp>& times);

  Timestamp start_time() const { return start_time_; }
  std::int32_t length() const { return length_; }
  bool empty() const { return length_ == 0; }

  /// Absolute time of bit index j.
  Timestamp TimeAt(std::int32_t j) const { return start_time_ + j; }

  bool Get(std::int32_t j) const;
  void Set(std::int32_t j, bool value);

  /// Appends one bit (variable-length growth).
  void Append(bool value);

  std::int32_t CountOnes() const;

  /// Index of the last set bit, or -1 when all-zero.
  std::int32_t LastOne() const;
  /// Index of the first set bit, or -1 when all-zero.
  std::int32_t FirstOne() const;

  /// Number of trailing zero bits (== length when all-zero).
  std::int32_t TrailingZeros() const;

  /// Absolute times of all set bits, ascending.
  std::vector<Timestamp> OneTimes() const;

  /// Bitwise AND aligned by absolute time: the result covers the
  /// intersection [max(starts), min(ends)); empty intersection yields an
  /// empty string. This is the pattern-composition operator B[O] = &B[ox].
  static BitString AndAligned(const BitString& a, const BitString& b);

  /// True when the set bits admit a (K, L, G)-qualifying subsequence: the
  /// candidate filter of FBA/VBA.
  bool SatisfiesKLG(const PatternConstraints& c) const;

  /// Drops trailing zero bits (used when closing a variable string).
  void TrimTrailingZeros();

  /// "101100"-style rendering for logs and tests.
  std::string ToString() const;

  /// Appends the string's state to a checkpoint.
  void Serialize(BinaryWriter* writer) const;

  /// Reads a string from a checkpoint; false on corrupt data (the object
  /// is left empty in that case).
  [[nodiscard]] bool Deserialize(BinaryReader* reader);

  friend bool operator==(const BitString& a, const BitString& b) {
    return a.start_time_ == b.start_time_ && a.length_ == b.length_ &&
           a.words_ == b.words_;
  }

 private:
  /// 64 bits starting at bit offset `pos` (bits past length read as 0).
  std::uint64_t ExtractWord(std::int32_t pos) const;

  Timestamp start_time_ = 0;
  std::int32_t length_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_BITSTRING_H_
