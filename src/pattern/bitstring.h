#ifndef COMOVE_PATTERN_BITSTRING_H_
#define COMOVE_PATTERN_BITSTRING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/constraints.h"
#include "common/serde.h"
#include "common/types.h"

/// \file
/// Bit-compressed cluster-membership strings (§6.2, §6.3). Bit j of a
/// trajectory's string records whether it shared a cluster with the
/// partition owner at time start_time + j. Fixed-length strings (FBA) are
/// always eta bits; variable-length strings (VBA) grow per snapshot.
/// Storage is packed 64 bits per word - the point of the technique is the
/// O(eta * |P|) memory bound, so the packing is real, not a vector<bool>
/// stand-in.
///
/// Two inline words (128 bits) are stored in the object itself: eta =
/// (ceil(K/L)-1)(G-1)+K+L-1 stays under 128 for every paper-scale
/// constraint set, so the enumeration hot loop creates, copies, ANDs, and
/// destroys strings without ever touching the heap. Longer strings spill
/// to a heap buffer transparently.

namespace comove::pattern {

/// A packed bit string anchored at a start time.
class BitString {
 public:
  static constexpr std::int32_t kBitsPerWord = 64;

  /// Packed words needed to hold `bits` bits.
  static constexpr std::size_t WordCountFor(std::int32_t bits) {
    return static_cast<std::size_t>((bits + kBitsPerWord - 1) / kBitsPerWord);
  }

  BitString() = default;

  /// A string of `length` zero bits starting at `start_time`.
  BitString(Timestamp start_time, std::int32_t length);

  BitString(const BitString& other);
  BitString(BitString&& other) noexcept;
  BitString& operator=(const BitString& other);
  BitString& operator=(BitString&& other) noexcept;
  ~BitString();

  /// Fixed-length construction: bits from the set positions in `times`
  /// (absolute timestamps), window [start_time, start_time + length).
  /// Times outside the window are ignored.
  static BitString FromTimes(Timestamp start_time, std::int32_t length,
                             const std::vector<Timestamp>& times);

  Timestamp start_time() const { return start_time_; }
  std::int32_t length() const { return length_; }
  bool empty() const { return length_ == 0; }

  /// Absolute time of bit index j.
  Timestamp TimeAt(std::int32_t j) const { return start_time_ + j; }

  bool Get(std::int32_t j) const;
  void Set(std::int32_t j, bool value);

  /// Appends one bit (variable-length growth).
  void Append(bool value);

  /// Appends `n` zero bits in O(1) amortised (a materialised zero run).
  void AppendZeros(std::int32_t n);

  /// Removes bit 0 and advances start_time by one: the rolling-window
  /// shift of the incremental FBA path. Word-parallel (one funnel shift
  /// per word), no reallocation.
  void DropFront();

  std::int32_t CountOnes() const;

  /// True when no bit is set (length 0 included).
  bool IsZero() const;

  /// Index of the last set bit, or -1 when all-zero.
  std::int32_t LastOne() const;
  /// Index of the first set bit, or -1 when all-zero.
  std::int32_t FirstOne() const;

  /// Number of trailing zero bits (== length when all-zero).
  std::int32_t TrailingZeros() const;

  /// Absolute times of all set bits, ascending.
  std::vector<Timestamp> OneTimes() const;

  /// Bitwise AND aligned by absolute time: the result covers the
  /// intersection [max(starts), min(ends)); empty intersection yields an
  /// empty string. This is the pattern-composition operator B[O] = &B[ox].
  static BitString AndAligned(const BitString& a, const BitString& b);

  /// True when the set bits admit a (K, L, G)-qualifying subsequence: the
  /// candidate filter of FBA/VBA. Word-parallel (scans one-runs with
  /// countr_zero/countr_one), no temporary vectors.
  bool SatisfiesKLG(const PatternConstraints& c) const;

  /// Drops trailing zero bits (used when closing a variable string).
  void TrimTrailingZeros();

  /// "101100"-style rendering for logs and tests.
  std::string ToString() const;

  /// Appends the string's state to a checkpoint.
  void Serialize(BinaryWriter* writer) const;

  /// Reads a string from a checkpoint; false on corrupt data (the object
  /// is left empty in that case). Rejects padding bits set past `length`
  /// in the last word - every internal invariant assumes they are zero.
  [[nodiscard]] bool Deserialize(BinaryReader* reader);

  /// Read-only access to the packed words (WordCountFor(length()) of
  /// them); bits past length() in the last word are always zero. The
  /// enumeration fast path works on these spans directly.
  const std::uint64_t* word_data() const { return words(); }
  std::size_t word_count() const { return WordCountFor(length_); }

  friend bool operator==(const BitString& a, const BitString& b);

 private:
  static constexpr std::size_t kInlineWords = 2;

  std::uint64_t* words() { return heap_ != nullptr ? heap_ : inline_words_; }
  const std::uint64_t* words() const {
    return heap_ != nullptr ? heap_ : inline_words_;
  }

  /// Grows capacity to at least `words_needed`, preserving contents and
  /// the all-zero tail invariant.
  void EnsureCapacity(std::size_t words_needed);

  /// 64 bits starting at bit offset `pos` (bits past length read as 0).
  std::uint64_t ExtractWord(std::int32_t pos) const;

  Timestamp start_time_ = 0;
  std::int32_t length_ = 0;
  std::size_t cap_words_ = kInlineWords;
  std::uint64_t inline_words_[kInlineWords] = {0, 0};
  std::uint64_t* heap_ = nullptr;
};

/// Popcount over a packed word span.
std::int32_t CountOnesInWords(const std::uint64_t* words, std::size_t count);

/// Word-parallel (K, L, G) check over a packed span of `length` bits:
/// scans the maximal one-runs (segments) with countr_zero/countr_one,
/// keeps those of length >= L, chains them while inter-segment gaps stay
/// <= G, and accepts when the best chain reaches K total ones. Exactly the
/// BestChain semantics of common/time_sequence.cc, without materialising
/// the time vector or the segment list. Bits past `length` must be zero.
bool WordsSatisfyKLG(const std::uint64_t* words, std::int32_t length,
                     const PatternConstraints& c);

/// Appends the absolute times of the set bits in a packed span to `out`
/// (ascending; `start` is the time of bit 0).
void AppendOneTimes(const std::uint64_t* words, std::int32_t length,
                    Timestamp start, std::vector<Timestamp>* out);

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_BITSTRING_H_
