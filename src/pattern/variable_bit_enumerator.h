#ifndef COMOVE_PATTERN_VARIABLE_BIT_ENUMERATOR_H_
#define COMOVE_PATTERN_VARIABLE_BIT_ENUMERATOR_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "pattern/bitstring.h"
#include "pattern/fixed_bit_enumerator.h"
#include "pattern/streaming_enumerator.h"

/// \file
/// VBA - Variable Length Bit Compression based Algorithm (Algorithm 5).
/// Instead of re-verifying eta-length windows that overlap (FBA processes
/// every snapshot up to eta times), VBA grows ONE variable-length bit
/// string per (owner, trajectory) across all times and closes it when
/// Lemma 7 proves its pattern time sequence maximal (G+1 trailing zeros).
/// Closed strings that satisfy (K, L, G) enter a per-owner candidate list;
/// enumeration runs once per closure, restricted to patterns involving the
/// newly closed string, with Lemma 8 pruning combinations whose time spans
/// cannot overlap by K. Each snapshot is therefore verified exactly once -
/// trading detection latency for throughput, as §6.3 observes.
///
/// The per-tick walk is a single merge of the sorted member list against
/// the sorted open-string column (not a hash probe per open string), and
/// absence is a lazy zero-run counter: a string that misses G ticks costs
/// O(1) per tick instead of G Append calls, with the zeros materialised
/// only if a one arrives before the Lemma 7 closure.

namespace comove::pattern {

/// Streaming VBA enumerator covering all owners routed to this instance.
class VariableBitEnumerator : public StreamingEnumerator {
 public:
  VariableBitEnumerator(const PatternConstraints& constraints,
                        PatternSink sink);

  /// Total closed candidate strings currently retained (for benches).
  std::size_t candidate_count() const { return candidate_count_; }

  /// Time t is decided only when no open bit string covering t remains
  /// (§6.3: VBA trades latency for throughput). With open strings the
  /// frontier sits just before the oldest open start.
  Timestamp FinalizedThrough() const override {
    if (last_fed() == kNoTime) return kNoTime;
    return open_starts_.empty() ? last_fed() : *open_starts_.begin() - 1;
  }

  EnumerationStats enumeration_stats() const override;

 protected:
  void ProcessTime(Timestamp time, PartitionsByOwner&& by_owner) override;
  void FlushAtEnd(Timestamp next_time) override;
  void SaveDerived(BinaryWriter* writer) const override;
  bool RestoreDerived(BinaryReader* reader) override;

 private:
  /// A closed maximal bit string of one co-traveller.
  struct Candidate {
    TrajectoryId id = 0;
    BitString bits;  ///< trimmed: ends with its last one
    Timestamp end_time() const {
      return bits.start_time() + bits.length() - 1;
    }
  };

  /// An open variable-length string. `bits` is kept trimmed (it always
  /// ends with a one); `zero_run` counts the zeros accumulated since -
  /// the Lemma 7 closure test is `zero_run > G`, and the zeros are only
  /// written into `bits` if the trajectory reappears first.
  struct OpenString {
    TrajectoryId id = 0;
    BitString bits;
    std::int32_t zero_run = 0;
  };

  struct OwnerState {
    /// Open strings sorted by trajectory id (the hashmap H of
    /// Algorithm 5, laid out as a merge-friendly column).
    std::vector<OpenString> open;
    /// Closed candidate strings in closure order (the candidate list C).
    std::vector<Candidate> candidates;
  };

  /// Handles a string that just accumulated G+1 trailing zeros (or stream
  /// end): if its (already trimmed) form qualifies, enumerates patterns
  /// against the candidate list and appends it (Lemma 7 closure).
  void CloseString(TrajectoryId owner, OwnerState* state, TrajectoryId id,
                   BitString bits);

  std::unordered_map<TrajectoryId, OwnerState> owners_;
  /// Start times of all open strings across owners, for FinalizedThrough.
  std::multiset<Timestamp> open_starts_;
  std::size_t candidate_count_ = 0;
  EnumerationScratch scratch_;
  EnumerationStats stats_;
  std::vector<CandidateView> views_;     ///< reused per closure
  std::vector<OpenString> merged_open_;  ///< reused merge scratch
};

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_VARIABLE_BIT_ENUMERATOR_H_
