#include "pattern/analysis.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace comove::pattern {

namespace {

/// True when `inner` (sorted) is a subset of `outer` (sorted).
template <typename T>
bool IsSubset(const std::vector<T>& inner, const std::vector<T>& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(),
                       inner.end());
}

}  // namespace

std::vector<CoMovementPattern> FilterMaximalPatterns(
    std::vector<CoMovementPattern> patterns) {
  std::vector<bool> dominated(patterns.size(), false);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (dominated[i]) continue;
    for (std::size_t j = 0; j < patterns.size(); ++j) {
      if (dominated[i]) break;
      if (i == j || dominated[j]) continue;
      const bool strict_subset =
          patterns[i].objects.size() < patterns[j].objects.size() &&
          IsSubset(patterns[i].objects, patterns[j].objects);
      if (strict_subset && IsSubset(patterns[i].times, patterns[j].times)) {
        dominated[i] = true;
      }
    }
  }
  std::vector<CoMovementPattern> out;
  out.reserve(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (!dominated[i]) out.push_back(std::move(patterns[i]));
  }
  return out;
}

PatternStatistics ComputePatternStatistics(
    const std::vector<CoMovementPattern>& patterns) {
  PatternStatistics stats;
  stats.pattern_count = static_cast<std::int64_t>(patterns.size());
  std::unordered_set<TrajectoryId> objects;
  double size_sum = 0;
  double duration_sum = 0;
  for (const CoMovementPattern& p : patterns) {
    const auto size = static_cast<std::int64_t>(p.objects.size());
    const auto duration = static_cast<std::int64_t>(p.times.size());
    size_sum += static_cast<double>(size);
    duration_sum += static_cast<double>(duration);
    stats.max_size = std::max(stats.max_size, size);
    stats.max_duration = std::max(stats.max_duration, duration);
    ++stats.size_histogram[size];
    objects.insert(p.objects.begin(), p.objects.end());
  }
  stats.distinct_objects = static_cast<std::int64_t>(objects.size());
  if (!patterns.empty()) {
    stats.mean_size = size_sum / static_cast<double>(patterns.size());
    stats.mean_duration =
        duration_sum / static_cast<double>(patterns.size());
  }
  return stats;
}

CoMovementGraph CoMovementGraph::FromPatterns(
    const std::vector<CoMovementPattern>& patterns) {
  CoMovementGraph graph;
  for (const CoMovementPattern& p : patterns) {
    const auto weight = static_cast<std::int64_t>(p.times.size());
    for (std::size_t i = 0; i < p.objects.size(); ++i) {
      for (std::size_t j = i + 1; j < p.objects.size(); ++j) {
        const TrajectoryId a = p.objects[i];
        const TrajectoryId b = p.objects[j];
        auto [it, inserted] = graph.adjacency_[a].try_emplace(b, weight);
        if (inserted) {
          graph.adjacency_[b].emplace(a, weight);
          ++graph.edge_count_;
        } else if (weight > it->second) {
          it->second = weight;
          graph.adjacency_[b][a] = weight;
        }
      }
    }
  }
  return graph;
}

std::int64_t CoMovementGraph::EdgeWeight(TrajectoryId a,
                                         TrajectoryId b) const {
  const auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return 0;
  const auto edge = it->second.find(b);
  return edge == it->second.end() ? 0 : edge->second;
}

std::int64_t CoMovementGraph::Degree(TrajectoryId id) const {
  const auto it = adjacency_.find(id);
  return it == adjacency_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.size());
}

std::vector<std::vector<TrajectoryId>> CoMovementGraph::Components() const {
  std::vector<std::vector<TrajectoryId>> components;
  std::set<TrajectoryId> visited;
  for (const auto& [seed, edges] : adjacency_) {
    if (visited.count(seed)) continue;
    std::vector<TrajectoryId> component;
    std::vector<TrajectoryId> stack = {seed};
    visited.insert(seed);
    while (!stack.empty()) {
      const TrajectoryId u = stack.back();
      stack.pop_back();
      component.push_back(u);
      for (const auto& [v, w] : adjacency_.at(u)) {
        if (visited.insert(v).second) stack.push_back(v);
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return components;
}

}  // namespace comove::pattern
