#ifndef COMOVE_PATTERN_PATTERN_PRESETS_H_
#define COMOVE_PATTERN_PATTERN_PRESETS_H_

#include "common/check.h"
#include "common/constraints.h"

/// \file
/// Classic co-movement pattern types expressed in the unified
/// CP(M, K, L, G) definition (§2.1, after Fan et al. [10]). The paper's
/// §8 names support for additional pattern types as future work; because
/// ICPE implements the general definition, each classic type is just a
/// parameterisation:
///
///   type          closeness        constraints
///   ------------  ---------------  --------------------------------
///   convoy [17]   density (ours)   L = K, G = 1 (strictly consecutive)
///   flock [13]    disc diameter    L = K, G = 1 (see note below)
///   group [29]    density          L = 1, G unbounded
///   swarm [20]    density          L = 1, G unbounded
///   platoon [19]  density          L free, G unbounded
///
/// "Unbounded G" cannot be supported verbatim on an infinite stream (the
/// Lemma 4 verification window eta would be infinite), so the presets take
/// an explicit `max_gap` horizon: a pattern interrupted for longer than
/// max_gap snapshots is reported as two patterns. Flock differs from
/// convoy only in its clustering predicate (fixed-diameter discs instead
/// of density reachability); with DBSCAN closeness the temporal shape is
/// identical, which is the usual streaming adaptation.

namespace comove::pattern {

/// Convoy [17]: at least m objects density-clustered for k *consecutive*
/// snapshots.
inline PatternConstraints ConvoyConstraints(std::int32_t m,
                                            std::int32_t k) {
  COMOVE_CHECK(m >= 2 && k >= 1);
  return PatternConstraints{m, k, k, 1};
}

/// Flock [13] temporal shape (see file comment re closeness).
inline PatternConstraints FlockConstraints(std::int32_t m, std::int32_t k) {
  return ConvoyConstraints(m, k);
}

/// Swarm [20]: at least m objects clustered at k snapshots that need not
/// be consecutive at all, bounded by the streaming gap horizon.
inline PatternConstraints SwarmConstraints(std::int32_t m, std::int32_t k,
                                           std::int32_t max_gap) {
  COMOVE_CHECK(m >= 2 && k >= 1 && max_gap >= 1);
  return PatternConstraints{m, k, 1, max_gap};
}

/// Group [29]: same temporal relaxation as swarm under the unified
/// definition (the original differs in its clustering predicate).
inline PatternConstraints GroupConstraints(std::int32_t m, std::int32_t k,
                                           std::int32_t max_gap) {
  return SwarmConstraints(m, k, max_gap);
}

/// Platoon [19]: local consecutiveness l within a relaxed duration k.
inline PatternConstraints PlatoonConstraints(std::int32_t m,
                                             std::int32_t k,
                                             std::int32_t l,
                                             std::int32_t max_gap) {
  COMOVE_CHECK(m >= 2 && l >= 1 && k >= l && max_gap >= 1);
  return PatternConstraints{m, k, l, max_gap};
}

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_PATTERN_PRESETS_H_
