#ifndef COMOVE_PATTERN_ENUMERATOR_H_
#define COMOVE_PATTERN_ENUMERATOR_H_

#include <functional>
#include <map>
#include <vector>

#include "common/constraints.h"
#include "common/types.h"

/// \file
/// Common interface of the three pattern-enumeration algorithms (§6):
/// BA (baseline), FBA (fixed-length bit compression) and VBA
/// (variable-length bit compression). An enumerator consumes cluster
/// snapshots in ascending time order and emits co-movement patterns to a
/// sink callback as soon as the algorithm can prove them.

namespace comove::pattern {

/// Receives detected patterns. May be called multiple times for the same
/// object set (different start times can re-discover a pattern); use
/// PatternCollector when a deduplicated result set is wanted.
using PatternSink = std::function<void(const CoMovementPattern&)>;

/// Streaming pattern enumerator. Implementations are single-threaded;
/// the engine runs one instance per subtask (per id-hash slice).
class PatternEnumerator {
 public:
  virtual ~PatternEnumerator() = default;

  /// Feeds the cluster snapshot of the next time. Calls must be in
  /// strictly ascending time order; skipped times are treated as empty
  /// snapshots internally.
  virtual void OnClusterSnapshot(const ClusterSnapshot& snapshot) = 0;

  /// Signals end of stream; flushes every still-open verification.
  virtual void Finish() = 0;
};

/// Convenience sink that deduplicates by object set, keeping the longest
/// witness time sequence seen for each set.
class PatternCollector {
 public:
  PatternSink AsSink() {
    return [this](const CoMovementPattern& p) { Add(p); };
  }

  void Add(const CoMovementPattern& p) {
    auto [it, inserted] = patterns_.try_emplace(p.objects, p);
    if (!inserted && p.times.size() > it->second.times.size()) {
      it->second = p;
    }
  }

  /// Deduplicated patterns ordered by object set.
  std::vector<CoMovementPattern> Patterns() const {
    std::vector<CoMovementPattern> out;
    out.reserve(patterns_.size());
    for (const auto& [objects, p] : patterns_) out.push_back(p);
    return out;
  }

  /// In-place view of the deduplicated patterns, ordered by object set —
  /// for callers (checkpoint serialisation) that must not pay Patterns()'s
  /// deep copy.
  const std::map<std::vector<TrajectoryId>, CoMovementPattern>& entries()
      const {
    return patterns_;
  }

  std::size_t size() const { return patterns_.size(); }

 private:
  std::map<std::vector<TrajectoryId>, CoMovementPattern> patterns_;
};

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_ENUMERATOR_H_
