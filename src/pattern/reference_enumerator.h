#ifndef COMOVE_PATTERN_REFERENCE_ENUMERATOR_H_
#define COMOVE_PATTERN_REFERENCE_ENUMERATOR_H_

#include <vector>

#include "common/constraints.h"
#include "common/types.h"

/// \file
/// Ground-truth pattern enumeration by exhaustive search: for every object
/// set that ever shares a cluster, collect all co-clustered times and test
/// Definition 4 directly. Exponential; only usable on test-sized inputs,
/// where it validates BA, FBA and VBA against each other and against the
/// definition.

namespace comove::pattern {

/// Exhaustively finds all co-movement patterns CP(M, K, L, G) over the
/// given cluster snapshots (any time order; times may repeat snapshots of
/// the same instant, which are merged). Returns deduplicated patterns
/// sorted by object set, each with its longest qualifying time sequence.
std::vector<CoMovementPattern> ReferenceEnumerate(
    const std::vector<ClusterSnapshot>& snapshots,
    const PatternConstraints& constraints);

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_REFERENCE_ENUMERATOR_H_
