#ifndef COMOVE_PATTERN_FIXED_BIT_ENUMERATOR_H_
#define COMOVE_PATTERN_FIXED_BIT_ENUMERATOR_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "pattern/bitstring.h"
#include "pattern/streaming_enumerator.h"

/// \file
/// FBA - Fixed Length Bit Compression based Algorithm (Algorithm 4).
/// Every trajectory of a partition P_t(o) is compressed to an eta-bit
/// string (storage O(eta x |P|) instead of O(2^|P|)); a candidate set C
/// keeps only trajectories whose individual strings can still satisfy
/// (K, L, G); and patterns are enumerated apriori-style starting directly
/// at cardinality M-1, extending only valid patterns (cost
/// O(|R| x |C| + C(|C|, M-1)) instead of O(2^|P|)).
///
/// Streaming-wise FBA buffers eta snapshots: the verification of patterns
/// anchored at time t runs once the snapshot t + eta - 1 has arrived. The
/// eta-bit window strings are maintained incrementally - one rolling
/// string per (owner, trajectory), appended at the new tick and shifted by
/// one when the window advances - instead of being rebuilt from eta binary
/// searches per trajectory per window.

namespace comove::pattern {

/// A borrowed candidate bit string for the shared apriori enumeration.
/// The caller keeps the referenced BitString alive for the call.
struct CandidateView {
  TrajectoryId id = 0;
  const BitString* bits = nullptr;
};

/// Reusable scratch for EnumerateFromCandidates: one arena holding the
/// frame-aligned candidate words and the per-level partial-AND stack, plus
/// lifetime counters feeding the enumeration stats. Owned by one
/// enumerator instance (single worker thread), rewound per call.
struct EnumerationScratch {
  Arena arena;
  std::vector<Timestamp> one_times;  ///< reused by pattern emission
  std::int64_t nodes_visited = 0;    ///< apriori tree nodes expanded
  std::int64_t nodes_pruned = 0;     ///< cut by popcount or (K,L,G) check
};

/// The candidate-based apriori enumeration shared by FBA and VBA: given
/// per-candidate bit strings (aligned or alignable by absolute time),
/// emits every object set O (|O| >= M-1, drawn from `candidates`) whose
/// combined string satisfies (K, L, G). With `first_mandatory` every
/// emitted set contains candidates[0] - VBA uses it to enumerate only
/// patterns involving the newly closed string. The owner id is appended
/// to every emitted set.
///
/// Allocation-free: candidates are zero-extended into a shared time frame
/// inside the scratch arena, and each recursion level ANDs into its own
/// arena slot with a running popcount - no BitString is constructed per
/// node. Zero-extension is exact: bits outside a candidate's own window
/// are zero, so the plain word AND over the frame carries the same ones as
/// AndAligned over the shrinking intersection, and counts, (K,L,G)
/// verdicts, and witness times are identical.
void EnumerateFromCandidates(const CandidateView* candidates,
                             std::size_t count, TrajectoryId owner,
                             const PatternConstraints& constraints,
                             bool first_mandatory, const PatternSink& sink,
                             EnumerationScratch* scratch);

/// Streaming FBA enumerator covering all owners routed to this instance.
class FixedBitEnumerator : public StreamingEnumerator {
 public:
  FixedBitEnumerator(const PatternConstraints& constraints,
                     PatternSink sink);

  /// Time t is decided once the window anchored at t has run, which
  /// happens when tick t + eta - 1 is fed.
  Timestamp FinalizedThrough() const override {
    return last_fed() == kNoTime ? kNoTime : last_fed() - (eta_ - 1);
  }

  EnumerationStats enumeration_stats() const override;

 protected:
  void ProcessTime(Timestamp time, PartitionsByOwner&& by_owner) override;
  void FlushAtEnd(Timestamp next_time) override;
  void SaveDerived(BinaryWriter* writer) const override;
  bool RestoreDerived(BinaryReader* reader) override;

 private:
  struct OwnerState {
    /// Member lists of the owner's partitions for the last eta times;
    /// history.front() corresponds to `history_start`.
    std::deque<std::vector<TrajectoryId>> history;
    Timestamp history_start = 0;
    /// Rolling presence strings over the buffered window, parallel arrays
    /// sorted by trajectory id: rolling_bits[i] spans
    /// [history_start, history_start + history.size()) and bit j records
    /// membership of rolling_ids[i] at history_start + j. Derived from
    /// `history` (rebuilt on restore, never checkpointed itself).
    std::vector<TrajectoryId> rolling_ids;
    std::vector<BitString> rolling_bits;
  };

  /// Extends every rolling string with the freshly pushed tick
  /// (history.back()): present members gain a one, absent tracked ids a
  /// zero, unseen members start a new roller. One merge walk of the two
  /// sorted columns.
  void AppendTick(OwnerState* state);

  /// Runs the Algorithm 4 batch for the window anchored at the front of
  /// `state`'s history (which must be eta entries deep).
  void RunWindow(TrajectoryId owner, const OwnerState& state);

  std::int32_t eta_;
  std::unordered_map<TrajectoryId, OwnerState> owners_;
  EnumerationScratch scratch_;
  EnumerationStats stats_;
  std::int64_t live_rollers_ = 0;
  std::vector<CandidateView> views_;       ///< reused per window
  std::vector<TrajectoryId> merged_ids_;   ///< reused merge scratch
  std::vector<BitString> merged_bits_;     ///< reused merge scratch
};

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_FIXED_BIT_ENUMERATOR_H_
