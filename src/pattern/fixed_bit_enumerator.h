#ifndef COMOVE_PATTERN_FIXED_BIT_ENUMERATOR_H_
#define COMOVE_PATTERN_FIXED_BIT_ENUMERATOR_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "pattern/bitstring.h"
#include "pattern/streaming_enumerator.h"

/// \file
/// FBA - Fixed Length Bit Compression based Algorithm (Algorithm 4).
/// Every trajectory of a partition P_t(o) is compressed to an eta-bit
/// string (storage O(eta x |P|) instead of O(2^|P|)); a candidate set C
/// keeps only trajectories whose individual strings can still satisfy
/// (K, L, G); and patterns are enumerated apriori-style starting directly
/// at cardinality M-1, extending only valid patterns (cost
/// O(|R| x |C| + C(|C|, M-1)) instead of O(2^|P|)).
///
/// Streaming-wise FBA buffers eta snapshots: the verification of patterns
/// anchored at time t runs once the snapshot t + eta - 1 has arrived.

namespace comove::pattern {

/// Streaming FBA enumerator covering all owners routed to this instance.
class FixedBitEnumerator : public StreamingEnumerator {
 public:
  FixedBitEnumerator(const PatternConstraints& constraints,
                     PatternSink sink);

  /// Time t is decided once the window anchored at t has run, which
  /// happens when tick t + eta - 1 is fed.
  Timestamp FinalizedThrough() const override {
    return last_fed() == kNoTime ? kNoTime : last_fed() - (eta_ - 1);
  }

 protected:
  void ProcessTime(Timestamp time, PartitionsByOwner&& by_owner) override;
  void FlushAtEnd(Timestamp next_time) override;
  void SaveDerived(BinaryWriter* writer) const override;
  bool RestoreDerived(BinaryReader* reader) override;

 private:
  struct OwnerState {
    /// Member lists of the owner's partitions for the last eta times;
    /// history.front() corresponds to `history_start`.
    std::deque<std::vector<TrajectoryId>> history;
    Timestamp history_start = 0;
  };

  /// Runs the Algorithm 4 batch for the window anchored at the front of
  /// `state`'s history (which must be eta entries deep).
  void RunWindow(TrajectoryId owner, const OwnerState& state);

  std::int32_t eta_;
  std::unordered_map<TrajectoryId, OwnerState> owners_;
};

/// The candidate-based apriori enumeration shared by FBA and VBA: given
/// per-candidate bit strings (aligned or alignable by absolute time),
/// emits every object set O (|O| >= M-1, drawn from `candidates`) whose
/// combined string satisfies (K, L, G). `require` (optional, -1 = none)
/// restricts output to sets containing the candidate at that index - VBA
/// uses it to enumerate only patterns involving the newly closed string.
/// The owner id is appended to every emitted set.
void EnumerateFromCandidates(
    const std::vector<TrajectoryId>& candidate_ids,
    const std::vector<BitString>& candidate_bits, TrajectoryId owner,
    const PatternConstraints& constraints, std::int32_t require,
    const PatternSink& sink);

}  // namespace comove::pattern

#endif  // COMOVE_PATTERN_FIXED_BIT_ENUMERATOR_H_
