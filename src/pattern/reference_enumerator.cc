#include "pattern/reference_enumerator.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>

#include "common/check.h"
#include "common/time_sequence.h"

namespace comove::pattern {

namespace {

void SubsetsOfAtLeast(const std::vector<TrajectoryId>& members,
                      std::int32_t min_size,
                      std::set<std::vector<TrajectoryId>>* out) {
  const auto n = static_cast<std::int32_t>(members.size());
  COMOVE_CHECK_MSG(n <= 20,
                   "reference enumeration is exponential; cluster of %d is "
                   "too large for a test workload",
                   n);
  const std::uint32_t total = 1u << n;
  std::vector<TrajectoryId> subset;
  for (std::uint32_t mask = 1; mask < total; ++mask) {
    if (std::popcount(mask) < min_size) continue;
    subset.clear();
    for (std::int32_t b = 0; b < n; ++b) {
      if (mask & (1u << b)) {
        subset.push_back(members[static_cast<std::size_t>(b)]);
      }
    }
    out->insert(subset);
  }
}

}  // namespace

std::vector<CoMovementPattern> ReferenceEnumerate(
    const std::vector<ClusterSnapshot>& snapshots,
    const PatternConstraints& constraints) {
  COMOVE_CHECK(constraints.IsValid());
  // Merge snapshots by time (member lists already sorted by contract).
  std::map<Timestamp, std::vector<std::vector<TrajectoryId>>> by_time;
  for (const ClusterSnapshot& s : snapshots) {
    for (const Cluster& c : s.clusters) {
      by_time[s.time].push_back(c.members);
    }
  }

  // Candidate object sets: subsets of any cluster with >= M members.
  std::set<std::vector<TrajectoryId>> candidates;
  for (const auto& [t, clusters] : by_time) {
    for (const auto& members : clusters) {
      if (static_cast<std::int32_t>(members.size()) >= constraints.m) {
        SubsetsOfAtLeast(members, constraints.m, &candidates);
      }
    }
  }

  std::vector<CoMovementPattern> out;
  for (const auto& objects : candidates) {
    std::vector<Timestamp> times;
    for (const auto& [t, clusters] : by_time) {
      for (const auto& members : clusters) {
        if (std::includes(members.begin(), members.end(), objects.begin(),
                          objects.end())) {
          times.push_back(t);
          break;
        }
      }
    }
    std::vector<Timestamp> witness =
        BestQualifyingSubsequence(times, constraints);
    if (!witness.empty()) {
      out.push_back(CoMovementPattern{objects, std::move(witness)});
    }
  }
  return out;  // std::set iteration already sorts by object set
}

}  // namespace comove::pattern
