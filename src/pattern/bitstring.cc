#include "pattern/bitstring.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/time_sequence.h"

namespace comove::pattern {

namespace {
constexpr std::int32_t kBitsPerWord = 64;

std::size_t WordCount(std::int32_t bits) {
  return static_cast<std::size_t>((bits + kBitsPerWord - 1) / kBitsPerWord);
}
}  // namespace

BitString::BitString(Timestamp start_time, std::int32_t length)
    : start_time_(start_time),
      length_(length),
      words_(WordCount(length), 0) {
  COMOVE_CHECK(length >= 0);
}

BitString BitString::FromTimes(Timestamp start_time, std::int32_t length,
                               const std::vector<Timestamp>& times) {
  BitString b(start_time, length);
  for (const Timestamp t : times) {
    const std::int32_t j = t - start_time;
    if (j >= 0 && j < length) b.Set(j, true);
  }
  return b;
}

bool BitString::Get(std::int32_t j) const {
  COMOVE_CHECK(j >= 0 && j < length_);
  return (words_[static_cast<std::size_t>(j / kBitsPerWord)] >>
          (j % kBitsPerWord)) &
         1ULL;
}

void BitString::Set(std::int32_t j, bool value) {
  COMOVE_CHECK(j >= 0 && j < length_);
  const std::uint64_t mask = 1ULL << (j % kBitsPerWord);
  auto& word = words_[static_cast<std::size_t>(j / kBitsPerWord)];
  if (value) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

void BitString::Append(bool value) {
  ++length_;
  if (WordCount(length_) > words_.size()) words_.push_back(0);
  Set(length_ - 1, value);
}

std::int32_t BitString::CountOnes() const {
  std::int32_t count = 0;
  for (const std::uint64_t w : words_) count += std::popcount(w);
  return count;
}

std::int32_t BitString::LastOne() const {
  for (std::int32_t wi = static_cast<std::int32_t>(words_.size()) - 1;
       wi >= 0; --wi) {
    if (words_[static_cast<std::size_t>(wi)] != 0) {
      const int high =
          63 - std::countl_zero(words_[static_cast<std::size_t>(wi)]);
      return wi * kBitsPerWord + high;
    }
  }
  return -1;
}

std::int32_t BitString::FirstOne() const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      return static_cast<std::int32_t>(wi) * kBitsPerWord +
             std::countr_zero(words_[wi]);
    }
  }
  return -1;
}

std::int32_t BitString::TrailingZeros() const {
  const std::int32_t last = LastOne();
  return last < 0 ? length_ : length_ - 1 - last;
}

std::vector<Timestamp> BitString::OneTimes() const {
  std::vector<Timestamp> times;
  times.reserve(static_cast<std::size_t>(CountOnes()));
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      times.push_back(start_time_ +
                      static_cast<Timestamp>(wi) * kBitsPerWord + bit);
      w &= w - 1;
    }
  }
  return times;
}

BitString BitString::AndAligned(const BitString& a, const BitString& b) {
  const Timestamp start = std::max(a.start_time_, b.start_time_);
  const Timestamp end = std::min(a.start_time_ + a.length_,
                                 b.start_time_ + b.length_);
  if (end <= start) return BitString(start, 0);
  BitString out(start, end - start);
  // Word-level AND with per-operand shifts.
  const std::int32_t off_a = start - a.start_time_;
  const std::int32_t off_b = start - b.start_time_;
  for (std::int32_t j = 0; j < out.length_; j += kBitsPerWord) {
    const std::int32_t chunk = std::min(kBitsPerWord, out.length_ - j);
    const std::uint64_t wa = a.ExtractWord(off_a + j);
    const std::uint64_t wb = b.ExtractWord(off_b + j);
    std::uint64_t w = wa & wb;
    if (chunk < kBitsPerWord) w &= (1ULL << chunk) - 1;
    out.words_[static_cast<std::size_t>(j / kBitsPerWord)] = w;
  }
  return out;
}

std::uint64_t BitString::ExtractWord(std::int32_t pos) const {
  COMOVE_CHECK(pos >= 0);
  const std::int32_t word = pos / kBitsPerWord;
  const std::int32_t shift = pos % kBitsPerWord;
  const auto at = [&](std::int32_t wi) -> std::uint64_t {
    return wi < static_cast<std::int32_t>(words_.size())
               ? words_[static_cast<std::size_t>(wi)]
               : 0;
  };
  std::uint64_t w = at(word) >> shift;
  if (shift != 0) w |= at(word + 1) << (kBitsPerWord - shift);
  return w;
}

bool BitString::SatisfiesKLG(const PatternConstraints& c) const {
  return HasQualifyingSubsequence(OneTimes(), c);
}

void BitString::TrimTrailingZeros() {
  length_ = LastOne() + 1;
  words_.resize(WordCount(length_));
  if (!words_.empty() && length_ % kBitsPerWord != 0) {
    words_.back() &= (1ULL << (length_ % kBitsPerWord)) - 1;
  }
}

void BitString::Serialize(BinaryWriter* writer) const {
  writer->WriteI32(start_time_);
  writer->WriteI32(length_);
  writer->WriteU64(words_.size());
  for (const std::uint64_t w : words_) writer->WriteU64(w);
}

bool BitString::Deserialize(BinaryReader* reader) {
  *this = BitString();
  const Timestamp start = reader->ReadI32();
  const std::int32_t length = reader->ReadI32();
  const std::uint64_t word_count = reader->ReadU64();
  if (!reader->ok() || length < 0 ||
      word_count != WordCount(length)) {
    return false;
  }
  // A corrupt but self-consistent (length, word_count) pair could demand
  // gigabytes; each word is 8 wire bytes, so the count is bounded by the
  // bytes actually present.
  if (word_count > reader->remaining() / 8) return false;
  std::vector<std::uint64_t> words;
  words.reserve(word_count);
  for (std::uint64_t i = 0; i < word_count; ++i) {
    words.push_back(reader->ReadU64());
  }
  if (!reader->ok()) return false;
  start_time_ = start;
  length_ = length;
  words_ = std::move(words);
  return true;
}

std::string BitString::ToString() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(length_));
  for (std::int32_t j = 0; j < length_; ++j) s.push_back(Get(j) ? '1' : '0');
  return s;
}

}  // namespace comove::pattern
