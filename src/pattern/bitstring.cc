#include "pattern/bitstring.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/check.h"

namespace comove::pattern {

namespace {
constexpr std::int32_t kBits = BitString::kBitsPerWord;
}  // namespace

BitString::BitString(Timestamp start_time, std::int32_t length)
    : start_time_(start_time), length_(length) {
  COMOVE_CHECK(length >= 0);
  EnsureCapacity(WordCountFor(length));
}

BitString::BitString(const BitString& other)
    : start_time_(other.start_time_), length_(other.length_) {
  const std::size_t wc = other.word_count();
  if (wc > kInlineWords) {
    heap_ = new std::uint64_t[wc];
    cap_words_ = wc;
    std::memcpy(heap_, other.words(), wc * sizeof(std::uint64_t));
  } else {
    std::memcpy(inline_words_, other.words(), wc * sizeof(std::uint64_t));
  }
}

BitString::BitString(BitString&& other) noexcept
    : start_time_(other.start_time_),
      length_(other.length_),
      cap_words_(other.cap_words_),
      heap_(other.heap_) {
  if (heap_ == nullptr) {
    inline_words_[0] = other.inline_words_[0];
    inline_words_[1] = other.inline_words_[1];
  }
  other.heap_ = nullptr;
  other.cap_words_ = kInlineWords;
  other.inline_words_[0] = 0;
  other.inline_words_[1] = 0;
  other.length_ = 0;
  other.start_time_ = 0;
}

BitString& BitString::operator=(const BitString& other) {
  if (this == &other) return *this;
  const std::size_t wc = other.word_count();
  if (wc > cap_words_) {
    delete[] heap_;
    heap_ = new std::uint64_t[wc];
    cap_words_ = wc;
  }
  start_time_ = other.start_time_;
  length_ = other.length_;
  std::uint64_t* dst = words();
  std::memcpy(dst, other.words(), wc * sizeof(std::uint64_t));
  // Keep the all-zero tail invariant over the full retained capacity.
  for (std::size_t w = wc; w < cap_words_; ++w) dst[w] = 0;
  return *this;
}

BitString& BitString::operator=(BitString&& other) noexcept {
  if (this == &other) return *this;
  delete[] heap_;
  start_time_ = other.start_time_;
  length_ = other.length_;
  cap_words_ = other.cap_words_;
  heap_ = other.heap_;
  if (heap_ == nullptr) {
    inline_words_[0] = other.inline_words_[0];
    inline_words_[1] = other.inline_words_[1];
  }
  other.heap_ = nullptr;
  other.cap_words_ = kInlineWords;
  other.inline_words_[0] = 0;
  other.inline_words_[1] = 0;
  other.length_ = 0;
  other.start_time_ = 0;
  return *this;
}

BitString::~BitString() { delete[] heap_; }

void BitString::EnsureCapacity(std::size_t words_needed) {
  if (words_needed <= cap_words_) return;
  std::size_t new_cap = cap_words_ * 2;
  if (new_cap < words_needed) new_cap = words_needed;
  auto* data = new std::uint64_t[new_cap];
  const std::size_t live = word_count();
  std::memcpy(data, words(), live * sizeof(std::uint64_t));
  std::memset(data + live, 0, (new_cap - live) * sizeof(std::uint64_t));
  delete[] heap_;
  heap_ = data;
  cap_words_ = new_cap;
}

bool operator==(const BitString& a, const BitString& b) {
  if (a.start_time_ != b.start_time_ || a.length_ != b.length_) return false;
  const std::size_t wc = a.word_count();
  return std::memcmp(a.words(), b.words(), wc * sizeof(std::uint64_t)) == 0;
}

BitString BitString::FromTimes(Timestamp start_time, std::int32_t length,
                               const std::vector<Timestamp>& times) {
  BitString b(start_time, length);
  for (const Timestamp t : times) {
    const std::int32_t j = t - start_time;
    if (j >= 0 && j < length) b.Set(j, true);
  }
  return b;
}

bool BitString::Get(std::int32_t j) const {
  COMOVE_CHECK(j >= 0 && j < length_);
  return (words()[static_cast<std::size_t>(j / kBits)] >> (j % kBits)) & 1ULL;
}

void BitString::Set(std::int32_t j, bool value) {
  COMOVE_CHECK(j >= 0 && j < length_);
  const std::uint64_t mask = 1ULL << (j % kBits);
  auto& word = words()[static_cast<std::size_t>(j / kBits)];
  if (value) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

void BitString::Append(bool value) {
  EnsureCapacity(WordCountFor(length_ + 1));
  ++length_;
  // The appended bit is already zero by the tail invariant.
  if (value) Set(length_ - 1, true);
}

void BitString::AppendZeros(std::int32_t n) {
  COMOVE_CHECK(n >= 0);
  EnsureCapacity(WordCountFor(length_ + n));
  length_ += n;  // the new bits are already zero by the tail invariant
}

void BitString::DropFront() {
  COMOVE_CHECK(length_ > 0);
  std::uint64_t* w = words();
  const std::size_t wc = word_count();
  for (std::size_t i = 0; i + 1 < wc; ++i) {
    w[i] = (w[i] >> 1) | (w[i + 1] << (kBits - 1));
  }
  w[wc - 1] >>= 1;
  ++start_time_;
  --length_;
  // Bits past the old length were zero, so bits past length - 1 are zero
  // after the shift: the tail invariant holds with no extra masking.
}

std::int32_t CountOnesInWords(const std::uint64_t* words, std::size_t count) {
  std::int32_t ones = 0;
  for (std::size_t i = 0; i < count; ++i) ones += std::popcount(words[i]);
  return ones;
}

bool WordsSatisfyKLG(const std::uint64_t* words, std::int32_t length,
                     const PatternConstraints& c) {
  // One pass over the maximal one-runs, mirroring BestChain exactly: runs
  // shorter than L are skipped entirely (they neither contribute nor end a
  // chain); a qualifying run extends the current chain when its start is
  // within G of the previous qualifying run's end, else starts a new one.
  std::int32_t best = 0;
  std::int32_t chain_total = 0;
  std::int32_t prev_end = 0;  // inclusive end of the last qualifying run
  bool have_prev = false;
  std::int32_t run_start = -1;  // -1: not inside a one-run

  const auto close_run = [&](std::int32_t end_exclusive) {
    const std::int32_t run_len = end_exclusive - run_start;
    if (run_len >= c.l) {
      if (have_prev && run_start - prev_end <= c.g) {
        chain_total += run_len;
      } else {
        chain_total = run_len;
      }
      if (chain_total > best) best = chain_total;
      have_prev = true;
      prev_end = end_exclusive - 1;
    }
    run_start = -1;
  };

  const auto word_count = BitString::WordCountFor(length);
  for (std::size_t wi = 0; wi < word_count; ++wi) {
    const std::uint64_t w = words[wi];
    const std::int32_t base = static_cast<std::int32_t>(wi) * kBits;
    std::int32_t off = 0;
    while (off < kBits) {
      const std::uint64_t rest = w >> off;
      if (run_start < 0) {
        if (rest == 0) break;  // rest of the word is zeros
        off += std::countr_zero(rest);
        run_start = base + off;
      } else {
        const std::int32_t ones = std::countr_one(rest);
        off += ones;
        if (off < kBits) close_run(base + off);
        // off == kBits: the run continues into the next word.
      }
    }
  }
  if (run_start >= 0) close_run(length);
  return best >= c.k;
}

void AppendOneTimes(const std::uint64_t* words, std::int32_t length,
                    Timestamp start, std::vector<Timestamp>* out) {
  const auto word_count = BitString::WordCountFor(length);
  for (std::size_t wi = 0; wi < word_count; ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out->push_back(start + static_cast<Timestamp>(wi) * kBits + bit);
      w &= w - 1;
    }
  }
}

std::int32_t BitString::CountOnes() const {
  return CountOnesInWords(words(), word_count());
}

bool BitString::IsZero() const {
  const std::uint64_t* w = words();
  const std::size_t wc = word_count();
  for (std::size_t i = 0; i < wc; ++i) {
    if (w[i] != 0) return false;
  }
  return true;
}

std::int32_t BitString::LastOne() const {
  const std::uint64_t* w = words();
  for (std::int32_t wi = static_cast<std::int32_t>(word_count()) - 1; wi >= 0;
       --wi) {
    if (w[static_cast<std::size_t>(wi)] != 0) {
      const int high = 63 - std::countl_zero(w[static_cast<std::size_t>(wi)]);
      return wi * kBits + high;
    }
  }
  return -1;
}

std::int32_t BitString::FirstOne() const {
  const std::uint64_t* w = words();
  const std::size_t wc = word_count();
  for (std::size_t wi = 0; wi < wc; ++wi) {
    if (w[wi] != 0) {
      return static_cast<std::int32_t>(wi) * kBits + std::countr_zero(w[wi]);
    }
  }
  return -1;
}

std::int32_t BitString::TrailingZeros() const {
  const std::int32_t last = LastOne();
  return last < 0 ? length_ : length_ - 1 - last;
}

std::vector<Timestamp> BitString::OneTimes() const {
  std::vector<Timestamp> times;
  times.reserve(static_cast<std::size_t>(CountOnes()));
  AppendOneTimes(words(), length_, start_time_, &times);
  return times;
}

BitString BitString::AndAligned(const BitString& a, const BitString& b) {
  const Timestamp start = std::max(a.start_time_, b.start_time_);
  const Timestamp end =
      std::min(a.start_time_ + a.length_, b.start_time_ + b.length_);
  if (end <= start) return BitString(start, 0);
  BitString out(start, end - start);
  // Word-level AND with per-operand shifts.
  const std::int32_t off_a = start - a.start_time_;
  const std::int32_t off_b = start - b.start_time_;
  std::uint64_t* dst = out.words();
  for (std::int32_t j = 0; j < out.length_; j += kBits) {
    const std::int32_t chunk = std::min(kBits, out.length_ - j);
    const std::uint64_t wa = a.ExtractWord(off_a + j);
    const std::uint64_t wb = b.ExtractWord(off_b + j);
    std::uint64_t w = wa & wb;
    if (chunk < kBits) w &= (1ULL << chunk) - 1;
    dst[static_cast<std::size_t>(j / kBits)] = w;
  }
  return out;
}

std::uint64_t BitString::ExtractWord(std::int32_t pos) const {
  COMOVE_CHECK(pos >= 0);
  const std::int32_t word = pos / kBits;
  const std::int32_t shift = pos % kBits;
  const std::uint64_t* w = words();
  const auto wc = static_cast<std::int32_t>(word_count());
  const auto at = [&](std::int32_t wi) -> std::uint64_t {
    return wi < wc ? w[static_cast<std::size_t>(wi)] : 0;
  };
  std::uint64_t out = at(word) >> shift;
  if (shift != 0) out |= at(word + 1) << (kBits - shift);
  return out;
}

bool BitString::SatisfiesKLG(const PatternConstraints& c) const {
  return WordsSatisfyKLG(words(), length_, c);
}

void BitString::TrimTrailingZeros() {
  const std::int32_t new_length = LastOne() + 1;
  std::uint64_t* w = words();
  const std::size_t old_wc = word_count();
  const std::size_t new_wc = WordCountFor(new_length);
  for (std::size_t wi = new_wc; wi < old_wc; ++wi) w[wi] = 0;
  if (new_wc != 0 && new_length % kBits != 0) {
    w[new_wc - 1] &= (1ULL << (new_length % kBits)) - 1;
  }
  length_ = new_length;
}

void BitString::Serialize(BinaryWriter* writer) const {
  writer->WriteI32(start_time_);
  writer->WriteI32(length_);
  const std::size_t wc = word_count();
  writer->WriteU64(wc);
  const std::uint64_t* w = words();
  for (std::size_t i = 0; i < wc; ++i) writer->WriteU64(w[i]);
}

bool BitString::Deserialize(BinaryReader* reader) {
  *this = BitString();
  const Timestamp start = reader->ReadI32();
  const std::int32_t length = reader->ReadI32();
  const std::uint64_t word_count = reader->ReadU64();
  if (!reader->ok() || length < 0 || word_count != WordCountFor(length)) {
    return false;
  }
  // A corrupt but self-consistent (length, word_count) pair could demand
  // gigabytes; each word is 8 wire bytes, so the count is bounded by the
  // bytes actually present.
  if (word_count > reader->remaining() / 8) return false;
  EnsureCapacity(word_count);
  std::uint64_t* w = words();
  for (std::uint64_t i = 0; i < word_count; ++i) w[i] = reader->ReadU64();
  if (!reader->ok()) {
    *this = BitString();
    return false;
  }
  // Padding bits past `length` must be zero: the word-parallel scans rely
  // on it, so a corrupt word here would silently change results.
  if (word_count != 0 && length % kBits != 0 &&
      (w[word_count - 1] & ~((1ULL << (length % kBits)) - 1)) != 0) {
    *this = BitString();
    return false;
  }
  start_time_ = start;
  length_ = length;
  return true;
}

std::string BitString::ToString() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(length_));
  for (std::int32_t j = 0; j < length_; ++j) s.push_back(Get(j) ? '1' : '0');
  return s;
}

}  // namespace comove::pattern
