#include "pattern/baseline_enumerator.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace comove::pattern {

namespace {

/// True when `needle` (sorted) is a subset of `haystack` (sorted).
bool IsSubset(const std::vector<TrajectoryId>& needle,
              const std::vector<TrajectoryId>& haystack) {
  return std::includes(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end());
}

/// Length of the final consecutive segment of `times`.
std::int32_t LastSegmentLength(const std::vector<Timestamp>& times) {
  std::int32_t len = 1;
  for (std::size_t i = times.size() - 1; i > 0; --i) {
    if (times[i] != times[i - 1] + 1) break;
    ++len;
  }
  return len;
}

}  // namespace

BaselineEnumerator::BaselineEnumerator(const PatternConstraints& constraints,
                                       PatternSink sink,
                                       BaselineOptions options)
    : StreamingEnumerator(constraints, std::move(sink)),
      options_(options),
      eta_(constraints.Eta()) {}

void BaselineEnumerator::ProcessTime(Timestamp time,
                                     PartitionsByOwner&& by_owner) {
  // Advance open windows of owners present at this tick.
  for (const auto& [owner, partition] : by_owner) {
    auto it = owners_.find(owner);
    if (it != owners_.end()) {
      AdvanceCandidates(&it->second, partition, owner);
    }
  }
  // Open a fresh window per present owner (candidates start with T = {t}).
  for (const auto& [owner, partition] : by_owner) {
    OpenWindow(&owners_[owner], partition);
  }
  CloseExpiredWindows(time);
}

void BaselineEnumerator::AdvanceCandidates(OwnerState* state,
                                           const Partition& partition,
                                           TrajectoryId owner) {
  for (Window& window : state->windows) {
    if (window.start == partition.time) continue;  // opened this tick
    auto& candidates = window.candidates;
    for (std::size_t i = 0; i < candidates.size();) {
      Candidate& cand = candidates[i];
      if (cand.done || !IsSubset(cand.objects, partition.members)) {
        ++i;
        continue;
      }
      const Timestamp gap = partition.time - cand.times.back();
      const std::int32_t last_segment = LastSegmentLength(cand.times);
      bool drop = false;
      if (gap == 1) {
        cand.times.push_back(partition.time);
      } else if (gap <= constraints().g && last_segment >= constraints().l) {
        cand.times.push_back(partition.time);
      } else {
        // Lemma 5 (gap with an unfinished segment) or Lemma 6 (gap > G):
        // this candidate can never be completed from this start time.
        drop = true;
      }
      if (drop) {
        candidates[i] = std::move(candidates.back());
        candidates.pop_back();
        --live_candidates_;
        ++stats_.strings_closed;
        continue;
      }
      if (static_cast<std::int32_t>(cand.times.size()) >= constraints().k &&
          LastSegmentLength(cand.times) >= constraints().l) {
        CoMovementPattern pattern;
        pattern.objects = cand.objects;
        pattern.objects.push_back(owner);
        std::sort(pattern.objects.begin(), pattern.objects.end());
        pattern.times = cand.times;
        sink()(pattern);
        cand.done = true;
      }
      ++i;
    }
  }
}

void BaselineEnumerator::OpenWindow(OwnerState* state,
                                    const Partition& partition) {
  const auto n = static_cast<std::int32_t>(partition.members.size());
  COMOVE_CHECK_MSG(n <= options_.max_partition_size,
                   "BA cannot materialise 2^%d candidates (partition of %d "
                   "members); use FBA/VBA for workloads of this size",
                   n, n);
  Window window;
  window.start = partition.time;
  // Enumerate every subset with >= M-1 members (the owner is implicit).
  const std::uint32_t subsets = 1u << n;
  for (std::uint32_t mask = 1; mask < subsets; ++mask) {
    if (std::popcount(mask) < constraints().m - 1) continue;
    Candidate cand;
    cand.objects.reserve(static_cast<std::size_t>(std::popcount(mask)));
    for (std::int32_t b = 0; b < n; ++b) {
      if (mask & (1u << b)) {
        cand.objects.push_back(
            partition.members[static_cast<std::size_t>(b)]);
      }
    }
    cand.times.push_back(partition.time);
    window.candidates.push_back(std::move(cand));
  }
  live_candidates_ += window.candidates.size();
  stats_.strings_opened += static_cast<std::int64_t>(window.candidates.size());
  stats_.candidates_peak =
      std::max(stats_.candidates_peak,
               static_cast<std::int64_t>(live_candidates_));
  // Degenerate K = 1: patterns are already complete at their start time.
  if (constraints().k <= 1) {
    for (Candidate& cand : window.candidates) {
      CoMovementPattern pattern;
      pattern.objects = cand.objects;
      pattern.objects.push_back(partition.owner);
      std::sort(pattern.objects.begin(), pattern.objects.end());
      pattern.times = cand.times;
      sink()(pattern);
      cand.done = true;
    }
  }
  state->windows.push_back(std::move(window));
}

void BaselineEnumerator::CloseExpiredWindows(Timestamp now) {
  for (auto it = owners_.begin(); it != owners_.end();) {
    auto& windows = it->second.windows;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (windows[i].start + eta_ - 1 > now) {
        if (kept != i) windows[kept] = std::move(windows[i]);
        ++kept;
      } else {
        live_candidates_ -= windows[i].candidates.size();
        stats_.strings_closed +=
            static_cast<std::int64_t>(windows[i].candidates.size());
      }
    }
    windows.resize(kept);
    if (windows.empty()) {
      it = owners_.erase(it);
    } else {
      ++it;
    }
  }
}

void BaselineEnumerator::FlushAtEnd(Timestamp next_time) {
  // All emissions are online; open windows can only contain incomplete
  // candidates, which a longer stream could not complete any better than
  // the empty suffix does. Processing eta empty ticks closes everything.
  if (next_time == kNoTime) return;
  for (std::int32_t i = 0; i < eta_; ++i) {
    ProcessTime(next_time + i, {});
  }
  COMOVE_CHECK(owners_.empty());
}

}  // namespace comove::pattern

namespace comove::pattern {

void BaselineEnumerator::SaveDerived(BinaryWriter* writer) const {
  writer->WriteU64(owners_.size());
  for (const auto& [owner, state] : owners_) {
    writer->WriteI64(owner);
    writer->WriteU64(state.windows.size());
    for (const Window& window : state.windows) {
      writer->WriteI32(window.start);
      writer->WriteU64(window.candidates.size());
      for (const Candidate& cand : window.candidates) {
        writer->WriteIntVector(cand.objects);
        writer->WriteIntVector(cand.times);
        writer->WriteBool(cand.done);
      }
    }
  }
}

bool BaselineEnumerator::RestoreDerived(BinaryReader* reader) {
  owners_.clear();
  live_candidates_ = 0;
  const std::uint64_t owner_count = reader->ReadU64();
  for (std::uint64_t i = 0; i < owner_count && reader->ok(); ++i) {
    const TrajectoryId owner = reader->ReadI64();
    OwnerState state;
    const std::uint64_t window_count = reader->ReadU64();
    for (std::uint64_t w = 0; w < window_count && reader->ok(); ++w) {
      Window window;
      window.start = reader->ReadI32();
      const std::uint64_t cand_count = reader->ReadU64();
      for (std::uint64_t c = 0; c < cand_count && reader->ok(); ++c) {
        Candidate cand;
        cand.objects = reader->ReadIntVector<TrajectoryId>();
        cand.times = reader->ReadIntVector<Timestamp>();
        cand.done = reader->ReadBool();
        window.candidates.push_back(std::move(cand));
      }
      live_candidates_ += window.candidates.size();
      state.windows.push_back(std::move(window));
    }
    owners_.emplace(owner, std::move(state));
  }
  return reader->ok();
}

}  // namespace comove::pattern
