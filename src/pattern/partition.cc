#include "pattern/partition.h"

#include "common/check.h"

namespace comove::pattern {

std::vector<Partition> MakePartitions(const ClusterSnapshot& snapshot,
                                      const PatternConstraints& constraints) {
  std::vector<Partition> out;
  for (const Cluster& cluster : snapshot.clusters) {
    // Lemma 3: a cluster below the significance threshold is discarded.
    if (static_cast<std::int32_t>(cluster.members.size()) < constraints.m) {
      continue;
    }
    for (std::size_t i = 0; i < cluster.members.size(); ++i) {
      // Owners whose id-tail is shorter than M-1 other members cannot
      // anchor any pattern of size >= M; skip their partitions entirely.
      const std::size_t tail = cluster.members.size() - i - 1;
      if (tail + 1 < static_cast<std::size_t>(constraints.m)) break;
      Partition p;
      p.owner = cluster.members[i];
      p.time = snapshot.time;
      p.members.assign(cluster.members.begin() +
                           static_cast<std::ptrdiff_t>(i) + 1,
                       cluster.members.end());
      out.push_back(std::move(p));
    }
  }
  return out;
}

}  // namespace comove::pattern
