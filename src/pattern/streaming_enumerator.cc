#include "pattern/streaming_enumerator.h"

#include "common/check.h"

namespace comove::pattern {

StreamingEnumerator::StreamingEnumerator(
    const PatternConstraints& constraints, PatternSink sink)
    : constraints_(constraints), sink_(std::move(sink)) {
  COMOVE_CHECK(constraints.IsValid());
}

void StreamingEnumerator::OnClusterSnapshot(const ClusterSnapshot& snapshot) {
  OnPartitions(snapshot.time, MakePartitions(snapshot, constraints_));
}

void StreamingEnumerator::CatchUpTo(Timestamp time) {
  COMOVE_CHECK(!finished_);
  COMOVE_CHECK_MSG(next_time_ == kNoTime || time >= next_time_,
                   "ticks must be fed in ascending time order");
  if (next_time_ == kNoTime) next_time_ = time;
  while (next_time_ < time) {
    ProcessTime(next_time_, {});
    ++next_time_;
  }
}

void StreamingEnumerator::OnPartitions(Timestamp time,
                                       std::vector<Partition> partitions) {
  CatchUpTo(time);
  PartitionsByOwner by_owner;
  by_owner.reserve(partitions.size());
  for (Partition& p : partitions) {
    COMOVE_CHECK_MSG(p.time == time, "partition time mismatch");
    const TrajectoryId owner = p.owner;
    by_owner.emplace(owner, std::move(p));
  }
  ProcessTime(time, std::move(by_owner));
  ++next_time_;
}

void StreamingEnumerator::AdvanceTime(Timestamp time) {
  if (next_time_ == kNoTime) return;  // nothing buffered; nothing to age
  if (time < next_time_) return;
  CatchUpTo(time);
  ProcessTime(time, {});
  ++next_time_;
}

namespace {
// Checkpoint format version; bump on layout changes.
constexpr std::uint32_t kCheckpointMagic = 0xC0110E01u;
}  // namespace

void StreamingEnumerator::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kCheckpointMagic);
  writer->WriteI32(constraints_.m);
  writer->WriteI32(constraints_.k);
  writer->WriteI32(constraints_.l);
  writer->WriteI32(constraints_.g);
  writer->WriteI32(next_time_);
  writer->WriteBool(finished_);
  SaveDerived(writer);
}

bool StreamingEnumerator::RestoreState(BinaryReader* reader) {
  // Restoring over already-processed ticks would silently merge two
  // incompatible histories; only a freshly-constructed enumerator may
  // load a checkpoint.
  if (next_time_ != kNoTime || finished_) return false;
  if (reader->ReadU32() != kCheckpointMagic) return false;
  const PatternConstraints saved{reader->ReadI32(), reader->ReadI32(),
                                 reader->ReadI32(), reader->ReadI32()};
  if (!reader->ok() || !(saved == constraints_)) return false;
  const Timestamp next = reader->ReadI32();
  const bool finished = reader->ReadBool();
  if (!reader->ok() || !RestoreDerived(reader)) return false;
  next_time_ = next;
  finished_ = finished;
  return true;
}

void StreamingEnumerator::Finish() {
  COMOVE_CHECK(!finished_);
  FlushAtEnd(next_time_);
  finished_ = true;
}

}  // namespace comove::pattern
