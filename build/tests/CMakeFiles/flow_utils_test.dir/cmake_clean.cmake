file(REMOVE_RECURSE
  "CMakeFiles/flow_utils_test.dir/flow_utils_test.cc.o"
  "CMakeFiles/flow_utils_test.dir/flow_utils_test.cc.o.d"
  "flow_utils_test"
  "flow_utils_test.pdb"
  "flow_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
