# Empty compiler generated dependencies file for flow_utils_test.
# This may be replaced when dependencies are built.
