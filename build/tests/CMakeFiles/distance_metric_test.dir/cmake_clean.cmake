file(REMOVE_RECURSE
  "CMakeFiles/distance_metric_test.dir/distance_metric_test.cc.o"
  "CMakeFiles/distance_metric_test.dir/distance_metric_test.cc.o.d"
  "distance_metric_test"
  "distance_metric_test.pdb"
  "distance_metric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
