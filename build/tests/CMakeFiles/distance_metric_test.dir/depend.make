# Empty dependencies file for distance_metric_test.
# This may be replaced when dependencies are built.
