# Empty compiler generated dependencies file for time_sequence_test.
# This may be replaced when dependencies are built.
