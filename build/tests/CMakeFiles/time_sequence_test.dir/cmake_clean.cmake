file(REMOVE_RECURSE
  "CMakeFiles/time_sequence_test.dir/time_sequence_test.cc.o"
  "CMakeFiles/time_sequence_test.dir/time_sequence_test.cc.o.d"
  "time_sequence_test"
  "time_sequence_test.pdb"
  "time_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
