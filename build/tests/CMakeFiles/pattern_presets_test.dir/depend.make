# Empty dependencies file for pattern_presets_test.
# This may be replaced when dependencies are built.
