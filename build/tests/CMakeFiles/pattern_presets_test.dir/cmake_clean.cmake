file(REMOVE_RECURSE
  "CMakeFiles/pattern_presets_test.dir/pattern_presets_test.cc.o"
  "CMakeFiles/pattern_presets_test.dir/pattern_presets_test.cc.o.d"
  "pattern_presets_test"
  "pattern_presets_test.pdb"
  "pattern_presets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_presets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
