file(REMOVE_RECURSE
  "CMakeFiles/range_join_test.dir/range_join_test.cc.o"
  "CMakeFiles/range_join_test.dir/range_join_test.cc.o.d"
  "range_join_test"
  "range_join_test.pdb"
  "range_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
