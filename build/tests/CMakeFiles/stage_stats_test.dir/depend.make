# Empty dependencies file for stage_stats_test.
# This may be replaced when dependencies are built.
