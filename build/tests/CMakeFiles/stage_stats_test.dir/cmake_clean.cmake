file(REMOVE_RECURSE
  "CMakeFiles/stage_stats_test.dir/stage_stats_test.cc.o"
  "CMakeFiles/stage_stats_test.dir/stage_stats_test.cc.o.d"
  "stage_stats_test"
  "stage_stats_test.pdb"
  "stage_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
