file(REMOVE_RECURSE
  "CMakeFiles/icpe_engine_test.dir/icpe_engine_test.cc.o"
  "CMakeFiles/icpe_engine_test.dir/icpe_engine_test.cc.o.d"
  "icpe_engine_test"
  "icpe_engine_test.pdb"
  "icpe_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpe_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
