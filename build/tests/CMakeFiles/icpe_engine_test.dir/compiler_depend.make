# Empty compiler generated dependencies file for icpe_engine_test.
# This may be replaced when dependencies are built.
