# Empty compiler generated dependencies file for enumerators_test.
# This may be replaced when dependencies are built.
