file(REMOVE_RECURSE
  "CMakeFiles/enumerators_test.dir/enumerators_test.cc.o"
  "CMakeFiles/enumerators_test.dir/enumerators_test.cc.o.d"
  "enumerators_test"
  "enumerators_test.pdb"
  "enumerators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumerators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
