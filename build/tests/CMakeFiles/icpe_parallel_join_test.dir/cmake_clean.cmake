file(REMOVE_RECURSE
  "CMakeFiles/icpe_parallel_join_test.dir/icpe_parallel_join_test.cc.o"
  "CMakeFiles/icpe_parallel_join_test.dir/icpe_parallel_join_test.cc.o.d"
  "icpe_parallel_join_test"
  "icpe_parallel_join_test.pdb"
  "icpe_parallel_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpe_parallel_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
