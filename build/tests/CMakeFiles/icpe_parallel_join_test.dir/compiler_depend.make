# Empty compiler generated dependencies file for icpe_parallel_join_test.
# This may be replaced when dependencies are built.
