# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for icpe_parallel_join_test.
