# Empty dependencies file for spare_miner_test.
# This may be replaced when dependencies are built.
