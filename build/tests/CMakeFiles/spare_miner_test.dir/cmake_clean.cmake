file(REMOVE_RECURSE
  "CMakeFiles/spare_miner_test.dir/spare_miner_test.cc.o"
  "CMakeFiles/spare_miner_test.dir/spare_miner_test.cc.o.d"
  "spare_miner_test"
  "spare_miner_test.pdb"
  "spare_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spare_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
