file(REMOVE_RECURSE
  "CMakeFiles/crossing_flows_test.dir/crossing_flows_test.cc.o"
  "CMakeFiles/crossing_flows_test.dir/crossing_flows_test.cc.o.d"
  "crossing_flows_test"
  "crossing_flows_test.pdb"
  "crossing_flows_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossing_flows_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
