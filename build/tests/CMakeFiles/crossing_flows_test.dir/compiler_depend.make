# Empty compiler generated dependencies file for crossing_flows_test.
# This may be replaced when dependencies are built.
