# Empty dependencies file for snapshot_assembler_test.
# This may be replaced when dependencies are built.
