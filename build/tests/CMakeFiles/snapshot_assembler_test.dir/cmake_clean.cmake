file(REMOVE_RECURSE
  "CMakeFiles/snapshot_assembler_test.dir/snapshot_assembler_test.cc.o"
  "CMakeFiles/snapshot_assembler_test.dir/snapshot_assembler_test.cc.o.d"
  "snapshot_assembler_test"
  "snapshot_assembler_test.pdb"
  "snapshot_assembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
