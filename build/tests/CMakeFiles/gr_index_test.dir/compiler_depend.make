# Empty compiler generated dependencies file for gr_index_test.
# This may be replaced when dependencies are built.
