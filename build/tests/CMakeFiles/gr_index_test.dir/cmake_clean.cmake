file(REMOVE_RECURSE
  "CMakeFiles/gr_index_test.dir/gr_index_test.cc.o"
  "CMakeFiles/gr_index_test.dir/gr_index_test.cc.o.d"
  "gr_index_test"
  "gr_index_test.pdb"
  "gr_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gr_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
