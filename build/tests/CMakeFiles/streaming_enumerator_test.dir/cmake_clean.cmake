file(REMOVE_RECURSE
  "CMakeFiles/streaming_enumerator_test.dir/streaming_enumerator_test.cc.o"
  "CMakeFiles/streaming_enumerator_test.dir/streaming_enumerator_test.cc.o.d"
  "streaming_enumerator_test"
  "streaming_enumerator_test.pdb"
  "streaming_enumerator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_enumerator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
