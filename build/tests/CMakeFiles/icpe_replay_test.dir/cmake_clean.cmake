file(REMOVE_RECURSE
  "CMakeFiles/icpe_replay_test.dir/icpe_replay_test.cc.o"
  "CMakeFiles/icpe_replay_test.dir/icpe_replay_test.cc.o.d"
  "icpe_replay_test"
  "icpe_replay_test.pdb"
  "icpe_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpe_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
