# Empty dependencies file for icpe_replay_test.
# This may be replaced when dependencies are built.
