file(REMOVE_RECURSE
  "CMakeFiles/comove_trajgen.dir/brinkhoff_generator.cc.o"
  "CMakeFiles/comove_trajgen.dir/brinkhoff_generator.cc.o.d"
  "CMakeFiles/comove_trajgen.dir/crossing_flows.cc.o"
  "CMakeFiles/comove_trajgen.dir/crossing_flows.cc.o.d"
  "CMakeFiles/comove_trajgen.dir/csv_loader.cc.o"
  "CMakeFiles/comove_trajgen.dir/csv_loader.cc.o.d"
  "CMakeFiles/comove_trajgen.dir/dataset.cc.o"
  "CMakeFiles/comove_trajgen.dir/dataset.cc.o.d"
  "CMakeFiles/comove_trajgen.dir/road_network.cc.o"
  "CMakeFiles/comove_trajgen.dir/road_network.cc.o.d"
  "CMakeFiles/comove_trajgen.dir/standard_datasets.cc.o"
  "CMakeFiles/comove_trajgen.dir/standard_datasets.cc.o.d"
  "CMakeFiles/comove_trajgen.dir/waypoint_generator.cc.o"
  "CMakeFiles/comove_trajgen.dir/waypoint_generator.cc.o.d"
  "libcomove_trajgen.a"
  "libcomove_trajgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_trajgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
