file(REMOVE_RECURSE
  "libcomove_trajgen.a"
)
