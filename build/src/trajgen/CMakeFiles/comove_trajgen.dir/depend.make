# Empty dependencies file for comove_trajgen.
# This may be replaced when dependencies are built.
