
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trajgen/brinkhoff_generator.cc" "src/trajgen/CMakeFiles/comove_trajgen.dir/brinkhoff_generator.cc.o" "gcc" "src/trajgen/CMakeFiles/comove_trajgen.dir/brinkhoff_generator.cc.o.d"
  "/root/repo/src/trajgen/crossing_flows.cc" "src/trajgen/CMakeFiles/comove_trajgen.dir/crossing_flows.cc.o" "gcc" "src/trajgen/CMakeFiles/comove_trajgen.dir/crossing_flows.cc.o.d"
  "/root/repo/src/trajgen/csv_loader.cc" "src/trajgen/CMakeFiles/comove_trajgen.dir/csv_loader.cc.o" "gcc" "src/trajgen/CMakeFiles/comove_trajgen.dir/csv_loader.cc.o.d"
  "/root/repo/src/trajgen/dataset.cc" "src/trajgen/CMakeFiles/comove_trajgen.dir/dataset.cc.o" "gcc" "src/trajgen/CMakeFiles/comove_trajgen.dir/dataset.cc.o.d"
  "/root/repo/src/trajgen/road_network.cc" "src/trajgen/CMakeFiles/comove_trajgen.dir/road_network.cc.o" "gcc" "src/trajgen/CMakeFiles/comove_trajgen.dir/road_network.cc.o.d"
  "/root/repo/src/trajgen/standard_datasets.cc" "src/trajgen/CMakeFiles/comove_trajgen.dir/standard_datasets.cc.o" "gcc" "src/trajgen/CMakeFiles/comove_trajgen.dir/standard_datasets.cc.o.d"
  "/root/repo/src/trajgen/waypoint_generator.cc" "src/trajgen/CMakeFiles/comove_trajgen.dir/waypoint_generator.cc.o" "gcc" "src/trajgen/CMakeFiles/comove_trajgen.dir/waypoint_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/comove_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
