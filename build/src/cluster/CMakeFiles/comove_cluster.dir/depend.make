# Empty dependencies file for comove_cluster.
# This may be replaced when dependencies are built.
