file(REMOVE_RECURSE
  "CMakeFiles/comove_cluster.dir/clustering.cc.o"
  "CMakeFiles/comove_cluster.dir/clustering.cc.o.d"
  "CMakeFiles/comove_cluster.dir/dbscan.cc.o"
  "CMakeFiles/comove_cluster.dir/dbscan.cc.o.d"
  "CMakeFiles/comove_cluster.dir/gdc.cc.o"
  "CMakeFiles/comove_cluster.dir/gdc.cc.o.d"
  "CMakeFiles/comove_cluster.dir/range_join.cc.o"
  "CMakeFiles/comove_cluster.dir/range_join.cc.o.d"
  "libcomove_cluster.a"
  "libcomove_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
