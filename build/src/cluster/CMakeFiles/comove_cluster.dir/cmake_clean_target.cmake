file(REMOVE_RECURSE
  "libcomove_cluster.a"
)
