
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/clustering.cc" "src/cluster/CMakeFiles/comove_cluster.dir/clustering.cc.o" "gcc" "src/cluster/CMakeFiles/comove_cluster.dir/clustering.cc.o.d"
  "/root/repo/src/cluster/dbscan.cc" "src/cluster/CMakeFiles/comove_cluster.dir/dbscan.cc.o" "gcc" "src/cluster/CMakeFiles/comove_cluster.dir/dbscan.cc.o.d"
  "/root/repo/src/cluster/gdc.cc" "src/cluster/CMakeFiles/comove_cluster.dir/gdc.cc.o" "gcc" "src/cluster/CMakeFiles/comove_cluster.dir/gdc.cc.o.d"
  "/root/repo/src/cluster/range_join.cc" "src/cluster/CMakeFiles/comove_cluster.dir/range_join.cc.o" "gcc" "src/cluster/CMakeFiles/comove_cluster.dir/range_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/comove_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/comove_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
