file(REMOVE_RECURSE
  "libcomove_pattern.a"
)
