# Empty compiler generated dependencies file for comove_pattern.
# This may be replaced when dependencies are built.
