file(REMOVE_RECURSE
  "CMakeFiles/comove_pattern.dir/analysis.cc.o"
  "CMakeFiles/comove_pattern.dir/analysis.cc.o.d"
  "CMakeFiles/comove_pattern.dir/baseline_enumerator.cc.o"
  "CMakeFiles/comove_pattern.dir/baseline_enumerator.cc.o.d"
  "CMakeFiles/comove_pattern.dir/bitstring.cc.o"
  "CMakeFiles/comove_pattern.dir/bitstring.cc.o.d"
  "CMakeFiles/comove_pattern.dir/fixed_bit_enumerator.cc.o"
  "CMakeFiles/comove_pattern.dir/fixed_bit_enumerator.cc.o.d"
  "CMakeFiles/comove_pattern.dir/live_index.cc.o"
  "CMakeFiles/comove_pattern.dir/live_index.cc.o.d"
  "CMakeFiles/comove_pattern.dir/partition.cc.o"
  "CMakeFiles/comove_pattern.dir/partition.cc.o.d"
  "CMakeFiles/comove_pattern.dir/reference_enumerator.cc.o"
  "CMakeFiles/comove_pattern.dir/reference_enumerator.cc.o.d"
  "CMakeFiles/comove_pattern.dir/streaming_enumerator.cc.o"
  "CMakeFiles/comove_pattern.dir/streaming_enumerator.cc.o.d"
  "CMakeFiles/comove_pattern.dir/variable_bit_enumerator.cc.o"
  "CMakeFiles/comove_pattern.dir/variable_bit_enumerator.cc.o.d"
  "libcomove_pattern.a"
  "libcomove_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
