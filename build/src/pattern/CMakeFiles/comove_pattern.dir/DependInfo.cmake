
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pattern/analysis.cc" "src/pattern/CMakeFiles/comove_pattern.dir/analysis.cc.o" "gcc" "src/pattern/CMakeFiles/comove_pattern.dir/analysis.cc.o.d"
  "/root/repo/src/pattern/baseline_enumerator.cc" "src/pattern/CMakeFiles/comove_pattern.dir/baseline_enumerator.cc.o" "gcc" "src/pattern/CMakeFiles/comove_pattern.dir/baseline_enumerator.cc.o.d"
  "/root/repo/src/pattern/bitstring.cc" "src/pattern/CMakeFiles/comove_pattern.dir/bitstring.cc.o" "gcc" "src/pattern/CMakeFiles/comove_pattern.dir/bitstring.cc.o.d"
  "/root/repo/src/pattern/fixed_bit_enumerator.cc" "src/pattern/CMakeFiles/comove_pattern.dir/fixed_bit_enumerator.cc.o" "gcc" "src/pattern/CMakeFiles/comove_pattern.dir/fixed_bit_enumerator.cc.o.d"
  "/root/repo/src/pattern/live_index.cc" "src/pattern/CMakeFiles/comove_pattern.dir/live_index.cc.o" "gcc" "src/pattern/CMakeFiles/comove_pattern.dir/live_index.cc.o.d"
  "/root/repo/src/pattern/partition.cc" "src/pattern/CMakeFiles/comove_pattern.dir/partition.cc.o" "gcc" "src/pattern/CMakeFiles/comove_pattern.dir/partition.cc.o.d"
  "/root/repo/src/pattern/reference_enumerator.cc" "src/pattern/CMakeFiles/comove_pattern.dir/reference_enumerator.cc.o" "gcc" "src/pattern/CMakeFiles/comove_pattern.dir/reference_enumerator.cc.o.d"
  "/root/repo/src/pattern/streaming_enumerator.cc" "src/pattern/CMakeFiles/comove_pattern.dir/streaming_enumerator.cc.o" "gcc" "src/pattern/CMakeFiles/comove_pattern.dir/streaming_enumerator.cc.o.d"
  "/root/repo/src/pattern/variable_bit_enumerator.cc" "src/pattern/CMakeFiles/comove_pattern.dir/variable_bit_enumerator.cc.o" "gcc" "src/pattern/CMakeFiles/comove_pattern.dir/variable_bit_enumerator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/comove_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
