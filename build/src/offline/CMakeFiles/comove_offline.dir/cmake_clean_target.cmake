file(REMOVE_RECURSE
  "libcomove_offline.a"
)
