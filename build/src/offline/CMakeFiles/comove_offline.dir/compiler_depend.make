# Empty compiler generated dependencies file for comove_offline.
# This may be replaced when dependencies are built.
