file(REMOVE_RECURSE
  "CMakeFiles/comove_offline.dir/spare_miner.cc.o"
  "CMakeFiles/comove_offline.dir/spare_miner.cc.o.d"
  "libcomove_offline.a"
  "libcomove_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
