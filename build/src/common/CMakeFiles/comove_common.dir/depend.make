# Empty dependencies file for comove_common.
# This may be replaced when dependencies are built.
