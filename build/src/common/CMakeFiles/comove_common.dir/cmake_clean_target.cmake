file(REMOVE_RECURSE
  "libcomove_common.a"
)
