file(REMOVE_RECURSE
  "CMakeFiles/comove_common.dir/rng.cc.o"
  "CMakeFiles/comove_common.dir/rng.cc.o.d"
  "CMakeFiles/comove_common.dir/time_sequence.cc.o"
  "CMakeFiles/comove_common.dir/time_sequence.cc.o.d"
  "libcomove_common.a"
  "libcomove_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
