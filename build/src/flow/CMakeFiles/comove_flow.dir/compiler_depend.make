# Empty compiler generated dependencies file for comove_flow.
# This may be replaced when dependencies are built.
