file(REMOVE_RECURSE
  "CMakeFiles/comove_flow.dir/snapshot_assembler.cc.o"
  "CMakeFiles/comove_flow.dir/snapshot_assembler.cc.o.d"
  "libcomove_flow.a"
  "libcomove_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
