file(REMOVE_RECURSE
  "libcomove_flow.a"
)
