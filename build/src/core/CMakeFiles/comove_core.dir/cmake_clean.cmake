file(REMOVE_RECURSE
  "CMakeFiles/comove_core.dir/icpe_engine.cc.o"
  "CMakeFiles/comove_core.dir/icpe_engine.cc.o.d"
  "libcomove_core.a"
  "libcomove_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
