file(REMOVE_RECURSE
  "libcomove_core.a"
)
