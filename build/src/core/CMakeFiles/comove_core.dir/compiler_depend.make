# Empty compiler generated dependencies file for comove_core.
# This may be replaced when dependencies are built.
