# Empty dependencies file for comove_index.
# This may be replaced when dependencies are built.
