file(REMOVE_RECURSE
  "libcomove_index.a"
)
