file(REMOVE_RECURSE
  "CMakeFiles/comove_index.dir/kdtree.cc.o"
  "CMakeFiles/comove_index.dir/kdtree.cc.o.d"
  "CMakeFiles/comove_index.dir/rtree.cc.o"
  "CMakeFiles/comove_index.dir/rtree.cc.o.d"
  "libcomove_index.a"
  "libcomove_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
