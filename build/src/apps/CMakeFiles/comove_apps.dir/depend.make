# Empty dependencies file for comove_apps.
# This may be replaced when dependencies are built.
