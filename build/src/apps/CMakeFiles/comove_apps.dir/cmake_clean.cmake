file(REMOVE_RECURSE
  "CMakeFiles/comove_apps.dir/json_export.cc.o"
  "CMakeFiles/comove_apps.dir/json_export.cc.o.d"
  "CMakeFiles/comove_apps.dir/svg_export.cc.o"
  "CMakeFiles/comove_apps.dir/svg_export.cc.o.d"
  "CMakeFiles/comove_apps.dir/trajectory_compression.cc.o"
  "CMakeFiles/comove_apps.dir/trajectory_compression.cc.o.d"
  "libcomove_apps.a"
  "libcomove_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
