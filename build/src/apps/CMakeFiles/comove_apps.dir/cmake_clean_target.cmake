file(REMOVE_RECURSE
  "libcomove_apps.a"
)
