file(REMOVE_RECURSE
  "CMakeFiles/movement_prediction.dir/movement_prediction.cpp.o"
  "CMakeFiles/movement_prediction.dir/movement_prediction.cpp.o.d"
  "movement_prediction"
  "movement_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movement_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
