# Empty dependencies file for movement_prediction.
# This may be replaced when dependencies are built.
