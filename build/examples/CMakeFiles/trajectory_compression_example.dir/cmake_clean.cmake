file(REMOVE_RECURSE
  "CMakeFiles/trajectory_compression_example.dir/trajectory_compression.cpp.o"
  "CMakeFiles/trajectory_compression_example.dir/trajectory_compression.cpp.o.d"
  "trajectory_compression_example"
  "trajectory_compression_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_compression_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
