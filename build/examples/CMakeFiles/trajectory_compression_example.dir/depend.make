# Empty dependencies file for trajectory_compression_example.
# This may be replaced when dependencies are built.
