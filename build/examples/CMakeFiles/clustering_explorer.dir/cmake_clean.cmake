file(REMOVE_RECURSE
  "CMakeFiles/clustering_explorer.dir/clustering_explorer.cpp.o"
  "CMakeFiles/clustering_explorer.dir/clustering_explorer.cpp.o.d"
  "clustering_explorer"
  "clustering_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
