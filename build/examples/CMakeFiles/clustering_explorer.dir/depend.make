# Empty dependencies file for clustering_explorer.
# This may be replaced when dependencies are built.
