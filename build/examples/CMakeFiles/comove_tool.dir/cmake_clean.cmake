file(REMOVE_RECURSE
  "CMakeFiles/comove_tool.dir/comove_tool.cpp.o"
  "CMakeFiles/comove_tool.dir/comove_tool.cpp.o.d"
  "comove_tool"
  "comove_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comove_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
