# Empty dependencies file for comove_tool.
# This may be replaced when dependencies are built.
