file(REMOVE_RECURSE
  "CMakeFiles/travel_communities.dir/travel_communities.cpp.o"
  "CMakeFiles/travel_communities.dir/travel_communities.cpp.o.d"
  "travel_communities"
  "travel_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
