# Empty dependencies file for travel_communities.
# This may be replaced when dependencies are built.
