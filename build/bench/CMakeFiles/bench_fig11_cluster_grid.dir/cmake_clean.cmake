file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cluster_grid.dir/bench_fig11_cluster_grid.cc.o"
  "CMakeFiles/bench_fig11_cluster_grid.dir/bench_fig11_cluster_grid.cc.o.d"
  "bench_fig11_cluster_grid"
  "bench_fig11_cluster_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cluster_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
