# Empty compiler generated dependencies file for bench_fig11_cluster_grid.
# This may be replaced when dependencies are built.
