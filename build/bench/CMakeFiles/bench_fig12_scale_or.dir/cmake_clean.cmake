file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_scale_or.dir/bench_fig12_scale_or.cc.o"
  "CMakeFiles/bench_fig12_scale_or.dir/bench_fig12_scale_or.cc.o.d"
  "bench_fig12_scale_or"
  "bench_fig12_scale_or.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_scale_or.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
