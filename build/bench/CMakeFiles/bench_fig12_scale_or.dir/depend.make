# Empty dependencies file for bench_fig12_scale_or.
# This may be replaced when dependencies are built.
