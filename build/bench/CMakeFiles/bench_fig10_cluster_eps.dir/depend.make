# Empty dependencies file for bench_fig10_cluster_eps.
# This may be replaced when dependencies are built.
