file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_enum_mklg.dir/bench_fig15_enum_mklg.cc.o"
  "CMakeFiles/bench_fig15_enum_mklg.dir/bench_fig15_enum_mklg.cc.o.d"
  "bench_fig15_enum_mklg"
  "bench_fig15_enum_mklg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_enum_mklg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
