# Empty compiler generated dependencies file for bench_fig15_enum_mklg.
# This may be replaced when dependencies are built.
