file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_scale_eps.dir/bench_fig13_scale_eps.cc.o"
  "CMakeFiles/bench_fig13_scale_eps.dir/bench_fig13_scale_eps.cc.o.d"
  "bench_fig13_scale_eps"
  "bench_fig13_scale_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_scale_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
