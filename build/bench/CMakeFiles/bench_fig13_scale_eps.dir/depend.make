# Empty dependencies file for bench_fig13_scale_eps.
# This may be replaced when dependencies are built.
