
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_scale_nodes.cc" "bench/CMakeFiles/bench_fig14_scale_nodes.dir/bench_fig14_scale_nodes.cc.o" "gcc" "bench/CMakeFiles/bench_fig14_scale_nodes.dir/bench_fig14_scale_nodes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/comove_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/comove_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/comove_index.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/comove_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/comove_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/trajgen/CMakeFiles/comove_trajgen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/comove_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
