# Empty compiler generated dependencies file for bench_fig14_scale_nodes.
# This may be replaced when dependencies are built.
