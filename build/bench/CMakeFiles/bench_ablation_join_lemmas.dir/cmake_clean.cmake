file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_join_lemmas.dir/bench_ablation_join_lemmas.cc.o"
  "CMakeFiles/bench_ablation_join_lemmas.dir/bench_ablation_join_lemmas.cc.o.d"
  "bench_ablation_join_lemmas"
  "bench_ablation_join_lemmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_join_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
