# Empty dependencies file for bench_ablation_join_lemmas.
# This may be replaced when dependencies are built.
