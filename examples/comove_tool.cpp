/// comove_tool - the library's command-line Swiss army knife.
///
///   comove_tool generate <geolife|taxi|brinkhoff> <scale> <out.csv>
///       Synthesize a standard dataset and write it as CSV.
///
///   comove_tool detect <in.csv> [--eps X] [--minpts N] [--mklg M,K,L,G]
///                      [--enumerator fba|vba|ba] [--parallelism N]
///                      [--json out.json] [--svg out.svg] [--maximal] [--stats]
///                      [--checkpoint-dir DIR] [--checkpoint-interval N]
///                      [--recover] [--trace out.json]
///                      [--sample-interval MS] [--timeseries out.csv]
///       Run the ICPE pipeline over a CSV stream; print a summary and
///       optionally export JSON results and an SVG rendering. With
///       --checkpoint-dir the run snapshots its state to DIR every N
///       snapshot-times (aligned barriers, default 100); --recover resumes
///       from the newest intact checkpoint in DIR after a crash and
///       produces output identical to an uninterrupted run. --trace writes
///       per-stage spans as Chrome trace_event JSON (load in
///       chrome://tracing or https://ui.perfetto.dev) and prints the
///       worst-snapshot stage breakdown; --sample-interval runs a
///       background metrics sampler at the given cadence,
///       --timeseries writes its samples as tidy CSV.
///
///   comove_tool compress <in.csv> <tolerance> <out.csv>
///       Pattern-based compression round trip: detect patterns, compress,
///       decompress, write the (bounded-error) reconstruction, report the
///       achieved ratio.
///
///   comove_tool worker <coordinator-address> <index>
///       Run as a net worker process (normally spawned by a distributed
///       detect run, not typed by hand). detect grows the deployment
///       flags: --workers N runs the pipeline across N worker processes
///       over --transport unix|tcp loopback sockets, producing the
///       bit-identical pattern multiset of the single-process run;
///       --patterns-out FILE writes that multiset in a canonical text
///       form for diffing; --inject-fault STAGE,SUBTASK,CHECKPOINT kills
///       the named subtask while it snapshots the given checkpoint
///       (pair with --checkpoint-dir, then rerun with --recover).
///       Observability crosses the process boundary: with --workers N,
///       --stats labels every row with its process ("w<i>:" prefixes for
///       worker-hosted stages, "link:*" rows for per-socket transport
///       counters), --trace writes one merged Chrome timeline with a
///       lane group per process (worker clocks aligned to the
///       coordinator's), and --sample-interval samples local and remote
///       rows alike. A clean run that cannot produce a complete merge
///       aborts rather than under-report.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/json_export.h"
#include "flow/checkpoint/snapshot_store.h"
#include "apps/svg_export.h"
#include "apps/trajectory_compression.h"
#include "cluster/join_kernel.h"
#include "common/cpu_features.h"
#include "core/distributed.h"
#include "core/icpe_engine.h"
#include "pattern/analysis.h"
#include "trajgen/csv_loader.h"
#include "trajgen/standard_datasets.h"

namespace {

using namespace comove;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  comove_tool generate <geolife|taxi|brinkhoff> <scale> <out.csv>\n"
      "  comove_tool detect <in.csv> [--eps X] [--minpts N] "
      "[--mklg M,K,L,G]\n"
      "               [--enumerator fba|vba|ba] [--parallelism N]\n"
      "               [--json out.json] [--svg out.svg] [--maximal] [--stats]\n"
      "               [--checkpoint-dir DIR] [--checkpoint-interval N] "
      "[--recover]\n"
      "               [--trace out.json] [--sample-interval MS] "
      "[--timeseries out.csv]\n"
      "               [--workers N] [--transport unix|tcp] "
      "[--patterns-out FILE]\n"
      "               [--inject-fault STAGE,SUBTASK,CHECKPOINT]\n"
      "  comove_tool compress <in.csv> <tolerance> <out.csv>\n"
      "  comove_tool worker <coordinator-address> <index>\n");
  return 2;
}

/// Canonical text form of a pattern multiset: one line per pattern,
/// "id,id,...:t,t,...", sorted - so two runs agree bit-for-bit exactly
/// when their pattern multisets do (the CI diff job relies on this).
bool WritePatternsText(const std::vector<CoMovementPattern>& patterns,
                       const std::string& path) {
  std::vector<std::string> lines;
  lines.reserve(patterns.size());
  for (const CoMovementPattern& p : patterns) {
    std::string line;
    for (std::size_t i = 0; i < p.objects.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(p.objects[i]);
    }
    line += ':';
    for (std::size_t i = 0; i < p.times.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(p.times[i]);
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::ofstream out(path);
  if (!out) return false;
  for (const std::string& line : lines) out << line << '\n';
  return out.good();
}

int RunGenerate(int argc, char** argv) {
  if (argc != 5) return Usage();
  trajgen::StandardDataset which;
  const std::string name = argv[2];
  if (name == "geolife") {
    which = trajgen::StandardDataset::kGeoLife;
  } else if (name == "taxi") {
    which = trajgen::StandardDataset::kTaxi;
  } else if (name == "brinkhoff") {
    which = trajgen::StandardDataset::kBrinkhoff;
  } else {
    return Usage();
  }
  const double scale = std::atof(argv[3]);
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "scale must be in (0, 1]\n");
    return 2;
  }
  const trajgen::Dataset dataset = MakeStandardDataset(which, scale);
  std::ofstream out(argv[4]);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[4]);
    return 1;
  }
  WriteCsvDataset(dataset, out);
  const auto stats = dataset.ComputeStats();
  std::printf("wrote %s: %lld trajectories, %lld records, %lld snapshots\n",
              argv[4], static_cast<long long>(stats.trajectories),
              static_cast<long long>(stats.locations),
              static_cast<long long>(stats.snapshots));
  return 0;
}

bool ParseMklg(const char* text, PatternConstraints* c) {
  return std::sscanf(text, "%d,%d,%d,%d", &c->m, &c->k, &c->l, &c->g) == 4 &&
         c->IsValid();
}

int RunDetect(int argc, char** argv) {
  if (argc < 3) return Usage();
  trajgen::Dataset dataset;
  const auto load = trajgen::LoadCsvDatasetFile(argv[2], &dataset);
  if (!load.ok) {
    std::fprintf(stderr, "error: %s\n", load.error.c_str());
    return 1;
  }
  const auto stats = dataset.ComputeStats();

  core::IcpeOptions options;
  options.cluster_options.join.eps = stats.MaxDistance() * 0.006;
  options.cluster_options.join.grid_cell_width = stats.MaxDistance() * 0.016;
  options.cluster_options.dbscan.min_pts = 4;
  options.constraints = PatternConstraints{3, 8, 3, 2};
  std::string json_path;
  std::string svg_path;
  std::string checkpoint_dir;
  std::string timeseries_path;
  std::string patterns_out;
  std::int64_t checkpoint_interval = 100;
  bool recover = false;
  bool maximal_only = false;
  core::DistributedOptions dist;
  dist.workers = 0;  // 0 = single process (the default deployment)
  for (int i = 3; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--eps")) {
      if (const char* v = next()) options.cluster_options.join.eps =
          std::atof(v);
    } else if (!std::strcmp(argv[i], "--minpts")) {
      if (const char* v = next()) {
        options.cluster_options.dbscan.min_pts = std::atoi(v);
      }
    } else if (!std::strcmp(argv[i], "--mklg")) {
      const char* v = next();
      if (v == nullptr || !ParseMklg(v, &options.constraints)) {
        std::fprintf(stderr, "bad --mklg (want M,K,L,G)\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--enumerator")) {
      const char* v = next();
      if (v == nullptr) return Usage();
      if (!std::strcmp(v, "fba")) {
        options.enumerator = core::EnumeratorKind::kFBA;
      } else if (!std::strcmp(v, "vba")) {
        options.enumerator = core::EnumeratorKind::kVBA;
      } else if (!std::strcmp(v, "ba")) {
        options.enumerator = core::EnumeratorKind::kBA;
      } else {
        return Usage();
      }
    } else if (!std::strcmp(argv[i], "--parallelism")) {
      if (const char* v = next()) options.parallelism = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--json")) {
      if (const char* v = next()) json_path = v;
    } else if (!std::strcmp(argv[i], "--svg")) {
      if (const char* v = next()) svg_path = v;
    } else if (!std::strcmp(argv[i], "--checkpoint-dir")) {
      if (const char* v = next()) checkpoint_dir = v;
    } else if (!std::strcmp(argv[i], "--checkpoint-interval")) {
      if (const char* v = next()) checkpoint_interval = std::atoll(v);
    } else if (!std::strcmp(argv[i], "--recover")) {
      recover = true;
    } else if (!std::strcmp(argv[i], "--maximal")) {
      maximal_only = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      options.collect_stats = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      if (const char* v = next()) options.trace_path = v;
    } else if (!std::strcmp(argv[i], "--sample-interval")) {
      if (const char* v = next()) options.sample_interval_ms = std::atoll(v);
    } else if (!std::strcmp(argv[i], "--timeseries")) {
      if (const char* v = next()) timeseries_path = v;
    } else if (!std::strcmp(argv[i], "--workers")) {
      if (const char* v = next()) dist.workers = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--transport")) {
      const char* v = next();
      if (v == nullptr ||
          (std::strcmp(v, "unix") != 0 && std::strcmp(v, "tcp") != 0)) {
        std::fprintf(stderr, "--transport must be unix or tcp\n");
        return 2;
      }
      dist.transport = v;
    } else if (!std::strcmp(argv[i], "--patterns-out")) {
      if (const char* v = next()) patterns_out = v;
    } else if (!std::strcmp(argv[i], "--inject-fault")) {
      const char* v = next();
      char stage[16] = {0};
      int subtask = 0;
      long long at = 0;
      if (v == nullptr ||
          std::sscanf(v, "%15[a-z],%d,%lld", stage, &subtask, &at) != 3) {
        std::fprintf(stderr,
                     "bad --inject-fault (want STAGE,SUBTASK,CHECKPOINT)\n");
        return 2;
      }
      options.fault = core::FaultSpec{stage, subtask, at};
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (recover && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--recover requires --checkpoint-dir\n");
    return 2;
  }
  if (checkpoint_interval <= 0) {
    std::fprintf(stderr, "--checkpoint-interval must be positive\n");
    return 2;
  }
  if (options.sample_interval_ms < 0) {
    std::fprintf(stderr, "--sample-interval must be non-negative\n");
    return 2;
  }
  // A time-series file needs a sampler; pick a sane default cadence.
  if (!timeseries_path.empty() && options.sample_interval_ms == 0) {
    options.sample_interval_ms = 100;
  }
  std::unique_ptr<flow::FileSnapshotStore> store;
  if (!checkpoint_dir.empty()) {
    store = std::make_unique<flow::FileSnapshotStore>(checkpoint_dir);
    options.snapshot_store = store.get();
    options.checkpoint_interval = checkpoint_interval;
    options.recover = recover;
  }

  if (dist.workers < 0) {
    std::fprintf(stderr, "--workers must be >= 0\n");
    return 2;
  }
  if (dist.workers > options.parallelism) {
    std::fprintf(stderr, "--workers must be <= --parallelism\n");
    return 2;
  }
  core::IcpeResult result =
      dist.workers > 0 ? RunIcpeDistributed(dataset, options, dist)
                       : RunIcpe(dataset, options);
  if (dist.workers > 0) {
    std::printf("deployment: coordinator + %d worker processes over %s "
                "loopback\n",
                dist.workers, dist.transport.c_str());
  }
  if (result.crashed) {
    std::printf("run crashed (injected or real fault); patterns below are "
                "partial\n");
  }
  if (store != nullptr) {
    std::printf("checkpoints: %lld completed, %lld failed, latest id %lld "
                "-> %s\n",
                static_cast<long long>(result.checkpoints_completed),
                static_cast<long long>(result.checkpoints_failed),
                static_cast<long long>(result.last_checkpoint_id),
                store->directory().c_str());
  }
  if (maximal_only) {
    result.patterns = pattern::FilterMaximalPatterns(result.patterns);
  }
  const auto pstats = pattern::ComputePatternStatistics(result.patterns);
  std::printf("%s: %zu patterns (%s), mean size %.1f, mean duration %.1f\n",
              dataset.name.c_str(), result.patterns.size(),
              maximal_only ? "maximal" : "all", pstats.mean_size,
              pstats.mean_duration);
  std::printf("latency %.2f ms | throughput %.0f snapshots/s | "
              "clusters %lld (avg %.1f members)\n",
              result.snapshots.average_latency_ms,
              result.snapshots.throughput_tps,
              static_cast<long long>(result.cluster_count),
              result.avg_cluster_size);
  if (options.collect_stats) {
    const auto& cpu = GetCpuFeatures();
    const SimdLevel selected =
        cluster::ResolveSimdLevel(options.cluster_options.join.simd);
    std::printf("simd: %s kernels (cpu avx2=%s%s) | arena %lld KiB, "
                "%lld allocations\n",
                SimdLevelName(selected), cpu.avx2 ? "yes" : "no",
                cpu.force_scalar ? ", COMOVE_FORCE_SCALAR" : "",
                static_cast<long long>(result.arena_bytes / 1024),
                static_cast<long long>(result.arena_allocations));
    std::printf("enumeration: %lld strings opened, %lld closed, peak %lld "
                "live | apriori %lld nodes, %lld pruned\n",
                static_cast<long long>(result.enum_strings_opened),
                static_cast<long long>(result.enum_strings_closed),
                static_cast<long long>(result.enum_candidates_peak),
                static_cast<long long>(result.enum_apriori_nodes),
                static_cast<long long>(result.enum_apriori_pruned));
  }
  if (options.collect_stats && !result.stage_stats.empty()) {
    std::printf("\n[stage stats]\n");
    flow::PrintStageStats(result.stage_stats, std::cout);
    std::printf("\n[batch size histogram]  (elements per transfer: count)\n");
    flow::PrintBatchHistogram(result.stage_stats, std::cout);
  }
  if (!result.worst_snapshots.empty()) {
    std::printf("\n[worst snapshots]  (per-stage span time, ms)\n");
    flow::PrintSnapshotBreakdown(result.worst_snapshots, std::cout);
  }
  if (result.trace_events > 0) {
    std::printf("trace: %lld events recorded, %lld dropped",
                static_cast<long long>(result.trace_events),
                static_cast<long long>(result.trace_dropped));
    if (!options.trace_path.empty()) {
      std::printf(" -> %s", options.trace_path.c_str());
    }
    std::printf("\n");
  }
  if (!result.time_series.empty()) {
    std::printf("time series: %zu samples at %lld ms cadence\n",
                result.time_series.size(),
                static_cast<long long>(options.sample_interval_ms));
  }
  if (!timeseries_path.empty()) {
    std::ofstream out(timeseries_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", timeseries_path.c_str());
      return 1;
    }
    flow::WriteTimeSeriesCsv(result.time_series, out);
    std::printf("time series -> %s\n", timeseries_path.c_str());
  }
  if (!patterns_out.empty()) {
    if (!WritePatternsText(result.patterns, patterns_out)) {
      std::fprintf(stderr, "cannot write %s\n", patterns_out.c_str());
      return 1;
    }
    std::printf("pattern multiset -> %s\n", patterns_out.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    apps::WriteResultJson(result, out);
    std::printf("results -> %s\n", json_path.c_str());
  }
  if (!svg_path.empty()) {
    std::ofstream out(svg_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", svg_path.c_str());
      return 1;
    }
    apps::WriteSvg(dataset, result.patterns, out);
    std::printf("rendering -> %s\n", svg_path.c_str());
  }
  return 0;
}

int RunCompress(int argc, char** argv) {
  if (argc != 5) return Usage();
  trajgen::Dataset dataset;
  const auto load = trajgen::LoadCsvDatasetFile(argv[2], &dataset);
  if (!load.ok) {
    std::fprintf(stderr, "error: %s\n", load.error.c_str());
    return 1;
  }
  const double tolerance = std::atof(argv[3]);
  const auto stats = dataset.ComputeStats();

  core::IcpeOptions options;
  options.cluster_options.join.eps = stats.MaxDistance() * 0.006;
  options.cluster_options.join.grid_cell_width = stats.MaxDistance() * 0.016;
  options.cluster_options.dbscan.min_pts = 3;
  options.constraints = PatternConstraints{3, 8, 3, 2};
  const core::IcpeResult result = RunIcpe(dataset, options);

  apps::CompressionOptions copts;
  copts.tolerance = tolerance;
  const auto compressed =
      CompressWithPatterns(dataset, result.patterns, copts);
  const std::size_t baseline =
      apps::CompressWithPatterns(dataset, {}, {0.0, 1.0}).EstimateBytes();
  const trajgen::Dataset restored = compressed.Decompress();
  std::ofstream out(argv[4]);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[4]);
    return 1;
  }
  WriteCsvDataset(restored, out);
  std::printf("%zu patterns | %zu/%zu records as deltas | %zu -> %zu bytes "
              "(%.2fx) | error <= %.4f\n",
              result.patterns.size(), compressed.delta_records(),
              compressed.total_records(), baseline,
              compressed.EstimateBytes(),
              static_cast<double>(baseline) /
                  static_cast<double>(compressed.EstimateBytes()),
              tolerance / 2);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A distributed run re-executes this binary as its worker processes.
  if (const auto code = comove::core::MaybeNetWorker(argc, argv)) {
    return *code;
  }
  if (argc < 2) return Usage();
  if (!std::strcmp(argv[1], "generate")) return RunGenerate(argc, argv);
  if (!std::strcmp(argv[1], "detect")) return RunDetect(argc, argv);
  if (!std::strcmp(argv[1], "compress")) return RunCompress(argc, argv);
  if (!std::strcmp(argv[1], "worker") && argc == 4) {
    return comove::core::NetWorkerMain(argv[2], std::atoi(argv[3]));
  }
  return Usage();
}
