/// Future-movement prediction: the paper's Fig. 1 motivation. Patterns
/// detected on the live stream tell us which objects habitually move
/// together; when we then need to predict where an object is heading, its
/// co-movement partners are the best predictor - if the group is already
/// further along the shared route, the object will follow.
///
/// This example detects patterns on the first 3/4 of a stream, then for
/// several target objects predicts their position at a future time as the
/// centroid of their strongest pattern's partners, and scores the
/// prediction against the withheld ground truth versus a naive
/// dead-reckoning baseline (continue at the last observed velocity).

#include <cmath>
#include <cstdio>
#include <map>

#include "core/icpe_engine.h"
#include "trajgen/waypoint_generator.h"

namespace {

using namespace comove;

/// Position lookup built from the raw records.
using PositionMap = std::map<std::pair<Timestamp, TrajectoryId>, Point>;

PositionMap IndexPositions(const trajgen::Dataset& dataset) {
  PositionMap at;
  for (const GpsRecord& r : dataset.records) {
    at[{r.time, r.id}] = r.location;
  }
  return at;
}

/// The pattern containing `target` with the longest witness sequence.
const CoMovementPattern* StrongestPatternOf(
    const std::vector<CoMovementPattern>& patterns, TrajectoryId target) {
  const CoMovementPattern* best = nullptr;
  for (const CoMovementPattern& p : patterns) {
    const bool contains =
        std::binary_search(p.objects.begin(), p.objects.end(), target);
    if (contains && (best == nullptr ||
                     p.times.size() > best->times.size())) {
      best = &p;
    }
  }
  return best;
}

}  // namespace

int main() {
  trajgen::WaypointOptions gen;
  gen.object_count = 150;
  gen.duration = 130;
  gen.group_count = 12;
  gen.group_size = 5;
  gen.report_prob = 1.0;  // clean ground truth for scoring
  // Short legs and brief stops: routes turn within the prediction window,
  // which is where trajectory-level extrapolation breaks down and
  // group-level knowledge pays off.
  gen.poi_count = 30;
  gen.city_radius = 800.0;
  gen.max_dwell = 4;
  const trajgen::Dataset full = GenerateGeoLifeLike(gen, /*seed=*/31);
  const Timestamp horizon = 90;   // train on [0, 90), predict at 115
  const Timestamp target_time = 115;
  const trajgen::Dataset train = full.TruncateTime(horizon);
  const PositionMap at = IndexPositions(full);

  core::IcpeOptions options;
  options.cluster_options.join.eps = 25.0;
  options.cluster_options.join.grid_cell_width = 200.0;
  options.cluster_options.dbscan.min_pts = 3;
  options.constraints = PatternConstraints{3, 12, 4, 3};
  options.parallelism = 4;
  const core::IcpeResult result = RunIcpe(train, options);
  std::printf("detected %zu patterns on the first %d snapshots\n\n",
              result.patterns.size(), horizon);

  std::printf("%-8s %16s %16s %10s\n", "object", "pattern-err",
              "dead-reckon-err", "partners");
  double pattern_total = 0.0, naive_total = 0.0;
  int scored = 0;
  for (TrajectoryId target = 0; target < 150 && scored < 12; ++target) {
    const CoMovementPattern* pattern =
        StrongestPatternOf(result.patterns, target);
    if (pattern == nullptr) continue;
    const auto truth = at.find({target_time, target});
    const auto last = at.find({horizon - 1, target});
    const auto prev = at.find({horizon - 2, target});
    if (truth == at.end() || last == at.end() || prev == at.end()) continue;

    // Pattern prediction: centroid of the partners at the target time
    // (in deployment the partners' live positions keep streaming in even
    // when the target's signal is lost - that asymmetry is the use case).
    Point centroid{0, 0};
    int found = 0;
    for (const TrajectoryId partner : pattern->objects) {
      if (partner == target) continue;
      const auto pos = at.find({target_time, partner});
      if (pos != at.end()) {
        centroid.x += pos->second.x;
        centroid.y += pos->second.y;
        ++found;
      }
    }
    if (found == 0) continue;
    centroid.x /= found;
    centroid.y /= found;

    // Baseline: dead reckoning from the last observed velocity.
    const double steps = static_cast<double>(target_time - (horizon - 1));
    const Point naive{
        last->second.x + (last->second.x - prev->second.x) * steps,
        last->second.y + (last->second.y - prev->second.y) * steps};

    const double pattern_err = L2Distance(centroid, truth->second);
    const double naive_err = L2Distance(naive, truth->second);
    pattern_total += pattern_err;
    naive_total += naive_err;
    ++scored;
    std::printf("%-8lld %16.1f %16.1f %10zu\n",
                static_cast<long long>(target), pattern_err,
                naive_err, pattern->objects.size() - 1);
  }

  if (scored > 0) {
    std::printf("\nmean error over %d objects: pattern %.1f vs "
                "dead-reckoning %.1f (lower is better)\n",
                scored, pattern_total / scored, naive_total / scored);
  } else {
    std::printf("no scorable objects - relax the constraints\n");
  }
  return 0;
}
