/// Fleet monitoring: the paper's Taxi scenario. A dense taxi fleet
/// streams positions every 5 s; we detect convoys (taxis that travel
/// together - e.g. following the same passenger demand, or platooning on
/// a highway) in real time and compare the FBA and VBA enumerators on the
/// same stream, reproducing the §7.4 deployment guidance: pick FBA when
/// its throughput keeps up with the input rate, VBA when throughput is
/// the binding constraint and detection latency is less critical.

#include <cstdio>

#include "core/icpe_engine.h"
#include "trajgen/brinkhoff_generator.h"

namespace {

comove::core::IcpeResult RunWith(const comove::trajgen::Dataset& fleet,
                                 comove::core::EnumeratorKind kind) {
  comove::core::IcpeOptions options;
  options.enumerator = kind;
  options.cluster_options.join.eps = 18.0;
  options.cluster_options.join.grid_cell_width = 150.0;
  options.cluster_options.dbscan.min_pts = 3;
  // Convoys: at least 3 taxis, together for 10 intervals (~50 s of clock
  // time at the 5 s sampling), tolerating 2-interval drop-outs.
  options.constraints = comove::PatternConstraints{3, 10, 3, 2};
  options.parallelism = 4;
  return RunIcpe(fleet, options);
}

}  // namespace

int main() {
  using namespace comove;

  const trajgen::Dataset fleet =
      trajgen::GenerateTaxiLike(/*object_count=*/300, /*duration=*/120,
                                /*seed=*/7);
  const auto stats = fleet.ComputeStats();
  std::printf("fleet stream: %lld taxis, %lld reports, %lld intervals "
              "(%.0f s of clock time at %.0f s sampling)\n\n",
              static_cast<long long>(stats.trajectories),
              static_cast<long long>(stats.locations),
              static_cast<long long>(stats.snapshots),
              static_cast<double>(stats.snapshots) * fleet.interval_seconds,
              fleet.interval_seconds);

  const core::IcpeResult fba = RunWith(fleet, core::EnumeratorKind::kFBA);
  const core::IcpeResult vba = RunWith(fleet, core::EnumeratorKind::kVBA);

  std::printf("%-6s %12s %14s %10s\n", "method", "latency(ms)",
              "throughput(tps)", "convoys");
  std::printf("%-6s %12.2f %14.0f %10zu\n", "FBA",
              fba.snapshots.average_latency_ms, fba.snapshots.throughput_tps,
              fba.patterns.size());
  std::printf("%-6s %12.2f %14.0f %10zu\n\n", "VBA",
              vba.snapshots.average_latency_ms, vba.snapshots.throughput_tps,
              vba.patterns.size());

  // Input arrives at 1 snapshot per 5 s = 0.2 snapshots/s; both methods
  // keep up easily here, so §7.4 recommends FBA for its lower latency.
  const double input_rate = 1.0 / fleet.interval_seconds;
  const bool fba_keeps_up = fba.snapshots.throughput_tps > input_rate;
  std::printf("input rate %.2f snapshots/s -> recommended enumerator: %s\n\n",
              input_rate, fba_keeps_up ? "FBA (latency-optimal, keeps up)"
                                       : "VBA (throughput-optimal)");

  // Show the largest convoys.
  const CoMovementPattern* largest = nullptr;
  for (const CoMovementPattern& p : fba.patterns) {
    if (largest == nullptr || p.objects.size() > largest->objects.size()) {
      largest = &p;
    }
  }
  if (largest != nullptr) {
    std::printf("largest convoy: %zu taxis {", largest->objects.size());
    for (std::size_t i = 0; i < largest->objects.size(); ++i) {
      std::printf("%s%lld", i ? ", " : "",
                  static_cast<long long>(largest->objects[i]));
    }
    std::printf("} co-travelling across %zu intervals\n",
                largest->times.size());
  } else {
    std::printf("no convoys under these constraints\n");
  }
  return 0;
}
