/// Live dashboard: the pipeline running against a *simulated real-time*
/// stream (the source is throttled to a fixed arrival rate instead of
/// replaying at full speed). Patterns print the moment an enumeration
/// subtask proves them, stamped with the wall-clock offset since stream
/// start - which makes the FBA/VBA latency difference visible to the
/// naked eye: rerun with VBA and watch detections arrive in bursts when
/// co-movement episodes close.
///
///   ./examples/live_dashboard [fba|vba]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "core/icpe_engine.h"
#include "pattern/live_index.h"
#include "trajgen/brinkhoff_generator.h"

int main(int argc, char** argv) {
  using namespace comove;
  const bool use_vba = argc > 1 && !std::strcmp(argv[1], "vba");

  trajgen::BrinkhoffOptions gen;
  gen.object_count = 80;
  gen.duration = 60;
  gen.group_count = 6;
  gen.group_size = 5;
  const trajgen::Dataset dataset = GenerateBrinkhoff(gen, 99);

  core::IcpeOptions options;
  options.enumerator =
      use_vba ? core::EnumeratorKind::kVBA : core::EnumeratorKind::kFBA;
  options.cluster_options.join.eps = 14.0;
  options.cluster_options.join.grid_cell_width = 100.0;
  options.cluster_options.dbscan.min_pts = 3;
  options.constraints = PatternConstraints{3, 8, 3, 2};
  options.parallelism = 2;
  options.replay_delay_us = 25000;  // 25 ms per snapshot ~ 40 snapshots/s

  pattern::LivePatternIndex index;
  const auto start = std::chrono::steady_clock::now();
  std::mutex print_mu;
  int printed = 0;
  options.on_pattern = [&](const CoMovementPattern& p) {
    index.Add(p);
    std::lock_guard<std::mutex> lock(print_mu);
    if (printed >= 25) return;  // keep the demo terse
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("[t+%6.3fs] pattern {", secs);
    for (std::size_t i = 0; i < p.objects.size(); ++i) {
      std::printf("%s%lld", i ? "," : "",
                  static_cast<long long>(p.objects[i]));
    }
    std::printf("} over snapshots [%d..%d]\n", p.times.front(),
                p.times.back());
    if (++printed == 25) std::printf("  ... (suppressing further lines)\n");
  };

  std::printf("streaming %zu records at ~40 snapshots/s with %s...\n\n",
              dataset.records.size(),
              core::EnumeratorKindName(options.enumerator));
  const core::IcpeResult result = RunIcpe(dataset, options);

  std::printf("\nstream complete: %zu distinct patterns | avg response "
              "%.1f ms | max %.1f ms\n",
              result.patterns.size(), result.snapshots.average_latency_ms,
              result.snapshots.max_latency_ms);
  // The live index is immediately queryable, e.g. for object 0's crew:
  const auto companions = index.CompanionsOf(0);
  std::printf("object 0 currently co-moves with %zu objects\n",
              companions.size());
  return 0;
}
