/// Clustering explorer: compares the three snapshot-clustering methods of
/// §7.1 (our RJC against the SRJ and GDC baselines) on one dataset and
/// prints a Fig. 10-style table - per-snapshot latency, throughput, and
/// the replication volume each scheme ships between subtasks. All three
/// produce identical clusters; only their cost differs.

#include <cstdio>

#include "cluster/range_join.h"
#include "core/icpe_engine.h"
#include "trajgen/standard_datasets.h"

int main() {
  using namespace comove;

  const trajgen::Dataset dataset =
      MakeStandardDataset(trajgen::StandardDataset::kGeoLife, /*scale=*/0.2);
  const auto stats = dataset.ComputeStats();
  const double eps = stats.MaxDistance() * 0.006;
  const double lg = stats.MaxDistance() * 0.016;
  std::printf("dataset %s: %lld objects, %lld snapshots | eps=%.1f lg=%.1f\n\n",
              dataset.name.c_str(),
              static_cast<long long>(stats.trajectories),
              static_cast<long long>(stats.snapshots), eps, lg);

  // Replication volume of the GR-index join with and without Lemma 1
  // (GDC's eps-grid replication is counted separately below).
  cluster::RangeJoinOptions join{.grid_cell_width = lg, .eps = eps};
  std::size_t with_l1 = 0, without_l1 = 0;
  for (const Snapshot& s : dataset.ToSnapshots()) {
    with_l1 += cluster::GridAllocate(s, join, /*use_lemma1=*/true).size();
    without_l1 +=
        cluster::GridAllocate(s, join, /*use_lemma1=*/false).size();
  }
  std::printf("GR-index replication: %zu GridObjects with Lemma 1, "
              "%zu without (%.0f%% saved)\n\n",
              with_l1, without_l1,
              100.0 * (1.0 - static_cast<double>(with_l1) /
                                 static_cast<double>(without_l1)));

  std::printf("%-6s %14s %16s %10s %14s\n", "method", "latency(ms)",
              "throughput(tps)", "clusters", "avg |cluster|");
  for (const auto method :
       {cluster::ClusteringMethod::kRJC, cluster::ClusteringMethod::kSRJ,
        cluster::ClusteringMethod::kGDC}) {
    core::IcpeOptions options;
    options.enumerator = core::EnumeratorKind::kNone;
    options.clustering = method;
    options.cluster_options.join = join;
    options.cluster_options.dbscan.min_pts = 4;
    options.parallelism = 4;
    const core::IcpeResult result = RunIcpe(dataset, options);
    std::printf("%-6s %14.3f %16.0f %10lld %14.2f\n",
                cluster::ClusteringMethodName(method),
                result.snapshots.average_latency_ms,
                result.snapshots.throughput_tps,
                static_cast<long long>(result.cluster_count),
                result.avg_cluster_size);
  }
  std::printf("\nall methods emit identical clusters; RJC's Lemma 1+2 "
              "pruning is pure cost reduction (§5.2).\n");
  return 0;
}
