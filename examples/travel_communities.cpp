/// Travel communities: post-processing detected patterns with the
/// analysis toolkit. Raw enumerator output contains every qualifying
/// subset of each travelling group; this example reduces it to the
/// maximal patterns, summarises the result, and derives the co-movement
/// graph whose connected components are "travel communities" - the groups
/// a transit planner or social-mobility study actually wants to see.

#include <cstdio>

#include "core/icpe_engine.h"
#include "pattern/analysis.h"
#include "trajgen/waypoint_generator.h"

int main() {
  using namespace comove;

  trajgen::WaypointOptions gen;
  gen.object_count = 200;
  gen.duration = 100;
  gen.group_count = 15;
  gen.group_size = 6;
  const trajgen::Dataset dataset = GenerateGeoLifeLike(gen, /*seed=*/12);

  core::IcpeOptions options;
  options.cluster_options.join.eps = 25.0;
  options.cluster_options.join.grid_cell_width = 180.0;
  options.cluster_options.dbscan.min_pts = 3;
  options.constraints = PatternConstraints{3, 10, 3, 2};
  options.parallelism = 4;
  const core::IcpeResult result = RunIcpe(dataset, options);

  const auto raw_stats =
      pattern::ComputePatternStatistics(result.patterns);
  const auto maximal = pattern::FilterMaximalPatterns(result.patterns);
  const auto max_stats = pattern::ComputePatternStatistics(maximal);

  std::printf("raw patterns:     %lld (mean size %.1f, mean duration %.1f)\n",
              static_cast<long long>(raw_stats.pattern_count),
              raw_stats.mean_size, raw_stats.mean_duration);
  std::printf("maximal patterns: %lld (mean size %.1f, mean duration %.1f)\n",
              static_cast<long long>(max_stats.pattern_count),
              max_stats.mean_size, max_stats.mean_duration);
  std::printf("largest pattern:  %lld objects for %lld snapshots\n\n",
              static_cast<long long>(max_stats.max_size),
              static_cast<long long>(max_stats.max_duration));

  std::printf("pattern size histogram (maximal):\n");
  for (const auto& [size, count] : max_stats.size_histogram) {
    std::printf("  %lld objects: %lld\n", static_cast<long long>(size),
                static_cast<long long>(count));
  }

  const auto graph = pattern::CoMovementGraph::FromPatterns(maximal);
  const auto communities = graph.Components();
  std::printf("\nco-movement graph: %lld objects, %lld edges, "
              "%zu travel communities\n",
              static_cast<long long>(graph.node_count()),
              static_cast<long long>(graph.edge_count()),
              communities.size());
  std::size_t shown = 0;
  for (const auto& community : communities) {
    if (++shown > 8) {
      std::printf("  ... and %zu more\n", communities.size() - 8);
      break;
    }
    std::printf("  community of %zu: {", community.size());
    for (std::size_t i = 0; i < community.size() && i < 10; ++i) {
      std::printf("%s%lld", i ? ", " : "",
                  static_cast<long long>(community[i]));
    }
    if (community.size() > 10) std::printf(", ...");
    std::printf("}\n");
  }
  return 0;
}
