/// Quickstart: generate a small network-based trajectory stream, run the
/// full ICPE pipeline (GR-index clustering + FBA enumeration) over it,
/// and print the detected co-movement patterns and the pipeline metrics.
///
///   $ ./examples/quickstart
///
/// This is the 30-second tour of the public API: a Dataset from a
/// generator, IcpeOptions, RunIcpe, IcpeResult.

#include <cstdio>

#include "core/icpe_engine.h"
#include "trajgen/brinkhoff_generator.h"

int main() {
  using namespace comove;

  // 1. A synthetic stream: 120 objects on a road network for 80 ticks,
  //    with 6 seeded groups of 5 objects travelling together.
  trajgen::BrinkhoffOptions gen;
  gen.object_count = 120;
  gen.duration = 80;
  gen.group_count = 6;
  gen.group_size = 5;
  const trajgen::Dataset dataset = GenerateBrinkhoff(gen, /*seed=*/2024);
  const trajgen::DatasetStats stats = dataset.ComputeStats();
  std::printf("dataset: %s | %lld trajectories, %lld records, %lld snapshots\n",
              dataset.name.c_str(),
              static_cast<long long>(stats.trajectories),
              static_cast<long long>(stats.locations),
              static_cast<long long>(stats.snapshots));

  // 2. Configure the pipeline: CP(M=3, K=8, L=3, G=2) patterns over
  //    DBSCAN(eps, minPts=3) clusters, 4 parallel subtasks per stage.
  core::IcpeOptions options;
  options.clustering = cluster::ClusteringMethod::kRJC;
  options.enumerator = core::EnumeratorKind::kFBA;
  options.cluster_options.join.eps = 15.0;
  options.cluster_options.join.grid_cell_width = 120.0;
  options.cluster_options.dbscan.min_pts = 3;
  options.constraints = PatternConstraints{3, 8, 3, 2};
  options.parallelism = 4;

  // 3. Run and inspect.
  const core::IcpeResult result = RunIcpe(dataset, options);
  std::printf("\n%zu co-movement patterns CP(%d,%d,%d,%d):\n",
              result.patterns.size(), options.constraints.m,
              options.constraints.k, options.constraints.l,
              options.constraints.g);
  std::size_t shown = 0;
  for (const CoMovementPattern& p : result.patterns) {
    if (++shown > 10) {
      std::printf("  ... and %zu more\n", result.patterns.size() - 10);
      break;
    }
    std::printf("  objects {");
    for (std::size_t i = 0; i < p.objects.size(); ++i) {
      std::printf("%s%lld", i ? ", " : "",
                  static_cast<long long>(p.objects[i]));
    }
    std::printf("} together over T=[%d..%d] (%zu snapshots)\n",
                p.times.front(), p.times.back(), p.times.size());
  }

  std::printf("\npipeline: avg latency %.2f ms | throughput %.0f snapshots/s\n",
              result.snapshots.average_latency_ms,
              result.snapshots.throughput_tps);
  std::printf("          clustering %.3f ms/snapshot, enumeration %.3f ms/tick\n",
              result.avg_cluster_ms, result.avg_enum_ms);
  return 0;
}
