/// Trajectory compression: the paper's other motivating application.
/// Detect co-movement patterns on a fleet stream, then store each
/// co-mover as quantised deltas against its strongest travel partner.
/// Prints the bytes before/after and the error bound actually achieved.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "apps/trajectory_compression.h"
#include "core/icpe_engine.h"
#include "trajgen/brinkhoff_generator.h"

int main() {
  using namespace comove;

  trajgen::BrinkhoffOptions gen;
  gen.object_count = 200;
  gen.duration = 120;
  gen.group_count = 20;
  gen.group_size = 7;
  gen.group_jitter = 2.5;
  gen.report_prob = 1.0;
  const trajgen::Dataset dataset = GenerateBrinkhoff(gen, 555);
  std::printf("dataset: %zu records from %lld objects\n",
              dataset.records.size(),
              static_cast<long long>(dataset.ComputeStats().trajectories));

  core::IcpeOptions options;
  options.cluster_options.join.eps = 14.0;
  options.cluster_options.join.grid_cell_width = 110.0;
  options.cluster_options.dbscan.min_pts = 3;
  options.constraints = PatternConstraints{3, 10, 3, 2};
  options.parallelism = 4;
  const core::IcpeResult result = RunIcpe(dataset, options);
  std::printf("detected %zu patterns\n\n", result.patterns.size());

  const std::size_t baseline =
      apps::CompressWithPatterns(dataset, {}, {0.0, 1.0}).EstimateBytes();
  std::printf("%-12s %12s %10s %12s %10s\n", "tolerance", "bytes", "ratio",
              "delta-recs", "max-err");
  for (const double tolerance : {0.05, 0.25, 1.0, 4.0}) {
    apps::CompressionOptions copts;
    copts.tolerance = tolerance;
    const auto compressed =
        CompressWithPatterns(dataset, result.patterns, copts);
    const trajgen::Dataset restored = compressed.Decompress();
    // Measure the worst reconstruction error.
    std::map<std::pair<TrajectoryId, Timestamp>, Point> at;
    for (const GpsRecord& r : restored.records) {
      at[{r.id, r.time}] = r.location;
    }
    double max_err = 0;
    for (const GpsRecord& r : dataset.records) {
      const Point& p = at.at({r.id, r.time});
      max_err = std::max(max_err,
                         std::max(std::abs(p.x - r.location.x),
                                  std::abs(p.y - r.location.y)));
    }
    const std::size_t bytes = compressed.EstimateBytes();
    std::printf("%-12.2f %12zu %9.2fx %12zu %10.4f\n", tolerance, bytes,
                static_cast<double>(baseline) / static_cast<double>(bytes),
                compressed.delta_records(), max_err);
  }
  std::printf("\nbaseline (all-absolute storage): %zu bytes\n", baseline);
  std::printf("higher tolerance -> smaller deltas -> better ratio, with "
              "error always <= tolerance/2.\n");
  return 0;
}
