/// CSV-driven pattern detection: run ICPE over your own trajectory data.
///
///   ./examples/csv_detect FILE.csv [eps] [minPts] [M] [K] [L] [G] [N]
///
/// FILE.csv holds `id,time,x,y` records (time already discretised; see
/// README). Without a file argument the tool writes a demo CSV, then
/// detects patterns in it - so it doubles as an end-to-end smoke test of
/// the CSV round trip. Pattern-type presets (convoy/swarm/platoon) are in
/// pattern/pattern_presets.h if you prefer named shapes over raw M,K,L,G.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/icpe_engine.h"
#include "pattern/pattern_presets.h"
#include "trajgen/brinkhoff_generator.h"
#include "trajgen/csv_loader.h"

namespace {

double ArgOr(int argc, char** argv, int index, double fallback) {
  return argc > index ? std::atof(argv[index]) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace comove;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Demo mode: synthesize, export, and read back.
    path = "/tmp/comove_demo.csv";
    trajgen::BrinkhoffOptions gen;
    gen.object_count = 80;
    gen.duration = 60;
    gen.group_count = 5;
    gen.group_size = 5;
    const trajgen::Dataset demo = GenerateBrinkhoff(gen, 77);
    std::ofstream out(path);
    WriteCsvDataset(demo, out);
    std::printf("(demo mode: wrote %zu records to %s)\n\n",
                demo.records.size(), path.c_str());
  }

  trajgen::Dataset dataset;
  const trajgen::CsvLoadResult load =
      trajgen::LoadCsvDatasetFile(path, &dataset);
  if (!load.ok) {
    std::fprintf(stderr, "error: %s\n", load.error.c_str());
    return 1;
  }
  const trajgen::DatasetStats stats = dataset.ComputeStats();
  std::printf("%s: %lld trajectories, %lld records, %lld snapshots, "
              "extent %.1f x %.1f\n",
              dataset.name.c_str(),
              static_cast<long long>(stats.trajectories),
              static_cast<long long>(stats.locations),
              static_cast<long long>(stats.snapshots),
              stats.extent.Width(), stats.extent.Height());

  core::IcpeOptions options;
  options.cluster_options.join.eps =
      ArgOr(argc, argv, 2, stats.MaxDistance() * 0.006);
  options.cluster_options.join.grid_cell_width =
      stats.MaxDistance() * 0.016;
  options.cluster_options.dbscan.min_pts =
      static_cast<std::int32_t>(ArgOr(argc, argv, 3, 3));
  options.constraints =
      PatternConstraints{static_cast<std::int32_t>(ArgOr(argc, argv, 4, 3)),
                         static_cast<std::int32_t>(ArgOr(argc, argv, 5, 8)),
                         static_cast<std::int32_t>(ArgOr(argc, argv, 6, 3)),
                         static_cast<std::int32_t>(ArgOr(argc, argv, 7, 2))};
  options.parallelism =
      static_cast<std::int32_t>(ArgOr(argc, argv, 8, 4));
  if (!options.constraints.IsValid()) {
    std::fprintf(stderr, "error: invalid (M,K,L,G) constraints\n");
    return 1;
  }

  std::printf("running ICPE: eps=%.2f minPts=%d CP(%d,%d,%d,%d) N=%d\n\n",
              options.cluster_options.join.eps,
              options.cluster_options.dbscan.min_pts,
              options.constraints.m, options.constraints.k,
              options.constraints.l, options.constraints.g,
              options.parallelism);
  const core::IcpeResult result = RunIcpe(dataset, options);

  std::printf("%zu patterns | latency %.2f ms | throughput %.0f tps\n",
              result.patterns.size(), result.snapshots.average_latency_ms,
              result.snapshots.throughput_tps);
  std::size_t shown = 0;
  for (const CoMovementPattern& p : result.patterns) {
    if (++shown > 15) {
      std::printf("... (%zu more)\n", result.patterns.size() - 15);
      break;
    }
    std::printf("  {");
    for (std::size_t i = 0; i < p.objects.size(); ++i) {
      std::printf("%s%lld", i ? "," : "",
                  static_cast<long long>(p.objects[i]));
    }
    std::printf("} x%zu snapshots [%d..%d]\n", p.times.size(),
                p.times.front(), p.times.back());
  }
  return 0;
}
