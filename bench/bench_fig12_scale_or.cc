/// Figure 12 (a-d): full pattern-detection latency and throughput vs the
/// ratio of objects Or, for methods B (baseline), F (FBA) and V (VBA),
/// plus the average cluster size curve. Expected shape (paper §7.2):
/// B only runs for small Or (its 2^|P| candidate materialisation
/// explodes with the average cluster size - rows where that happens are
/// skipped here, matching the missing bars in the paper); F achieves the
/// best latency and V the best throughput; both degrade as Or grows.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "cluster/clustering.h"

namespace comove::bench {
namespace {

/// Largest partition BA would have to materialise on this dataset (the
/// largest cluster minus one), used to skip infeasible B rows gracefully.
std::size_t MaxClusterSize(const trajgen::Dataset& dataset,
                           const core::IcpeOptions& options) {
  std::size_t max_size = 0;
  for (const Snapshot& s : dataset.ToSnapshots()) {
    const ClusterSnapshot cs = cluster::ClusterSnapshotWith(
        cluster::ClusteringMethod::kRJC, s, options.cluster_options);
    for (const Cluster& c : cs.clusters) {
      max_size = std::max(max_size, c.members.size());
    }
  }
  return max_size;
}

void BM_DetectionVsOr(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const auto kind = static_cast<core::EnumeratorKind>(state.range(1));
  const double ratio = kOrGrid[static_cast<std::size_t>(state.range(2))];
  const trajgen::Dataset dataset =
      CachedDataset(which).SampleObjects(ratio);

  core::IcpeOptions options = DefaultOptions(dataset);
  options.enumerator = kind;
  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) + "/" +
                 core::EnumeratorKindName(kind) +
                 "/Or=" + std::to_string(static_cast<int>(ratio * 100)) +
                 "%");

  if (kind == core::EnumeratorKind::kBA &&
      MaxClusterSize(dataset, options) > 21) {
    state.SkipWithError(
        "BA infeasible: 2^|P| candidates exceed memory (paper Fig. 12 "
        "shows the same gap)");
    return;
  }

  benchmark::DoNotOptimize(core::RunIcpe(dataset, options));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpe(dataset, options);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

void RegisterAll() {
  for (const auto which : {trajgen::StandardDataset::kTaxi,
                           trajgen::StandardDataset::kBrinkhoff}) {
    for (const auto kind :
         {core::EnumeratorKind::kBA, core::EnumeratorKind::kFBA,
          core::EnumeratorKind::kVBA}) {
      for (std::size_t i = 0; i < std::size(kOrGrid); ++i) {
        benchmark::RegisterBenchmark("Fig12/DetectionVsOr",
                                     &BM_DetectionVsOr)
            ->Args({static_cast<int>(which), static_cast<int>(kind),
                    static_cast<int>(i)})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
