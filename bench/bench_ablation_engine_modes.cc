/// Ablation: clustering execution modes and index build strategies.
///
/// 1. Snapshot-parallel clustering (§5.3's choice, the default) vs the
///    literal Fig. 5 cell-parallel dataflow (GridAllocate -> cell-keyed
///    GridQuery -> GridSync/DBSCAN). The cell mode pays a per-object
///    shuffle; snapshot mode pays nothing but caps parallelism at the
///    snapshot level. On a single machine the snapshot mode wins, which
///    is exactly why §5.3 chose it.
/// 2. Per-snapshot GR-index construction: incremental R* insertion
///    (required by Lemma 2's interleaved plan) vs STR bulk loading
///    (usable by build-then-query plans).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/rng.h"
#include "index/gr_index.h"
#include "index/kdtree.h"

namespace comove::bench {
namespace {

void BM_ClusterExecutionMode(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const bool cell_parallel = state.range(1) != 0;
  const trajgen::Dataset& dataset = CachedDataset(which);
  core::IcpeOptions options = DefaultOptions(dataset);
  options.join_parallel_cells = cell_parallel;

  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) +
                 (cell_parallel ? "/cell-parallel(Fig5)"
                                : "/snapshot-parallel(S5.3)"));
  benchmark::DoNotOptimize(core::RunIcpe(dataset, options));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpe(dataset, options);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

void BM_IndexBuildStrategy(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const bool bulk = state.range(1) != 0;
  const trajgen::Dataset& dataset = CachedDataset(which);
  const auto snapshots = dataset.ToSnapshots();
  const double lg = PctOfExtent(dataset, kDefaultLgPct);

  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) +
                 (bulk ? "/STR-bulk" : "/incremental-R*"));
  double build_ms = 0;
  for (auto _ : state) {
    Stopwatch watch;
    std::size_t total = 0;
    for (const Snapshot& s : snapshots) {
      GRIndex index(lg);
      if (bulk) {
        index.BulkLoadSnapshot(s);
      } else {
        index.InsertSnapshot(s);
      }
      total += index.size();
      benchmark::DoNotOptimize(total);
    }
    build_ms = watch.ElapsedMillis();
  }
  state.counters["build_ms_per_snapshot"] =
      build_ms / static_cast<double>(snapshots.size());
}

/// Monolithic (no grid) R-tree build of one large point set: where STR's
/// O(n log n) packing beats repeated R* insertion. Contrast with the
/// per-cell rows above, where trees are tiny and insertion wins.
void BM_MonolithicBuild(benchmark::State& state) {
  const bool bulk = state.range(0) != 0;
  const int n = static_cast<int>(state.range(1));
  Rng rng(3);
  std::vector<Point> points;
  std::vector<TrajectoryId> ids;
  for (TrajectoryId id = 0; id < n; ++id) {
    points.push_back(Point{rng.Uniform(0, 1e4), rng.Uniform(0, 1e4)});
    ids.push_back(id);
  }
  state.SetLabel(std::string(bulk ? "STR-bulk" : "incremental-R*") +
                 "/n=" + std::to_string(n));
  for (auto _ : state) {
    if (bulk) {
      RTree tree = RTree::BulkLoad(points, ids);
      benchmark::DoNotOptimize(tree.Height());
    } else {
      RTree tree;
      for (std::size_t i = 0; i < points.size(); ++i) {
        tree.Insert(points[i], ids[i]);
      }
      benchmark::DoNotOptimize(tree.Height());
    }
  }
}

/// Local-index choice for a build-then-query snapshot workload (build an
/// index over one snapshot, range-query every point): R* insert, STR
/// bulk R-tree, kd-tree, and the no-index brute force floor.
void BM_LocalIndexQuery(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const trajgen::Dataset& dataset =
      CachedDataset(trajgen::StandardDataset::kTaxi);
  const auto snapshots = dataset.ToSnapshots();
  const double eps = PctOfExtent(dataset, kDefaultEpsPct);
  static const char* kNames[] = {"rtree-insert", "rtree-str", "kdtree",
                                 "brute"};
  state.SetLabel(std::string("Taxi/") + kNames[mode]);

  std::size_t results = 0;
  for (auto _ : state) {
    results = 0;
    for (const Snapshot& s : snapshots) {
      std::vector<Point> points;
      std::vector<TrajectoryId> ids;
      points.reserve(s.entries.size());
      for (const SnapshotEntry& e : s.entries) {
        points.push_back(e.location);
        ids.push_back(e.id);
      }
      std::vector<TrajectoryId> out;
      if (mode == 0 || mode == 1) {
        RTree tree = mode == 0 ? RTree() : RTree::BulkLoad(points, ids);
        if (mode == 0) {
          for (std::size_t i = 0; i < points.size(); ++i) {
            tree.Insert(points[i], ids[i]);
          }
        }
        for (const Point& q : points) {
          out.clear();
          tree.QueryRange(q, eps, &out);
          results += out.size();
        }
      } else if (mode == 2) {
        const KdTree tree = KdTree::Build(points, ids);
        for (const Point& q : points) {
          out.clear();
          tree.QueryRange(q, eps, &out);
          results += out.size();
        }
      } else {
        for (const Point& q : points) {
          for (std::size_t i = 0; i < points.size(); ++i) {
            if (L1Distance(q, points[i]) <= eps) ++results;
          }
        }
      }
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["result_pairs"] = static_cast<double>(results);
}

void RegisterAll() {
  for (const int mode : {0, 1, 2, 3}) {
    benchmark::RegisterBenchmark("Ablation/LocalIndexQuery",
                                 &BM_LocalIndexQuery)
        ->Arg(mode)
        ->Unit(benchmark::kMillisecond);
  }
  for (const auto which : {trajgen::StandardDataset::kTaxi,
                           trajgen::StandardDataset::kBrinkhoff}) {
    for (const int mode : {0, 1}) {
      benchmark::RegisterBenchmark("Ablation/ClusterExecutionMode",
                                   &BM_ClusterExecutionMode)
          ->Args({static_cast<int>(which), mode})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
      benchmark::RegisterBenchmark("Ablation/IndexBuildStrategy",
                                   &BM_IndexBuildStrategy)
          ->Args({static_cast<int>(which), mode})
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const int mode : {0, 1}) {
    for (const int n : {1000, 10000, 100000}) {
      benchmark::RegisterBenchmark("Ablation/MonolithicBuild",
                                   &BM_MonolithicBuild)
          ->Args({mode, n})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
