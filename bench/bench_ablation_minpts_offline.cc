/// Two further ablations:
///
/// 1. minPts sweep (the paper fixes minPts = 10 and varies only eps,
///    §7 "similar performance is observed for different values of
///    minPts" - this bench verifies that claim holds here too: latency
///    and throughput should be nearly flat in minPts).
///
/// 2. Offline vs online mining: the SPARE-style historical miner
///    (src/offline) against the streaming pipeline on the same data.
///    Offline mining amortises partitioning over the whole history and
///    wins on total wall time, but answers only after the stream ends -
///    the quantitative version of the paper's §1 motivation for a
///    streaming system.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cluster/clustering.h"
#include "common/stopwatch.h"
#include "offline/spare_miner.h"

namespace comove::bench {
namespace {

void BM_MinPtsSweep(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const int min_pts = static_cast<int>(state.range(1));
  const trajgen::Dataset& dataset = CachedDataset(which);
  core::IcpeOptions options = DefaultOptions(dataset);
  options.cluster_options.dbscan.min_pts = min_pts;
  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) +
                 "/minPts=" + std::to_string(min_pts));
  benchmark::DoNotOptimize(core::RunIcpe(dataset, options));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpe(dataset, options);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

void BM_OfflineVsOnline(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const bool offline = state.range(1) != 0;
  const trajgen::Dataset& dataset = CachedDataset(which);
  core::IcpeOptions options = DefaultOptions(dataset);
  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) +
                 (offline ? "/offline-SPARE" : "/online-ICPE"));

  std::size_t patterns = 0;
  for (auto _ : state) {
    if (offline) {
      // Offline: cluster the full history first, then star-partition mine.
      std::vector<ClusterSnapshot> history;
      for (const Snapshot& s : dataset.ToSnapshots()) {
        history.push_back(cluster::ClusterSnapshotWith(
            cluster::ClusteringMethod::kRJC, s, options.cluster_options));
      }
      patterns =
          offline::MineOffline(history, options.constraints).size();
    } else {
      patterns = core::RunIcpe(dataset, options).patterns.size();
    }
    benchmark::DoNotOptimize(patterns);
  }
  state.counters["patterns"] = static_cast<double>(patterns);
}

void RegisterAll() {
  for (const auto which : {trajgen::StandardDataset::kTaxi,
                           trajgen::StandardDataset::kBrinkhoff}) {
    for (const int min_pts : {2, 4, 6, 8, 10}) {
      benchmark::RegisterBenchmark("Ablation/MinPtsSweep", &BM_MinPtsSweep)
          ->Args({static_cast<int>(which), min_pts})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
    for (const int offline : {0, 1}) {
      benchmark::RegisterBenchmark("Ablation/OfflineVsOnline",
                                   &BM_OfflineVsOnline)
          ->Args({static_cast<int>(which), offline})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
