#ifndef COMOVE_BENCH_BENCH_COMMON_H_
#define COMOVE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <mutex>
#include <string_view>

#include "core/icpe_engine.h"
#include "flow/stage_stats.h"
#include "trajgen/standard_datasets.h"

/// \file
/// Shared harness pieces for the per-figure benchmark binaries. The
/// parameter grids mirror Table 3 of the paper, rescaled to the synthetic
/// laptop-scale datasets (see EXPERIMENTS.md for the mapping): the paper
/// sweeps eps over 0.02%..0.12% of the dataset extent on streams of 10^5
/// snapshots; our streams are ~10^2 snapshots of a few hundred objects, so
/// the spatial percentages are x10 and the temporal constraints (K, L, G)
/// are /10, preserving every ratio that drives the algorithms.

namespace comove::bench {

/// Default dataset scale for benchmark runs.
inline constexpr double kBenchScale = 0.25;

/// Table 3 analogue grids (defaults marked with *):
///   eps  (% of extent): 0.2 0.4 *0.6 0.8 1.0 1.2      (paper: 0.02..0.12)
///   lg   (% of extent): 0.2 0.4 0.8 *1.6 3.2 6.4      (paper: same)
///   M: 2 3 *4 5 6                                      (paper: 5..25)
///   K: 12 15 *18 21 24                                 (paper: 120..240)
///   L: 1 2 *3 4 5                                      (paper: 10..50)
///   G: 1 2 *3 4 5                                      (paper: 10..50)
///   Or (%): 10 20 40 60 80 *100
///   N: 1 2 *4 6 8 10
inline constexpr double kEpsPctGrid[] = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2};
inline constexpr double kLgPctGrid[] = {0.2, 0.4, 0.8, 1.6, 3.2, 6.4};
inline constexpr int kMGrid[] = {2, 3, 4, 5, 6};
inline constexpr int kKGrid[] = {12, 15, 18, 21, 24};
inline constexpr int kLGrid[] = {1, 2, 3, 4, 5};
inline constexpr int kGGrid[] = {1, 2, 3, 4, 5};
inline constexpr double kOrGrid[] = {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
inline constexpr int kNGrid[] = {1, 2, 4, 6, 8, 10};

inline constexpr double kDefaultEpsPct = 0.6;
inline constexpr double kDefaultLgPct = 1.6;
inline constexpr int kDefaultMinPts = 4;  // paper: 10, at 10x object scale
inline constexpr PatternConstraints kDefaultConstraints{4, 18, 3, 3};
inline constexpr int kDefaultParallelism = 4;

/// Returns the (cached) standard dataset at the bench scale plus its
/// maximal L1 distance. Thread-safe; datasets generate once per process.
inline const trajgen::Dataset& CachedDataset(trajgen::StandardDataset which,
                                             double scale = kBenchScale) {
  static std::mutex mu;
  static std::map<std::pair<int, double>, trajgen::Dataset> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(static_cast<int>(which), scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, MakeStandardDataset(which, scale)).first;
  }
  return it->second;
}

/// eps/lg are expressed as a percentage of the dataset's maximal distance,
/// exactly as in Table 3.
inline double PctOfExtent(const trajgen::Dataset& dataset, double pct) {
  return dataset.ComputeStats().MaxDistance() * pct / 100.0;
}

/// Process-wide observability switch, set by the `--stats` flag. When on,
/// every DefaultOptions-based run collects per-stage counters and ReportRun
/// prints the stage table after each benchmark.
inline bool& StatsEnabled() {
  static bool enabled = false;
  return enabled;
}

/// Process-wide trace switch, set by the `--trace` flag. When non-empty,
/// every DefaultOptions-based run records per-stage spans and the LAST run
/// to finish wins the file (benchmarks iterate; each run overwrites it).
inline std::string& TracePath() {
  static std::string path;
  return path;
}

/// Bench entry point: consumes our own flags (`--stats`, `--trace [PATH]`)
/// before handing argv to Google Benchmark, which rejects flags it doesn't
/// know. `--trace` without a PATH (or followed by another flag) defaults to
/// bench_trace.json in the working directory.
inline void InitBench(int& argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--stats") {
      StatsEnabled() = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--trace") {
      TracePath() = "bench_trace.json";
      if (i + 1 < argc && argv[i + 1][0] != '-') TracePath() = argv[++i];
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
}

/// Baseline configuration with all Table 3 defaults applied.
inline core::IcpeOptions DefaultOptions(const trajgen::Dataset& dataset) {
  core::IcpeOptions options;
  options.cluster_options.join.eps = PctOfExtent(dataset, kDefaultEpsPct);
  options.cluster_options.join.grid_cell_width =
      PctOfExtent(dataset, kDefaultLgPct);
  options.cluster_options.dbscan.min_pts = kDefaultMinPts;
  options.constraints = kDefaultConstraints;
  options.parallelism = kDefaultParallelism;
  options.collect_stats = StatsEnabled();
  options.trace_path = TracePath();
  return options;
}

/// Warms caches, page tables and the dataset generator before the first
/// measured run; every bench main() calls this once. Without it the first
/// registered benchmark absorbs one-time costs and distorts its row.
inline void WarmUp() {
  for (const auto which :
       {trajgen::StandardDataset::kGeoLife, trajgen::StandardDataset::kTaxi,
        trajgen::StandardDataset::kBrinkhoff}) {
    const trajgen::Dataset& dataset = CachedDataset(which);
    core::IcpeOptions options = DefaultOptions(dataset);
    options.enumerator = core::EnumeratorKind::kNone;
    benchmark::DoNotOptimize(core::RunIcpe(dataset, options));
  }
}

/// Publishes the paper's two metrics (§7) plus context counters, and -
/// under `--stats` - dumps the per-stage backpressure table to stderr.
inline void ReportRun(benchmark::State& state,
                      const core::IcpeResult& result) {
  state.counters["latency_ms"] = result.snapshots.average_latency_ms;
  state.counters["p50_ms"] = result.snapshots.p50_latency_ms;
  state.counters["p95_ms"] = result.snapshots.p95_latency_ms;
  state.counters["p99_ms"] = result.snapshots.p99_latency_ms;
  state.counters["tps"] = result.snapshots.throughput_tps;
  state.counters["cluster_ms"] = result.avg_cluster_ms;
  state.counters["enum_ms"] = result.avg_enum_ms;
  state.counters["avg_cluster_size"] = result.avg_cluster_size;
  state.counters["patterns"] =
      static_cast<double>(result.patterns.size());
  if (StatsEnabled() && !result.stage_stats.empty()) {
    std::cerr << "\n[stage stats]\n";
    flow::PrintStageStats(result.stage_stats, std::cerr);
    std::cerr << "[batch size histogram]\n";
    flow::PrintBatchHistogram(result.stage_stats, std::cerr);
  }
}

}  // namespace comove::bench

#endif  // COMOVE_BENCH_BENCH_COMMON_H_
