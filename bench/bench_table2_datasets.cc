/// Table 2 analogue: statistics of the three evaluation datasets.
/// The paper reports #trajectories, #locations, #snapshots and storage
/// size for GeoLife, Taxi and Brinkhoff; this binary prints the same rows
/// for the synthetic stand-ins (at bench scale). The shape to check:
/// Taxi has by far the most locations/snapshots; GeoLife and Brinkhoff
/// are comparable to each other.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace comove::bench {
namespace {

void BM_DatasetStats(benchmark::State& state) {
  const auto which =
      static_cast<trajgen::StandardDataset>(state.range(0));
  state.SetLabel(trajgen::StandardDatasetName(which));
  trajgen::DatasetStats stats;
  for (auto _ : state) {
    stats = CachedDataset(which).ComputeStats();
    benchmark::DoNotOptimize(stats);
  }
  state.counters["trajectories"] = static_cast<double>(stats.trajectories);
  state.counters["locations"] = static_cast<double>(stats.locations);
  state.counters["snapshots"] = static_cast<double>(stats.snapshots);
  state.counters["storage_mb"] = stats.storage_mb;
}

BENCHMARK(BM_DatasetStats)
    ->Arg(static_cast<int>(trajgen::StandardDataset::kGeoLife))
    ->Arg(static_cast<int>(trajgen::StandardDataset::kTaxi))
    ->Arg(static_cast<int>(trajgen::StandardDataset::kBrinkhoff))
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
