/// Figure 10 (a-f): clustering latency and throughput vs the distance
/// threshold eps, comparing SRJ [36], GDC [14] and our RJC on all three
/// datasets. Expected shape (paper §7.1): RJC beats SRJ (Lemmas 1+2 avoid
/// replication and verification work) and GDC (whose eps-derived grid
/// over-partitions); latency rises and throughput falls as eps grows.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace comove::bench {
namespace {

void BM_ClusteringVsEps(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const auto method =
      static_cast<cluster::ClusteringMethod>(state.range(1));
  const double eps_pct = kEpsPctGrid[static_cast<std::size_t>(
      state.range(2))];
  const trajgen::Dataset& dataset = CachedDataset(which);

  core::IcpeOptions options = DefaultOptions(dataset);
  options.enumerator = core::EnumeratorKind::kNone;
  options.clustering = method;
  options.cluster_options.join.eps = PctOfExtent(dataset, eps_pct);

  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) + "/" +
                 cluster::ClusteringMethodName(method) +
                 "/eps=" + std::to_string(eps_pct) + "%");
  benchmark::DoNotOptimize(core::RunIcpe(dataset, options));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpe(dataset, options);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

void RegisterAll() {
  for (const auto which :
       {trajgen::StandardDataset::kGeoLife, trajgen::StandardDataset::kTaxi,
        trajgen::StandardDataset::kBrinkhoff}) {
    for (const auto method :
         {cluster::ClusteringMethod::kSRJ, cluster::ClusteringMethod::kGDC,
          cluster::ClusteringMethod::kRJC}) {
      for (std::size_t e = 0; e < std::size(kEpsPctGrid); ++e) {
        benchmark::RegisterBenchmark("Fig10/ClusteringVsEps",
                                     &BM_ClusteringVsEps)
            ->Args({static_cast<int>(which), static_cast<int>(method),
                    static_cast<int>(e)})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
