/// Figure 11 (a-f): clustering latency and throughput vs the grid cell
/// width lg. Expected shape (paper §7.1): RJC/SRJ performance is U-shaped
/// in lg (too-small cells -> partition management overhead; too-large
/// cells -> no pruning), while GDC is flat because its grid derives from
/// eps and ignores lg entirely.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace comove::bench {
namespace {

void BM_ClusteringVsLg(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const auto method =
      static_cast<cluster::ClusteringMethod>(state.range(1));
  const double lg_pct =
      kLgPctGrid[static_cast<std::size_t>(state.range(2))];
  const trajgen::Dataset& dataset = CachedDataset(which);

  core::IcpeOptions options = DefaultOptions(dataset);
  options.enumerator = core::EnumeratorKind::kNone;
  options.clustering = method;
  options.cluster_options.join.grid_cell_width =
      PctOfExtent(dataset, lg_pct);

  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) + "/" +
                 cluster::ClusteringMethodName(method) +
                 "/lg=" + std::to_string(lg_pct) + "%");
  benchmark::DoNotOptimize(core::RunIcpe(dataset, options));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpe(dataset, options);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

void RegisterAll() {
  for (const auto which :
       {trajgen::StandardDataset::kGeoLife, trajgen::StandardDataset::kTaxi,
        trajgen::StandardDataset::kBrinkhoff}) {
    for (const auto method :
         {cluster::ClusteringMethod::kSRJ, cluster::ClusteringMethod::kGDC,
          cluster::ClusteringMethod::kRJC}) {
      for (std::size_t i = 0; i < std::size(kLgPctGrid); ++i) {
        benchmark::RegisterBenchmark("Fig11/ClusteringVsLg",
                                     &BM_ClusteringVsLg)
            ->Args({static_cast<int>(which), static_cast<int>(method),
                    static_cast<int>(i)})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
