// Checkpointing overhead: end-to-end pipeline throughput with aligned
// barrier snapshotting at several intervals, against the same pipeline
// with checkpointing off. The interesting quantity is the tax the fault-
// tolerance subsystem levies on failure-free runs - barrier broadcasts,
// consumer-side alignment, per-operator state serialisation, and the
// coordinator's bundle assembly. Snapshots go to a MemorySnapshotStore so
// the measurement isolates the subsystem cost from disk bandwidth (the
// file store's atomic-rename path is covered functionally by the tests).
//
// Grid: checkpoint interval {off, 100, 20, 5} snapshot-times x
// parallelism {1, 4}, on a taxi-like workload (a fleet that never leaves
// service, so the assembler's "last time" horizon keeps advancing and the
// stream is processed as a stream; 400 ticks, so interval=100 exercises
// several mid-stream checkpoints rather than one at end-of-stream).
//
// Output: a human-readable table on stdout and machine-readable JSON (one
// row object per line) for scripts/bench_smoke.sh, default
// BENCH_checkpoint.json, overridable with --out <path>. The smoke gate
// holds interval=100 to <= 5% overhead vs off at both parallelisms.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/icpe_engine.h"
#include "flow/checkpoint/snapshot_store.h"
#include "trajgen/brinkhoff_generator.h"

namespace comove::bench {
namespace {

constexpr std::int32_t kObjects = 250;
constexpr Timestamp kDuration = 400;
constexpr double kEps = 8.0;
constexpr double kGridWidth = 60.0;

struct Row {
  int parallelism = 0;
  std::int64_t interval = 0;  ///< 0 = checkpointing off
  double snapshots_per_sec = 0.0;
  std::int64_t checkpoints = 0;
  std::int64_t snapshot_bytes = 0;
};

core::IcpeOptions BaseOptions(int parallelism) {
  core::IcpeOptions options;
  options.cluster_options.join.eps = kEps;
  options.cluster_options.join.grid_cell_width = kGridWidth;
  options.cluster_options.dbscan.min_pts = 3;
  options.constraints = PatternConstraints{3, 6, 3, 2};
  options.enumerator = core::EnumeratorKind::kFBA;
  options.parallelism = parallelism;
  return options;
}

/// Best-of-`reps` end-to-end snapshot throughput, so one descheduled run
/// cannot fake an overhead in the smoke gate. Timed runs keep stats
/// collection OFF on every row (the instrumentation has its own cost,
/// which must not be booked against checkpointing); the informational
/// checkpoint-count and state-bytes columns come from one extra untimed
/// run with stats on.
Row Measure(const trajgen::Dataset& dataset, int parallelism,
            std::int64_t interval, int reps) {
  Row row;
  row.parallelism = parallelism;
  row.interval = interval;
  for (int r = 0; r < reps; ++r) {
    flow::MemorySnapshotStore store;
    core::IcpeOptions options = BaseOptions(parallelism);
    if (interval > 0) {
      options.checkpoint_interval = interval;
      options.snapshot_store = &store;
    }
    Stopwatch watch;
    const core::IcpeResult result = RunIcpe(dataset, options);
    const double seconds = watch.ElapsedSeconds();
    const double rate =
        static_cast<double>(result.snapshot_count) / seconds;
    row.snapshots_per_sec = std::max(row.snapshots_per_sec, rate);
  }
  if (interval > 0) {
    flow::MemorySnapshotStore store;
    core::IcpeOptions options = BaseOptions(parallelism);
    options.checkpoint_interval = interval;
    options.snapshot_store = &store;
    options.collect_stats = true;
    const core::IcpeResult result = RunIcpe(dataset, options);
    row.checkpoints = result.checkpoints_completed;
    for (const auto& stage : result.stage_stats) {
      if (stage.stage == "checkpoint") {
        row.snapshot_bytes = stage.snapshot_bytes;
      }
    }
  }
  return row;
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  using comove::bench::Measure;
  using comove::bench::Row;

  std::string out_path = "BENCH_checkpoint.json";
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0] << " [--out path] [--reps n]\n";
      return 2;
    }
  }

  const comove::trajgen::Dataset dataset = comove::trajgen::GenerateTaxiLike(
      comove::bench::kObjects, comove::bench::kDuration, /*seed=*/42);

  const std::int64_t intervals[] = {0, 100, 20, 5};
  std::vector<Row> rows;
  for (const int parallelism : {1, 4}) {
    for (const std::int64_t interval : intervals) {
      rows.push_back(Measure(dataset, parallelism, interval, reps));
    }
  }

  std::printf("%4s %9s %18s %12s %12s\n", "p", "interval",
              "snapshots_per_sec", "checkpoints", "snap_bytes");
  for (const Row& row : rows) {
    std::printf("%4d %9lld %18.0f %12lld %12lld\n", row.parallelism,
                static_cast<long long>(row.interval), row.snapshots_per_sec,
                static_cast<long long>(row.checkpoints),
                static_cast<long long>(row.snapshot_bytes));
  }
  // The headline tax the subsystem is judged by.
  for (const int parallelism : {1, 4}) {
    double off = 0.0, sparse = 0.0;
    for (const Row& row : rows) {
      if (row.parallelism != parallelism) continue;
      if (row.interval == 0) off = row.snapshots_per_sec;
      if (row.interval == 100) sparse = row.snapshots_per_sec;
    }
    if (off > 0.0) {
      std::printf("p=%d interval100/off = %.3fx\n", parallelism,
                  sparse / off);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  for (const Row& row : rows) {
    out << "{\"workload\": \"checkpoint\", \"parallelism\": "
        << row.parallelism << ", \"interval\": " << row.interval
        << ", \"snapshots_per_sec\": "
        << static_cast<std::int64_t>(row.snapshots_per_sec)
        << ", \"checkpoints\": " << row.checkpoints
        << ", \"snapshot_bytes\": " << row.snapshot_bytes << "}\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
