/// Figure 13 (a-d): full pattern-detection latency and throughput vs the
/// distance threshold eps, methods F (FBA) and V (VBA), with the average
/// cluster size curve. Expected shape (paper §7.2): both methods degrade
/// as eps grows (larger join search space AND larger clusters to
/// enumerate); F keeps the latency edge, V the throughput edge.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace comove::bench {
namespace {

void BM_DetectionVsEps(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const auto kind = static_cast<core::EnumeratorKind>(state.range(1));
  const double eps_pct =
      kEpsPctGrid[static_cast<std::size_t>(state.range(2))];
  const trajgen::Dataset& dataset = CachedDataset(which);

  core::IcpeOptions options = DefaultOptions(dataset);
  options.enumerator = kind;
  options.cluster_options.join.eps = PctOfExtent(dataset, eps_pct);

  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) + "/" +
                 core::EnumeratorKindName(kind) +
                 "/eps=" + std::to_string(eps_pct) + "%");
  benchmark::DoNotOptimize(core::RunIcpe(dataset, options));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpe(dataset, options);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

void RegisterAll() {
  for (const auto which : {trajgen::StandardDataset::kTaxi,
                           trajgen::StandardDataset::kBrinkhoff}) {
    for (const auto kind :
         {core::EnumeratorKind::kFBA, core::EnumeratorKind::kVBA}) {
      for (std::size_t i = 0; i < std::size(kEpsPctGrid); ++i) {
        benchmark::RegisterBenchmark("Fig13/DetectionVsEps",
                                     &BM_DetectionVsEps)
            ->Args({static_cast<int>(which), static_cast<int>(kind),
                    static_cast<int>(i)})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
