/// Figure 15 (a-h): pattern-enumeration latency and throughput vs the
/// four pattern constraints M, K, L, G on Brinkhoff, comparing FBA and
/// VBA (BA omitted - it cannot run at this scale; clustering cost is
/// constant across the sweeps). Expected shape (paper §7.3): VBA has the
/// better throughput and FBA the better latency everywhere; latency falls
/// (throughput rises) as M, K or L grow - fewer valid candidates and
/// stronger Lemma 5 pruning - and rises as G grows (more valid patterns).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace comove::bench {
namespace {

enum class Knob { kM, kK, kL, kG };

const char* KnobName(Knob knob) {
  switch (knob) {
    case Knob::kM: return "M";
    case Knob::kK: return "K";
    case Knob::kL: return "L";
    case Knob::kG: return "G";
  }
  return "?";
}

void BM_EnumerationVsConstraint(benchmark::State& state) {
  const auto knob = static_cast<Knob>(state.range(0));
  const auto kind = static_cast<core::EnumeratorKind>(state.range(1));
  const int value = static_cast<int>(state.range(2));
  const trajgen::Dataset& dataset =
      CachedDataset(trajgen::StandardDataset::kBrinkhoff);

  core::IcpeOptions options = DefaultOptions(dataset);
  options.enumerator = kind;
  switch (knob) {
    case Knob::kM: options.constraints.m = value; break;
    case Knob::kK: options.constraints.k = value; break;
    case Knob::kL: options.constraints.l = value; break;
    case Knob::kG: options.constraints.g = value; break;
  }

  state.SetLabel(std::string("Brinkhoff/") +
                 core::EnumeratorKindName(kind) + "/" + KnobName(knob) +
                 "=" + std::to_string(value));
  benchmark::DoNotOptimize(core::RunIcpe(dataset, options));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpe(dataset, options);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

void RegisterKnob(Knob knob, const int* grid, std::size_t n) {
  for (const auto kind :
       {core::EnumeratorKind::kFBA, core::EnumeratorKind::kVBA}) {
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::RegisterBenchmark("Fig15/EnumerationVsConstraint",
                                   &BM_EnumerationVsConstraint)
          ->Args({static_cast<int>(knob), static_cast<int>(kind), grid[i]})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void RegisterAll() {
  RegisterKnob(Knob::kM, kMGrid, std::size(kMGrid));
  RegisterKnob(Knob::kK, kKGrid, std::size(kKGrid));
  RegisterKnob(Knob::kL, kLGrid, std::size(kLGrid));
  RegisterKnob(Knob::kG, kGGrid, std::size(kGGrid));
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
