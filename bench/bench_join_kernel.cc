// Per-cell join kernel microbenchmark: the flat plane-sweep kernel
// (RangeJoinOptions::kernel = kSweep, the default) against the R-tree
// kernel it replaces, on the isolated RangeJoinRJC hot path - no pipeline,
// no DBSCAN, so the number measured is exactly the compute the kernel
// swap changes.
//
// Workload: one snapshot of uniform random points over a 16x16 grid of
// cells (cell width 1.0), swept over
//   opc      - objects per cell {16, 64, 256}, i.e. cell population
//   eps_rel  - eps as a fraction of the cell width {0.125, 0.375, 0.75};
//              0.375 matches the paper's Table 3 defaults
//              (eps 0.6% / lg 1.6% of the extent).
// Both kernels run with a reused JoinScratch (the engine's streaming
// pattern) and emit identical pair sets, so pairs/s compares pure kernel
// speed.
//
// Output: a table on stdout and JSON (one row object per line) for
// scripts/bench_smoke.sh, default BENCH_join_kernel.json, overridable
// with --out <path>.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/join_kernel.h"
#include "cluster/range_join.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace comove::bench {
namespace {

constexpr std::int32_t kCellsPerSide = 16;
constexpr double kCellWidth = 1.0;

struct Row {
  std::string kernel;
  double eps_rel = 0.0;
  int opc = 0;
  std::int64_t pairs = 0;       ///< pairs per join (identical across kernels)
  double pairs_per_sec = 0.0;
};

Snapshot UniformSnapshot(std::uint64_t seed, int opc) {
  Rng rng(seed);
  const double extent = kCellsPerSide * kCellWidth;
  const int n = opc * kCellsPerSide * kCellsPerSide;
  Snapshot s;
  s.time = 0;
  for (TrajectoryId id = 0; id < n; ++id) {
    s.entries.push_back(
        {id, Point{rng.Uniform(0, extent), rng.Uniform(0, extent)}});
  }
  return s;
}

/// Joins `snapshot` repeatedly until `min_ms` of wall clock has elapsed
/// and returns pairs/s for this rep. The scratch persists across
/// iterations, matching the engine's per-worker reuse.
double TimeJoins(const Snapshot& snapshot, const cluster::RangeJoinOptions&
                     options, double min_ms, std::int64_t& pairs_out) {
  cluster::JoinScratch scratch;
  std::int64_t joins = 0;
  std::int64_t pairs = 0;
  Stopwatch watch;
  do {
    pairs = static_cast<std::int64_t>(
        RangeJoinRJC(snapshot, options, {}, scratch).size());
    ++joins;
  } while (watch.ElapsedMillis() < min_ms);
  pairs_out = pairs;
  const double seconds = watch.ElapsedMillis() / 1e3;
  return static_cast<double>(pairs * joins) / seconds;
}

/// Best-of-`reps`, so one descheduled run cannot fake a regression in the
/// smoke gate. `name` selects the configuration: "rtree", "sweep" (SIMD
/// auto-dispatch, the engine default), or "sweep_scalar" (the sweep kernel
/// pinned to the scalar reference path - the SIMD speedup is
/// sweep / sweep_scalar).
Row Measure(const std::string& name, double eps_rel, int opc, double min_ms,
            int reps) {
  const Snapshot snapshot = UniformSnapshot(/*seed=*/7, opc);
  cluster::RangeJoinOptions options{.grid_cell_width = kCellWidth,
                                    .eps = eps_rel * kCellWidth};
  options.kernel =
      name == "rtree" ? cluster::JoinKernel::kRTree : cluster::JoinKernel::kSweep;
  if (name == "sweep_scalar") options.simd = SimdLevel::kScalar;
  Row row{name, eps_rel, opc, 0, 0.0};
  for (int r = 0; r < reps; ++r) {
    std::int64_t pairs = 0;
    row.pairs_per_sec =
        std::max(row.pairs_per_sec, TimeJoins(snapshot, options, min_ms,
                                              pairs));
    row.pairs = pairs;
  }
  return row;
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  using comove::bench::Measure;
  using comove::bench::Row;

  std::string out_path = "BENCH_join_kernel.json";
  double min_ms = 100.0;  // measured wall clock per (config, kernel, rep)
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--min-ms" && i + 1 < argc) {
      min_ms = std::stod(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--out path] [--min-ms t] [--reps n]\n";
      return 2;
    }
  }

  std::printf("simd: %s kernels (cpu avx2=%s)\n",
              comove::SimdLevelName(
                  comove::cluster::ResolveSimdLevel(comove::SimdLevel::kAuto)),
              comove::GetCpuFeatures().avx2 ? "yes" : "no");

  std::vector<Row> rows;
  for (const double eps_rel : {0.125, 0.375, 0.75}) {
    for (const int opc : {16, 64, 256}) {
      for (const char* kernel : {"rtree", "sweep", "sweep_scalar"}) {
        rows.push_back(Measure(kernel, eps_rel, opc, min_ms, reps));
      }
    }
  }

  std::printf("%-12s %8s %5s %12s %15s\n", "kernel", "eps_rel", "opc", "pairs",
              "pairs_per_sec");
  for (const Row& row : rows) {
    std::printf("%-12s %8.3f %5d %12lld %15.0f\n", row.kernel.c_str(),
                row.eps_rel, row.opc, static_cast<long long>(row.pairs),
                row.pairs_per_sec);
  }
  // Headlines at the Table 3 default geometry: sweep over rtree (the
  // kernel swap) and sweep over its own scalar path (the SIMD win).
  double rtree = 0.0, sweep = 0.0, sweep_scalar = 0.0;
  for (const Row& row : rows) {
    if (row.eps_rel == 0.375 && row.opc == 64) {
      if (row.kernel == "rtree") rtree = row.pairs_per_sec;
      if (row.kernel == "sweep") sweep = row.pairs_per_sec;
      if (row.kernel == "sweep_scalar") sweep_scalar = row.pairs_per_sec;
    }
  }
  if (rtree > 0.0) {
    std::printf("default row (eps_rel=0.375 opc=64): sweep/rtree = %.2fx\n",
                sweep / rtree);
  }
  if (sweep_scalar > 0.0) {
    std::printf("default row (eps_rel=0.375 opc=64): sweep/scalar = %.2fx\n",
                sweep / sweep_scalar);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  for (const Row& row : rows) {
    out << "{\"workload\": \"join_kernel\", \"kernel\": \"" << row.kernel
        << "\", \"eps_rel\": " << row.eps_rel << ", \"opc\": " << row.opc
        << ", \"pairs\": " << row.pairs << ", \"pairs_per_sec\": "
        << static_cast<std::int64_t>(row.pairs_per_sec) << "}\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
