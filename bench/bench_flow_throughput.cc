// Flow-layer transfer throughput: how many records per second the bounded
// channels move between stages, swept over producer-side batch size and
// stage parallelism. This isolates the cost the ICPE pipeline pays per
// record for locks and condvars, independent of join/DBSCAN compute - the
// quantity the batched transfer work (Channel::PushBatch, BatchingSender)
// is meant to improve.
//
// Workloads:
//   source_pipe         - 1 producer -> 1 consumer (the source->assembler
//                         edge: one channel, no routing).
//   join_parallel_cells - p producers -> p consumers, hash-routed with
//                         periodic watermark broadcasts (the Fig. 5
//                         allocate->query CellMsg shuffle, the pipeline's
//                         highest-volume exchange).
//
// Output: a human-readable table on stdout and machine-readable JSON (one
// row object per line) for scripts/bench_smoke.sh, default
// BENCH_flow_throughput.json, overridable with --out <path>.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/grid_object.h"
#include "common/stopwatch.h"
#include "flow/exchange.h"
#include "flow/task_group.h"

namespace comove::bench {
namespace {

/// Payload mirroring the engine's CellMsg (timestamp + replicated grid
/// object), so the measured per-element cost matches the real shuffle.
struct CellPayload {
  Timestamp time = 0;
  cluster::GridObject object;
};

constexpr std::size_t kChannelCapacity = 128;  // engine default
constexpr std::int64_t kWatermarkEvery = 1024;  // records per producer

struct Row {
  std::string workload;
  int parallelism = 0;
  std::size_t batch = 0;
  double records_per_sec = 0.0;
};

/// Moves `total` records through a p-producer p-consumer hash-routed
/// exchange and returns the wall-clock seconds. batch <= 1 uses the plain
/// per-element Send/Pop path; otherwise BatchingSender and PopBatch.
double RunShuffle(int parallelism, std::size_t batch, std::int64_t total) {
  const auto p = static_cast<std::int32_t>(parallelism);
  const std::int64_t per_producer = total / parallelism;
  flow::Exchange<CellPayload> exchange(p, p, kChannelCapacity);
  flow::TaskGroup tasks;
  Stopwatch watch;
  for (std::int32_t producer = 0; producer < p; ++producer) {
    tasks.Spawn([&exchange, producer, per_producer, batch, parallelism] {
      flow::BatchingSender<CellPayload> sender(exchange, producer, batch);
      CellPayload payload;
      payload.object.id = producer;
      for (std::int64_t i = 0; i < per_producer; ++i) {
        payload.time = i / kWatermarkEvery;
        payload.object.key =
            GridKey{static_cast<std::int32_t>(i & 63), producer};
        sender.Send(static_cast<std::size_t>(i) %
                        static_cast<std::size_t>(parallelism),
                    payload);
        if ((i + 1) % kWatermarkEvery == 0) {
          sender.BroadcastWatermark(payload.time);
        }
      }
      sender.Close();
    });
  }
  std::vector<std::int64_t> received(static_cast<std::size_t>(p), 0);
  for (std::int32_t consumer = 0; consumer < p; ++consumer) {
    tasks.Spawn([&exchange, &received, consumer, batch] {
      auto& channel = exchange.channel(consumer);
      std::int64_t count = 0;
      if (batch <= 1) {
        while (auto element = channel.Pop()) {
          if (element->is_data()) ++count;
        }
      } else {
        std::vector<flow::Element<CellPayload>> popped;
        while (channel.PopBatch(popped, batch) > 0) {
          for (const auto& element : popped) {
            if (element.is_data()) ++count;
          }
        }
      }
      received[static_cast<std::size_t>(consumer)] = count;
    });
  }
  tasks.JoinAll();
  const double seconds = watch.ElapsedMillis() / 1e3;
  std::int64_t delivered = 0;
  for (const std::int64_t c : received) delivered += c;
  if (delivered != per_producer * parallelism) {
    std::cerr << "record loss: " << delivered << " != "
              << per_producer * parallelism << "\n";
    std::abort();
  }
  return seconds;
}

/// Best-of-`reps` throughput, so one descheduled run cannot fake a
/// regression in the smoke gate.
Row Measure(const std::string& workload, int parallelism, std::size_t batch,
            std::int64_t total, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double seconds = RunShuffle(parallelism, batch, total);
    best = std::max(best, static_cast<double>(total) / seconds);
  }
  return Row{workload, parallelism, batch, best};
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  using comove::bench::Measure;
  using comove::bench::Row;

  std::string out_path = "BENCH_flow_throughput.json";
  std::int64_t total = 1 << 21;  // records per configuration
  int reps = 5;  // best-of: enough that the peak estimate is stable
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--records" && i + 1 < argc) {
      total = std::stoll(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--out path] [--records n] [--reps n]\n";
      return 2;
    }
  }

  const std::size_t batches[] = {1, 16, 64, 256};
  std::vector<Row> rows;
  for (const std::size_t batch : batches) {
    rows.push_back(Measure("source_pipe", 1, batch, total, reps));
  }
  for (const int parallelism : {1, 4, 8}) {
    for (const std::size_t batch : batches) {
      rows.push_back(
          Measure("join_parallel_cells", parallelism, batch, total, reps));
    }
  }

  std::printf("%-22s %4s %6s %16s\n", "workload", "p", "batch",
              "records_per_sec");
  for (const Row& row : rows) {
    std::printf("%-22s %4d %6zu %16.0f\n", row.workload.c_str(),
                row.parallelism, row.batch, row.records_per_sec);
  }
  // The headline amortisation ratio the change is judged by.
  double base = 0.0, batched = 0.0;
  for (const Row& row : rows) {
    if (row.workload == "join_parallel_cells" && row.parallelism == 4) {
      if (row.batch == 1) base = row.records_per_sec;
      if (row.batch == 64) batched = row.records_per_sec;
    }
  }
  if (base > 0.0) {
    std::printf("join_parallel_cells p=4: batch64/batch1 = %.2fx\n",
                batched / base);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  for (const Row& row : rows) {
    out << "{\"workload\": \"" << row.workload
        << "\", \"parallelism\": " << row.parallelism
        << ", \"batch\": " << row.batch << ", \"records_per_sec\": "
        << static_cast<std::int64_t>(row.records_per_sec) << "}\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
