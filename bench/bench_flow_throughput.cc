// Flow-layer transfer throughput: how many records per second the bounded
// channels move between stages, swept over producer-side batch size and
// stage parallelism. This isolates the cost the ICPE pipeline pays per
// record for locks and condvars, independent of join/DBSCAN compute - the
// quantity the batched transfer work (Channel::PushBatch, BatchingSender)
// is meant to improve.
//
// Workloads:
//   source_pipe         - 1 producer -> 1 consumer (the source->assembler
//                         edge: one channel, no routing).
//   join_parallel_cells - p producers -> p consumers, hash-routed with
//                         periodic watermark broadcasts (the Fig. 5
//                         allocate->query CellMsg shuffle, the pipeline's
//                         highest-volume exchange).
//
// Output: a human-readable table on stdout and machine-readable JSON (one
// row object per line) for scripts/bench_smoke.sh, default
// BENCH_flow_throughput.json, overridable with --out <path>.
//
// The trace_overhead workload guards the tracing layer's cost on this
// hottest path. It runs the same shuffle three ways, interleaved within
// one process so the comparison is paired rather than against a stored
// file (run-to-run noise on this bench swings several percent, dwarfing
// a 1% budget):
//   ref - a frozen hook-free copy of the pre-tracing sender (the code the
//         production path is allowed to cost at most 1% more than),
//   off - the production sender with tracing compiled in but disabled
//         (null recorder: the branch-only path every untraced run takes),
//   on  - the production sender recording one span per shipped batch.
// scripts/bench_smoke.sh gates off/ref >= 0.99 and on/off >= 0.95.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/grid_object.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "flow/exchange.h"
#include "flow/task_group.h"
#include "flow/trace.h"

namespace comove::bench {
namespace {

/// Payload mirroring the engine's CellMsg (timestamp + replicated grid
/// object), so the measured per-element cost matches the real shuffle.
struct CellPayload {
  Timestamp time = 0;
  cluster::GridObject object;
};

constexpr std::size_t kChannelCapacity = 128;  // engine default
constexpr std::int64_t kWatermarkEvery = 1024;  // records per producer

struct Row {
  std::string workload;
  int parallelism = 0;
  std::size_t batch = 0;
  std::string mode;  ///< trace_overhead only: "ref" | "off" | "on"
  double records_per_sec = 0.0;
};

/// Frozen hook-free sender: the BatchingSender exactly as it was before
/// the tracing layer touched it. The trace_overhead gate measures the
/// production sender (hooks disabled) against THIS code, so the "<= 1%
/// disabled overhead" budget is a paired within-run comparison. Keep in
/// sync with flow::BatchingSender minus everything trace-related.
class RefSender {
 public:
  RefSender(flow::Exchange<CellPayload>& exchange, std::int32_t producer,
            std::size_t batch_size)
      : exchange_(&exchange),
        producer_(producer),
        batch_size_(batch_size),
        pending_(static_cast<std::size_t>(exchange.consumers())) {}

  void Send(std::size_t partition, CellPayload value) {
    if (batch_size_ <= 1) {
      exchange_->Send(producer_, partition, std::move(value));
      return;
    }
    COMOVE_CHECK(partition < pending_.size());
    std::vector<flow::Element<CellPayload>>& buffer = pending_[partition];
    buffer.push_back(flow::Element<CellPayload>::Data(std::move(value),
                                                      producer_));
    if (buffer.size() >= batch_size_) {
      exchange_->channel(static_cast<std::int32_t>(partition))
          .PushBatch(std::move(buffer));
    }
  }

  void BroadcastWatermark(Timestamp t) {
    FlushAll();
    exchange_->BroadcastWatermark(producer_, t);
  }

  void FlushAll() {
    for (std::size_t c = 0; c < pending_.size(); ++c) {
      if (!pending_[c].empty()) {
        exchange_->channel(static_cast<std::int32_t>(c))
            .PushBatch(std::move(pending_[c]));
      }
    }
  }

  void Close() {
    FlushAll();
    exchange_->CloseProducer(producer_);
  }

 private:
  flow::Exchange<CellPayload>* exchange_;
  std::int32_t producer_;
  std::size_t batch_size_;
  std::vector<std::vector<flow::Element<CellPayload>>> pending_;
};

/// Moves `total` records through a p-producer p-consumer hash-routed
/// exchange and returns the wall-clock seconds. batch <= 1 uses the plain
/// per-element Send/Pop path; otherwise batched sends and PopBatch.
/// `make_sender(exchange, producer)` builds each producer's sender -
/// production BatchingSender (recorder on or off) or the frozen RefSender.
template <typename MakeSender>
double RunShuffleWith(int parallelism, std::size_t batch, std::int64_t total,
                      const MakeSender& make_sender) {
  const auto p = static_cast<std::int32_t>(parallelism);
  const std::int64_t per_producer = total / parallelism;
  flow::Exchange<CellPayload> exchange(p, p, kChannelCapacity);
  flow::TaskGroup tasks;
  Stopwatch watch;
  for (std::int32_t producer = 0; producer < p; ++producer) {
    tasks.Spawn([&exchange, &make_sender, producer, per_producer, batch,
                 parallelism] {
      auto sender = make_sender(exchange, producer);
      CellPayload payload;
      payload.object.id = producer;
      for (std::int64_t i = 0; i < per_producer; ++i) {
        payload.time = i / kWatermarkEvery;
        payload.object.key =
            GridKey{static_cast<std::int32_t>(i & 63), producer};
        sender.Send(static_cast<std::size_t>(i) %
                        static_cast<std::size_t>(parallelism),
                    payload);
        if ((i + 1) % kWatermarkEvery == 0) {
          sender.BroadcastWatermark(payload.time);
        }
      }
      sender.Close();
    });
  }
  std::vector<std::int64_t> received(static_cast<std::size_t>(p), 0);
  for (std::int32_t consumer = 0; consumer < p; ++consumer) {
    tasks.Spawn([&exchange, &received, consumer, batch] {
      auto& channel = exchange.channel(consumer);
      std::int64_t count = 0;
      if (batch <= 1) {
        while (auto element = channel.Pop()) {
          if (element->is_data()) ++count;
        }
      } else {
        std::vector<flow::Element<CellPayload>> popped;
        while (channel.PopBatch(popped, batch) > 0) {
          for (const auto& element : popped) {
            if (element.is_data()) ++count;
          }
        }
      }
      received[static_cast<std::size_t>(consumer)] = count;
    });
  }
  tasks.JoinAll();
  const double seconds = watch.ElapsedMillis() / 1e3;
  std::int64_t delivered = 0;
  for (const std::int64_t c : received) delivered += c;
  if (delivered != per_producer * parallelism) {
    std::cerr << "record loss: " << delivered << " != "
              << per_producer * parallelism << "\n";
    std::abort();
  }
  return seconds;
}

/// The production configuration: BatchingSender, tracing disabled.
double RunShuffle(int parallelism, std::size_t batch, std::int64_t total) {
  return RunShuffleWith(
      parallelism, batch, total,
      [batch](flow::Exchange<CellPayload>& exchange, std::int32_t producer) {
        return flow::BatchingSender<CellPayload>(exchange, producer, batch);
      });
}

/// Best-of-`reps` throughput, so one descheduled run cannot fake a
/// regression in the smoke gate.
Row Measure(const std::string& workload, int parallelism, std::size_t batch,
            std::int64_t total, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double seconds = RunShuffle(parallelism, batch, total);
    best = std::max(best, static_cast<double>(total) / seconds);
  }
  return Row{workload, parallelism, batch, "", best};
}

/// The paired tracing-overhead comparison: ref / off / on measured
/// back-to-back inside each rep (interleaved, so drift hits all three
/// alike). p=4 batch=64 - the engine's defaults on the pipeline's
/// highest-volume exchange.
///
/// Estimation: a 1% gate cannot be read off per-mode aggregate rates -
/// machine load drifts several percent between reps, which any per-mode
/// statistic (max, mean) absorbs as bias. Instead each rep yields PAIRED
/// ratios off/ref and on/off from its three adjacent runs (drift within a
/// rep's ~half-second window is far smaller), and the gate uses the
/// median ratio across reps - robust to the occasional descheduled run.
/// The exported rows encode exactly those medians: ref carries its
/// trimmed-mean rate for drift reporting, and off/on are scaled from it
/// so that downstream rate ratios reproduce the median paired ratios.
std::vector<Row> MeasureTraceOverhead(std::int64_t total, int reps) {
  constexpr int kP = 4;
  constexpr std::size_t kBatch = 64;
  // Percent-level gates need more samples and longer runs than the
  // coarse 20%-gated sweep rows; rotate the in-rep mode order so any
  // position-correlated cost (cold caches after the previous mode's
  // teardown) cannot systematically favour one mode.
  const int overhead_reps = std::max(reps * 3, 9);
  total *= 2;
  const auto run_ref = [total] {
    return RunShuffleWith(
        kP, kBatch, total,
        [](flow::Exchange<CellPayload>& exchange, std::int32_t producer) {
          return RefSender(exchange, producer, kBatch);
        });
  };
  const auto run_off = [total] { return RunShuffle(kP, kBatch, total); };
  const auto run_on = [total] {
    // One recorder per run: spans from a run never spill into the next.
    flow::TraceRecorder recorder;
    return RunShuffleWith(
        kP, kBatch, total,
        [&recorder](flow::Exchange<CellPayload>& exchange,
                    std::int32_t producer) {
          return flow::BatchingSender<CellPayload>(exchange, producer,
                                                   kBatch, &recorder);
        });
  };
  const auto top_half_mean = [](std::vector<double>& rates) {
    std::sort(rates.begin(), rates.end(), std::greater<double>());
    const std::size_t keep = (rates.size() + 1) / 2;
    double sum = 0.0;
    for (std::size_t i = 0; i < keep; ++i) sum += rates[i];
    return sum / static_cast<double>(keep);
  };
  const auto median = [](std::vector<double>& values) {
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : (values[n / 2 - 1] + values[n / 2]) / 2.0;
  };
  std::vector<double> ref_rates, off_ref_ratios, on_off_ratios;
  for (int r = 0; r < overhead_reps; ++r) {
    double ref_s = 0.0, off_s = 0.0, on_s = 0.0;
    switch (r % 3) {
      case 0: ref_s = run_ref(); off_s = run_off(); on_s = run_on(); break;
      case 1: off_s = run_off(); on_s = run_on(); ref_s = run_ref(); break;
      default: on_s = run_on(); ref_s = run_ref(); off_s = run_off(); break;
    }
    ref_rates.push_back(static_cast<double>(total) / ref_s);
    // Throughput ratios: throughput is inversely proportional to the
    // measured seconds of the same fixed record count.
    off_ref_ratios.push_back(ref_s / off_s);
    on_off_ratios.push_back(off_s / on_s);
  }
  const double ref = top_half_mean(ref_rates);
  const double off = ref * median(off_ref_ratios);
  const double on = off * median(on_off_ratios);
  return {Row{"trace_overhead", kP, kBatch, "ref", ref},
          Row{"trace_overhead", kP, kBatch, "off", off},
          Row{"trace_overhead", kP, kBatch, "on", on}};
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  using comove::bench::Measure;
  using comove::bench::Row;

  std::string out_path = "BENCH_flow_throughput.json";
  std::int64_t total = 1 << 21;  // records per configuration
  int reps = 5;  // best-of: enough that the peak estimate is stable
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--records" && i + 1 < argc) {
      total = std::stoll(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--out path] [--records n] [--reps n]\n";
      return 2;
    }
  }

  const std::size_t batches[] = {1, 16, 64, 256};
  std::vector<Row> rows;
  for (const std::size_t batch : batches) {
    rows.push_back(Measure("source_pipe", 1, batch, total, reps));
  }
  for (const int parallelism : {1, 4, 8}) {
    for (const std::size_t batch : batches) {
      rows.push_back(
          Measure("join_parallel_cells", parallelism, batch, total, reps));
    }
  }
  for (Row& row : comove::bench::MeasureTraceOverhead(total, reps)) {
    rows.push_back(std::move(row));
  }

  std::printf("%-22s %4s %6s %5s %16s\n", "workload", "p", "batch", "mode",
              "records_per_sec");
  for (const Row& row : rows) {
    std::printf("%-22s %4d %6zu %5s %16.0f\n", row.workload.c_str(),
                row.parallelism, row.batch,
                row.mode.empty() ? "-" : row.mode.c_str(),
                row.records_per_sec);
  }
  // The headline amortisation ratio the change is judged by.
  double base = 0.0, batched = 0.0;
  for (const Row& row : rows) {
    if (row.workload == "join_parallel_cells" && row.parallelism == 4) {
      if (row.batch == 1) base = row.records_per_sec;
      if (row.batch == 64) batched = row.records_per_sec;
    }
  }
  if (base > 0.0) {
    std::printf("join_parallel_cells p=4: batch64/batch1 = %.2fx\n",
                batched / base);
  }
  double ref = 0.0, off = 0.0, on = 0.0;
  for (const Row& row : rows) {
    if (row.workload != "trace_overhead") continue;
    if (row.mode == "ref") ref = row.records_per_sec;
    if (row.mode == "off") off = row.records_per_sec;
    if (row.mode == "on") on = row.records_per_sec;
  }
  if (ref > 0.0 && off > 0.0 && on > 0.0) {
    std::printf("trace_overhead p=4 batch=64: off/ref = %.3f, "
                "on/off = %.3f\n",
                off / ref, on / off);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  for (const Row& row : rows) {
    out << "{\"workload\": \"" << row.workload
        << "\", \"parallelism\": " << row.parallelism
        << ", \"batch\": " << row.batch;
    if (!row.mode.empty()) out << ", \"mode\": \"" << row.mode << "\"";
    out << ", \"records_per_sec\": "
        << static_cast<std::int64_t>(row.records_per_sec) << "}\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
