/// Ablation (§5.2): what Lemma 1 (upper-half replication) and Lemma 2
/// (query-before-insert) individually contribute to the range join.
/// Runs the GR-index join over every snapshot of each dataset with the
/// lemmas toggled. Expected shape: both-lemmas (production RJC) is the
/// fastest and replicates the fewest GridObjects; disabling Lemma 1
/// roughly doubles replication; disabling Lemma 2 adds a full second
/// query pass plus deduplication work (the SRJ scheme is both off).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cluster/range_join.h"
#include "common/stopwatch.h"

namespace comove::bench {
namespace {

void BM_JoinLemmas(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const bool lemma1 = state.range(1) != 0;
  const bool lemma2 = state.range(2) != 0;
  const trajgen::Dataset& dataset = CachedDataset(which);
  const auto snapshots = dataset.ToSnapshots();

  cluster::RangeJoinOptions join;
  join.eps = PctOfExtent(dataset, kDefaultEpsPct);
  join.grid_cell_width = PctOfExtent(dataset, kDefaultLgPct);
  const cluster::RangeJoinVariant variant{lemma1, lemma2};

  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) +
                 "/lemma1=" + (lemma1 ? "on" : "off") +
                 "/lemma2=" + (lemma2 ? "on" : "off"));

  std::size_t pairs = 0;
  std::size_t grid_objects = 0;
  for (auto _ : state) {
    pairs = 0;
    grid_objects = 0;
    for (const Snapshot& s : snapshots) {
      grid_objects += cluster::GridAllocate(s, join, lemma1).size();
      pairs += cluster::RangeJoinRJC(s, join, variant).size();
    }
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["grid_objects"] = static_cast<double>(grid_objects);
  state.counters["join_ms_per_snapshot"] = benchmark::Counter(
      static_cast<double>(snapshots.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void RegisterAll() {
  for (const auto which :
       {trajgen::StandardDataset::kGeoLife, trajgen::StandardDataset::kTaxi,
        trajgen::StandardDataset::kBrinkhoff}) {
    for (const int lemma1 : {1, 0}) {
      for (const int lemma2 : {1, 0}) {
        benchmark::RegisterBenchmark("Ablation/JoinLemmas", &BM_JoinLemmas)
            ->Args({static_cast<int>(which), lemma1, lemma2})
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
