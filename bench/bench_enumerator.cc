// Pattern-enumeration hot-loop benchmark: the allocation-free,
// word-parallel FBA/VBA implementations against self-contained naive
// replicas of the pre-optimisation algorithms, on duty-cycled cluster
// streams that keep the apriori recursion busy without blowing up the
// pattern count.
//
// The naive replicas reproduce the old cost model through the same
// public partition API:
//   - FBA(naive): every complete window rebuilds each anchor member's
//     eta-bit string from eta binary searches over the buffered member
//     lists, and every apriori node allocates a fresh AND byte-vector
//     plus a fresh one-times vector for the (K,L,G) check.
//   - VBA(naive): every tick walks each open string with a binary search
//     of the member list, appends an explicit zero and rescans the tail
//     for the G+1 closure test; every close deep-copies the surviving
//     candidate strings before enumerating.
// The fast paths instead keep rolling windows (one append + one funnel
// shift per tick), lazy zero-run counters, and run the apriori out of a
// per-level arena scratch with word-parallel popcount/KLG kernels.
// Both sides emit identical pattern multisets per configuration (checked
// on a cold pass before timing; the process exits non-zero on mismatch).
//
// Workload: `opc` objects share one cluster; object i is present at
// time t iff ((t + i) mod period) < l+1 with period = l+1 + max(1, g-1).
// Objects with equal phase are always co-clustered (long qualifying
// patterns), while crossing phase classes starves the AND below K and
// exercises the prune path. Configs sweep m/k/l/g (window lengths eta of
// one, two and three 64-bit words) and objects-per-cluster.
//
// Output: a table on stdout and JSON (one row object per line) for
// scripts/bench_smoke.sh, default BENCH_enum.json, overridable with
// --out <path>. The smoke gate holds the headline within-run floor:
// fast >= 3x naive for FBA on the enumeration-bound m4/k18/l3/g3/opc32
// config. `--min-headline X` makes the binary itself fail below X
// (used by the CI perf-smoke job, which has no baseline file).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.h"
#include "common/time_sequence.h"
#include "pattern/fixed_bit_enumerator.h"
#include "pattern/partition.h"
#include "pattern/variable_bit_enumerator.h"

namespace comove::bench {
namespace {

using pattern::Partition;

struct Config {
  std::string name;
  std::int32_t m, k, l, g;
  int opc;    ///< objects per cluster
  int ticks;  ///< stream length (>= eta + slack)
};

struct Row {
  std::string algo;  ///< "fba" or "vba"
  std::string impl;  ///< "fast" or "naive"
  Config config;
  double snapshots_per_sec = 0.0;
};

/// One cluster per tick holding the duty-cycled present subset. Ticks
/// where no object is present still appear (as empty snapshots) so every
/// implementation ages its windows identically.
std::vector<ClusterSnapshot> DutyCycleStream(const Config& c) {
  const int ones = c.l + 1;
  const int period = ones + std::max(1, c.g - 1);
  std::vector<ClusterSnapshot> stream;
  for (int t = 0; t < c.ticks; ++t) {
    ClusterSnapshot s;
    s.time = t;
    std::vector<TrajectoryId> members;
    for (int i = 0; i < c.opc; ++i) {
      if ((t + i) % period < ones) {
        members.push_back(static_cast<TrajectoryId>(i));
      }
    }
    if (!members.empty()) {
      s.clusters.push_back(Cluster{0, std::move(members)});
    }
    stream.push_back(std::move(s));
  }
  return stream;
}

// ---------------------------------------------------------------------
// Naive replicas. Bits are absolute-time byte vectors; every apriori
// node allocates its AND afresh, mirroring the retired AndAligned path.
// ---------------------------------------------------------------------

struct NaiveBits {
  Timestamp start = 0;
  std::vector<unsigned char> bits;

  Timestamp end() const {
    return start + static_cast<Timestamp>(bits.size());
  }
};

NaiveBits NaiveAnd(const NaiveBits& a, const NaiveBits& b) {
  NaiveBits out;
  out.start = std::max(a.start, b.start);
  const Timestamp end = std::min(a.end(), b.end());
  for (Timestamp t = out.start; t < end; ++t) {
    out.bits.push_back(a.bits[static_cast<std::size_t>(t - a.start)] &
                       b.bits[static_cast<std::size_t>(t - b.start)]);
  }
  return out;
}

std::int32_t NaiveOnes(const NaiveBits& b) {
  std::int32_t n = 0;
  for (const unsigned char bit : b.bits) n += bit;
  return n;
}

std::vector<Timestamp> NaiveOneTimes(const NaiveBits& b) {
  std::vector<Timestamp> times;
  for (std::size_t i = 0; i < b.bits.size(); ++i) {
    if (b.bits[i]) times.push_back(b.start + static_cast<Timestamp>(i));
  }
  return times;
}

struct NaiveCandidate {
  TrajectoryId id = 0;
  NaiveBits bits;
};

/// Mirrors AprioriRunner::Recurse node for node (same visit order, same
/// prune conditions, same emissions), but with a fresh allocation per
/// AND and per (K,L,G) check.
class NaiveApriori {
 public:
  NaiveApriori(const std::vector<NaiveCandidate>& cands, TrajectoryId owner,
               const PatternConstraints& constraints, bool first_mandatory,
               const pattern::PatternSink& sink)
      : cands_(cands), owner_(owner), constraints_(constraints),
        sink_(sink) {
    if (static_cast<std::int32_t>(cands.size()) < constraints.m - 1) return;
    if (!first_mandatory) {
      Recurse(0, NaiveBits{}, true);
      return;
    }
    if (NaiveOnes(cands_[0].bits) < constraints_.k) return;
    chosen_.push_back(0);
    const NaiveBits& seed = cands_[0].bits;
    if (1 >= constraints_.m - 1) {
      if (HasQualifyingSubsequence(NaiveOneTimes(seed), constraints_)) {
        Emit(seed);
        Recurse(1, seed, false);
      }
    } else {
      Recurse(1, seed, false);
    }
    chosen_.pop_back();
  }

 private:
  void Recurse(std::size_t start, const NaiveBits& partial, bool top) {
    for (std::size_t i = start; i < cands_.size(); ++i) {
      const NaiveBits combined =
          top ? cands_[i].bits : NaiveAnd(partial, cands_[i].bits);
      if (NaiveOnes(combined) < constraints_.k) continue;
      chosen_.push_back(i);
      if (static_cast<std::int32_t>(chosen_.size()) >= constraints_.m - 1) {
        if (HasQualifyingSubsequence(NaiveOneTimes(combined), constraints_)) {
          Emit(combined);
          Recurse(i + 1, combined, false);
        }
      } else {
        Recurse(i + 1, combined, false);
      }
      chosen_.pop_back();
    }
  }

  void Emit(const NaiveBits& combined) {
    CoMovementPattern p;
    for (const std::size_t d : chosen_) p.objects.push_back(cands_[d].id);
    p.objects.push_back(owner_);
    std::sort(p.objects.begin(), p.objects.end());
    p.times = BestQualifyingSubsequence(NaiveOneTimes(combined), constraints_);
    sink_(p);
  }

  const std::vector<NaiveCandidate>& cands_;
  const TrajectoryId owner_;
  const PatternConstraints& constraints_;
  const pattern::PatternSink& sink_;
  std::vector<std::size_t> chosen_;
};

/// Pre-optimisation FBA: buffers eta member lists per owner and rebuilds
/// every anchor member's window string from eta binary searches when the
/// window completes.
class NaiveFixedBit {
 public:
  NaiveFixedBit(const PatternConstraints& constraints,
                pattern::PatternSink sink)
      : constraints_(constraints), eta_(constraints.Eta()),
        sink_(std::move(sink)) {}

  void OnClusterSnapshot(const ClusterSnapshot& snapshot) {
    if (next_time_ == kNoTime) next_time_ = snapshot.time;
    while (next_time_ < snapshot.time) Tick(next_time_++, {});
    Tick(next_time_++, pattern::MakePartitions(snapshot, constraints_));
  }

  void Finish() {
    for (std::int32_t i = 0; i < eta_ && !owners_.empty(); ++i) {
      Tick(next_time_++, {});
    }
  }

 private:
  struct OwnerState {
    Timestamp history_start = 0;
    std::deque<std::vector<TrajectoryId>> history;
  };

  void Tick(Timestamp t, std::vector<Partition> partitions) {
    for (Partition& p : partitions) {
      auto [it, inserted] = owners_.try_emplace(p.owner);
      if (inserted) it->second.history_start = t;
    }
    std::unordered_map<TrajectoryId, std::vector<TrajectoryId>> members;
    for (Partition& p : partitions) members[p.owner] = std::move(p.members);
    for (auto it = owners_.begin(); it != owners_.end();) {
      OwnerState& state = it->second;
      auto mi = members.find(it->first);
      state.history.push_back(mi == members.end()
                                  ? std::vector<TrajectoryId>{}
                                  : std::move(mi->second));
      if (static_cast<std::int32_t>(state.history.size()) == eta_) {
        if (!state.history.front().empty()) RunWindow(it->first, state);
        state.history.pop_front();
        ++state.history_start;
      }
      bool all_empty = true;
      for (const auto& entry : state.history) {
        if (!entry.empty()) { all_empty = false; break; }
      }
      it = all_empty ? owners_.erase(it) : ++it;
    }
  }

  void RunWindow(TrajectoryId owner, const OwnerState& state) {
    std::vector<NaiveCandidate> candidates;
    for (const TrajectoryId oi : state.history.front()) {
      NaiveBits bits;
      bits.start = state.history_start;
      for (const auto& entry : state.history) {
        bits.bits.push_back(
            std::binary_search(entry.begin(), entry.end(), oi) ? 1 : 0);
      }
      if (HasQualifyingSubsequence(NaiveOneTimes(bits), constraints_)) {
        candidates.push_back(NaiveCandidate{oi, std::move(bits)});
      }
    }
    NaiveApriori(candidates, owner, constraints_,
                 /*first_mandatory=*/false, sink_);
  }

  const PatternConstraints constraints_;
  const std::int32_t eta_;
  const pattern::PatternSink sink_;
  Timestamp next_time_ = kNoTime;
  std::unordered_map<TrajectoryId, OwnerState> owners_;
};

/// Pre-optimisation VBA: per tick every open string binary-searches the
/// member list, appends an explicit bit and rescans its tail zeros;
/// every close deep-copies the Lemma-8-surviving candidates.
class NaiveVariableBit {
 public:
  NaiveVariableBit(const PatternConstraints& constraints,
                   pattern::PatternSink sink)
      : constraints_(constraints), sink_(std::move(sink)) {}

  void OnClusterSnapshot(const ClusterSnapshot& snapshot) {
    if (next_time_ == kNoTime) next_time_ = snapshot.time;
    while (next_time_ < snapshot.time) Tick(next_time_++, {});
    Tick(next_time_++, pattern::MakePartitions(snapshot, constraints_));
  }

  void Finish() {
    for (auto& [owner, state] : owners_) {
      for (auto& [id, bits] : state.open) CloseString(owner, &state, bits, id);
      state.open.clear();
    }
    owners_.clear();
  }

 private:
  struct OwnerState {
    std::map<TrajectoryId, NaiveBits> open;
    std::vector<NaiveCandidate> candidates;
  };

  static std::int32_t TrailingZeros(const NaiveBits& b) {
    std::int32_t n = 0;
    for (auto it = b.bits.rbegin(); it != b.bits.rend() && !*it; ++it) ++n;
    return n;
  }

  void Tick(Timestamp t, std::vector<Partition> partitions) {
    for (Partition& p : partitions) owners_.try_emplace(p.owner);
    std::unordered_map<TrajectoryId, std::vector<TrajectoryId>> members;
    for (Partition& p : partitions) members[p.owner] = std::move(p.members);
    for (auto it = owners_.begin(); it != owners_.end();) {
      OwnerState& state = it->second;
      auto mi = members.find(it->first);
      static const std::vector<TrajectoryId> kEmpty;
      const std::vector<TrajectoryId>& present =
          mi == members.end() ? kEmpty : mi->second;
      for (auto oi = state.open.begin(); oi != state.open.end();) {
        const bool hit =
            std::binary_search(present.begin(), present.end(), oi->first);
        oi->second.bits.push_back(hit ? 1 : 0);
        if (!hit && TrailingZeros(oi->second) > constraints_.g) {
          CloseString(it->first, &state, oi->second, oi->first);
          oi = state.open.erase(oi);
        } else {
          ++oi;
        }
      }
      for (const TrajectoryId id : present) {
        auto [oi, inserted] = state.open.try_emplace(id);
        if (inserted) {
          oi->second.start = t;
          oi->second.bits.push_back(1);
        }
      }
      it = state.open.empty() && state.candidates.empty()
               ? owners_.erase(it)
               : ++it;
    }
  }

  void CloseString(TrajectoryId owner, OwnerState* state, NaiveBits bits,
                   TrajectoryId id) {
    while (!bits.bits.empty() && !bits.bits.back()) bits.bits.pop_back();
    if (bits.bits.empty() ||
        !HasQualifyingSubsequence(NaiveOneTimes(bits), constraints_)) {
      return;
    }
    // Deep copy of every surviving candidate - the retired per-close cost.
    std::vector<NaiveCandidate> filtered;
    filtered.push_back(NaiveCandidate{id, bits});
    for (const NaiveCandidate& c : state->candidates) {
      const Timestamp overlap_start = std::max(c.bits.start, bits.start);
      const Timestamp overlap_end = std::min(c.bits.end(), bits.end());
      if (overlap_end - overlap_start >= constraints_.k) {
        filtered.push_back(c);
      }
    }
    NaiveApriori(filtered, owner, constraints_,
                 /*first_mandatory=*/true, sink_);
    state->candidates.push_back(NaiveCandidate{id, std::move(bits)});
  }

  const PatternConstraints constraints_;
  const pattern::PatternSink sink_;
  Timestamp next_time_ = kNoTime;
  std::unordered_map<TrajectoryId, OwnerState> owners_;
};

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

template <typename Enumerator>
std::int64_t RunOnce(const std::vector<ClusterSnapshot>& stream,
                     const PatternConstraints& c) {
  std::int64_t emitted = 0;
  Enumerator e(c, [&emitted](const CoMovementPattern&) { ++emitted; });
  for (const ClusterSnapshot& s : stream) e.OnClusterSnapshot(s);
  e.Finish();
  return emitted;
}

template <typename Enumerator>
double TimeStream(const std::vector<ClusterSnapshot>& stream,
                  const PatternConstraints& c, double min_ms) {
  std::int64_t snapshots = 0;
  std::int64_t emitted = 0;
  Stopwatch watch;
  do {
    Enumerator e(c, [&emitted](const CoMovementPattern&) { ++emitted; });
    for (const ClusterSnapshot& s : stream) e.OnClusterSnapshot(s);
    e.Finish();
    snapshots += static_cast<std::int64_t>(stream.size());
  } while (watch.ElapsedMillis() < min_ms);
  if (emitted < 0) std::abort();  // keep the sink observable
  return static_cast<double>(snapshots) / (watch.ElapsedMillis() / 1e3);
}

template <typename Enumerator>
Row Measure(const char* algo, const char* impl, const Config& config,
            const std::vector<ClusterSnapshot>& stream, double min_ms,
            int reps) {
  const PatternConstraints c{config.m, config.k, config.l, config.g};
  Row row{algo, impl, config, 0.0};
  for (int r = 0; r < reps; ++r) {
    row.snapshots_per_sec = std::max(
        row.snapshots_per_sec, TimeStream<Enumerator>(stream, c, min_ms));
  }
  return row;
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  using namespace comove;         // NOLINT
  using namespace comove::bench;  // NOLINT

  std::string out_path = "BENCH_enum.json";
  double min_ms = 100.0;  // measured wall clock per (config, impl, rep)
  int reps = 3;
  double min_headline = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--min-ms" && i + 1 < argc) {
      min_ms = std::stod(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--min-headline" && i + 1 < argc) {
      min_headline = std::stod(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--out path] [--min-ms t] [--reps n]"
                << " [--min-headline x]\n";
      return 2;
    }
  }

  // eta spans one word (C0..C5, C8), two words (C6) and three (C7).
  const std::vector<Config> configs = {
      {"C0", 2, 6, 2, 2, 8, 80},     {"C1", 2, 6, 2, 2, 32, 80},
      {"C2", 4, 18, 3, 3, 8, 96},    {"C3", 4, 18, 3, 3, 32, 96},
      {"C4", 3, 12, 2, 5, 16, 96},   {"C5", 2, 10, 5, 2, 16, 80},
      {"C6", 3, 40, 2, 3, 16, 144},  {"C7", 4, 90, 2, 2, 16, 200},
      {"C8", 5, 8, 2, 2, 24, 80},
  };

  std::vector<Row> rows;
  for (const Config& config : configs) {
    const PatternConstraints c{config.m, config.k, config.l, config.g};
    const std::vector<ClusterSnapshot> stream = DutyCycleStream(config);
    // Cold-pass equivalence check: the naive replicas must do the same
    // enumeration work, or the speedup below compares different jobs.
    const std::int64_t fba_fast = RunOnce<pattern::FixedBitEnumerator>(stream, c);
    const std::int64_t fba_naive = RunOnce<NaiveFixedBit>(stream, c);
    const std::int64_t vba_fast =
        RunOnce<pattern::VariableBitEnumerator>(stream, c);
    const std::int64_t vba_naive = RunOnce<NaiveVariableBit>(stream, c);
    if (fba_fast != fba_naive || vba_fast != vba_naive) {
      std::cerr << config.name << ": emission mismatch (fba " << fba_fast
                << " vs " << fba_naive << ", vba " << vba_fast << " vs "
                << vba_naive << ")\n";
      return 1;
    }
    rows.push_back(Measure<pattern::FixedBitEnumerator>(
        "fba", "fast", config, stream, min_ms, reps));
    rows.push_back(
        Measure<NaiveFixedBit>("fba", "naive", config, stream, min_ms, reps));
    rows.push_back(Measure<pattern::VariableBitEnumerator>(
        "vba", "fast", config, stream, min_ms, reps));
    rows.push_back(Measure<NaiveVariableBit>("vba", "naive", config, stream,
                                             min_ms, reps));
  }

  std::printf("%4s %4s %6s %3s %3s %3s %3s %4s %15s\n", "cfg", "algo", "impl",
              "m", "k", "l", "g", "opc", "snapshots_per_s");
  for (const Row& row : rows) {
    std::printf("%4s %4s %6s %3d %3d %3d %3d %4d %15.1f\n",
                row.config.name.c_str(), row.algo.c_str(), row.impl.c_str(),
                row.config.m, row.config.k, row.config.l, row.config.g,
                row.config.opc, row.snapshots_per_sec);
  }

  // Headline: fast over naive for FBA on the enumeration-bound config
  // (deep windows, wide clusters -> the apriori recursion dominates).
  double headline = 0.0;
  double fast = 0.0, naive = 0.0, vfast = 0.0, vnaive = 0.0;
  for (const Row& row : rows) {
    if (row.config.name != "C3") continue;
    if (row.algo == "fba" && row.impl == "fast") fast = row.snapshots_per_sec;
    if (row.algo == "fba" && row.impl == "naive") naive = row.snapshots_per_sec;
    if (row.algo == "vba" && row.impl == "fast") vfast = row.snapshots_per_sec;
    if (row.algo == "vba" && row.impl == "naive")
      vnaive = row.snapshots_per_sec;
  }
  if (naive > 0.0) {
    headline = fast / naive;
    std::printf("headline (fba m4/k18/l3/g3/opc32): fast/naive = %.2fx\n",
                headline);
  }
  if (vnaive > 0.0) {
    std::printf("         (vba m4/k18/l3/g3/opc32): fast/naive = %.2fx\n",
                vfast / vnaive);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  for (const Row& row : rows) {
    out << "{\"workload\": \"enumerator\", \"algo\": \"" << row.algo
        << "\", \"impl\": \"" << row.impl << "\", \"m\": " << row.config.m
        << ", \"k\": " << row.config.k << ", \"l\": " << row.config.l
        << ", \"g\": " << row.config.g << ", \"opc\": " << row.config.opc
        << ", \"snapshots_per_sec\": "
        << static_cast<std::int64_t>(row.snapshots_per_sec) << "}\n";
  }
  std::cout << "wrote " << out_path << "\n";

  if (min_headline > 0.0 && headline < min_headline) {
    std::cerr << "FAIL: headline " << headline << "x below required "
              << min_headline << "x\n";
    return 1;
  }
  return 0;
}
