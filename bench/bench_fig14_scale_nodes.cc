/// Figure 14 (a-d): full pattern-detection latency and throughput vs the
/// number of nodes N, methods F (FBA) and V (VBA). The paper scales
/// machines 1..10; this reproduction scales both deployments the engine
/// offers over the same grid:
///   - Fig14/DetectionVsN      - N worker-thread groups in one process
///     (the original mode, transport "threads");
///   - Fig14/DetectionVsNodes  - N worker PROCESSES over loopback
///     sockets, spawned by re-executing this binary through the
///     MaybeNetWorker hook (transports "unix" and "tcp").
/// Both exercise the same partitioning and synchronisation code; the
/// process mode additionally pays serialisation, CRC framing and kernel
/// socket hops. Expected shape: latency falls and throughput rises with
/// N for both methods; the socket deployments trail the thread mode by a
/// roughly constant transport tax.
///
/// With `--out <path>` the binary skips Google Benchmark and runs the
/// transport sweep for scripts/bench_smoke.sh instead, emitting one JSON
/// row per line labelled with its transport:
///   {"workload": "transport", "transport": "threads|unix|tcp",
///    "workers": W, "parallelism": P, "snapshots_per_sec": R,
///    "link_frames_sent": ..., "link_bytes_sent": ...,
///    "link_frames_received": ..., "link_bytes_received": ...,
///    "link_send_blocked_ms": ..., "link_recv_blocked_ms": ...,
///    "link_crc_rejects": ...}
/// The link_* keys aggregate the per-PeerLink transport counters over
/// every "link:*" stats row of one extra instrumented run (the timed
/// reps stay uninstrumented), making the socket tax attributable:
/// blocked-on-socket time on both ends vs pure serialisation, with CRC
/// rejects as a health check. Threads rows carry zeros.
/// The smoke gate regresses only the "threads" rows against the
/// checked-in BENCH_transport.json; socket rows are reported for drift
/// but not gated - loopback throughput is too hostage to kernel and
/// scheduler mood to fail a build over.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/distributed.h"

namespace comove::bench {
namespace {

void BM_DetectionVsN(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const auto kind = static_cast<core::EnumeratorKind>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  const trajgen::Dataset& dataset = CachedDataset(which);

  core::IcpeOptions options = DefaultOptions(dataset);
  options.enumerator = kind;
  options.parallelism = n;

  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) + "/" +
                 core::EnumeratorKindName(kind) + "/threads/N=" +
                 std::to_string(n));
  benchmark::DoNotOptimize(core::RunIcpe(dataset, options));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpe(dataset, options);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

/// The multi-process analogue: N maps to worker processes AND per-stage
/// parallelism together, the closest available stand-in for the paper's
/// "N machines" (each process hosts one cluster and one enumerate
/// subtask, all edges between them cross real sockets).
void BM_DetectionVsNodes(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const auto kind = static_cast<core::EnumeratorKind>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  const char* transport = state.range(3) == 0 ? "unix" : "tcp";
  const trajgen::Dataset& dataset = CachedDataset(which);

  core::IcpeOptions options = DefaultOptions(dataset);
  options.enumerator = kind;
  options.parallelism = n;
  core::DistributedOptions dist;
  dist.workers = n;
  dist.transport = transport;

  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) + "/" +
                 core::EnumeratorKindName(kind) + "/" + transport +
                 "/N=" + std::to_string(n));
  benchmark::DoNotOptimize(
      core::RunIcpeDistributed(dataset, options, dist));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpeDistributed(dataset, options, dist);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

void RegisterAll() {
  for (const auto which : {trajgen::StandardDataset::kTaxi,
                           trajgen::StandardDataset::kBrinkhoff}) {
    for (const auto kind :
         {core::EnumeratorKind::kFBA, core::EnumeratorKind::kVBA}) {
      for (const int n : kNGrid) {
        benchmark::RegisterBenchmark("Fig14/DetectionVsN",
                                     &BM_DetectionVsN)
            ->Args({static_cast<int>(which), static_cast<int>(kind), n})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  // Process mode sweeps a reduced grid (spawning 10 processes per data
  // point is slow) on the taxi workload, both methods, both transports.
  for (const auto kind :
       {core::EnumeratorKind::kFBA, core::EnumeratorKind::kVBA}) {
    for (const int transport : {0, 1}) {
      for (const int n : {1, 2, 4, 8}) {
        benchmark::RegisterBenchmark("Fig14/DetectionVsNodes",
                                     &BM_DetectionVsNodes)
            ->Args({static_cast<int>(trajgen::StandardDataset::kTaxi),
                    static_cast<int>(kind), n, transport})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

// --- Transport sweep (scripts/bench_smoke.sh mode) ---------------------

struct TransportRow {
  std::string transport;  ///< "threads", "unix" or "tcp"
  int workers = 0;        ///< 0 for the in-process deployment
  int parallelism = 0;
  double snapshots_per_sec = 0.0;
  /// Aggregated over every "link:*" stage-stats row of one instrumented
  /// run (coordinator and worker sides both); zero for "threads".
  std::int64_t link_frames_sent = 0;
  std::int64_t link_bytes_sent = 0;
  std::int64_t link_frames_received = 0;
  std::int64_t link_bytes_received = 0;
  double link_send_blocked_ms = 0.0;
  double link_recv_blocked_ms = 0.0;
  std::int64_t link_crc_rejects = 0;
};

/// Best-of-`reps` end-to-end snapshot throughput for one deployment, so
/// one descheduled run (or one slow process spawn) cannot fake a
/// regression in the smoke gate.
TransportRow MeasureTransport(const trajgen::Dataset& dataset,
                              const std::string& transport, int workers,
                              int parallelism, int reps) {
  TransportRow row;
  row.transport = transport;
  row.workers = workers;
  row.parallelism = parallelism;
  core::IcpeOptions options = DefaultOptions(dataset);
  options.enumerator = core::EnumeratorKind::kFBA;
  options.parallelism = parallelism;
  options.collect_stats = false;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    core::IcpeResult result;
    if (workers > 0) {
      core::DistributedOptions dist;
      dist.workers = workers;
      dist.transport = transport;
      result = RunIcpeDistributed(dataset, options, dist);
    } else {
      result = RunIcpe(dataset, options);
    }
    const double seconds = watch.ElapsedSeconds();
    const double rate =
        static_cast<double>(result.snapshot_count) / seconds;
    row.snapshots_per_sec = std::max(row.snapshots_per_sec, rate);
  }
  if (workers > 0) {
    // One extra instrumented run harvests the per-link transport
    // counters; the timed reps above stay stats-free so instrumentation
    // cost never taints the throughput numbers.
    options.collect_stats = true;
    core::DistributedOptions dist;
    dist.workers = workers;
    dist.transport = transport;
    const core::IcpeResult result =
        RunIcpeDistributed(dataset, options, dist);
    for (const flow::StageStatsSnapshot& s : result.stage_stats) {
      if (s.stage.find("link:") == std::string::npos) continue;
      row.link_frames_sent += s.records_pushed;
      row.link_bytes_sent += s.bytes_pushed;
      row.link_frames_received += s.records_popped;
      row.link_bytes_received += s.bytes_popped;
      row.link_send_blocked_ms += s.push_blocked_ms;
      row.link_recv_blocked_ms += s.pop_blocked_ms;
      row.link_crc_rejects += s.crc_rejects;
    }
  }
  return row;
}

int TransportSweep(const std::string& out_path, int reps) {
  const trajgen::Dataset& dataset =
      CachedDataset(trajgen::StandardDataset::kTaxi);

  std::vector<TransportRow> rows;
  for (const int p : {1, 2, 4}) {
    rows.push_back(MeasureTransport(dataset, "threads", 0, p, reps));
  }
  for (const char* transport : {"unix", "tcp"}) {
    for (const int w : {1, 2, 4}) {
      rows.push_back(
          MeasureTransport(dataset, transport, w, /*parallelism=*/4, reps));
    }
  }

  std::printf("%9s %8s %12s %18s %12s %12s %13s %13s %8s\n", "transport",
              "workers", "parallelism", "snapshots_per_sec", "link_frames",
              "link_bytes", "send_blk_ms", "recv_blk_ms", "crc_rej");
  for (const TransportRow& row : rows) {
    std::printf("%9s %8d %12d %18.0f %12lld %12lld %13.2f %13.2f %8lld\n",
                row.transport.c_str(), row.workers, row.parallelism,
                row.snapshots_per_sec,
                static_cast<long long>(row.link_frames_sent),
                static_cast<long long>(row.link_bytes_sent),
                row.link_send_blocked_ms, row.link_recv_blocked_ms,
                static_cast<long long>(row.link_crc_rejects));
  }
  // The apples-to-apples tax: same logical pipeline at p=4, worker
  // threads vs 4 worker processes. Informational - never gated.
  double threads_p4 = 0.0, unix_w4 = 0.0, tcp_w4 = 0.0;
  for (const TransportRow& row : rows) {
    if (row.transport == "threads" && row.parallelism == 4) {
      threads_p4 = row.snapshots_per_sec;
    }
    if (row.transport == "unix" && row.workers == 4) {
      unix_w4 = row.snapshots_per_sec;
    }
    if (row.transport == "tcp" && row.workers == 4) {
      tcp_w4 = row.snapshots_per_sec;
    }
  }
  if (threads_p4 > 0.0) {
    std::printf("p=4 transport tax: unix/threads = %.3fx, "
                "tcp/threads = %.3fx\n",
                unix_w4 / threads_p4, tcp_w4 / threads_p4);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  for (const TransportRow& row : rows) {
    out << "{\"workload\": \"transport\", \"transport\": \""
        << row.transport << "\", \"workers\": " << row.workers
        << ", \"parallelism\": " << row.parallelism
        << ", \"snapshots_per_sec\": "
        << static_cast<std::int64_t>(row.snapshots_per_sec)
        << ", \"link_frames_sent\": " << row.link_frames_sent
        << ", \"link_bytes_sent\": " << row.link_bytes_sent
        << ", \"link_frames_received\": " << row.link_frames_received
        << ", \"link_bytes_received\": " << row.link_bytes_received
        << ", \"link_send_blocked_ms\": "
        << static_cast<std::int64_t>(row.link_send_blocked_ms)
        << ", \"link_recv_blocked_ms\": "
        << static_cast<std::int64_t>(row.link_recv_blocked_ms)
        << ", \"link_crc_rejects\": " << row.link_crc_rejects << "}\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  // Worker processes re-enter this binary; they must never reach the
  // benchmark runner (or re-run the sweep recursively).
  if (const auto code = comove::core::MaybeNetWorker(argc, argv)) {
    return *code;
  }
  std::string out_path;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[i + 1]);
  }
  if (!out_path.empty()) {
    return comove::bench::TransportSweep(out_path, reps);
  }
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
