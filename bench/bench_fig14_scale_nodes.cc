/// Figure 14 (a-d): full pattern-detection latency and throughput vs the
/// number of nodes N, methods F (FBA) and V (VBA). The paper scales
/// machines 1..10; this reproduction scales the per-stage subtask count
/// (worker-thread groups) over the same grid, exercising the same
/// partitioning and synchronisation code paths. Expected shape: latency
/// falls and throughput rises with N for both methods.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace comove::bench {
namespace {

void BM_DetectionVsN(benchmark::State& state) {
  const auto which = static_cast<trajgen::StandardDataset>(state.range(0));
  const auto kind = static_cast<core::EnumeratorKind>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  const trajgen::Dataset& dataset = CachedDataset(which);

  core::IcpeOptions options = DefaultOptions(dataset);
  options.enumerator = kind;
  options.parallelism = n;

  state.SetLabel(std::string(trajgen::StandardDatasetName(which)) + "/" +
                 core::EnumeratorKindName(kind) + "/N=" +
                 std::to_string(n));
  benchmark::DoNotOptimize(core::RunIcpe(dataset, options));  // warm run
  core::IcpeResult result;
  for (auto _ : state) {
    result = core::RunIcpe(dataset, options);
    benchmark::DoNotOptimize(result);
  }
  ReportRun(state, result);
}

void RegisterAll() {
  for (const auto which : {trajgen::StandardDataset::kTaxi,
                           trajgen::StandardDataset::kBrinkhoff}) {
    for (const auto kind :
         {core::EnumeratorKind::kFBA, core::EnumeratorKind::kVBA}) {
      for (const int n : kNGrid) {
        benchmark::RegisterBenchmark("Fig14/DetectionVsN",
                                     &BM_DetectionVsN)
            ->Args({static_cast<int>(which), static_cast<int>(kind), n})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::WarmUp();
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
