/// Ablation (§6.1/§6.2 complexity claims): enumeration cost vs the
/// cluster size |P|, feeding synthetic cluster streams directly to the
/// three enumerators. Expected shape: BA's time and candidate storage
/// grow exponentially in |P| (it becomes infeasible quickly - rows beyond
/// the cap are skipped), while FBA and VBA grow polynomially thanks to
/// bit compression and candidate-based enumeration.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "common/rng.h"
#include "pattern/baseline_enumerator.h"
#include "pattern/fixed_bit_enumerator.h"
#include "pattern/variable_bit_enumerator.h"

namespace comove::bench {
namespace {

/// One churning cluster of `size` objects over `ticks` ticks: every
/// member is present with probability 0.9 per tick, so candidate strings
/// carry realistic gaps.
std::vector<ClusterSnapshot> SyntheticClusterStream(int size, int ticks,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ClusterSnapshot> out;
  for (Timestamp t = 0; t < ticks; ++t) {
    ClusterSnapshot cs;
    cs.time = t;
    Cluster c;
    c.cluster_id = 0;
    for (TrajectoryId id = 0; id < size; ++id) {
      if (rng.Bernoulli(0.9)) c.members.push_back(id);
    }
    cs.clusters.push_back(std::move(c));
    out.push_back(std::move(cs));
  }
  return out;
}

std::unique_ptr<pattern::StreamingEnumerator> Make(
    core::EnumeratorKind kind, const PatternConstraints& c,
    pattern::PatternSink sink) {
  switch (kind) {
    case core::EnumeratorKind::kBA:
      return std::make_unique<pattern::BaselineEnumerator>(c,
                                                           std::move(sink));
    case core::EnumeratorKind::kFBA:
      return std::make_unique<pattern::FixedBitEnumerator>(c,
                                                           std::move(sink));
    default:
      return std::make_unique<pattern::VariableBitEnumerator>(
          c, std::move(sink));
  }
}

void BM_EnumCostVsClusterSize(benchmark::State& state) {
  const auto kind = static_cast<core::EnumeratorKind>(state.range(0));
  const int size = static_cast<int>(state.range(1));
  const PatternConstraints constraints{4, 12, 3, 3};
  const auto stream = SyntheticClusterStream(size, 60, 7);

  state.SetLabel(std::string(core::EnumeratorKindName(kind)) +
                 "/|P|=" + std::to_string(size));
  if (kind == core::EnumeratorKind::kBA && size > 20) {
    state.SkipWithError("BA infeasible beyond 2^20 candidates");
    return;
  }

  std::int64_t patterns = 0;
  for (auto _ : state) {
    patterns = 0;
    auto e = Make(kind, constraints,
                  [&patterns](const CoMovementPattern&) { ++patterns; });
    for (const ClusterSnapshot& cs : stream) e->OnClusterSnapshot(cs);
    e->Finish();
    benchmark::DoNotOptimize(patterns);
  }
  state.counters["pattern_emissions"] = static_cast<double>(patterns);
}

void RegisterAll() {
  for (const auto kind :
       {core::EnumeratorKind::kBA, core::EnumeratorKind::kFBA,
        core::EnumeratorKind::kVBA}) {
    for (const int size : {4, 8, 12, 16, 20, 24}) {
      benchmark::RegisterBenchmark("Ablation/EnumCostVsClusterSize",
                                   &BM_EnumCostVsClusterSize)
          ->Args({static_cast<int>(kind), size})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  comove::bench::RegisterAll();
  comove::bench::InitBench(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
