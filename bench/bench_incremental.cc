// Incremental (snapshot-to-snapshot delta) clustering benchmark: the
// full per-snapshot recompute against the delta path
// (RangeJoinOptions::incremental - per-cell bucket memoisation in the
// range join plus the whole-snapshot DBSCAN memo), on the end-to-end
// RJC + DBSCAN pipeline of ClusterSnapshotWith.
//
// Workload: a taxi-like fleet where almost everything is parked. Taxis
// sit in dense depots (one tight blob per grid cell, so the per-cell
// sweep is the dominant cost) while a small mover fraction cruises along
// a corridor far from the depots, dirtying only the corridor cells each
// tick. This is the regime the delta path targets: consecutive snapshots
// agree on most cells, so the cached per-cell pair lists replay and only
// the corridor is re-swept. Both modes produce bit-identical clusters
// (tests/incremental_join_test.cc proves it); snapshots/s compares pure
// cost.
//
// Swept over
//   objects  - fleet size {1280, 3904} (depots scale with the fleet)
//   movers   - cruising taxis {2%, 12% of the fleet}
// with mode in {full, delta} for each config.
//
// Output: a table on stdout and JSON (one row object per line) for
// scripts/bench_smoke.sh, default BENCH_incremental.json, overridable
// with --out <path>. The smoke gate holds the headline within-run floor:
// delta >= 2x full on the large low-mover config.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "common/stopwatch.h"

namespace comove::bench {
namespace {

constexpr double kCellWidth = 80.0;
constexpr double kEps = 0.5;
constexpr int kMinPts = 2;
constexpr int kTicks = 24;  ///< stream length; tick 0 is the cold start

struct Row {
  int objects = 0;
  int movers = 0;
  std::string mode;  ///< "full" or "delta"
  double snapshots_per_sec = 0.0;
  double replay_pct = 0.0;  ///< cells replayed / cells seen (delta only)
};

/// Pre-generates the snapshot stream: `objects - movers` taxis parked in
/// depots of 256, `movers` cruising a corridor at y ~ -40 (a cell row
/// below every depot, so they never dirty a depot cell).
///
/// A depot is one long parked column inside ONE grid cell: cars 0.3
/// apart in y (adjacent cars pair up and chain into a cluster) and
/// nearly aligned in x, so the whole depot shares one eps-wide x band.
/// That makes the full sweep expensive - all ~33k car pairs of a depot
/// are x-window candidates whose distance must be checked - while only
/// the 255 adjacent pairs come out, so the shared per-snapshot cost
/// (bucket building, pair sort, DBSCAN) stays small next to the kernel
/// work the delta path skips. The movers drive in convoy at fixed 7.0
/// spacing (never within eps of each other): the corridor cells change
/// every tick and are genuinely re-swept, but the snapshot's pair set is
/// identical tick to tick, so the whole-snapshot DBSCAN memo engages
/// like it does on a stationary pattern core.
std::vector<Snapshot> TaxiStream(int objects, int movers) {
  std::vector<SnapshotEntry> entries;
  const int parked = objects - movers;
  constexpr int kPerDepot = 256;
  for (int i = 0; i < parked; ++i) {
    const int depot = i / kPerDepot;
    const int slot = i % kPerDepot;
    entries.push_back({static_cast<TrajectoryId>(i),
                       Point{90.0 * depot + 0.002 * slot, 0.3 * slot}});
  }
  for (int m = 0; m < movers; ++m) {
    entries.push_back(
        {static_cast<TrajectoryId>(parked + m), Point{7.0 * m, -40.0}});
  }
  std::vector<Snapshot> stream;
  for (int t = 0; t < kTicks; ++t) {
    Snapshot s;
    s.time = t;
    s.entries = entries;
    stream.push_back(std::move(s));
    for (int m = 0; m < movers; ++m) {
      entries[static_cast<std::size_t>(parked + m)].location.x += 0.8;
    }
  }
  return stream;
}

/// Clusters the stream end to end (looping it) until `min_ms` of wall
/// clock has elapsed; returns snapshots/s for this rep. The scratch - and
/// with it the delta caches - persists across loops, matching the
/// engine's per-worker reuse; only the first pass over the stream runs
/// cold.
double TimeStream(const std::vector<Snapshot>& stream,
                  const cluster::ClusteringOptions& options, double min_ms,
                  cluster::ClusterScratch& scratch) {
  std::int64_t snapshots = 0;
  Stopwatch watch;
  do {
    for (const Snapshot& s : stream) {
      cluster::ClusterSnapshotWith(cluster::ClusteringMethod::kRJC, s, options,
                                   scratch);
      ++snapshots;
    }
  } while (watch.ElapsedMillis() < min_ms);
  const double seconds = watch.ElapsedMillis() / 1e3;
  return static_cast<double>(snapshots) / seconds;
}

/// Best-of-`reps`, so one descheduled run cannot fake a regression in the
/// smoke gate.
Row Measure(int objects, int movers, bool incremental, double min_ms,
            int reps) {
  const std::vector<Snapshot> stream = TaxiStream(objects, movers);
  cluster::ClusteringOptions options;
  options.join = cluster::RangeJoinOptions{.grid_cell_width = kCellWidth,
                                           .eps = kEps};
  options.join.incremental = incremental;
  options.dbscan = cluster::DbscanOptions{kMinPts};
  Row row{objects, movers, incremental ? "delta" : "full", 0.0, 0.0};
  cluster::ClusterScratch scratch;
  for (int r = 0; r < reps; ++r) {
    row.snapshots_per_sec =
        std::max(row.snapshots_per_sec,
                 TimeStream(stream, options, min_ms, scratch));
  }
  if (incremental && scratch.join.delta.cells_seen > 0) {
    row.replay_pct = 100.0 *
                     static_cast<double>(scratch.join.delta.cells_replayed) /
                     static_cast<double>(scratch.join.delta.cells_seen);
  }
  return row;
}

}  // namespace
}  // namespace comove::bench

int main(int argc, char** argv) {
  using comove::bench::Measure;
  using comove::bench::Row;

  std::string out_path = "BENCH_incremental.json";
  double min_ms = 100.0;  // measured wall clock per (config, mode, rep)
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--min-ms" && i + 1 < argc) {
      min_ms = std::stod(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--out path] [--min-ms t] [--reps n]\n";
      return 2;
    }
  }

  std::vector<Row> rows;
  for (const int objects : {1280, 3904}) {
    for (const double move_frac : {0.02, 0.12}) {
      const int movers = static_cast<int>(move_frac * objects);
      for (const bool incremental : {false, true}) {
        rows.push_back(Measure(objects, movers, incremental, min_ms, reps));
      }
    }
  }

  std::printf("%8s %7s %6s %15s %11s\n", "objects", "movers", "mode",
              "snapshots_per_s", "replay_pct");
  for (const Row& row : rows) {
    std::printf("%8d %7d %6s %15.1f %10.1f%%\n", row.objects, row.movers,
                row.mode.c_str(), row.snapshots_per_sec, row.replay_pct);
  }
  // Headline: delta over full on the large low-mover config (the regime
  // the cache targets).
  double full = 0.0, delta = 0.0;
  for (const Row& row : rows) {
    if (row.objects == 3904 && row.movers == static_cast<int>(0.02 * 3904)) {
      if (row.mode == "full") full = row.snapshots_per_sec;
      if (row.mode == "delta") delta = row.snapshots_per_sec;
    }
  }
  if (full > 0.0) {
    std::printf("headline (objects=3904 movers=2%%): delta/full = %.2fx\n",
                delta / full);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  for (const Row& row : rows) {
    out << "{\"workload\": \"incremental\", \"objects\": " << row.objects
        << ", \"movers\": " << row.movers << ", \"mode\": \"" << row.mode
        << "\", \"snapshots_per_sec\": "
        << static_cast<std::int64_t>(row.snapshots_per_sec)
        << ", \"replay_pct\": " << row.replay_pct << "}\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
