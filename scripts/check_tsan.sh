#!/usr/bin/env bash
# Builds the flow/engine test suite under ThreadSanitizer and runs it, so
# data races in the stream engine (channels, exchanges, metrics, the ICPE
# pipeline) are caught mechanically instead of by luck.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

BUILD_DIR="${1:-build-tsan}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# The concurrency-relevant suites: everything under src/flow plus the
# engine-level pipelines that exercise them end to end, the
# fault-tolerance layer (barrier alignment, coordinator acks from every
# worker thread, crash-and-recover engine runs), and the socket
# transport (PeerLink reader threads racing senders, SocketTransport
# close accounting, multi-process runs whose workers re-exec this very
# TSan-instrumented binary).
TESTS=(
  channel_test
  exchange_test
  flow_utils_test
  metrics_test
  metrics_sampler_test
  stage_stats_test
  trace_test
  snapshot_assembler_test
  reorder_buffer_test
  icpe_engine_test
  icpe_replay_test
  icpe_parallel_join_test
  incremental_join_test
  simd_kernel_test
  icpe_incremental_test
  multi_query_test
  soak_test
  barrier_alignment_test
  checkpoint_test
  recovery_test
  enum_soak_test
  net_frame_test
  transport_conformance_test
  net_pipeline_test
  net_observability_test
)

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCOMOVE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

# Death tests fork and abort by design; keep TSan quiet about the fork and
# strict about everything else.
export TSAN_OPTIONS="halt_on_error=1 die_after_fork=0 ${TSAN_OPTIONS:-}"

status=0
for t in "${TESTS[@]}"; do
  echo "== TSan: $t =="
  if ! "$BUILD_DIR/tests/$t"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "TSan run FAILED" >&2
else
  echo "TSan run clean"
fi
exit "$status"
