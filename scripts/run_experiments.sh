#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation, saving the raw rows
# to bench_output.txt and the test log to test_output.txt (the artefacts
# EXPERIMENTS.md is written against).
#
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -G Ninja
fi
cmake --build "$BUILD_DIR"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" 2>&1 | tee "$ROOT/test_output.txt" | tail -3

echo "== benches =="
: > "$ROOT/bench_output.txt"
for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] || continue
  echo "===== $b" | tee -a "$ROOT/bench_output.txt"
  "$b" 2>&1 | tee -a "$ROOT/bench_output.txt" | grep -cE "iterations|ms " \
    | sed 's/^/  rows: /'
done
echo "wrote $ROOT/test_output.txt and $ROOT/bench_output.txt"
